/**
 * @file
 * The `mobilebench` command-line tool: the library's functionality
 * behind one binary for downstream users.
 *
 *   mobilebench list                       all suites and benchmarks
 *   mobilebench profile <benchmark>        Fig.-1 metrics + strips
 *   mobilebench counters <benchmark> <c..> sample counters as CSV
 *   mobilebench pipeline                   every table and figure
 *   mobilebench roi <benchmark> [frac]     simulation-ROI selection
 *   mobilebench energy <benchmark>         energy/power breakdown
 *   mobilebench catalog [category]         list hardware counters
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include <fstream>

#include "roi/roi.hh"
#include "soc/energy.hh"
#include "workload/loader.hh"

namespace mbs {
namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: mobilebench <command> [args]\n"
                 "  list                        suites and benchmarks\n"
                 "  profile <benchmark>         metrics + sparklines\n"
                 "  counters <benchmark> <c..>  counter CSV to stdout\n"
                 "  pipeline                    full paper pipeline\n"
                 "  roi <benchmark> [fraction]  simulation-ROI pick\n"
                 "  energy <benchmark>          energy breakdown\n"
                 "  catalog [category]          hardware counters\n"
                 "  load <file>                 profile suites from a\n"
                 "                              workload definition file\n");
    return 2;
}

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

int
requireUnit(const std::string &name)
{
    if (registry().hasUnit(name))
        return 0;
    std::fprintf(stderr, "unknown benchmark '%s'; try: mobilebench "
                         "list\n",
                 name.c_str());
    return 1;
}

int
cmdList()
{
    TextTable t({"Suite", "Benchmark", "Target", "Runtime",
                 "Individually executable"});
    for (const auto &suite : registry().suites()) {
        for (const auto &b : suite.benchmarks) {
            t.addRow({suite.name, b.name(),
                      hardwareTargetName(b.target()),
                      units::formatSeconds(b.totalDurationSeconds()),
                      b.individuallyExecutable() ? "yes"
                                                 : "no (whole suite)"});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdProfile(const std::string &name)
{
    if (requireUnit(name))
        return 1;
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p = session.profile(registry().unit(name));
    std::printf("%s (%s)\n", p.name.c_str(), p.suite.c_str());
    TextTable t({"Metric", "Value"});
    t.setAlign(1, Align::Right);
    t.addRow({"runtime", units::formatSeconds(p.runtimeSeconds)});
    t.addRow({"instructions", units::formatCount(p.instructions)});
    t.addRow({"IPC", strformat("%.2f", p.ipc)});
    t.addRow({"cache MPKI", strformat("%.1f", p.cacheMpki)});
    t.addRow({"branch MPKI", strformat("%.2f", p.branchMpki)});
    t.addRow({"avg CPU load", units::formatPercent(p.avgCpuLoad())});
    t.addRow({"avg GPU load", units::formatPercent(p.avgGpuLoad())});
    t.addRow({"avg AIE load", units::formatPercent(p.avgAieLoad())});
    t.addRow({"avg app memory",
              units::formatPercent(p.avgUsedMemory())});
    std::printf("%s", t.render().c_str());
    const auto strip = [](const char *label, const TimeSeries &s) {
        std::printf("%-10s %s\n", label,
                    sparkline(s.values(), 60).c_str());
    };
    strip("cpu", p.series.cpuLoad);
    strip("gpu", p.series.gpuLoad);
    strip("aie", p.series.aieLoad);
    strip("memory", p.series.usedMemory);
    return 0;
}

int
cmdCounters(const std::string &name,
            const std::vector<std::string> &counters)
{
    if (requireUnit(name))
        return 1;
    if (counters.empty()) {
        std::fprintf(stderr, "no counters given; see: mobilebench "
                             "catalog\n");
        return 1;
    }
    const ProfilerSession session(SocConfig::snapdragon888());
    for (const auto &c : counters) {
        if (!session.catalog().has(c)) {
            std::fprintf(stderr, "unknown counter '%s'\n", c.c_str());
            return 1;
        }
    }
    const auto series =
        session.sampleCounters(registry().unit(name), counters);
    CsvWriter csv(std::cout);
    std::vector<std::string> header = {"time_s"};
    header.insert(header.end(), counters.begin(), counters.end());
    csv.writeRow(header);
    const std::size_t n = series.at(counters.front()).size();
    const double dt = series.at(counters.front()).interval();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row = {double(i) * dt};
        for (const auto &c : counters)
            row.push_back(series.at(c)[i]);
        csv.writeRow(row);
    }
    return 0;
}

int
cmdPipeline()
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const auto report = pipeline.run(registry());
    std::printf("%s\n", renderTableI(registry()).c_str());
    std::printf("%s\n", renderFig1(report).c_str());
    std::printf("%s\n", renderTableIV().c_str());
    std::printf("%s\n", renderTableIII(report).c_str());
    std::printf("%s\n", renderTableV(report).c_str());
    std::printf("%s\n", renderFig4(report).c_str());
    std::printf("%s\n", renderFig5And6(report).c_str());
    std::printf("%s\n", renderTableVI(report).c_str());
    std::printf("%s\n", renderFig7(report).c_str());
    return 0;
}

int
cmdRoi(const std::string &name, double fraction)
{
    if (requireUnit(name))
        return 1;
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p = session.profile(registry().unit(name));
    RoiOptions opts;
    opts.targetFraction = fraction;
    const auto window = RoiExtractor(opts).extract(p);
    std::printf("%s: simulate %.1f%%..%.1f%% of the run "
                "(representativeness error %.3f, %zu phases)\n",
                name.c_str(), 100.0 * window.startFraction,
                100.0 * window.endFraction,
                window.representativenessError,
                window.segments.size());
    return 0;
}

int
cmdEnergy(const std::string &name)
{
    if (requireUnit(name))
        return 1;
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);
    const auto result =
        sim.run(registry().unit(name).toTimedPhases());
    const auto e = model.energyOf(result);
    TextTable t({"Component", "Energy (J)", "Share"});
    t.setAlign(1, Align::Right);
    t.setAlign(2, Align::Right);
    const auto row = [&](const std::string &label, double j) {
        t.addRow({label, strformat("%.1f", j),
                  units::formatPercent(j / e.total())});
    };
    for (std::size_t c = 0; c < numClusters; ++c)
        row(clusterName(ClusterId(c)), e.cpuJ[c]);
    row("GPU", e.gpuJ);
    row("AIE", e.aieJ);
    row("DRAM", e.dramJ);
    row("Storage", e.storageJ);
    std::printf("%s: %.1f J total, %.2f W average\n%s", name.c_str(),
                e.total(),
                e.averagePowerW(result.totals.runtimeSeconds),
                t.render().c_str());
    return 0;
}

int
cmdLoad(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    const auto suites = loadSuites(in);
    const ProfilerSession session(SocConfig::snapdragon888());
    TextTable t({"Suite", "Benchmark", "Runtime", "IC", "IPC",
                 "CPU load", "GPU load", "AIE load"});
    for (const auto &suite : suites) {
        for (const auto &p : session.profileSuite(suite)) {
            t.addRow({p.suite, p.name,
                      units::formatSeconds(p.runtimeSeconds),
                      units::formatCount(p.instructions),
                      strformat("%.2f", p.ipc),
                      units::formatPercent(p.avgCpuLoad()),
                      units::formatPercent(p.avgGpuLoad()),
                      units::formatPercent(p.avgAieLoad())});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdCatalog(const std::string &category)
{
    const CounterCatalog catalog(SocConfig::snapdragon888());
    int printed = 0;
    for (const auto &c : catalog.counters()) {
        const std::string cat =
            counterCategoryName(c.category);
        if (!category.empty() && toLower(cat) != toLower(category))
            continue;
        std::printf("%-40s %-8s %s\n", c.name.c_str(), cat.c_str(),
                    c.unit.c_str());
        ++printed;
    }
    std::printf("%d counters\n", printed);
    return 0;
}

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    using namespace mbs;
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "profile" && argc >= 3)
            return cmdProfile(argv[2]);
        if (cmd == "counters" && argc >= 3) {
            std::vector<std::string> counters;
            for (int i = 3; i < argc; ++i)
                counters.emplace_back(argv[i]);
            return cmdCounters(argv[2], counters);
        }
        if (cmd == "pipeline")
            return cmdPipeline();
        if (cmd == "roi" && argc >= 3)
            return cmdRoi(argv[2], argc >= 4 ? std::stod(argv[3])
                                             : 0.10);
        if (cmd == "energy" && argc >= 3)
            return cmdEnergy(argv[2]);
        if (cmd == "catalog")
            return cmdCatalog(argc >= 3 ? argv[2] : "");
        if (cmd == "load" && argc >= 3)
            return cmdLoad(argv[2]);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
