/**
 * @file
 * The `mobilebench` command-line tool: the library's functionality
 * behind one binary for downstream users.
 *
 *   mobilebench list                       all suites and benchmarks
 *   mobilebench profile <benchmark|suite>  Fig.-1 metrics + strips
 *   mobilebench counters <benchmark> <c..> sample counters as CSV
 *   mobilebench pipeline                   every table and figure
 *   mobilebench roi <benchmark> [frac]     simulation-ROI selection
 *   mobilebench energy <benchmark>         energy/power breakdown
 *   mobilebench catalog [category]         list hardware counters
 *   mobilebench cache <stats|clear>        inspect the profile store
 *   mobilebench telemetry <dir>            summarize a telemetry dir
 *   mobilebench ingest <bundle>            analyze external traces
 *
 * `ingest` reads a trace bundle (manifest.json + traces/ CSVs, the
 * format `pipeline --telemetry-out` exports under trace-bundle/) and
 * either summarizes the ingested profiles or, with `--pipeline`, runs
 * the full characterization pipeline on them. `--lax` drops-and-counts
 * malformed rows and unknown columns instead of dying; `--tick <s>`
 * overrides the resampling interval.
 *
 * Observability flags (any command): `--trace <file>` writes a Chrome
 * trace-event JSON (open in Perfetto), `--metrics <file>` writes a
 * deterministic metrics snapshot, `--telemetry-out <dir>` writes the
 * full telemetry bundle (metrics.prom, metrics.json, timeseries.csv,
 * events.jsonl, trace.json), `--progress` reports per-benchmark
 * progress on stderr, `--log-timestamps` prefixes log lines with
 * elapsed time. `profile` and `pipeline` print a stage-timing summary
 * table after their output. On abnormal termination the telemetry
 * bundle is still flushed, with every file marked partial.
 *
 * Execution flags: `--jobs N` fans simulations (and the pipeline's
 * validation sweep) across N worker threads (0 = all cores) with
 * bit-identical output for every N; `--cache-dir DIR` memoizes
 * profiling results in a content-addressed on-disk store so warm
 * reruns skip simulation entirely.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "common/digest.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"
#include "roi/roi.hh"
#include "soc/energy.hh"
#include "store/profile_store.hh"
#include "workload/loader.hh"

namespace mbs {
namespace {

/** One line per subcommand; shared by --help and error paths. */
constexpr const char *commandList =
    "  list                        suites and benchmarks\n"
    "  profile <benchmark|suite>   metrics + sparklines\n"
    "  counters <benchmark> <c..>  counter CSV to stdout\n"
    "  pipeline                    full paper pipeline\n"
    "  ingest <bundle>             analyze an external trace bundle\n"
    "  roi <benchmark> [fraction]  simulation-ROI pick\n"
    "  energy <benchmark>          energy breakdown\n"
    "  catalog [category]          hardware counters\n"
    "  cache <stats|clear>         inspect or empty the\n"
    "                              profile store (needs --cache-dir)\n"
    "  load <file>                 profile suites from a\n"
    "                              workload definition file\n"
    "  telemetry <dir>             summarize a telemetry "
    "bundle written\n"
    "                              by --telemetry-out\n"
    "  help                        this message (also --help, -h)\n";

void
printUsage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: mobilebench <command> [args] [flags]\n"
                 "%s"
                 "flags (any command):\n"
                 "  --trace <file>       write a Chrome trace-event "
                 "JSON (Perfetto)\n"
                 "  --metrics <file>     write a deterministic metrics "
                 "snapshot (JSON)\n"
                 "  --telemetry-out <dir>  write metrics.prom, "
                 "metrics.json,\n"
                 "                       timeseries.csv, events.jsonl, "
                 "trace.json and\n"
                 "                       (pipeline) a re-ingestable "
                 "trace-bundle/\n"
                 "  --progress           per-benchmark progress on "
                 "stderr\n"
                 "  --log-timestamps     prefix log lines with elapsed "
                 "time\n"
                 "  --jobs <n>           simulation worker threads "
                 "(0 = all cores,\n"
                 "                       default 1; output is "
                 "identical for any n)\n"
                 "  --cache-dir <dir>    memoize profiling results in "
                 "an on-disk\n"
                 "                       content-addressed store\n"
                 "flags (ingest):\n"
                 "  --pipeline           run the full characterization "
                 "pipeline on\n"
                 "                       the ingested profiles\n"
                 "  --lax                drop-and-count malformed rows "
                 "and unknown\n"
                 "                       columns instead of dying\n"
                 "  --tick <seconds>     resampling interval (default: "
                 "the bundle's\n"
                 "                       own sample period)\n",
                 commandList);
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

int
unknownCommand(const std::string &cmd)
{
    std::fprintf(stderr, "unknown command '%s'; commands are:\n%s",
                 cmd.c_str(), commandList);
    return 2;
}

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

int
requireUnit(const std::string &name)
{
    if (registry().hasUnit(name))
        return 0;
    std::fprintf(stderr, "unknown benchmark '%s'; try: mobilebench "
                         "list\n",
                 name.c_str());
    return 1;
}

/**
 * Attach run metadata to the tracer so exported traces identify the
 * exact configuration that produced them.
 */
void
recordRunMetadata(const SocConfig &config, const ProfileOptions &opts)
{
    const std::string seed =
        strformat("%llu", (unsigned long long)opts.seed);
    const std::string tick = strformat("%g", opts.tickSeconds);
    const std::string runs = strformat("%d", opts.runs);
    const std::string digest =
        strformat("%016llx", (unsigned long long)config.digest());
    // The run id is a digest of the run configuration, so repeated
    // runs of the same configuration correlate across artifacts.
    Fnv1a runId;
    runId.mix(config.digest());
    runId.mix(opts.seed);
    runId.mix(opts.runs);
    runId.mix(opts.tickSeconds);
    const std::string run_id =
        strformat("%016llx", (unsigned long long)runId.value());

    auto &tracer = obs::Tracer::instance();
    tracer.metadata("seed", seed);
    tracer.metadata("tick_seconds", tick);
    tracer.metadata("runs_per_benchmark", runs);
    tracer.metadata("soc", config.name);
    tracer.metadata("soc_config_digest", digest);
    tracer.metadata("run_id", run_id);

    auto &log = obs::EventLog::instance();
    log.setCommonField("run_id", run_id);
    log.setCommonField("seed", seed);
    log.setCommonField("soc", config.name);
    log.setCommonField("soc_config_digest", digest);
}

/** Render the per-stage wall-time table from the recorded spans. */
void
printStageSummary()
{
    const auto summaries =
        obs::Tracer::instance().spanSummaries("stage");
    if (summaries.empty())
        return;
    double total = 0.0;
    for (const auto &s : summaries)
        total += s.totalSeconds;
    TextTable t({"Stage", "Calls", "Time", "Share"});
    t.setAlign(1, Align::Right);
    t.setAlign(2, Align::Right);
    t.setAlign(3, Align::Right);
    for (const auto &s : summaries) {
        t.addRow({s.name,
                  strformat("%llu", (unsigned long long)s.count),
                  s.totalSeconds >= 1.0
                      ? strformat("%.2f s", s.totalSeconds)
                      : strformat("%.1f ms", s.totalSeconds * 1e3),
                  total > 0.0
                      ? units::formatPercent(s.totalSeconds / total)
                      : "-"});
    }
    std::printf("\nStage timing\n%s", t.render().c_str());
}

/** Observability/execution flags, valid on every command. */
struct GlobalFlags
{
    std::string tracePath;
    std::string metricsPath;
    /** Telemetry bundle directory; empty disables the bundle. */
    std::string telemetryDir;
    bool progress = false;
    bool logTimestamps = false;
    /** Simulation worker threads; 0 = all cores, 1 = serial. */
    int jobs = 1;
    /** Profile-store directory; empty disables caching. */
    std::string cacheDir;
    /** `mobilebench --help` / `-h`. */
    bool help = false;
    /** ingest: run the full pipeline on the ingested profiles. */
    bool ingestPipeline = false;
    /** ingest: drop-and-count instead of die on malformed input. */
    bool lax = false;
    /** ingest: resampling tick override; 0 uses the bundle period. */
    double tick = 0.0;

    /** Apply the execution flags to a session's options. */
    ProfileOptions sessionOptions(ProfileCache *cache) const
    {
        ProfileOptions opts;
        opts.jobs = jobs;
        opts.cache = cache;
        return opts;
    }

    /** Open the profile store when --cache-dir was given. */
    std::unique_ptr<ProfileStore> openStore() const
    {
        return cacheDir.empty()
            ? nullptr : std::make_unique<ProfileStore>(cacheDir);
    }
};

int
cmdList()
{
    TextTable t({"Suite", "Benchmark", "Target", "Runtime",
                 "Individually executable"});
    for (const auto &suite : registry().suites()) {
        for (const auto &b : suite.benchmarks) {
            t.addRow({suite.name, b.name(),
                      hardwareTargetName(b.target()),
                      units::formatSeconds(b.totalDurationSeconds()),
                      b.individuallyExecutable() ? "yes"
                                                 : "no (whole suite)"});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

void
printUnitProfile(const BenchmarkProfile &p)
{
    std::printf("%s (%s)\n", p.name.c_str(), p.suite.c_str());
    TextTable t({"Metric", "Value"});
    t.setAlign(1, Align::Right);
    t.addRow({"runtime", units::formatSeconds(p.runtimeSeconds)});
    t.addRow({"instructions", units::formatCount(p.instructions)});
    t.addRow({"IPC", strformat("%.2f", p.ipc)});
    t.addRow({"cache MPKI", strformat("%.1f", p.cacheMpki)});
    t.addRow({"branch MPKI", strformat("%.2f", p.branchMpki)});
    t.addRow({"avg CPU load", units::formatPercent(p.avgCpuLoad())});
    t.addRow({"avg GPU load", units::formatPercent(p.avgGpuLoad())});
    t.addRow({"avg AIE load", units::formatPercent(p.avgAieLoad())});
    t.addRow({"avg app memory",
              units::formatPercent(p.avgUsedMemory())});
    std::printf("%s", t.render().c_str());
    const auto strip = [](const char *label, const TimeSeries &s) {
        std::printf("%-10s %s\n", label,
                    sparkline(s.values(), 60).c_str());
    };
    strip("cpu", p.series.cpuLoad);
    strip("gpu", p.series.gpuLoad);
    strip("aie", p.series.aieLoad);
    strip("memory", p.series.usedMemory);
}

int
cmdProfile(const std::string &name, const GlobalFlags &flags)
{
    const SocConfig config = SocConfig::snapdragon888();
    const auto store = flags.openStore();
    const ProfilerSession session(
        config, flags.sessionOptions(store.get()));
    recordRunMetadata(config, session.options());
    const obs::ScopedSpan stage("profile", "stage");

    // A suite name profiles every unit of the suite; a benchmark
    // name profiles just that unit.
    if (registry().hasSuite(name) && !registry().hasUnit(name)) {
        const Suite &suite = registry().suite(name);
        obs::Progress::instance().begin(
            suite.runsAsWhole ? 1 : suite.benchmarks.size(),
            "profiling " + suite.name);
        const auto profiles = session.profileSuite(suite);
        obs::Progress::instance().finish();
        TextTable t({"Benchmark", "Runtime", "IC", "IPC",
                     "Cache MPKI", "CPU load", "GPU load",
                     "AIE load"});
        for (const auto &p : profiles) {
            t.addRow({p.name,
                      units::formatSeconds(p.runtimeSeconds),
                      units::formatCount(p.instructions),
                      strformat("%.2f", p.ipc),
                      strformat("%.1f", p.cacheMpki),
                      units::formatPercent(p.avgCpuLoad()),
                      units::formatPercent(p.avgGpuLoad()),
                      units::formatPercent(p.avgAieLoad())});
        }
        std::printf("%s (%zu benchmarks)\n%s", suite.name.c_str(),
                    profiles.size(), t.render().c_str());
        return 0;
    }

    if (requireUnit(name))
        return 1;
    printUnitProfile(session.profile(registry().unit(name)));
    return 0;
}

int
cmdCounters(const std::string &name,
            const std::vector<std::string> &counters)
{
    if (requireUnit(name))
        return 1;
    if (counters.empty()) {
        std::fprintf(stderr, "no counters given; see: mobilebench "
                             "catalog\n");
        return 1;
    }
    const ProfilerSession session(SocConfig::snapdragon888());
    for (const auto &c : counters) {
        if (!session.catalog().has(c)) {
            std::fprintf(stderr, "unknown counter '%s'\n", c.c_str());
            return 1;
        }
    }
    const auto series =
        session.sampleCounters(registry().unit(name), counters);
    CsvWriter csv(std::cout);
    std::vector<std::string> header = {"time_s"};
    header.insert(header.end(), counters.begin(), counters.end());
    csv.writeRow(header);
    const std::size_t n = series.at(counters.front()).size();
    const double dt = series.at(counters.front()).interval();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row = {double(i) * dt};
        for (const auto &c : counters)
            row.push_back(series.at(c)[i]);
        csv.writeRow(row);
    }
    return 0;
}

/**
 * The report sections that depend only on the profiles (everything
 * except Table I, which describes the registry). Printed identically
 * by `pipeline` and `ingest --pipeline`, which is what the round-trip
 * golden check diffs.
 */
void
printReportSections(const CharacterizationReport &report)
{
    std::printf("%s\n", renderFig1(report).c_str());
    std::printf("%s\n", renderTableIV().c_str());
    std::printf("%s\n", renderTableIII(report).c_str());
    std::printf("%s\n", renderTableV(report).c_str());
    std::printf("%s\n", renderFig4(report).c_str());
    std::printf("%s\n", renderFig5And6(report).c_str());
    std::printf("%s\n", renderTableVI(report).c_str());
    std::printf("%s\n", renderFig7(report).c_str());
}

/**
 * Export the profiles as a re-ingestable trace bundle under
 * `<telemetry-dir>/trace-bundle`; `mobilebench ingest` on it
 * reproduces this run's report byte-for-byte.
 */
void
exportTraceBundle(const std::string &telemetryDir,
                  const SocConfig &config,
                  const PipelineOptions &options,
                  const std::vector<BenchmarkProfile> &profiles)
{
    ingest::TraceBundleWriter writer(config,
                                     options.profile.tickSeconds);
    for (const auto &p : profiles) {
        const Benchmark &unit = registry().unit(p.name);
        writer.add(p, unit.totalDurationSeconds(),
                   unit.individuallyExecutable());
    }
    writer.write(std::filesystem::path(telemetryDir) /
                 "trace-bundle");
}

int
cmdPipeline(const GlobalFlags &flags)
{
    const SocConfig config = SocConfig::snapdragon888();
    PipelineOptions options;
    options.profile.jobs = flags.jobs;
    options.cacheDir = flags.cacheDir;
    recordRunMetadata(config, options.profile);
    const CharacterizationPipeline pipeline(config, options);
    const auto report = pipeline.run(registry());
    if (!flags.telemetryDir.empty())
        exportTraceBundle(flags.telemetryDir, config, options,
                          report.profiles);
    std::printf("%s\n", renderTableI(registry()).c_str());
    printReportSections(report);
    return 0;
}

int
cmdIngest(const std::string &bundle, const GlobalFlags &flags)
{
    const auto store = flags.openStore();
    ingest::IngestOptions options;
    options.tickSeconds = flags.tick;
    options.lax = flags.lax;
    options.cache = store.get();
    const ingest::TraceBundleReader reader(options);
    const auto result = reader.read(bundle);

    if (flags.ingestPipeline) {
        // analyze() never touches the simulator, so the pipeline's
        // SoC configuration is irrelevant here; the profiles carry
        // the captured platform's behaviour.
        PipelineOptions pipelineOptions;
        pipelineOptions.profile.jobs = flags.jobs;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), pipelineOptions);
        std::vector<WorkloadInfo> workloads;
        workloads.reserve(result.manifest.benchmarks.size());
        for (const auto &b : result.manifest.benchmarks) {
            workloads.push_back(WorkloadInfo{
                b.plannedRuntimeSeconds, b.individuallyExecutable});
        }
        printReportSections(
            pipeline.analyze(result.profiles, workloads));
        return 0;
    }

    std::printf("%s: %zu benchmarks", bundle.c_str(),
                result.profiles.size());
    if (result.fromCache) {
        std::printf(" (cached)\n");
    } else {
        std::printf(", %llu rows (%llu dropped, %llu alias hits)\n",
                    (unsigned long long)result.stats.rows,
                    (unsigned long long)result.stats.droppedSamples,
                    (unsigned long long)result.stats.aliasHits);
    }
    if (!result.manifest.socName.empty()) {
        std::printf("captured on %s, sample period %gs, "
                    "resampled at %gs\n",
                    result.manifest.socName.c_str(),
                    result.manifest.samplePeriodSeconds,
                    result.tickSeconds);
    }
    const RoiExtractor roi;
    TextTable t({"Benchmark", "Suite", "Samples", "Runtime", "IPC",
                 "CPU load", "GPU load", "AIE load", "ROI"});
    t.setAlign(2, Align::Right);
    t.setAlign(3, Align::Right);
    t.setAlign(4, Align::Right);
    for (const auto &p : result.profiles) {
        const auto window = roi.extract(p);
        t.addRow({p.name, p.suite,
                  strformat("%zu", p.series.cpuLoad.size()),
                  units::formatSeconds(p.runtimeSeconds),
                  strformat("%.2f", p.ipc),
                  units::formatPercent(p.avgCpuLoad()),
                  units::formatPercent(p.avgGpuLoad()),
                  units::formatPercent(p.avgAieLoad()),
                  strformat("%.0f%%..%.0f%%",
                            100.0 * window.startFraction,
                            100.0 * window.endFraction)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdRoi(const std::string &name, double fraction)
{
    if (requireUnit(name))
        return 1;
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p = session.profile(registry().unit(name));
    RoiOptions opts;
    opts.targetFraction = fraction;
    const auto window = RoiExtractor(opts).extract(p);
    std::printf("%s: simulate %.1f%%..%.1f%% of the run "
                "(representativeness error %.3f, %zu phases)\n",
                name.c_str(), 100.0 * window.startFraction,
                100.0 * window.endFraction,
                window.representativenessError,
                window.segments.size());
    return 0;
}

int
cmdEnergy(const std::string &name)
{
    if (requireUnit(name))
        return 1;
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);
    const auto result =
        sim.run(registry().unit(name).toTimedPhases());
    const auto e = model.energyOf(result);
    TextTable t({"Component", "Energy (J)", "Share"});
    t.setAlign(1, Align::Right);
    t.setAlign(2, Align::Right);
    const auto row = [&](const std::string &label, double j) {
        t.addRow({label, strformat("%.1f", j),
                  units::formatPercent(j / e.total())});
    };
    for (std::size_t c = 0; c < numClusters; ++c)
        row(clusterName(ClusterId(c)), e.cpuJ[c]);
    row("GPU", e.gpuJ);
    row("AIE", e.aieJ);
    row("DRAM", e.dramJ);
    row("Storage", e.storageJ);
    std::printf("%s: %.1f J total, %.2f W average\n%s", name.c_str(),
                e.total(),
                e.averagePowerW(result.totals.runtimeSeconds),
                t.render().c_str());
    return 0;
}

int
cmdLoad(const std::string &path, const GlobalFlags &flags)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    const auto suites = loadSuites(in);
    const SocConfig config = SocConfig::snapdragon888();
    const auto store = flags.openStore();
    const ProfilerSession session(
        config, flags.sessionOptions(store.get()));
    recordRunMetadata(config, session.options());
    const obs::ScopedSpan stage("profile", "stage");
    TextTable t({"Suite", "Benchmark", "Runtime", "IC", "IPC",
                 "CPU load", "GPU load", "AIE load"});
    for (const auto &suite : suites) {
        for (const auto &p : session.profileSuite(suite)) {
            t.addRow({p.suite, p.name,
                      units::formatSeconds(p.runtimeSeconds),
                      units::formatCount(p.instructions),
                      strformat("%.2f", p.ipc),
                      units::formatPercent(p.avgCpuLoad()),
                      units::formatPercent(p.avgGpuLoad()),
                      units::formatPercent(p.avgAieLoad())});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdCache(const std::string &action, const GlobalFlags &flags)
{
    if (flags.cacheDir.empty()) {
        std::fprintf(stderr, "cache %s requires --cache-dir <dir>\n",
                     action.c_str());
        return 1;
    }
    ProfileStore store(flags.cacheDir);
    if (action == "stats") {
        const auto s = store.stats();
        std::printf("%s: %zu entries, %s\n",
                    store.directory().string().c_str(), s.entries,
                    units::formatBytes(s.bytes).c_str());
        return 0;
    }
    if (action == "clear") {
        const std::size_t removed = store.clear();
        std::printf("%s: removed %zu entries\n",
                    store.directory().string().c_str(), removed);
        return 0;
    }
    std::fprintf(stderr, "unknown cache action '%s'; use stats or "
                         "clear\n",
                 action.c_str());
    return 1;
}

/**
 * Summarize a telemetry bundle previously written by
 * `--telemetry-out`: instrument counts from metrics.prom, sample
 * counts per clock domain from timeseries.csv, and per-type event
 * counts from events.jsonl.
 */
int
cmdTelemetry(const std::string &dir)
{
    bool any = false;
    bool partial = false;
    TextTable t({"Artifact", "Contents"});
    std::string line;

    {
        std::ifstream in(dir + "/metrics.prom");
        if (in) {
            any = true;
            int counters = 0, gauges = 0, histograms = 0;
            while (std::getline(in, line)) {
                if (line.rfind("# PARTIAL:", 0) == 0)
                    partial = true;
                if (line.rfind("# TYPE ", 0) != 0)
                    continue;
                if (endsWith(line, " counter"))
                    ++counters;
                else if (endsWith(line, " gauge"))
                    ++gauges;
                else if (endsWith(line, " histogram"))
                    ++histograms;
            }
            t.addRow({"metrics.prom",
                      strformat("%d counters, %d gauges, %d histograms",
                                counters, gauges, histograms)});
        }
    }

    {
        std::ifstream in(dir + "/timeseries.csv");
        if (in) {
            any = true;
            std::size_t logical = 0, wall = 0;
            std::size_t logicalSamples = 0, wallSamples = 0;
            std::string lastLogical, lastWall;
            while (std::getline(in, line)) {
                if (line.rfind("# partial:", 0) == 0)
                    partial = true;
                if (line.rfind("logical,", 0) == 0) {
                    ++logical;
                    const std::string sample =
                        line.substr(0, line.find(',', 8));
                    if (sample != lastLogical)
                        ++logicalSamples;
                    lastLogical = sample;
                } else if (line.rfind("wall,", 0) == 0) {
                    ++wall;
                    const std::string sample =
                        line.substr(0, line.find(',', 5));
                    if (sample != lastWall)
                        ++wallSamples;
                    lastWall = sample;
                }
            }
            t.addRow({"timeseries.csv",
                      strformat("%zu logical samples (%zu rows), "
                                "%zu wall samples (%zu rows)",
                                logicalSamples, logical, wallSamples,
                                wall)});
        }
    }

    {
        std::ifstream in(dir + "/events.jsonl");
        if (in) {
            any = true;
            std::size_t total = 0;
            std::map<std::string, std::size_t> byType;
            while (std::getline(in, line)) {
                static const std::string key = "\"type\": \"";
                const std::size_t at = line.find(key);
                if (at == std::string::npos)
                    continue;
                const std::size_t begin = at + key.size();
                const std::size_t end = line.find('"', begin);
                if (end == std::string::npos)
                    continue;
                const std::string type =
                    line.substr(begin, end - begin);
                if (type == "log.partial")
                    partial = true;
                ++total;
                ++byType[type];
            }
            t.addRow({"events.jsonl",
                      strformat("%zu events, %zu types", total,
                                byType.size())});
            for (const auto &[type, n] : byType)
                t.addRow({"  " + type, strformat("%zu", n)});
        }
    }

    if (!any) {
        std::fprintf(stderr, "no telemetry artifacts under '%s'; "
                             "produce them with --telemetry-out\n",
                     dir.c_str());
        return 1;
    }
    std::printf("%s%s", t.render().c_str(),
                partial ? "warning: bundle is marked PARTIAL (flushed "
                          "on abnormal exit)\n"
                        : "");
    return 0;
}

int
cmdCatalog(const std::string &category)
{
    const CounterCatalog catalog(SocConfig::snapdragon888());
    int printed = 0;
    for (const auto &c : catalog.counters()) {
        const std::string cat =
            counterCategoryName(c.category);
        if (!category.empty() && toLower(cat) != toLower(category))
            continue;
        std::printf("%-40s %-8s %s\n", c.name.c_str(), cat.c_str(),
                    c.unit.c_str());
        ++printed;
    }
    std::printf("%d counters\n", printed);
    return 0;
}

/**
 * Strip `--` flags out of the raw argument list. Positional
 * arguments are returned in order; an unknown flag is a fatal()
 * (non-zero exit) rather than a silently ignored argument.
 */
std::vector<std::string>
parseFlags(int argc, char **argv, GlobalFlags &flags)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        const auto valueOf = [&](const char *flag) {
            fatalIf(i + 1 >= argc,
                    std::string(flag) + " requires a file argument");
            return std::string(argv[++i]);
        };
        if (arg == "--trace")
            flags.tracePath = valueOf("--trace");
        else if (arg == "--metrics")
            flags.metricsPath = valueOf("--metrics");
        else if (arg == "--telemetry-out")
            flags.telemetryDir = valueOf("--telemetry-out");
        else if (arg == "--progress")
            flags.progress = true;
        else if (arg == "--log-timestamps")
            flags.logTimestamps = true;
        else if (arg == "--jobs") {
            const std::string v = valueOf("--jobs");
            try {
                flags.jobs = std::stoi(v);
            } catch (const std::exception &) {
                fatal("--jobs requires an integer, got '" + v + "'");
            }
            fatalIf(flags.jobs < 0,
                    "--jobs must be >= 0 (0 = all cores)");
        } else if (arg == "--cache-dir")
            flags.cacheDir = valueOf("--cache-dir");
        else if (arg == "--help")
            flags.help = true;
        else if (arg == "--pipeline")
            flags.ingestPipeline = true;
        else if (arg == "--lax")
            flags.lax = true;
        else if (arg == "--tick") {
            const std::string v = valueOf("--tick");
            try {
                flags.tick = std::stod(v);
            } catch (const std::exception &) {
                fatal("--tick requires a number of seconds, got '" +
                      v + "'");
            }
            fatalIf(flags.tick <= 0.0, "--tick must be > 0");
        } else
            fatal("unknown flag '" + arg +
                  "'; see: mobilebench --help for usage");
    }
    return positional;
}

int
dispatch(const std::vector<std::string> &args,
         const GlobalFlags &flags)
{
    const std::string &cmd = args[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "profile" && args.size() >= 2)
        return cmdProfile(args[1], flags);
    if (cmd == "counters" && args.size() >= 2) {
        const std::vector<std::string> counters(args.begin() + 2,
                                                args.end());
        return cmdCounters(args[1], counters);
    }
    if (cmd == "pipeline")
        return cmdPipeline(flags);
    if (cmd == "roi" && args.size() >= 2)
        return cmdRoi(args[1], args.size() >= 3 ? std::stod(args[2])
                                                : 0.10);
    if (cmd == "energy" && args.size() >= 2)
        return cmdEnergy(args[1]);
    if (cmd == "catalog")
        return cmdCatalog(args.size() >= 2 ? args[1] : "");
    if (cmd == "load" && args.size() >= 2)
        return cmdLoad(args[1], flags);
    if (cmd == "cache" && args.size() >= 2)
        return cmdCache(args[1], flags);
    if (cmd == "telemetry" && args.size() >= 2)
        return cmdTelemetry(args[1]);
    if (cmd == "ingest" && args.size() >= 2)
        return cmdIngest(args[1], flags);
    // A known command with missing arguments is a usage error; an
    // unrecognized word gets the command list.
    static const char *known[] = {"list", "profile", "counters",
                                  "pipeline", "roi", "energy",
                                  "catalog", "load", "cache",
                                  "telemetry", "ingest"};
    for (const char *k : known) {
        if (cmd == k)
            return usage();
    }
    return unknownCommand(cmd);
}

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    using namespace mbs;
    try {
        GlobalFlags flags;
        const auto args = parseFlags(argc, argv, flags);
        if (flags.help ||
            (!args.empty() &&
             (args[0] == "help" || args[0] == "-h"))) {
            printUsage(stdout);
            return 0;
        }
        if (args.empty())
            return usage();

        obs::Progress::instance().setEnabled(flags.progress);
        setLogTimestamps(flags.logTimestamps);
        // Record spans for every command; the buffer is tiny and it
        // feeds the stage-timing summary even without --trace.
        obs::Tracer::instance().setEnabled(true);

        // Telemetry is configured before dispatch so a crash mid-run
        // still flushes a (partial) bundle from the terminate hook.
        obs::TelemetryConfig telemetry;
        telemetry.tracePath = flags.tracePath;
        telemetry.metricsPath = flags.metricsPath;
        telemetry.telemetryDir = flags.telemetryDir;
        auto &sink = obs::TelemetrySink::instance();
        sink.configure(telemetry);
        if (telemetry.anyConfigured())
            sink.installAbnormalExitFlush();

        const int rc = dispatch(args, flags);
        if (rc != 0) {
            sink.flush(strformat("command exited with status %d", rc));
            return rc;
        }

        if (args[0] == "profile" || args[0] == "pipeline" ||
            args[0] == "load") {
            printStageSummary();
        }
        sink.flush();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        try {
            obs::TelemetrySink::instance().flush(
                std::string("error: ") + e.what());
        } catch (...) {
            // Flushing is best effort on the failure path; the
            // original error is what the user must see.
        }
        return 1;
    }
}
