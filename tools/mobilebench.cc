/**
 * @file
 * The `mobilebench` command-line tool: the library's functionality
 * behind one binary for downstream users.
 *
 *   mobilebench list                       all suites and benchmarks
 *   mobilebench profile <benchmark|suite>  Fig.-1 metrics + strips
 *   mobilebench counters <benchmark> <c..> sample counters as CSV
 *   mobilebench pipeline                   every table and figure
 *   mobilebench roi <benchmark> [frac]     simulation-ROI selection
 *   mobilebench energy <benchmark>         energy/power breakdown
 *   mobilebench catalog [category]         list hardware counters
 *   mobilebench cache <stats|clear>        inspect the profile store
 *   mobilebench telemetry <dir>            summarize a telemetry dir
 *   mobilebench ingest <bundle>            analyze external traces
 *
 * `ingest` reads a trace bundle (manifest.json + traces/ CSVs, the
 * format `pipeline --telemetry-out` exports under trace-bundle/) and
 * either summarizes the ingested profiles or, with `--pipeline`, runs
 * the full characterization pipeline on them. `--lax` drops-and-counts
 * malformed rows and unknown columns instead of dying; `--tick <s>`
 * overrides the resampling interval.
 *
 * Observability flags (any command): `--trace <file>` writes a Chrome
 * trace-event JSON (open in Perfetto), `--metrics <file>` writes a
 * deterministic metrics snapshot, `--telemetry-out <dir>` writes the
 * full telemetry bundle (metrics.prom, metrics.json, timeseries.csv,
 * events.jsonl, trace.json), `--progress` reports per-benchmark
 * progress on stderr, `--log-timestamps` prefixes log lines with
 * elapsed time. `profile` and `pipeline` print a stage-timing summary
 * table after their output. On abnormal termination the telemetry
 * bundle is still flushed, with every file marked partial.
 *
 * Execution flags: `--jobs N` fans simulations (and the pipeline's
 * validation sweep) across N worker threads (0 = all cores) with
 * bit-identical output for every N; `--cache-dir DIR` memoizes
 * profiling results in a content-addressed on-disk store so warm
 * reruns skip simulation entirely.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "common/digest.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "obs/events.hh"
#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/selfprof.hh"
#include "obs/signals.hh"
#include "obs/telemetry.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "serve/client.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/stitch.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"
#include "report/capture.hh"
#include "report/compare.hh"
#include "report/ledger.hh"
#include "report/summary.hh"
#include "roi/roi.hh"
#include "soc/energy.hh"
#include "spec/spec.hh"
#include "store/profile_store.hh"
#include "workload/loader.hh"

namespace mbs {
namespace {

/** One line per subcommand; shared by --help and error paths. */
constexpr const char *commandList =
    "  list                        suites and benchmarks\n"
    "  profile <benchmark|suite>   metrics + sparklines\n"
    "  counters <benchmark> <c..>  counter CSV to stdout\n"
    "  pipeline                    full paper pipeline\n"
    "  run --spec <file>           full pipeline on a JSON workload\n"
    "                              spec instead of the built-in "
    "registry\n"
    "  spec validate <file|->      compile a spec and print its "
    "digest\n"
    "                              ('-' reads stdin); exit 1 with a\n"
    "                              positioned diagnostic on any "
    "defect\n"
    "  spec export                 print the built-in registry as a "
    "spec\n"
    "                              document (recompiles "
    "digest-identical)\n"
    "  ingest <bundle>             analyze an external trace bundle\n"
    "  roi <benchmark> [fraction]  simulation-ROI pick\n"
    "  energy <benchmark>          energy breakdown\n"
    "  catalog [category]          hardware counters\n"
    "  cache <stats|clear>         inspect or empty the\n"
    "                              profile store (needs --cache-dir)\n"
    "  load <file>                 profile suites from a\n"
    "                              workload definition file\n"
    "  telemetry <dir>             summarize a telemetry "
    "bundle written\n"
    "                              by --telemetry-out\n"
    "  report                      summarize the run ledger: "
    "last-N\n"
    "                              table, metric sparklines, top "
    "deltas\n"
    "  compare <a> <b>             diff two ledger records "
    "(selectors:\n"
    "                              last, last~N, seq, run-id "
    "prefix,\n"
    "                              path); exit 1 on regression\n"
    "  chaos                       run the pipeline repeatedly "
    "under\n"
    "                              rotating fault seeds and check "
    "the\n"
    "                              report stays byte-identical\n"
    "  serve --listen <port>       multi-tenant characterization "
    "daemon\n"
    "                              (length-prefixed JSON frames "
    "over TCP)\n"
    "  submit [bundle]             run one job on a daemon "
    "(--port);\n"
    "                              no bundle = pipeline, bundle "
    "dir =\n"
    "                              ingest upload\n"
    "  loadgen                     drive a daemon with N clients x "
    "M jobs\n"
    "                              and report latency p50/p95/p99\n"
    "  stats                       scrape a daemon's live metrics "
    "(--port;\n"
    "                              Prometheus text; --watch streams "
    "ticks)\n"
    "  version                     build stamp (also --version)\n"
    "  help                        this message (also --help, -h)\n";

void
printUsage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: mobilebench <command> [args] [flags]\n"
                 "%s"
                 "flags (any command):\n"
                 "  --trace <file>       write a Chrome trace-event "
                 "JSON (Perfetto)\n"
                 "  --metrics <file>     write a deterministic metrics "
                 "snapshot (JSON)\n"
                 "  --telemetry-out <dir>  write metrics.prom, "
                 "metrics.json,\n"
                 "                       timeseries.csv, events.jsonl, "
                 "trace.json and\n"
                 "                       (pipeline) a re-ingestable "
                 "trace-bundle/\n"
                 "  --progress           per-benchmark progress on "
                 "stderr\n"
                 "  --log-timestamps     prefix log lines with elapsed "
                 "time\n"
                 "  --jobs <n>           simulation worker threads "
                 "(0 = all cores,\n"
                 "                       default 1; output is "
                 "identical for any n)\n"
                 "  --cache-dir <dir>    memoize profiling results in "
                 "an on-disk\n"
                 "                       content-addressed store\n"
                 "  --ledger <dir>       run-ledger directory "
                 "(default\n"
                 "                       .mobilebench/ledger; "
                 "pipeline, ingest and\n"
                 "                       chaos append a record per "
                 "run)\n"
                 "  --no-ledger          do not append a ledger "
                 "record\n"
                 "  --self-profile[=hz]  arm the in-process sampling "
                 "profiler\n"
                 "                       (default 199 Hz); writes "
                 "profile.collapsed\n"
                 "                       and profile.txt into the "
                 "telemetry bundle\n"
                 "flags (report / compare):\n"
                 "  --last <n>           report: records to "
                 "summarize (default 10)\n"
                 "  --threshold <frac>   compare: regression "
                 "threshold (default 0.25)\n"
                 "  --json               compare: print the "
                 "machine-readable verdict\n"
                 "flags (ingest):\n"
                 "  --pipeline           run the full characterization "
                 "pipeline on\n"
                 "                       the ingested profiles\n"
                 "  --lax                drop-and-count malformed rows "
                 "and unknown\n"
                 "                       columns instead of dying; "
                 "salvage bundles\n"
                 "                       by dropping benchmarks whose "
                 "trace is broken\n"
                 "  --tick <seconds>     resampling interval (default: "
                 "the bundle's\n"
                 "                       own sample period)\n"
                 "flags (run / chaos / submit):\n"
                 "  --spec <file>        workload spec to execute: "
                 "run executes\n"
                 "                       it locally, chaos perturbs "
                 "it under\n"
                 "                       faults, submit ships the "
                 "body to a daemon\n"
                 "flags (serve / submit / loadgen):\n"
                 "  --listen <port>      serve: listen on "
                 "127.0.0.1:<port> (0 =\n"
                 "                       ephemeral; the chosen port "
                 "is announced)\n"
                 "  --queue-capacity <n> serve: max queued jobs "
                 "across tenants\n"
                 "                       (default 32)\n"
                 "  --serve-dir <dir>    serve: per-job artifact "
                 "root (default\n"
                 "                       .mobilebench/serve)\n"
                 "  --port <port>        submit/loadgen: daemon "
                 "port\n"
                 "  --tenant <name>      submit: tenant for fair "
                 "admission\n"
                 "  --clients <n>        loadgen: concurrent "
                 "connections\n"
                 "                       (default 4; --jobs is "
                 "jobs per client,\n"
                 "                       default 8)\n"
                 "  --job-type <t>       loadgen job: noop "
                 "(default), pipeline\n"
                 "  --latency-out <file> loadgen: write the "
                 "latency summary JSON\n"
                 "  --ping               submit: health check only "
                 "(pong health\n"
                 "                       on stdout; exit 1 when "
                 "unreachable)\n"
                 "  --stitch-trace <f>   submit: merge the client "
                 "and daemon\n"
                 "                       traces of this job into "
                 "one Chrome\n"
                 "                       trace file (loopback "
                 "daemons)\n"
                 "  --watch              stats: stream periodic "
                 "scrapes\n"
                 "  --interval <s>       stats --watch: seconds "
                 "between ticks\n"
                 "                       (default 2)\n"
                 "  --count <n>          stats --watch: stop after "
                 "n ticks\n"
                 "                       (default 0 = until the "
                 "daemon stops)\n"
                 "  --stable-only        stats: deterministic "
                 "stable-class\n"
                 "                       series only (no uptime / "
                 "latency)\n"
                 "fault injection (any command; chaos):\n"
                 "  --fault-spec <s>     explicit plan, e.g. "
                 "store.read:eio@3,\n"
                 "                       ingest.csv:truncate@0.01 "
                 "(sites: store.read,\n"
                 "                       store.write, store.rename, "
                 "ingest.manifest,\n"
                 "                       ingest.csv, exec.task, "
                 "telemetry.write)\n"
                 "  --fault-rate <p>     uniform plan: every site "
                 "faults with\n"
                 "                       probability p per operation\n"
                 "  --fault-seed <n>     plan seed (chaos rotates "
                 "seed+1..seed+N)\n"
                 "  --iterations <n>     chaos: fault-injected runs "
                 "to compare\n"
                 "                       against the fault-free "
                 "baseline (default 10)\n",
                 commandList);
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

int
unknownCommand(const std::string &cmd)
{
    std::fprintf(stderr, "unknown command '%s'; commands are:\n%s",
                 cmd.c_str(), commandList);
    return 2;
}

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

int
requireUnit(const std::string &name)
{
    if (registry().hasUnit(name))
        return 0;
    std::fprintf(stderr, "unknown benchmark '%s'; try: mobilebench "
                         "list\n",
                 name.c_str());
    return 1;
}

/**
 * Identity of the current run, filled alongside the tracer metadata
 * and consumed by the ledger append in main(). Commands that never
 * call recordRunMetadata leave it empty and append no record.
 */
report::CaptureContext captureContext;

/** Digest over every registry suite (content identity of the set). */
std::uint64_t
registrySuiteDigest()
{
    Fnv1a h;
    for (const auto &suite : registry().suites())
        h.mix(suite.digest());
    return h.value();
}

/**
 * Attach run metadata to the tracer so exported traces identify the
 * exact configuration that produced them.
 */
void
recordRunMetadata(const SocConfig &config, const ProfileOptions &opts)
{
    const std::string seed =
        strformat("%llu", (unsigned long long)opts.seed);
    const std::string tick = strformat("%g", opts.tickSeconds);
    const std::string runs = strformat("%d", opts.runs);
    const std::string digest =
        strformat("%016llx", (unsigned long long)config.digest());
    // The run id is a digest of the run configuration, so repeated
    // runs of the same configuration correlate across artifacts.
    // report::runIdFor is shared with the serve daemon: identical
    // ids are what make their ledger records byte-comparable.
    const std::string run_id = report::runIdFor(
        config.digest(), opts.seed, opts.runs, opts.tickSeconds);

    auto &tracer = obs::Tracer::instance();
    tracer.metadata("seed", seed);
    tracer.metadata("tick_seconds", tick);
    tracer.metadata("runs_per_benchmark", runs);
    tracer.metadata("soc", config.name);
    tracer.metadata("soc_config_digest", digest);
    tracer.metadata("run_id", run_id);

    auto &log = obs::EventLog::instance();
    log.setCommonField("run_id", run_id);
    log.setCommonField("seed", seed);
    log.setCommonField("soc", config.name);
    log.setCommonField("soc_config_digest", digest);

    captureContext.runId = run_id;
    captureContext.socName = config.name;
    captureContext.socConfigDigest = config.digest();
    captureContext.suiteDigest = registrySuiteDigest();
    captureContext.seed = opts.seed;
    captureContext.runs = opts.runs;
    captureContext.tickSeconds = opts.tickSeconds;
}

/**
 * recordRunMetadata for a spec-driven run: the run id and suite
 * digest derive from the compiled spec, so an edited spec file gets
 * a fresh ledger identity. report::specRunIdFor is shared with the
 * serve daemon's spec jobs, keeping the two byte-comparable.
 */
void
recordSpecRunMetadata(const SocConfig &config,
                      const ProfileOptions &opts,
                      const spec::WorkloadSpec &workloadSpec)
{
    const std::string seed =
        strformat("%llu", (unsigned long long)opts.seed);
    const std::string tick = strformat("%g", opts.tickSeconds);
    const std::string runs = strformat("%d", opts.runs);
    const std::string digest =
        strformat("%016llx", (unsigned long long)config.digest());
    const std::string run_id = report::specRunIdFor(
        config.digest(), workloadSpec.digest, opts.seed, opts.runs,
        opts.tickSeconds);

    auto &tracer = obs::Tracer::instance();
    tracer.metadata("seed", seed);
    tracer.metadata("tick_seconds", tick);
    tracer.metadata("runs_per_benchmark", runs);
    tracer.metadata("soc", config.name);
    tracer.metadata("soc_config_digest", digest);
    tracer.metadata("run_id", run_id);
    tracer.metadata("spec", workloadSpec.source);
    tracer.metadata(
        "spec_digest",
        strformat("%016llx",
                  (unsigned long long)workloadSpec.digest));

    auto &log = obs::EventLog::instance();
    log.setCommonField("run_id", run_id);
    log.setCommonField("seed", seed);
    log.setCommonField("soc", config.name);
    log.setCommonField("soc_config_digest", digest);

    captureContext.runId = run_id;
    captureContext.socName = config.name;
    captureContext.socConfigDigest = config.digest();
    captureContext.suiteDigest = workloadSpec.digest;
    captureContext.seed = opts.seed;
    captureContext.runs = opts.runs;
    captureContext.tickSeconds = opts.tickSeconds;
}

/** "1.23 s" / "4.5 ms" for a stage duration. */
std::string
formatStageSeconds(double seconds)
{
    return seconds >= 1.0 ? strformat("%.2f s", seconds)
                          : strformat("%.1f ms", seconds * 1e3);
}

/**
 * P50/P95/P99 of one stage's call durations via the registry's
 * cumulative-bucket interpolation. The bucket bounds are the
 * stage's own sorted durations, so the interpolation is exact at
 * every observed rank.
 */
std::array<double, 3>
stagePercentiles(const std::vector<double> &durations)
{
    std::vector<double> bounds = durations;
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());
    obs::Histogram hist(std::move(bounds));
    for (const double d : durations)
        hist.observe(d);
    return {hist.percentile(0.50), hist.percentile(0.95),
            hist.percentile(0.99)};
}

/** Render the per-stage wall-time table from the recorded spans. */
void
printStageSummary()
{
    const auto summaries =
        obs::Tracer::instance().spanSummaries("stage");
    if (summaries.empty())
        return;
    const auto durations =
        obs::Tracer::instance().spanDurations("stage");
    double total = 0.0;
    for (const auto &s : summaries)
        total += s.totalSeconds;
    TextTable t({"Stage", "Calls", "Time", "P50", "P95", "P99",
                 "Share"});
    for (std::size_t c = 1; c <= 6; ++c)
        t.setAlign(c, Align::Right);
    for (const auto &s : summaries) {
        const auto it = durations.find(s.name);
        std::array<double, 3> p{0.0, 0.0, 0.0};
        if (it != durations.end() && !it->second.empty())
            p = stagePercentiles(it->second);
        t.addRow({s.name,
                  strformat("%llu", (unsigned long long)s.count),
                  formatStageSeconds(s.totalSeconds),
                  formatStageSeconds(p[0]),
                  formatStageSeconds(p[1]),
                  formatStageSeconds(p[2]),
                  total > 0.0
                      ? units::formatPercent(s.totalSeconds / total)
                      : "-"});
    }
    std::printf("\nStage timing\n%s", t.render().c_str());
}

/** Observability/execution flags, valid on every command. */
struct GlobalFlags
{
    std::string tracePath;
    std::string metricsPath;
    /** Telemetry bundle directory; empty disables the bundle. */
    std::string telemetryDir;
    bool progress = false;
    bool logTimestamps = false;
    /** Simulation worker threads; 0 = all cores, 1 = serial. */
    int jobs = 1;
    /** Profile-store directory; empty disables caching. */
    std::string cacheDir;
    /** `mobilebench --help` / `-h`. */
    bool help = false;
    /** ingest: run the full pipeline on the ingested profiles. */
    bool ingestPipeline = false;
    /** ingest: drop-and-count instead of die on malformed input. */
    bool lax = false;
    /** ingest: resampling tick override; 0 uses the bundle period. */
    double tick = 0.0;
    /** run/chaos/submit: workload-spec file; empty = built-in. */
    std::string spec;
    /** Explicit fault plan (site:kind@trigger,...); empty = none. */
    std::string faultSpec;
    /** Uniform per-site fault probability; 0 = not requested. */
    double faultRate = 0.0;
    /** Fault-plan seed (chaos rotates seed+1 .. seed+N). */
    std::uint64_t faultSeed = 1;
    /** chaos: fault-injected runs to compare to the baseline. */
    int iterations = 10;
    /** Run-ledger directory; pipeline/ingest/chaos append records. */
    std::string ledgerDir = ".mobilebench/ledger";
    /** `--no-ledger`: skip the ledger append entirely. */
    bool noLedger = false;
    /** Self-profiler sampling rate in Hz; 0 = disarmed. */
    double selfProfileHz = 0.0;
    /** report: records to summarize. */
    std::size_t last = 10;
    /** compare: regression threshold (perf_compare's contract). */
    double threshold = 0.25;
    /** compare: print the machine-readable JSON verdict. */
    bool json = false;
    /** `--version` / `version`: print the build stamp and exit. */
    bool version = false;
    /** serve: listen port (0 = kernel-chosen ephemeral). */
    std::uint16_t listenPort = 0;
    /** serve: set once --listen was given (port 0 is valid). */
    bool listenSet = false;
    /** serve: bound on queued jobs across all tenants. */
    std::size_t queueCapacity = 32;
    /** serve: root for per-job artifact directories. */
    std::string serveDir = ".mobilebench/serve";
    /** submit/loadgen: daemon port to connect to. */
    std::uint16_t port = 0;
    /** submit: tenant name for fair admission. */
    std::string tenant = "default";
    /** loadgen: concurrent client connections. */
    int clients = 4;
    /** Set when --jobs was given explicitly (loadgen reuses the
     *  flag as jobs-per-client with a different default). */
    bool jobsSet = false;
    /** loadgen: job type every client submits. */
    std::string jobType = "noop";
    /** loadgen: latency summary JSON output path; empty = none. */
    std::string latencyOut;
    /** submit: health-check only (ping/pong round trip). */
    bool ping = false;
    /** submit: stitched client+daemon trace output; empty = none. */
    std::string stitchTrace;
    /** stats: stream periodic scrapes instead of a one-shot. */
    bool watch = false;
    /** stats --watch: seconds between ticks. */
    double interval = 2.0;
    /** stats --watch: ticks to stream; 0 = until the daemon stops. */
    std::uint64_t count = 0;
    /** stats: stable-class series only (deterministic scrape). */
    bool stableOnly = false;

    /** Apply the execution flags to a session's options. */
    ProfileOptions sessionOptions(ProfileCache *cache) const
    {
        ProfileOptions opts;
        opts.jobs = jobs;
        opts.cache = cache;
        return opts;
    }

    /** Open the profile store when --cache-dir was given. */
    std::unique_ptr<ProfileStore> openStore() const
    {
        return cacheDir.empty()
            ? nullptr : std::make_unique<ProfileStore>(cacheDir);
    }
};

int
cmdList()
{
    TextTable t({"Suite", "Benchmark", "Target", "Runtime",
                 "Individually executable"});
    for (const auto &suite : registry().suites()) {
        for (const auto &b : suite.benchmarks) {
            t.addRow({suite.name, b.name(),
                      hardwareTargetName(b.target()),
                      units::formatSeconds(b.totalDurationSeconds()),
                      b.individuallyExecutable() ? "yes"
                                                 : "no (whole suite)"});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

void
printUnitProfile(const BenchmarkProfile &p)
{
    std::printf("%s (%s)\n", p.name.c_str(), p.suite.c_str());
    TextTable t({"Metric", "Value"});
    t.setAlign(1, Align::Right);
    t.addRow({"runtime", units::formatSeconds(p.runtimeSeconds)});
    t.addRow({"instructions", units::formatCount(p.instructions)});
    t.addRow({"IPC", strformat("%.2f", p.ipc)});
    t.addRow({"cache MPKI", strformat("%.1f", p.cacheMpki)});
    t.addRow({"branch MPKI", strformat("%.2f", p.branchMpki)});
    t.addRow({"avg CPU load", units::formatPercent(p.avgCpuLoad())});
    t.addRow({"avg GPU load", units::formatPercent(p.avgGpuLoad())});
    t.addRow({"avg AIE load", units::formatPercent(p.avgAieLoad())});
    t.addRow({"avg app memory",
              units::formatPercent(p.avgUsedMemory())});
    std::printf("%s", t.render().c_str());
    const auto strip = [](const char *label, const TimeSeries &s) {
        std::printf("%-10s %s\n", label,
                    sparkline(s.values(), 60).c_str());
    };
    strip("cpu", p.series.cpuLoad);
    strip("gpu", p.series.gpuLoad);
    strip("aie", p.series.aieLoad);
    strip("memory", p.series.usedMemory);
}

int
cmdProfile(const std::string &name, const GlobalFlags &flags)
{
    const SocConfig config = SocConfig::snapdragon888();
    const auto store = flags.openStore();
    const ProfilerSession session(
        config, flags.sessionOptions(store.get()));
    recordRunMetadata(config, session.options());
    const obs::ScopedSpan stage("profile", "stage");

    // A suite name profiles every unit of the suite; a benchmark
    // name profiles just that unit.
    if (registry().hasSuite(name) && !registry().hasUnit(name)) {
        const Suite &suite = registry().suite(name);
        obs::Progress::instance().begin(
            suite.runsAsWhole ? 1 : suite.benchmarks.size(),
            "profiling " + suite.name);
        const auto profiles = session.profileSuite(suite);
        obs::Progress::instance().finish();
        TextTable t({"Benchmark", "Runtime", "IC", "IPC",
                     "Cache MPKI", "CPU load", "GPU load",
                     "AIE load"});
        for (const auto &p : profiles) {
            t.addRow({p.name,
                      units::formatSeconds(p.runtimeSeconds),
                      units::formatCount(p.instructions),
                      strformat("%.2f", p.ipc),
                      strformat("%.1f", p.cacheMpki),
                      units::formatPercent(p.avgCpuLoad()),
                      units::formatPercent(p.avgGpuLoad()),
                      units::formatPercent(p.avgAieLoad())});
        }
        std::printf("%s (%zu benchmarks)\n%s", suite.name.c_str(),
                    profiles.size(), t.render().c_str());
        return 0;
    }

    if (requireUnit(name))
        return 1;
    printUnitProfile(session.profile(registry().unit(name)));
    return 0;
}

int
cmdCounters(const std::string &name,
            const std::vector<std::string> &counters)
{
    if (requireUnit(name))
        return 1;
    if (counters.empty()) {
        std::fprintf(stderr, "no counters given; see: mobilebench "
                             "catalog\n");
        return 1;
    }
    const ProfilerSession session(SocConfig::snapdragon888());
    for (const auto &c : counters) {
        if (!session.catalog().has(c)) {
            std::fprintf(stderr, "unknown counter '%s'\n", c.c_str());
            return 1;
        }
    }
    const auto series =
        session.sampleCounters(registry().unit(name), counters);
    CsvWriter csv(std::cout);
    std::vector<std::string> header = {"time_s"};
    header.insert(header.end(), counters.begin(), counters.end());
    csv.writeRow(header);
    const std::size_t n = series.at(counters.front()).size();
    const double dt = series.at(counters.front()).interval();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row = {double(i) * dt};
        for (const auto &c : counters)
            row.push_back(series.at(c)[i]);
        csv.writeRow(row);
    }
    return 0;
}

void
printReportSections(const CharacterizationReport &report)
{
    std::printf("%s", renderReportSections(report).c_str());
}

/**
 * Export the profiles as a re-ingestable trace bundle under
 * `<telemetry-dir>/trace-bundle`; `mobilebench ingest` on it
 * reproduces this run's report byte-for-byte.
 */
void
exportTraceBundle(const std::string &telemetryDir,
                  const SocConfig &config,
                  const PipelineOptions &options,
                  const std::vector<BenchmarkProfile> &profiles)
{
    ingest::TraceBundleWriter writer(config,
                                     options.profile.tickSeconds);
    for (const auto &p : profiles) {
        const Benchmark &unit = registry().unit(p.name);
        writer.add(p, unit.totalDurationSeconds(),
                   unit.individuallyExecutable());
    }
    writer.write(std::filesystem::path(telemetryDir) /
                 "trace-bundle");
}

int
cmdPipeline(const GlobalFlags &flags)
{
    const SocConfig config = SocConfig::snapdragon888();
    PipelineOptions options;
    options.profile.jobs = flags.jobs;
    options.cacheDir = flags.cacheDir;
    recordRunMetadata(config, options.profile);
    const CharacterizationPipeline pipeline(config, options);
    const auto report = pipeline.run(registry());
    if (!flags.telemetryDir.empty())
        exportTraceBundle(flags.telemetryDir, config, options,
                          report.profiles);
    std::printf("%s\n", renderTableI(registry()).c_str());
    printReportSections(report);
    return 0;
}

/**
 * `mobilebench run --spec <file>`: the full characterization
 * pipeline over a compiled workload spec instead of the built-in
 * registry. Output layout matches `pipeline` (suite table, then the
 * report sections) and is byte-identical for any --jobs count; the
 * ledger record's stable block matches a serve "spec" job carrying
 * the same body, which is what tools/serve_smoke.sh asserts.
 */
int
cmdRun(const GlobalFlags &flags)
{
    fatalIf(flags.spec.empty(), "run: --spec <file> is required");
    const spec::WorkloadSpec workloadSpec =
        spec::compileSpecFile(flags.spec);
    const WorkloadRegistry workloads = workloadSpec.toRegistry();

    const SocConfig config = SocConfig::snapdragon888();
    PipelineOptions options;
    options.profile.jobs = flags.jobs;
    options.cacheDir = flags.cacheDir;
    options.kMax = spec::clampedKMax(workloads.units().size());
    if (flags.tick > 0.0)
        options.profile.tickSeconds = flags.tick;
    recordSpecRunMetadata(config, options.profile, workloadSpec);
    // The ledger command is "spec", matching the serve job kind, so
    // the stable blocks of the two paths stay byte-identical.
    captureContext.command = "spec";

    const CharacterizationPipeline pipeline(config, options);
    const auto report = pipeline.run(workloads);
    if (!flags.telemetryDir.empty()) {
        ingest::TraceBundleWriter writer(
            config, options.profile.tickSeconds);
        for (const auto &p : report.profiles) {
            const Benchmark &unit = workloads.unit(p.name);
            writer.add(p, unit.totalDurationSeconds(),
                       unit.individuallyExecutable());
        }
        writer.write(std::filesystem::path(flags.telemetryDir) /
                     "trace-bundle");
    }
    std::printf("%s\n", renderTableI(workloads).c_str());
    printReportSections(report);
    return 0;
}

/**
 * `mobilebench spec validate <file|->`: compile only. Exit 0 with
 * the content digest on success; any defect is a positioned
 * `<file>:<line>:<col>:` diagnostic and exit 1. '-' reads the
 * document from stdin so `spec export | spec validate -` closes the
 * round-trip loop in scripts and CI.
 */
int
cmdSpecValidate(const std::string &path)
{
    const spec::WorkloadSpec ws = [&] {
        if (path != "-")
            return spec::compileSpecFile(path);
        std::ostringstream body;
        body << std::cin.rdbuf();
        return spec::compileSpecString(body.str(), "<stdin>");
    }();
    std::printf("%s: ok — spec_version %d, %zu suite(s), %zu "
                "unit(s), digest %016llx\n",
                ws.source.c_str(), ws.version, ws.suites.size(),
                ws.unitCount(), (unsigned long long)ws.digest);
    return 0;
}

/**
 * `mobilebench spec export`: the built-in registry serialized as a
 * spec document. Compiling the output yields suites digest-identical
 * to the registry's own — the golden the round-trip tests pin.
 */
int
cmdSpecExport()
{
    std::printf("%s", spec::exportRegistryJson(registry()).c_str());
    return 0;
}

/**
 * One full pipeline run rendered to a string (the profile-dependent
 * sections only, exactly what printReportSections() prints). The
 * chaos driver compares these byte-for-byte across runs. The k-max
 * clamp only bites for spec registries smaller than the paper's 18
 * units; for the built-in registry it is the pipeline default.
 */
std::string
runPipelineSections(const GlobalFlags &flags,
                    const std::string &cacheDir,
                    const WorkloadRegistry &workloads)
{
    PipelineOptions options;
    options.profile.jobs = flags.jobs;
    options.cacheDir = cacheDir;
    options.kMax = spec::clampedKMax(workloads.units().size());
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), options);
    return renderReportSections(pipeline.run(workloads));
}

/**
 * `mobilebench chaos`: run the full pipeline once fault-free, then
 * --iterations more times under rotating fault seeds, asserting the
 * rendered report stays byte-identical whenever recovery succeeded.
 * Every fifth iteration (absent --fault-spec) swaps the uniform
 * random plan for a hard always-fail store plan, so the graceful-
 * degradation path (bypass the cache, recompute) is exercised on a
 * fixed cadence, not just when the dice land that way.
 */
int
cmdChaos(const GlobalFlags &flags)
{
    namespace fs = std::filesystem;
    const obs::ScopedSpan stage("chaos", "stage");

    // `chaos --spec` perturbs a spec-defined pipeline instead of the
    // built-in registry; the fault machinery is identical either way.
    std::optional<spec::WorkloadSpec> specDoc;
    std::optional<WorkloadRegistry> specRegistry;
    if (!flags.spec.empty()) {
        specDoc = spec::compileSpecFile(flags.spec);
        specRegistry = specDoc->toRegistry();
    }
    const WorkloadRegistry &workloads =
        specRegistry ? *specRegistry : registry();

    // The ledger record for a chaos run identifies the pipeline
    // configuration the iterations perturb.
    PipelineOptions chaosOptions;
    chaosOptions.profile.jobs = flags.jobs;
    if (specDoc) {
        recordSpecRunMetadata(SocConfig::snapdragon888(),
                              chaosOptions.profile, *specDoc);
    } else {
        recordRunMetadata(SocConfig::snapdragon888(),
                          chaosOptions.profile);
    }

    // Iterations share one cache so store faults hit real entries;
    // a scratch directory is used (and cleaned) unless the user
    // pointed --cache-dir at one of their own.
    const bool ownCache = flags.cacheDir.empty();
    const std::string cacheDir =
        ownCache ? ".mbs-chaos-cache" : flags.cacheDir;
    if (ownCache)
        fs::remove_all(cacheDir);

    const std::string baseline =
        runPipelineSections(flags, cacheDir, workloads);
    std::printf("chaos: baseline report is %zu bytes "
                "(jobs=%d, cache=%s)\n",
                baseline.size(), flags.jobs, cacheDir.c_str());

    auto &reg = obs::MetricsRegistry::instance();
    const std::uint64_t injStart =
        reg.counter("fault.injected").value();
    const std::uint64_t recStart =
        reg.counter("fault.recovered").value();
    const std::uint64_t degStart =
        reg.counter("fault.degraded").value();
    const double rate =
        flags.faultRate > 0.0 ? flags.faultRate : 0.05;

    int identical = 0, mismatched = 0, failed = 0;
    for (int it = 1; it <= flags.iterations; ++it) {
        const std::uint64_t seed =
            flags.faultSeed + std::uint64_t(it);
        const fault::FaultPlan plan =
            !flags.faultSpec.empty()
                ? fault::FaultPlan::parse(flags.faultSpec, seed)
                : (it % 5 == 0
                       ? fault::FaultPlan::parse(
                             "store.read:eio@1.0,"
                             "store.write:eio@1.0",
                             seed)
                       : fault::FaultPlan::uniform(rate, seed));

        const std::uint64_t inj0 =
            reg.counter("fault.injected").value();
        const std::uint64_t rec0 =
            reg.counter("fault.recovered").value();
        const std::uint64_t deg0 =
            reg.counter("fault.degraded").value();

        std::string sections;
        std::string runError;
        {
            const fault::ScopedPlan armed(plan);
            try {
                sections =
                    runPipelineSections(flags, cacheDir, workloads);
            } catch (const std::exception &e) {
                runError = e.what();
            }
        }

        const char *verdict;
        if (!runError.empty()) {
            verdict = "degraded (run failed)";
            ++failed;
        } else if (sections == baseline) {
            verdict = "identical";
            ++identical;
        } else {
            verdict = "MISMATCH";
            ++mismatched;
        }
        std::printf(
            "chaos[%02d] seed=%llu injected=%llu recovered=%llu "
            "degraded=%llu plan=%s -> %s\n",
            it, (unsigned long long)seed,
            (unsigned long long)(
                reg.counter("fault.injected").value() - inj0),
            (unsigned long long)(
                reg.counter("fault.recovered").value() - rec0),
            (unsigned long long)(
                reg.counter("fault.degraded").value() - deg0),
            plan.describe().c_str(), verdict);
        if (!runError.empty())
            std::printf("chaos[%02d] run error: %s\n", it,
                        runError.c_str());
        if (sections != baseline && runError.empty()) {
            std::fprintf(
                stderr,
                "CHAOS FAIL: recovered run diverged from the "
                "fault-free report; reproduce with:\n"
                "  mobilebench chaos --iterations 1 "
                "--fault-seed %llu --jobs %d --fault-spec '%s'\n",
                (unsigned long long)(seed - 1), flags.jobs,
                plan.describe().c_str());
        }
    }

    if (ownCache)
        fs::remove_all(cacheDir);
    std::printf(
        "chaos summary: %d iterations, %d identical, %d degraded, "
        "%d mismatched; injected=%llu recovered=%llu degraded=%llu\n",
        flags.iterations, identical, failed, mismatched,
        (unsigned long long)(reg.counter("fault.injected").value() -
                             injStart),
        (unsigned long long)(reg.counter("fault.recovered").value() -
                             recStart),
        (unsigned long long)(reg.counter("fault.degraded").value() -
                             degStart));
    return mismatched > 0 ? 1 : 0;
}

int
cmdIngest(const std::string &bundle, const GlobalFlags &flags)
{
    const auto store = flags.openStore();
    ingest::IngestOptions options;
    options.tickSeconds = flags.tick;
    options.lax = flags.lax;
    options.cache = store.get();
    const ingest::TraceBundleReader reader(options);
    const auto result = reader.read(bundle);

    // Identity for the ledger: ingest runs have no registry suite or
    // profiler seed, so the run id derives from what actually shaped
    // the result — the capture platform and the bundle bytes.
    captureContext.runId = report::ingestRunIdFor(
        result.manifest.socConfigDigest, result.bundleDigest,
        result.tickSeconds);
    captureContext.socName = result.manifest.socName;
    captureContext.socConfigDigest = result.manifest.socConfigDigest;
    captureContext.suiteDigest = result.bundleDigest;
    captureContext.seed = 0;
    captureContext.runs = 0;
    captureContext.tickSeconds = result.tickSeconds;

    if (flags.ingestPipeline) {
        // analyze() never touches the simulator, so the pipeline's
        // SoC configuration is irrelevant here; the profiles carry
        // the captured platform's behaviour.
        PipelineOptions pipelineOptions;
        pipelineOptions.profile.jobs = flags.jobs;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), pipelineOptions);
        std::vector<WorkloadInfo> workloads;
        workloads.reserve(result.manifest.benchmarks.size());
        for (const auto &b : result.manifest.benchmarks) {
            workloads.push_back(WorkloadInfo{
                b.plannedRuntimeSeconds, b.individuallyExecutable});
        }
        printReportSections(
            pipeline.analyze(result.profiles, workloads));
        return 0;
    }

    std::printf("%s: %zu benchmarks", bundle.c_str(),
                result.profiles.size());
    if (result.fromCache) {
        std::printf(" (cached)\n");
    } else {
        std::printf(", %llu rows (%llu dropped, %llu alias hits)\n",
                    (unsigned long long)result.stats.rows,
                    (unsigned long long)result.stats.droppedSamples,
                    (unsigned long long)result.stats.aliasHits);
    }
    if (!result.manifest.socName.empty()) {
        std::printf("captured on %s, sample period %gs, "
                    "resampled at %gs\n",
                    result.manifest.socName.c_str(),
                    result.manifest.samplePeriodSeconds,
                    result.tickSeconds);
    }
    for (const auto &d : result.stats.droppedBenchmarks) {
        std::printf("dropped benchmark %s (--lax salvage): %s\n",
                    d.name.c_str(), d.error.c_str());
    }
    const RoiExtractor roi;
    TextTable t({"Benchmark", "Suite", "Samples", "Runtime", "IPC",
                 "CPU load", "GPU load", "AIE load", "ROI"});
    t.setAlign(2, Align::Right);
    t.setAlign(3, Align::Right);
    t.setAlign(4, Align::Right);
    for (const auto &p : result.profiles) {
        const auto window = roi.extract(p);
        t.addRow({p.name, p.suite,
                  strformat("%zu", p.series.cpuLoad.size()),
                  units::formatSeconds(p.runtimeSeconds),
                  strformat("%.2f", p.ipc),
                  units::formatPercent(p.avgCpuLoad()),
                  units::formatPercent(p.avgGpuLoad()),
                  units::formatPercent(p.avgAieLoad()),
                  strformat("%.0f%%..%.0f%%",
                            100.0 * window.startFraction,
                            100.0 * window.endFraction)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdServe(const GlobalFlags &flags)
{
    fatalIf(!flags.listenSet,
            "serve: --listen <port> is required (0 = ephemeral)");
    serve::ServerConfig config;
    config.port = flags.listenPort;
    config.queueCapacity = flags.queueCapacity;
    config.runner.workDir = flags.serveDir;
    if (!flags.noLedger)
        config.runner.ledgerDir = flags.ledgerDir;
    config.runner.cacheDir = flags.cacheDir;
    config.runner.jobs = flags.jobs;
    serve::Server server(config);
    // A daemon crash should leave evidence even outside any job:
    // route the fatal-signal flight-recorder dump next to the
    // per-job artifact directories.
    obs::installFatalSignalDump(
        (std::filesystem::path(flags.serveDir) / "flightrec.jsonl")
            .string());
    server.start();
    // The ready line is the startup contract: scripts and CI wait
    // for it on stdout and read the (possibly ephemeral) port back.
    std::printf("serve: ready on 127.0.0.1:%u\n",
                unsigned(server.port()));
    std::fflush(stdout);
    // First SIGINT/SIGTERM drains: stop admission, finish queued
    // jobs (each still appending its ledger record and flushing its
    // telemetry bundle), then return through the normal run() exit.
    obs::installSignalDrain([&server](int) { server.requestStop(); },
                            /*callbackExits=*/false);
    const int rc = server.run();
    obs::resetSignalDrain();
    return rc;
}

int
cmdSubmit(const std::vector<std::string> &args,
          const GlobalFlags &flags)
{
    fatalIf(flags.port == 0, "submit: --port is required");
    if (flags.ping) {
        // Health check: exit 0 with the daemon's vitals, exit 1
        // (with the reason on stderr) when it cannot be reached —
        // the shape scripts and CI readiness probes want.
        try {
            serve::Client client(flags.port, flags.tenant);
            const serve::PongInfo pong = client.ping();
            std::printf("submit: daemon healthy — up %.1f s "
                        "(build %s), %llu job(s) queued\n",
                        pong.uptimeSeconds, pong.build.c_str(),
                        (unsigned long long)pong.jobsInQueue);
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "submit: daemon unreachable on port %u: "
                         "%s\n",
                         unsigned(flags.port), e.what());
            return 1;
        }
    }
    serve::JobOptions job;
    std::vector<serve::BundleFile> bundle;
    if (!flags.spec.empty()) {
        fatalIf(args.size() >= 2,
                "submit: --spec and a bundle directory are "
                "mutually exclusive");
        // The body ships inline: the daemon compiles it under the
        // fixed name "<spec>", so a broken file fails the job with a
        // positioned diagnostic instead of touching the daemon.
        std::ifstream in(flags.spec, std::ios::binary);
        fatalIf(!in, "submit: cannot read spec file '" + flags.spec +
                         "'");
        std::ostringstream body;
        body << in.rdbuf();
        job.job = "spec";
        job.spec = body.str();
        job.tick = flags.tick;
    } else if (args.size() >= 2) {
        job.job = "ingest";
        job.ingestPipeline = flags.ingestPipeline;
        job.lax = flags.lax;
        job.tick = flags.tick;
        bundle = serve::readBundleDir(args[1]);
    }
    job.faultSpec = flags.faultSpec;
    job.faultRate = flags.faultRate;
    job.faultSeed = flags.faultSeed;
    // Every submit carries a trace id: the client's submit span and
    // the daemon's job span tree share it, and the flow anchors it
    // keys make `--stitch-trace` a pure post-processing step.
    job.traceId = serve::makeTraceId();
    job.parentSpan = "serve.submit";

    serve::Client client(flags.port, flags.tenant);
    std::function<void(std::size_t, std::size_t,
                       const std::string &)>
        onProgress;
    if (flags.progress) {
        onProgress = [](std::size_t done, std::size_t total,
                        const std::string &label) {
            std::fprintf(stderr, "[%3zu/%zu] %s\n", done, total,
                         label.c_str());
        };
    }
    const serve::ResultInfo result =
        client.submit(job, bundle, onProgress);
    if (result.status != "ok") {
        std::fprintf(stderr, "submit: job %llu failed: %s\n",
                     (unsigned long long)result.jobId,
                     result.error.c_str());
        return 1;
    }
    if (!flags.stitchTrace.empty()) {
        // Merge this process' trace with the daemon's per-job
        // trace.json (written before the result frame went out).
        // Only meaningful when daemon and client share a
        // filesystem — the loopback case the daemon serves.
        fatalIf(result.jobDir.empty(),
                "submit: daemon reported no job directory to "
                "stitch from (older build?)");
        const std::string serverPath =
            (std::filesystem::path(result.jobDir) / "trace.json")
                .string();
        std::ifstream in(serverPath, std::ios::binary);
        fatalIf(!in, "submit: cannot read daemon trace '" +
                         serverPath + "'");
        std::ostringstream serverJson;
        serverJson << in.rdbuf();
        const std::string stitched = serve::stitchTraces(
            obs::Tracer::instance().exportJson(), serverJson.str());
        std::ofstream out(flags.stitchTrace,
                          std::ios::binary | std::ios::trunc);
        out << stitched;
        out.flush();
        fatalIf(!out.good(),
                "submit: cannot write --stitch-trace '" +
                    flags.stitchTrace + "'");
        std::fprintf(stderr, "submit: stitched trace -> %s\n",
                     flags.stitchTrace.c_str());
    }
    // stdout carries the report alone so it stays byte-comparable
    // with the one-shot command's output; bookkeeping goes to
    // stderr exactly like the one-shot ledger notice.
    std::printf("%s", result.report.c_str());
    std::fprintf(stderr,
                 "submit: job %llu done in %.2f s (queued %.3f s, "
                 "ran %.3f s)",
                 (unsigned long long)result.jobId,
                 result.wallSeconds, result.queueSeconds,
                 result.execSeconds);
    if (result.ledgerSeq > 0) {
        std::fprintf(stderr, " (run %s, ledger seq %llu)",
                     result.runId.substr(0, 8).c_str(),
                     (unsigned long long)result.ledgerSeq);
    }
    std::fprintf(stderr, "\n");
    return 0;
}

int
cmdLoadgen(const GlobalFlags &flags)
{
    fatalIf(flags.port == 0, "loadgen: --port is required");
    serve::LoadgenOptions options;
    options.port = flags.port;
    options.clients = flags.clients;
    // --jobs doubles as jobs-per-client here (the load driver has
    // no simulation workers of its own); default 8 when not given.
    options.jobsPerClient = flags.jobsSet ? flags.jobs : 8;
    fatalIf(options.jobsPerClient < 1,
            "loadgen: --jobs must be >= 1");
    options.job.job = flags.jobType;
    const serve::LoadgenSummary summary = serve::runLoadgen(options);
    std::printf("%s", summary.toText().c_str());
    if (!flags.latencyOut.empty()) {
        std::ofstream out(flags.latencyOut,
                          std::ios::binary | std::ios::trunc);
        out << summary.toJson();
        out.flush();
        fatalIf(!out.good(), "loadgen: cannot write --latency-out '" +
                                 flags.latencyOut + "'");
    }
    // Ledger identity: a load run has no SoC or suite, so the run id
    // digests the load plan itself; repeated identical plans then
    // correlate in `mobilebench report` like any other run.
    Fnv1a h;
    h.mix(std::string("loadgen"));
    h.mix(options.job.job);
    h.mix(std::uint64_t(options.clients));
    h.mix(std::uint64_t(options.jobsPerClient));
    captureContext.runId =
        strformat("%016llx", (unsigned long long)h.value());
    captureContext.socName = "serve";
    captureContext.socConfigDigest = 0;
    captureContext.suiteDigest = 0;
    captureContext.seed = 0;
    captureContext.runs = options.jobsPerClient;
    captureContext.tickSeconds = 0.0;
    return summary.failed > 0 ? 1 : 0;
}

int
cmdStats(const GlobalFlags &flags)
{
    fatalIf(flags.port == 0, "stats: --port is required");
    serve::Client client(flags.port, flags.tenant);
    const bool includeVolatile = !flags.stableOnly;
    if (!flags.watch) {
        // stdout is the Prometheus text alone (pipe it straight
        // into promtool or a diff); the health line goes to stderr.
        const serve::StatsInfo info = client.stats(includeVolatile);
        std::fprintf(stderr,
                     "stats: daemon up %.1f s (build %s), %llu "
                     "job(s) queued\n",
                     info.uptimeSeconds, info.build.c_str(),
                     (unsigned long long)info.jobsInQueue);
        std::printf("%s", info.prometheus.c_str());
        return 0;
    }
    serve::WatchRequest request;
    request.intervalSeconds = flags.interval;
    request.count = flags.count;
    request.includeVolatile = includeVolatile;
    client.watch(request, [](const serve::StatsInfo &info) {
        // The tick banner is a Prometheus comment, so a captured
        // watch stream still parses as exposition text.
        std::printf("# tick %llu: up %.1f s, %llu job(s) queued\n%s",
                    (unsigned long long)info.seq, info.uptimeSeconds,
                    (unsigned long long)info.jobsInQueue,
                    info.prometheus.c_str());
        std::fflush(stdout);
    });
    return 0;
}

int
cmdRoi(const std::string &name, double fraction)
{
    if (requireUnit(name))
        return 1;
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p = session.profile(registry().unit(name));
    RoiOptions opts;
    opts.targetFraction = fraction;
    const auto window = RoiExtractor(opts).extract(p);
    std::printf("%s: simulate %.1f%%..%.1f%% of the run "
                "(representativeness error %.3f, %zu phases)\n",
                name.c_str(), 100.0 * window.startFraction,
                100.0 * window.endFraction,
                window.representativenessError,
                window.segments.size());
    return 0;
}

int
cmdEnergy(const std::string &name)
{
    if (requireUnit(name))
        return 1;
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);
    const auto result =
        sim.run(registry().unit(name).toTimedPhases());
    const auto e = model.energyOf(result);
    TextTable t({"Component", "Energy (J)", "Share"});
    t.setAlign(1, Align::Right);
    t.setAlign(2, Align::Right);
    const auto row = [&](const std::string &label, double j) {
        t.addRow({label, strformat("%.1f", j),
                  units::formatPercent(j / e.total())});
    };
    for (std::size_t c = 0; c < numClusters; ++c)
        row(clusterName(ClusterId(c)), e.cpuJ[c]);
    row("GPU", e.gpuJ);
    row("AIE", e.aieJ);
    row("DRAM", e.dramJ);
    row("Storage", e.storageJ);
    std::printf("%s: %.1f J total, %.2f W average\n%s", name.c_str(),
                e.total(),
                e.averagePowerW(result.totals.runtimeSeconds),
                t.render().c_str());
    return 0;
}

int
cmdLoad(const std::string &path, const GlobalFlags &flags)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    const auto suites = loadSuites(in);
    const SocConfig config = SocConfig::snapdragon888();
    const auto store = flags.openStore();
    const ProfilerSession session(
        config, flags.sessionOptions(store.get()));
    recordRunMetadata(config, session.options());
    const obs::ScopedSpan stage("profile", "stage");
    TextTable t({"Suite", "Benchmark", "Runtime", "IC", "IPC",
                 "CPU load", "GPU load", "AIE load"});
    for (const auto &suite : suites) {
        for (const auto &p : session.profileSuite(suite)) {
            t.addRow({p.suite, p.name,
                      units::formatSeconds(p.runtimeSeconds),
                      units::formatCount(p.instructions),
                      strformat("%.2f", p.ipc),
                      units::formatPercent(p.avgCpuLoad()),
                      units::formatPercent(p.avgGpuLoad()),
                      units::formatPercent(p.avgAieLoad())});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdCache(const std::string &action, const GlobalFlags &flags)
{
    if (flags.cacheDir.empty()) {
        std::fprintf(stderr, "cache %s requires --cache-dir <dir>\n",
                     action.c_str());
        return 1;
    }
    ProfileStore store(flags.cacheDir);
    if (action == "stats") {
        const auto s = store.stats();
        std::printf("%s: %zu entries, %s\n",
                    store.directory().string().c_str(), s.entries,
                    units::formatBytes(s.bytes).c_str());
        return 0;
    }
    if (action == "clear") {
        const std::size_t removed = store.clear();
        std::printf("%s: removed %zu entries\n",
                    store.directory().string().c_str(), removed);
        return 0;
    }
    std::fprintf(stderr, "unknown cache action '%s'; use stats or "
                         "clear\n",
                 action.c_str());
    return 1;
}

/**
 * Summarize a telemetry bundle previously written by
 * `--telemetry-out`: instrument counts from metrics.prom, sample
 * counts per clock domain from timeseries.csv, and per-type event
 * counts from events.jsonl.
 */
int
cmdTelemetry(const std::string &dir)
{
    bool any = false;
    bool partial = false;
    TextTable t({"Artifact", "Contents"});
    std::string line;

    {
        std::ifstream in(dir + "/metrics.prom");
        if (in) {
            any = true;
            int counters = 0, gauges = 0, histograms = 0;
            while (std::getline(in, line)) {
                if (line.rfind("# PARTIAL:", 0) == 0)
                    partial = true;
                if (line.rfind("# TYPE ", 0) != 0)
                    continue;
                if (endsWith(line, " counter"))
                    ++counters;
                else if (endsWith(line, " gauge"))
                    ++gauges;
                else if (endsWith(line, " histogram"))
                    ++histograms;
            }
            t.addRow({"metrics.prom",
                      strformat("%d counters, %d gauges, %d histograms",
                                counters, gauges, histograms)});
        }
    }

    {
        std::ifstream in(dir + "/timeseries.csv");
        if (in) {
            any = true;
            std::size_t logical = 0, wall = 0;
            std::size_t logicalSamples = 0, wallSamples = 0;
            std::string lastLogical, lastWall;
            while (std::getline(in, line)) {
                if (line.rfind("# partial:", 0) == 0)
                    partial = true;
                if (line.rfind("logical,", 0) == 0) {
                    ++logical;
                    const std::string sample =
                        line.substr(0, line.find(',', 8));
                    if (sample != lastLogical)
                        ++logicalSamples;
                    lastLogical = sample;
                } else if (line.rfind("wall,", 0) == 0) {
                    ++wall;
                    const std::string sample =
                        line.substr(0, line.find(',', 5));
                    if (sample != lastWall)
                        ++wallSamples;
                    lastWall = sample;
                }
            }
            t.addRow({"timeseries.csv",
                      strformat("%zu logical samples (%zu rows), "
                                "%zu wall samples (%zu rows)",
                                logicalSamples, logical, wallSamples,
                                wall)});
        }
    }

    {
        std::ifstream in(dir + "/profile.collapsed");
        if (in) {
            any = true;
            std::size_t stacks = 0;
            unsigned long long samples = 0;
            while (std::getline(in, line)) {
                if (line.empty())
                    continue;
                ++stacks;
                const std::size_t at = line.find_last_of(' ');
                if (at != std::string::npos)
                    samples += std::strtoull(
                        line.c_str() + at + 1, nullptr, 10);
            }
            t.addRow({"profile.collapsed",
                      strformat("%zu stacks, %llu samples", stacks,
                                samples)});
        }
    }

    {
        std::ifstream in(dir + "/events.jsonl");
        if (in) {
            any = true;
            std::size_t total = 0;
            std::map<std::string, std::size_t> byType;
            while (std::getline(in, line)) {
                static const std::string key = "\"type\": \"";
                const std::size_t at = line.find(key);
                if (at == std::string::npos)
                    continue;
                const std::size_t begin = at + key.size();
                const std::size_t end = line.find('"', begin);
                if (end == std::string::npos)
                    continue;
                const std::string type =
                    line.substr(begin, end - begin);
                if (type == "log.partial")
                    partial = true;
                ++total;
                ++byType[type];
            }
            t.addRow({"events.jsonl",
                      strformat("%zu events, %zu types", total,
                                byType.size())});
            for (const auto &[type, n] : byType)
                t.addRow({"  " + type, strformat("%zu", n)});
        }
    }

    if (!any) {
        std::fprintf(stderr, "no telemetry artifacts under '%s'; "
                             "produce them with --telemetry-out\n",
                     dir.c_str());
        return 1;
    }
    std::printf("%s%s", t.render().c_str(),
                partial ? "warning: bundle is marked PARTIAL (flushed "
                          "on abnormal exit)\n"
                        : "");
    return 0;
}

int
cmdReport(const GlobalFlags &flags)
{
    const report::RunLedger ledger(flags.ledgerDir);
    std::printf(
        "%s", report::renderLedgerSummary(ledger, flags.last)
                  .c_str());
    return 0;
}

int
cmdCompare(const std::string &a, const std::string &b,
           const GlobalFlags &flags)
{
    const report::RunLedger ledger(flags.ledgerDir);
    const report::LedgerRecord base = ledger.resolve(a);
    const report::LedgerRecord current = ledger.resolve(b);
    const report::CompareResult diff =
        report::compareRecords(base, current, flags.threshold);
    if (flags.json)
        std::printf("%s\n", diff.toJson().c_str());
    else
        std::printf("%s", diff.toText().c_str());
    if (!diff.regression())
        return 0;
    std::string names;
    for (const auto &n : diff.regressions) {
        if (!names.empty())
            names += ", ";
        names += n;
    }
    std::fprintf(stderr,
                 "COMPARE FAIL: %s regressed vs %s beyond "
                 "threshold %.2f: %s\n",
                 diff.currentLabel.c_str(), diff.baseLabel.c_str(),
                 flags.threshold, names.c_str());
    return 1;
}

int
cmdCatalog(const std::string &category)
{
    const CounterCatalog catalog(SocConfig::snapdragon888());
    int printed = 0;
    for (const auto &c : catalog.counters()) {
        const std::string cat =
            counterCategoryName(c.category);
        if (!category.empty() && toLower(cat) != toLower(category))
            continue;
        std::printf("%-40s %-8s %s\n", c.name.c_str(), cat.c_str(),
                    c.unit.c_str());
        ++printed;
    }
    std::printf("%d counters\n", printed);
    return 0;
}

/**
 * Strip `--` flags out of the raw argument list. Positional
 * arguments are returned in order; an unknown flag is a fatal()
 * (non-zero exit) rather than a silently ignored argument.
 */
std::vector<std::string>
parseFlags(int argc, char **argv, GlobalFlags &flags)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        const auto valueOf = [&](const char *flag) {
            fatalIf(i + 1 >= argc,
                    std::string(flag) + " requires a file argument");
            return std::string(argv[++i]);
        };
        if (arg == "--trace")
            flags.tracePath = valueOf("--trace");
        else if (arg == "--metrics")
            flags.metricsPath = valueOf("--metrics");
        else if (arg == "--telemetry-out")
            flags.telemetryDir = valueOf("--telemetry-out");
        else if (arg == "--progress")
            flags.progress = true;
        else if (arg == "--log-timestamps")
            flags.logTimestamps = true;
        else if (arg == "--jobs") {
            const std::string v = valueOf("--jobs");
            try {
                flags.jobs = std::stoi(v);
            } catch (const std::exception &) {
                fatal("--jobs requires an integer, got '" + v + "'");
            }
            fatalIf(flags.jobs < 0,
                    "--jobs must be >= 0 (0 = all cores)");
            flags.jobsSet = true;
        } else if (arg == "--cache-dir")
            flags.cacheDir = valueOf("--cache-dir");
        else if (arg == "--help")
            flags.help = true;
        else if (arg == "--pipeline")
            flags.ingestPipeline = true;
        else if (arg == "--lax")
            flags.lax = true;
        else if (arg == "--tick") {
            const std::string v = valueOf("--tick");
            try {
                flags.tick = std::stod(v);
            } catch (const std::exception &) {
                fatal("--tick requires a number of seconds, got '" +
                      v + "'");
            }
            fatalIf(flags.tick <= 0.0, "--tick must be > 0");
        } else if (arg == "--spec")
            flags.spec = valueOf("--spec");
        else if (arg == "--fault-spec")
            flags.faultSpec = valueOf("--fault-spec");
        else if (arg == "--fault-rate") {
            const std::string v = valueOf("--fault-rate");
            try {
                flags.faultRate = std::stod(v);
            } catch (const std::exception &) {
                fatal("--fault-rate requires a probability, got '" +
                      v + "'");
            }
            fatalIf(flags.faultRate <= 0.0 || flags.faultRate > 1.0,
                    "--fault-rate must be in (0, 1]");
        } else if (arg == "--fault-seed") {
            const std::string v = valueOf("--fault-seed");
            try {
                flags.faultSeed = std::stoull(v);
            } catch (const std::exception &) {
                fatal("--fault-seed requires an integer, got '" + v +
                      "'");
            }
        } else if (arg == "--iterations") {
            const std::string v = valueOf("--iterations");
            try {
                flags.iterations = std::stoi(v);
            } catch (const std::exception &) {
                fatal("--iterations requires an integer, got '" + v +
                      "'");
            }
            fatalIf(flags.iterations < 1,
                    "--iterations must be >= 1");
        } else if (arg == "--ledger")
            flags.ledgerDir = valueOf("--ledger");
        else if (arg == "--no-ledger")
            flags.noLedger = true;
        else if (arg == "--self-profile" ||
                 startsWith(arg, "--self-profile=")) {
            if (arg == "--self-profile") {
                flags.selfProfileHz = 199.0;
            } else {
                const std::string v = arg.substr(arg.find('=') + 1);
                try {
                    flags.selfProfileHz = std::stod(v);
                } catch (const std::exception &) {
                    fatal("--self-profile requires a rate in Hz, "
                          "got '" + v + "'");
                }
                fatalIf(flags.selfProfileHz <= 0.0,
                        "--self-profile rate must be > 0");
            }
        } else if (arg == "--last") {
            const std::string v = valueOf("--last");
            try {
                flags.last = std::stoul(v);
            } catch (const std::exception &) {
                fatal("--last requires an integer, got '" + v + "'");
            }
            fatalIf(flags.last < 1, "--last must be >= 1");
        } else if (arg == "--threshold") {
            const std::string v = valueOf("--threshold");
            try {
                flags.threshold = std::stod(v);
            } catch (const std::exception &) {
                fatal("--threshold requires a number, got '" + v +
                      "'");
            }
            fatalIf(flags.threshold < 0.0,
                    "--threshold must be >= 0");
        } else if (arg == "--json")
            flags.json = true;
        else if (arg == "--version")
            flags.version = true;
        else if (arg == "--listen") {
            const std::string v = valueOf("--listen");
            try {
                const unsigned long p = std::stoul(v);
                fatalIf(p > 65535, "--listen port must be <= 65535");
                flags.listenPort = std::uint16_t(p);
            } catch (const FatalError &) {
                throw;
            } catch (const std::exception &) {
                fatal("--listen requires a port number, got '" + v +
                      "'");
            }
            flags.listenSet = true;
        } else if (arg == "--port") {
            const std::string v = valueOf("--port");
            try {
                const unsigned long p = std::stoul(v);
                fatalIf(p == 0 || p > 65535,
                        "--port must be in 1..65535");
                flags.port = std::uint16_t(p);
            } catch (const FatalError &) {
                throw;
            } catch (const std::exception &) {
                fatal("--port requires a port number, got '" + v +
                      "'");
            }
        } else if (arg == "--queue-capacity") {
            const std::string v = valueOf("--queue-capacity");
            try {
                flags.queueCapacity = std::stoul(v);
            } catch (const std::exception &) {
                fatal("--queue-capacity requires an integer, got '" +
                      v + "'");
            }
            fatalIf(flags.queueCapacity < 1,
                    "--queue-capacity must be >= 1");
        } else if (arg == "--serve-dir")
            flags.serveDir = valueOf("--serve-dir");
        else if (arg == "--tenant")
            flags.tenant = valueOf("--tenant");
        else if (arg == "--clients") {
            const std::string v = valueOf("--clients");
            try {
                flags.clients = std::stoi(v);
            } catch (const std::exception &) {
                fatal("--clients requires an integer, got '" + v +
                      "'");
            }
            fatalIf(flags.clients < 1, "--clients must be >= 1");
        } else if (arg == "--job-type") {
            flags.jobType = valueOf("--job-type");
            fatalIf(flags.jobType != "noop" &&
                        flags.jobType != "pipeline",
                    "--job-type must be noop or pipeline");
        } else if (arg == "--latency-out")
            flags.latencyOut = valueOf("--latency-out");
        else if (arg == "--ping")
            flags.ping = true;
        else if (arg == "--stitch-trace")
            flags.stitchTrace = valueOf("--stitch-trace");
        else if (arg == "--watch")
            flags.watch = true;
        else if (arg == "--interval") {
            const std::string v = valueOf("--interval");
            try {
                flags.interval = std::stod(v);
            } catch (const std::exception &) {
                fatal("--interval requires a number of seconds, "
                      "got '" + v + "'");
            }
            fatalIf(flags.interval <= 0.0, "--interval must be > 0");
        } else if (arg == "--count") {
            const std::string v = valueOf("--count");
            try {
                flags.count = std::stoull(v);
            } catch (const std::exception &) {
                fatal("--count requires an integer, got '" + v +
                      "'");
            }
        } else if (arg == "--stable-only")
            flags.stableOnly = true;
        else
            fatal("unknown flag '" + arg +
                  "'; see: mobilebench --help for usage");
    }
    return positional;
}

int
dispatch(const std::vector<std::string> &args,
         const GlobalFlags &flags)
{
    const std::string &cmd = args[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "profile" && args.size() >= 2)
        return cmdProfile(args[1], flags);
    if (cmd == "counters" && args.size() >= 2) {
        const std::vector<std::string> counters(args.begin() + 2,
                                                args.end());
        return cmdCounters(args[1], counters);
    }
    if (cmd == "pipeline")
        return cmdPipeline(flags);
    if (cmd == "run")
        return cmdRun(flags);
    if (cmd == "spec" && args.size() >= 2) {
        if (args[1] == "validate" && args.size() >= 3)
            return cmdSpecValidate(args[2]);
        if (args[1] == "export")
            return cmdSpecExport();
        std::fprintf(stderr,
                     "unknown spec action '%s'; use validate "
                     "<file|-> or export\n",
                     args[1].c_str());
        return 2;
    }
    if (cmd == "chaos")
        return cmdChaos(flags);
    if (cmd == "roi" && args.size() >= 2)
        return cmdRoi(args[1], args.size() >= 3 ? std::stod(args[2])
                                                : 0.10);
    if (cmd == "energy" && args.size() >= 2)
        return cmdEnergy(args[1]);
    if (cmd == "catalog")
        return cmdCatalog(args.size() >= 2 ? args[1] : "");
    if (cmd == "load" && args.size() >= 2)
        return cmdLoad(args[1], flags);
    if (cmd == "cache" && args.size() >= 2)
        return cmdCache(args[1], flags);
    if (cmd == "telemetry" && args.size() >= 2)
        return cmdTelemetry(args[1]);
    if (cmd == "ingest" && args.size() >= 2)
        return cmdIngest(args[1], flags);
    if (cmd == "report")
        return cmdReport(flags);
    if (cmd == "compare" && args.size() >= 3)
        return cmdCompare(args[1], args[2], flags);
    if (cmd == "serve")
        return cmdServe(flags);
    if (cmd == "submit")
        return cmdSubmit(args, flags);
    if (cmd == "loadgen")
        return cmdLoadgen(flags);
    if (cmd == "stats")
        return cmdStats(flags);
    // A known command with missing arguments is a usage error; an
    // unrecognized word gets the command list.
    static const char *known[] = {"list", "profile", "counters",
                                  "pipeline", "run", "spec", "chaos",
                                  "roi", "energy", "catalog", "load",
                                  "cache", "telemetry", "ingest",
                                  "report", "compare", "serve",
                                  "submit", "loadgen", "stats"};
    for (const char *k : known) {
        if (cmd == k)
            return usage();
    }
    return unknownCommand(cmd);
}

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    using namespace mbs;
    try {
        GlobalFlags flags;
        const auto args = parseFlags(argc, argv, flags);
        if (flags.version ||
            (!args.empty() && args[0] == "version")) {
            std::printf("mobilebench %s\n",
                        report::buildStamp().c_str());
            return 0;
        }
        if (flags.help ||
            (!args.empty() &&
             (args[0] == "help" || args[0] == "-h"))) {
            printUsage(stdout);
            return 0;
        }
        if (args.empty())
            return usage();

        obs::Progress::instance().setEnabled(flags.progress);
        setLogTimestamps(flags.logTimestamps);
        // Record spans for every command; the buffer is tiny and it
        // feeds the stage-timing summary even without --trace.
        obs::Tracer::instance().setEnabled(true);

        // Telemetry is configured before dispatch so a crash mid-run
        // still flushes a (partial) bundle from the terminate hook.
        obs::TelemetryConfig telemetry;
        telemetry.tracePath = flags.tracePath;
        telemetry.metricsPath = flags.metricsPath;
        telemetry.telemetryDir = flags.telemetryDir;
        auto &sink = obs::TelemetrySink::instance();
        sink.configure(telemetry);
        if (telemetry.anyConfigured())
            sink.installAbnormalExitFlush();

        // The flight recorder flies on every command: per-thread
        // rings a few hundred KB total, written with two relaxed
        // atomics per span — cheap enough to never turn off. A
        // telemetry run also gets the fatal-signal dump (SIGSEGV and
        // friends write flightrec.jsonl into the bundle directory).
        obs::FlightRecorder::instance().arm();
        if (!flags.telemetryDir.empty()) {
            obs::installFatalSignalDump(
                (std::filesystem::path(flags.telemetryDir) /
                 "flightrec.jsonl")
                    .string());
        }

        // Ledger records carry the run's logical-clock duration:
        // keep the clock live for recording commands even when no
        // bundle is exported (samples stay in memory and are never
        // written), so a telemetry run and a bare run compare equal.
        const bool ledgerCommand = args[0] == "pipeline" ||
            args[0] == "run" || args[0] == "ingest" ||
            args[0] == "chaos" || args[0] == "loadgen";
        if (ledgerCommand && !flags.noLedger)
            obs::TimeSeriesSampler::instance().setEnabled(true);

        // One-shot graceful shutdown: first ^C flushes whatever
        // telemetry exists (marked partial) and exits 128+sig; the
        // serve command replaces this with its own draining stop.
        if (args[0] != "serve") {
            obs::installSignalDrain([](int sig) {
                try {
                    if (obs::SelfProfiler::instance().armed())
                        obs::SelfProfiler::instance().disarm();
                    obs::TelemetrySink::instance().flush(strformat(
                        "interrupted by signal %d", sig));
                } catch (...) {
                    // Exit still proceeds; a failed flush must not
                    // hang the drain.
                }
            });
        }

        // Arm an explicit fault plan for ordinary commands; `chaos`
        // manages its own per-iteration plans and seeds.
        const bool armFaults =
            args[0] != "chaos" &&
            (!flags.faultSpec.empty() || flags.faultRate > 0.0);
        if (armFaults) {
            fault::Injector::instance().arm(
                !flags.faultSpec.empty()
                    ? fault::FaultPlan::parse(flags.faultSpec,
                                              flags.faultSeed)
                    : fault::FaultPlan::uniform(flags.faultRate,
                                                flags.faultSeed));
        }

        // Arm the self-profiler last so its sampler thread only ever
        // sees fully initialized observability state.
        if (flags.selfProfileHz > 0.0)
            obs::SelfProfiler::instance().arm(flags.selfProfileHz);

        const auto wallStart = std::chrono::steady_clock::now();
        const int rc = dispatch(args, flags);
        const double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        if (armFaults)
            fault::Injector::instance().disarm();
        // Disarm before any flush: the sampler thread must be joined
        // before the bundle snapshots the profile.
        if (obs::SelfProfiler::instance().armed())
            obs::SelfProfiler::instance().disarm();
        if (rc != 0) {
            sink.flush(strformat("command exited with status %d", rc));
            return rc;
        }

        if (args[0] == "profile" || args[0] == "pipeline" ||
            args[0] == "load") {
            printStageSummary();
        }

        // The ledger append is the run's last durable act: only
        // successful characterization runs are recorded, and the
        // notice goes to stderr so stdout stays byte-comparable.
        if (ledgerCommand && !flags.noLedger &&
            !captureContext.runId.empty()) {
            // `run --spec` records itself as "spec" (the serve job
            // kind) so the two ledger paths stay byte-comparable;
            // every other command records its own name.
            if (captureContext.command.empty())
                captureContext.command = args[0];
            captureContext.jobs = flags.jobs;
            captureContext.wallSeconds = wallSeconds;
            captureContext.telemetryDir = flags.telemetryDir;
            report::RunLedger ledger(flags.ledgerDir);
            report::LedgerRecord record =
                report::captureRecord(captureContext);
            const std::uint64_t seq = ledger.append(record);
            std::fprintf(
                stderr, "ledger: appended record %llu (%s) to %s\n",
                (unsigned long long)seq,
                record.runId.substr(0, 8).c_str(),
                ledger.directory().string().c_str());
        }
        sink.flush();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        try {
            if (obs::SelfProfiler::instance().armed())
                obs::SelfProfiler::instance().disarm();
            obs::TelemetrySink::instance().flush(
                std::string("error: ") + e.what());
        } catch (...) {
            // Flushing is best effort on the failure path; the
            // original error is what the user must see.
        }
        return 1;
    }
}
