#!/usr/bin/env bash
# End-to-end smoke of the serve daemon over a real socket:
#
#   1. daemon up on an ephemeral port (parsed from the ready line)
#   2. health probe (`submit --ping`) against the live daemon
#   3. pipeline job over the socket, stitched into one cross-process
#      trace via --stitch-trace
#   4. the same job under an injected fault plan — recovered, daemon
#      still serving
#   5. live stats scrape mid-run: the daemon-domain counters must
#      agree with the number of jobs submitted, and two idle
#      stable-only scrapes must be byte-identical
#   6. the same pipeline through the one-shot CLI into the same
#      ledger; reports and ledger stable blocks must be
#      byte-identical (compare at threshold 0)
#   7. the serve job's trace bundle re-ingested over the socket vs
#      one-shot `ingest --pipeline`
#   8. loadgen with a latency artifact carrying the queue-wait /
#      execution split from the result frames
#   9. a workload-spec job: the spec body shipped over the socket
#      must produce a byte-identical report and ledger stable block
#      to the one-shot `run --spec` of the same file
#  10. SIGTERM drains gracefully with a clean exit code; a ping
#      against the dead port must fail with a non-zero exit
#
# Usage: serve_smoke.sh /path/to/mobilebench
set -euo pipefail

MB=${1:?usage: serve_smoke.sh /path/to/mobilebench}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mbs-serve-smoke.XXXXXX")
SERVER_PID=
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

LEDGER=$WORK/ledger

"$MB" serve --listen 0 --serve-dir "$WORK/serve" --ledger "$LEDGER" \
    >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

PORT=
for _ in $(seq 1 100); do
    PORT=$(sed -n \
        's/^serve: ready on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/serve.out")
    [ -n "$PORT" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: daemon died before becoming ready" >&2
        cat "$WORK/serve.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "FAIL: daemon never printed the ready line" >&2
    exit 1
fi
echo "# daemon ready on port $PORT"

# --- health probe against the live daemon --------------------------
"$MB" submit --port "$PORT" --ping || {
    echo "FAIL: ping against the live daemon failed" >&2
    exit 1
}

# --- pipeline job over the socket (ledger seq 1), stitched ---------
"$MB" submit --port "$PORT" --stitch-trace "$WORK/stitched.json" \
    >"$WORK/serve_pipeline.out"
# The stitched document is one timeline with both process lanes and
# the cross-process flow arrows that connect them.
grep -q '"mobilebench client"' "$WORK/stitched.json" || {
    echo "FAIL: stitched trace lacks the client lane" >&2
    exit 1
}
grep -q '"mobilebench serve"' "$WORK/stitched.json" || {
    echo "FAIL: stitched trace lacks the server lane" >&2
    exit 1
}
grep -q '"ph": "f"' "$WORK/stitched.json" || {
    echo "FAIL: stitched trace has no flow-finish arrows" >&2
    exit 1
}

# --- faulted job: deterministic recovery, daemon survives (seq 2) --
"$MB" submit --port "$PORT" --fault-spec "exec.task:eio@2" \
    --fault-seed 7 >"$WORK/serve_faulted.out"
grep -q '"fault.injected"' "$WORK/serve/job-000002/events.jsonl" || {
    echo "FAIL: faulted job logged no injection events" >&2
    exit 1
}

# --- live stats: the daemon domain survives per-job resets ---------
"$MB" stats --port "$PORT" >"$WORK/stats_mid.prom" 2>/dev/null
grep -q '^serve_jobs_completed 2$' "$WORK/stats_mid.prom" || {
    echo "FAIL: mid-run scrape does not report 2 completed jobs" >&2
    cat "$WORK/stats_mid.prom" >&2
    exit 1
}
grep -q '^# HELP serve_jobs_completed ' "$WORK/stats_mid.prom" || {
    echo "FAIL: scrape families lack HELP text" >&2
    exit 1
}
grep -q '^serve_uptime_seconds ' "$WORK/stats_mid.prom" || {
    echo "FAIL: volatile scrape lacks the uptime gauge" >&2
    exit 1
}
# Two idle stable-only scrapes must be byte-identical (the wall
# clock keeps moving; the deterministic view must not).
"$MB" stats --port "$PORT" --stable-only \
    >"$WORK/stats_a.prom" 2>/dev/null
"$MB" stats --port "$PORT" --stable-only \
    >"$WORK/stats_b.prom" 2>/dev/null
cmp "$WORK/stats_a.prom" "$WORK/stats_b.prom" || {
    echo "FAIL: idle stable-only scrapes differ" >&2
    exit 1
}

# --- the same run through the one-shot CLI (seq 3) -----------------
"$MB" pipeline --ledger "$LEDGER" >"$WORK/oneshot_pipeline.raw"
# The one-shot output is the serve report plus wall-clock timing
# sections; the comparable prefix ends just above "Stage timing".
sed -n '1,/^Stage timing$/p' "$WORK/oneshot_pipeline.raw" \
    | head -n -2 >"$WORK/oneshot_pipeline.out"
diff -u "$WORK/oneshot_pipeline.out" "$WORK/serve_pipeline.out" || {
    echo "FAIL: serve pipeline report differs from one-shot" >&2
    exit 1
}

# --- ledger stable blocks: serve job vs one-shot, threshold 0 ------
"$MB" compare 1 3 --ledger "$LEDGER" --threshold 0

# --- ingest the serve job's trace bundle over the socket -----------
BUNDLE=$WORK/serve/job-000001/trace-bundle
if [ ! -d "$BUNDLE" ]; then
    echo "FAIL: serve job 1 left no trace bundle" >&2
    exit 1
fi
"$MB" submit --port "$PORT" "$BUNDLE" --pipeline \
    >"$WORK/serve_ingest.out" # seq 4
"$MB" ingest "$BUNDLE" --pipeline --ledger "$LEDGER" \
    >"$WORK/oneshot_ingest.out" # seq 5
diff -u "$WORK/oneshot_ingest.out" "$WORK/serve_ingest.out" || {
    echo "FAIL: serve ingest report differs from one-shot" >&2
    exit 1
}
"$MB" compare 4 5 --ledger "$LEDGER" --threshold 0

# --- loadgen with a latency artifact (seq 6) -----------------------
"$MB" loadgen --port "$PORT" --clients 2 --jobs 4 \
    --latency-out "$WORK/latency.json" --ledger "$LEDGER"
grep -q '"latency_p99_s"' "$WORK/latency.json" || {
    echo "FAIL: latency artifact missing percentiles" >&2
    exit 1
}
# The artifact also carries the daemon-reported latency split.
grep -q '"queue_wait_p99_s"' "$WORK/latency.json" || {
    echo "FAIL: latency artifact missing the queue-wait split" >&2
    exit 1
}
grep -q '"exec_p99_s"' "$WORK/latency.json" || {
    echo "FAIL: latency artifact missing the execution split" >&2
    exit 1
}

# --- workload spec: socket submission vs one-shot run --spec -------
SPEC=$(dirname "$0")/../examples/specs/vector_stress.json
"$MB" submit --port "$PORT" --spec "$SPEC" >"$WORK/serve_spec.out"
"$MB" run --spec "$SPEC" --ledger "$LEDGER" >"$WORK/oneshot_spec.out"
diff -u "$WORK/oneshot_spec.out" "$WORK/serve_spec.out" || {
    echo "FAIL: serve spec report differs from one-shot run --spec" >&2
    exit 1
}
# Same spec + seed => identical stable ledger blocks, serve or CLI.
"$MB" compare last~1 last --ledger "$LEDGER" --threshold 0

# --- graceful shutdown ---------------------------------------------
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: daemon still running 10s after SIGTERM" >&2
    exit 1
fi
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
if [ "$RC" -ne 0 ]; then
    echo "FAIL: daemon exited with code $RC" >&2
    cat "$WORK/serve.err" >&2
    exit 1
fi
grep -q '^serve: stopped' "$WORK/serve.err" || {
    echo "FAIL: no shutdown summary in the daemon log" >&2
    exit 1
}

# --- a ping against the dead daemon must fail loudly ---------------
if "$MB" submit --port "$PORT" --ping 2>/dev/null; then
    echo "FAIL: ping succeeded against a stopped daemon" >&2
    exit 1
fi

echo "serve smoke OK"
