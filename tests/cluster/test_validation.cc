/**
 * @file
 * Tests for cluster validation measures (Dunn, silhouette, APN, AD)
 * and the Fig.-4 sweep.
 */

#include <gtest/gtest.h>

#include "blobs.hh"
#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "cluster/validation.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

using testutil::blobLabels;
using testutil::makeBlobs;

FeatureMatrix
threeBlobs(double spread = 0.4)
{
    return makeBlobs({{0, 0, 0}, {10, 0, 0}, {0, 10, 0}}, 5, spread);
}

TEST(Dunn, HigherForCorrectPartition)
{
    const auto m = threeBlobs();
    const auto good = blobLabels(3, 5);
    auto bad = good;
    std::swap(bad[0], bad[5]); // cross-assign two points
    EXPECT_GT(dunnIndex(m, good), dunnIndex(m, bad));
}

TEST(Dunn, SingleClusterIsZero)
{
    const auto m = threeBlobs();
    EXPECT_DOUBLE_EQ(dunnIndex(m, std::vector<int>(15, 0)), 0.0);
}

TEST(Dunn, TighterBlobsScoreHigher)
{
    const auto labels = blobLabels(3, 5);
    EXPECT_GT(dunnIndex(threeBlobs(0.2), labels),
              dunnIndex(threeBlobs(1.5), labels));
}

TEST(Dunn, SizeMismatchIsFatal)
{
    const auto m = threeBlobs();
    EXPECT_THROW(dunnIndex(m, {0, 1}), FatalError);
}

TEST(Silhouette, NearOneForWellSeparatedBlobs)
{
    const auto m = threeBlobs(0.2);
    EXPECT_GT(silhouetteWidth(m, blobLabels(3, 5)), 0.9);
}

TEST(Silhouette, NegativeContributionForMisassignedPoint)
{
    const auto m = threeBlobs(0.2);
    const auto good = blobLabels(3, 5);
    auto bad = good;
    bad[0] = 1; // point from blob 0 labeled as blob 1
    EXPECT_LT(silhouetteWidth(m, bad), silhouetteWidth(m, good));
}

TEST(Silhouette, SingleClusterIsZero)
{
    const auto m = threeBlobs();
    EXPECT_DOUBLE_EQ(silhouetteWidth(m, std::vector<int>(15, 0)),
                     0.0);
}

TEST(Silhouette, BoundedByOne)
{
    const auto m = threeBlobs(1.0);
    const double s = silhouetteWidth(m, blobLabels(3, 5));
    EXPECT_LE(s, 1.0);
    EXPECT_GE(s, -1.0);
}

TEST(Connectivity, ZeroForIntactNeighbourhoods)
{
    const auto m = threeBlobs(0.2);
    EXPECT_DOUBLE_EQ(connectivity(m, blobLabels(3, 5), 4), 0.0);
}

TEST(Connectivity, PenalizesCrossClusterNeighbours)
{
    const auto m = threeBlobs(0.2);
    auto bad = blobLabels(3, 5);
    bad[0] = 1; // misassign one point
    EXPECT_GT(connectivity(m, bad, 4), 0.0);
}

TEST(Connectivity, NearerViolationsCostMore)
{
    // 1st-neighbour violations cost 1, j-th cost 1/j: the measure
    // for a fully-scrambled labeling exceeds a single swap.
    const auto m = threeBlobs(0.2);
    const auto good = blobLabels(3, 5);
    auto one_swap = good;
    std::swap(one_swap[0], one_swap[5]);
    std::vector<int> scrambled(good.size());
    for (std::size_t i = 0; i < scrambled.size(); ++i)
        scrambled[i] = int(i % 3);
    EXPECT_GT(connectivity(m, scrambled),
              connectivity(m, one_swap));
}

TEST(Connectivity, InvalidInputsAreFatal)
{
    const auto m = threeBlobs();
    EXPECT_THROW(connectivity(m, {0, 1}), FatalError);
    EXPECT_THROW(connectivity(m, blobLabels(3, 5), 0), FatalError);
}

TEST(Stability, ApnIsLowForStableStructure)
{
    // Blobs separated in every dimension: removing one column never
    // changes the clustering.
    const auto m = makeBlobs({{0, 0, 0}, {10, 10, 10}}, 5, 0.3);
    const KMeans kmeans;
    EXPECT_NEAR(averageProportionOfNonOverlap(m, kmeans, 2), 0.0,
                1e-9);
}

TEST(Stability, ApnDetectsColumnDependentStructure)
{
    // Separation lives in one dimension only: dropping it destroys
    // the clusters.
    const auto m = makeBlobs({{0, 0}, {10, 0}}, 6, 0.3);
    const KMeans kmeans;
    const double apn = averageProportionOfNonOverlap(m, kmeans, 2);
    EXPECT_GT(apn, 0.1);
}

TEST(Stability, AdDecreasesWithK)
{
    // More clusters -> smaller within-cluster distances, AD falls
    // (the paper's "AD indicates a strong bias for higher k").
    const auto m = makeBlobs(
        {{0, 0}, {6, 0}, {0, 6}, {6, 6}, {3, 12}}, 4, 1.0, 13);
    const KMeans kmeans;
    const double ad2 = averageDistance(m, kmeans, 2);
    const double ad5 = averageDistance(m, kmeans, 5);
    const double ad8 = averageDistance(m, kmeans, 8);
    EXPECT_GT(ad2, ad5);
    EXPECT_GT(ad5, ad8);
}

TEST(Stability, NeedsAtLeastTwoColumns)
{
    FeatureMatrix m({"only"});
    m.addRow("a", {1.0});
    m.addRow("b", {2.0});
    const KMeans kmeans;
    EXPECT_THROW(averageProportionOfNonOverlap(m, kmeans, 2),
                 FatalError);
    EXPECT_THROW(averageDistance(m, kmeans, 2), FatalError);
}

TEST(Sweep, FindsPlantedClusterCount)
{
    const auto m = makeBlobs(
        {{0, 0, 0}, {10, 0, 0}, {0, 10, 0}, {0, 0, 10}, {7, 7, 7}},
        4, 0.4, 29);
    const KMeans kmeans;
    const Pam pam;
    const HierarchicalClustering hier(Linkage::Average);
    const ValidationSweep sweep({&kmeans, &pam, &hier}, 2, 8);
    const auto points = sweep.run(m);
    EXPECT_EQ(points.size(), 3u * 7u);
    EXPECT_EQ(ValidationSweep::bestInternalK(points), 5);
}

TEST(Sweep, PointsCarryAlgorithmNames)
{
    const auto m = threeBlobs();
    const KMeans kmeans;
    const ValidationSweep sweep({&kmeans}, 2, 3);
    const auto points = sweep.run(m);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].algorithm, "K-Means");
    EXPECT_EQ(points[0].k, 2);
    EXPECT_EQ(points[1].k, 3);
}

TEST(Sweep, InvalidConfigurationIsFatal)
{
    const KMeans kmeans;
    EXPECT_THROW(ValidationSweep({}, 2, 5), FatalError);
    EXPECT_THROW(ValidationSweep({&kmeans}, 1, 5), FatalError);
    EXPECT_THROW(ValidationSweep({&kmeans}, 5, 2), FatalError);
    const auto m = threeBlobs();
    const ValidationSweep too_big({&kmeans}, 2, 100);
    EXPECT_THROW(too_big.run(m), FatalError);
}

TEST(Sweep, BestInternalKOnEmptyIsFatal)
{
    EXPECT_THROW(ValidationSweep::bestInternalK({}), FatalError);
}

} // namespace
} // namespace mbs
