/**
 * @file
 * Tests for agglomerative hierarchical clustering and dendrograms.
 */

#include <gtest/gtest.h>

#include <set>

#include "blobs.hh"
#include "cluster/hierarchical.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

using testutil::blobLabels;
using testutil::makeBlobs;

TEST(Hierarchical, RecoversBlobsWithEveryLinkage)
{
    const auto m = makeBlobs({{0, 0}, {10, 10}, {-10, 10}}, 6, 0.5);
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        const HierarchicalClustering hc(linkage);
        const auto result = hc.fit(m, 3);
        EXPECT_TRUE(samePartition(result.labels, blobLabels(3, 6)))
            << linkageName(linkage);
    }
}

TEST(Hierarchical, DendrogramHasNMinusOneMerges)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 4, 0.3);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    EXPECT_EQ(tree.leafCount(), 8u);
    EXPECT_EQ(tree.merges().size(), 7u);
}

TEST(Hierarchical, MergeHeightsAreNonDecreasingForAverage)
{
    const auto m = makeBlobs({{0, 0}, {6, 1}, {3, 9}}, 5, 0.8, 7);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    double prev = 0.0;
    for (const auto &step : tree.merges()) {
        EXPECT_GE(step.height, prev - 1e-9);
        prev = step.height;
    }
}

TEST(Hierarchical, CutExtremes)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 3, 0.3);
    const auto tree =
        HierarchicalClustering(Linkage::Complete).buildDendrogram(m);
    const auto all_one = tree.cut(1);
    for (int label : all_one)
        EXPECT_EQ(label, 0);
    const auto singletons = tree.cut(6);
    std::set<int> distinct(singletons.begin(), singletons.end());
    EXPECT_EQ(distinct.size(), 6u);
}

TEST(Hierarchical, CutOutOfRangeIsFatal)
{
    const auto m = makeBlobs({{0, 0}}, 3, 0.1);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    EXPECT_THROW(tree.cut(0), FatalError);
    EXPECT_THROW(tree.cut(4), FatalError);
}

TEST(Hierarchical, CutsAreNested)
{
    // A hierarchical cut at k is a refinement of the cut at k-1.
    const auto m = makeBlobs({{0, 0}, {4, 4}, {9, 1}, {2, 9}}, 4,
                             0.9, 11);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    for (int k = 2; k <= 8; ++k) {
        const auto coarse = tree.cut(k - 1);
        const auto fine = tree.cut(k);
        // Same fine-cluster => same coarse-cluster.
        for (std::size_t i = 0; i < fine.size(); ++i) {
            for (std::size_t j = 0; j < fine.size(); ++j) {
                if (fine[i] == fine[j])
                    EXPECT_EQ(coarse[i], coarse[j]);
            }
        }
    }
}

TEST(Hierarchical, RenderListsAllLeaves)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 2, 0.2);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    const auto out = tree.render(m.rowNames());
    for (const auto &name : m.rowNames())
        EXPECT_NE(out.find(name), std::string::npos) << name;
    EXPECT_NE(out.find("merge @"), std::string::npos);
}

TEST(Hierarchical, RenderRejectsWrongNameCount)
{
    const auto m = makeBlobs({{0, 0}}, 3, 0.1);
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    EXPECT_THROW(tree.render({"only-one"}), FatalError);
}

TEST(Hierarchical, SingleLeafDendrogram)
{
    FeatureMatrix m({"x"});
    m.addRow("only", {1.0});
    const auto tree =
        HierarchicalClustering(Linkage::Average).buildDendrogram(m);
    EXPECT_EQ(tree.leafCount(), 1u);
    EXPECT_TRUE(tree.merges().empty());
    EXPECT_EQ(tree.cut(1), std::vector<int>{0});
}

TEST(Hierarchical, SingleLinkageChains)
{
    // A chain of close points plus one far point: single linkage
    // keeps the chain together at k=2.
    FeatureMatrix m({"x"});
    m.addRow("a", {0.0});
    m.addRow("b", {1.0});
    m.addRow("c", {2.0});
    m.addRow("d", {3.0});
    m.addRow("far", {50.0});
    const auto labels =
        HierarchicalClustering(Linkage::Single).fit(m, 2).labels;
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_EQ(labels[2], labels[3]);
    EXPECT_NE(labels[0], labels[4]);
}

TEST(Hierarchical, NamesIncludeLinkage)
{
    EXPECT_EQ(HierarchicalClustering(Linkage::Average).name(),
              "Hierarchical (average)");
    EXPECT_EQ(HierarchicalClustering(Linkage::Ward).name(),
              "Hierarchical (Ward)");
}

} // namespace
} // namespace mbs
