/**
 * @file
 * Shared synthetic blob generator for clustering tests.
 */

#ifndef MBS_TESTS_CLUSTER_BLOBS_HH
#define MBS_TESTS_CLUSTER_BLOBS_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/strings.hh"
#include "stats/feature_matrix.hh"

namespace mbs {
namespace testutil {

/**
 * Generate @p per_blob points around each of @p centers with
 * Gaussian radius @p spread, named "blob<b>-<i>".
 */
inline FeatureMatrix
makeBlobs(const std::vector<std::vector<double>> &centers,
          int per_blob, double spread, std::uint64_t seed = 5)
{
    Xoshiro256StarStar rng(seed);
    std::vector<std::string> names;
    for (std::size_t d = 0; d < centers.front().size(); ++d)
        names.push_back(strformat("f%zu", d));
    FeatureMatrix m(std::move(names));
    for (std::size_t b = 0; b < centers.size(); ++b) {
        for (int i = 0; i < per_blob; ++i) {
            std::vector<double> row = centers[b];
            for (double &v : row)
                v += rng.gaussian(0.0, spread);
            m.addRow(strformat("blob%zu-%d", b, i), std::move(row));
        }
    }
    return m;
}

/** Ground-truth labels matching makeBlobs order. */
inline std::vector<int>
blobLabels(std::size_t blobs, int per_blob)
{
    std::vector<int> labels;
    for (std::size_t b = 0; b < blobs; ++b) {
        for (int i = 0; i < per_blob; ++i)
            labels.push_back(int(b));
    }
    return labels;
}

} // namespace testutil
} // namespace mbs

#endif // MBS_TESTS_CLUSTER_BLOBS_HH
