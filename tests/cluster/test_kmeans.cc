/**
 * @file
 * Tests for K-Means clustering.
 */

#include <gtest/gtest.h>

#include "blobs.hh"
#include "cluster/kmeans.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

using testutil::blobLabels;
using testutil::makeBlobs;

TEST(KMeans, RecoversWellSeparatedBlobs)
{
    const auto m = makeBlobs({{0, 0}, {10, 10}, {-10, 10}}, 6, 0.5);
    const KMeans kmeans;
    const auto result = kmeans.fit(m, 3);
    EXPECT_EQ(result.k, 3);
    EXPECT_TRUE(samePartition(result.labels, blobLabels(3, 6)));
}

TEST(KMeans, KOneGroupsEverything)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 4, 0.3);
    const auto result = KMeans().fit(m, 1);
    for (int label : result.labels)
        EXPECT_EQ(label, 0);
}

TEST(KMeans, KEqualsNSeparatesEverything)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 2, 0.1);
    const auto result = KMeans().fit(m, 4);
    std::set<int> distinct(result.labels.begin(), result.labels.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, InvalidKIsFatal)
{
    const auto m = makeBlobs({{0, 0}}, 3, 0.1);
    EXPECT_THROW(KMeans().fit(m, 0), FatalError);
    EXPECT_THROW(KMeans().fit(m, 4), FatalError);
}

TEST(KMeans, DeterministicForSeed)
{
    const auto m = makeBlobs({{0, 0}, {6, 1}, {1, 7}}, 5, 1.0);
    KMeansOptions opts;
    opts.seed = 99;
    const auto a = KMeans(opts).fit(m, 3);
    const auto b = KMeans(opts).fit(m, 3);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, LabelsAreCanonical)
{
    const auto m = makeBlobs({{0, 0}, {8, 8}}, 4, 0.3);
    const auto result = KMeans().fit(m, 2);
    EXPECT_EQ(result.labels.front(), 0);
    EXPECT_EQ(result.labels, canonicalizeLabels(result.labels));
}

TEST(KMeans, InertiaDecreasesWithK)
{
    const auto m = makeBlobs({{0, 0}, {4, 4}, {8, 0}, {4, -4}}, 5,
                             1.0);
    const KMeans kmeans;
    double prev = 1e18;
    for (int k = 1; k <= 6; ++k) {
        const double inertia = kmeans.fit(m, k).inertia;
        EXPECT_LE(inertia, prev + 1e-9) << "k=" << k;
        prev = inertia;
    }
}

TEST(KMeans, MoreRestartsNeverWorsenInertia)
{
    const auto m = makeBlobs(
        {{0, 0}, {3, 3}, {6, 0}, {3, -3}, {9, 3}}, 4, 1.2, 17);
    KMeansOptions one;
    one.restarts = 1;
    KMeansOptions many;
    many.restarts = 20;
    EXPECT_LE(KMeans(many).fit(m, 5).inertia,
              KMeans(one).fit(m, 5).inertia + 1e-9);
}

TEST(KMeans, InvalidOptionsAreFatal)
{
    KMeansOptions bad;
    bad.restarts = 0;
    EXPECT_THROW(KMeans{bad}, FatalError);
    bad.restarts = 1;
    bad.maxIterations = 0;
    EXPECT_THROW(KMeans{bad}, FatalError);
}

TEST(KMeans, NameIsStable)
{
    EXPECT_EQ(KMeans().name(), "K-Means");
}

/** Property: every fit yields exactly k non-empty clusters when the
 *  data has at least k distinct points. */
class KMeansClusterCount : public ::testing::TestWithParam<int>
{
};

TEST_P(KMeansClusterCount, ProducesKClusters)
{
    const auto m = makeBlobs(
        {{0, 0}, {5, 0}, {0, 5}, {5, 5}, {10, 2}, {2, 10}}, 4, 0.8,
        23);
    const int k = GetParam();
    const auto result = KMeans().fit(m, k);
    std::set<int> distinct(result.labels.begin(),
                           result.labels.end());
    EXPECT_EQ(int(distinct.size()), k);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansClusterCount,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12));

} // namespace
} // namespace mbs
