/**
 * @file
 * Tests for Partitioning Around Medoids.
 */

#include <gtest/gtest.h>

#include <set>

#include "blobs.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

using testutil::blobLabels;
using testutil::makeBlobs;

TEST(Pam, RecoversWellSeparatedBlobs)
{
    const auto m = makeBlobs({{0, 0}, {10, 10}, {-10, 10}}, 6, 0.5);
    const auto result = Pam().fit(m, 3);
    EXPECT_TRUE(samePartition(result.labels, blobLabels(3, 6)));
}

TEST(Pam, IsFullyDeterministic)
{
    const auto m = makeBlobs({{0, 0}, {6, 2}, {2, 8}}, 5, 1.0);
    const auto a = Pam().fit(m, 3);
    const auto b = Pam().fit(m, 3);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Pam, InvalidKIsFatal)
{
    const auto m = makeBlobs({{0, 0}}, 3, 0.1);
    EXPECT_THROW(Pam().fit(m, 0), FatalError);
    EXPECT_THROW(Pam().fit(m, 4), FatalError);
}

TEST(Pam, KOneGroupsEverything)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 4, 0.3);
    const auto result = Pam().fit(m, 1);
    for (int label : result.labels)
        EXPECT_EQ(label, 0);
    EXPECT_GT(result.inertia, 0.0);
}

TEST(Pam, KEqualsNGivesZeroCost)
{
    const auto m = makeBlobs({{0, 0}, {5, 5}}, 2, 0.2);
    const auto result = Pam().fit(m, 4);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(Pam, CostDecreasesWithK)
{
    const auto m = makeBlobs({{0, 0}, {4, 4}, {8, 0}}, 6, 1.0, 31);
    double prev = 1e18;
    for (int k = 1; k <= 6; ++k) {
        const double cost = Pam().fit(m, k).inertia;
        EXPECT_LE(cost, prev + 1e-9);
        prev = cost;
    }
}

TEST(Pam, AgreesWithKMeansOnCleanBlobs)
{
    // The paper omits PAM's figure because it matches K-Means; on
    // well-separated data the two must agree.
    const auto m = makeBlobs(
        {{0, 0}, {12, 0}, {0, 12}, {12, 12}}, 5, 0.6, 41);
    const auto pam = Pam().fit(m, 4);
    const auto kmeans = KMeans().fit(m, 4);
    EXPECT_TRUE(samePartition(pam.labels, kmeans.labels));
}

TEST(Pam, MedoidAssignmentIsNearest)
{
    const auto m = makeBlobs({{0, 0}, {10, 0}}, 6, 0.5, 43);
    const auto result = Pam().fit(m, 2);
    // Points from the same blob share labels.
    EXPECT_TRUE(samePartition(result.labels, blobLabels(2, 6)));
}

TEST(Pam, ProducesKClusters)
{
    const auto m = makeBlobs(
        {{0, 0}, {5, 0}, {0, 5}, {5, 5}, {10, 2}}, 4, 0.7, 47);
    for (int k = 1; k <= 8; ++k) {
        const auto result = Pam().fit(m, k);
        std::set<int> distinct(result.labels.begin(),
                               result.labels.end());
        EXPECT_EQ(int(distinct.size()), k);
    }
}

TEST(Pam, NameIsStable)
{
    EXPECT_EQ(Pam().name(), "PAM");
}

} // namespace
} // namespace mbs
