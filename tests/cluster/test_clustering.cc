/**
 * @file
 * Tests for shared clustering helpers.
 */

#include <gtest/gtest.h>

#include "cluster/clustering.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

TEST(Canonicalize, FirstOccurrenceOrder)
{
    EXPECT_EQ(canonicalizeLabels({5, 5, 2, 5, 9}),
              (std::vector<int>{0, 0, 1, 0, 2}));
}

TEST(Canonicalize, AlreadyCanonicalIsIdentity)
{
    const std::vector<int> labels{0, 1, 1, 2, 0};
    EXPECT_EQ(canonicalizeLabels(labels), labels);
}

TEST(Canonicalize, EmptyIsEmpty)
{
    EXPECT_TRUE(canonicalizeLabels({}).empty());
}

TEST(SamePartition, DetectsRelabeledEquality)
{
    EXPECT_TRUE(samePartition({0, 0, 1, 2}, {7, 7, 3, 1}));
    EXPECT_FALSE(samePartition({0, 0, 1, 2}, {0, 1, 1, 2}));
    EXPECT_FALSE(samePartition({0, 1}, {0, 1, 1}));
}

TEST(GroupByCluster, GroupsIndices)
{
    const auto groups = groupByCluster({1, 0, 1, 2}, 3);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0], (std::vector<std::size_t>{1}));
    EXPECT_EQ(groups[1], (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(groups[2], (std::vector<std::size_t>{3}));
}

TEST(GroupByCluster, OutOfRangeLabelIsFatal)
{
    EXPECT_THROW(groupByCluster({0, 3}, 3), FatalError);
    EXPECT_THROW(groupByCluster({0}, 0), FatalError);
}

} // namespace
} // namespace mbs
