/**
 * @file
 * Resampling tests: uniform-grid bit-exact passthrough, Level
 * interpolation, Rate total conservation, and input validation.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ingest/resample.hh"

namespace mbs {
namespace ingest {
namespace {

TEST(Resample, UniformGridPassesThroughBitExact)
{
    const double tick = 0.1;
    std::vector<double> times, values;
    for (int i = 0; i < 100; ++i) {
        times.push_back(double(i) * tick);
        values.push_back(0.1234567890123456789 * double(i));
    }
    const TimeSeries out = resampleLevel(times, values, tick);
    ASSERT_EQ(out.size(), values.size());
    EXPECT_EQ(out.interval(), tick);
    for (std::size_t i = 0; i < values.size(); ++i) {
        // Bit-exact, not approximately equal: this property is what
        // makes the export/ingest round trip byte-identical.
        EXPECT_EQ(out[i], values[i]) << "sample " << i;
    }
}

TEST(Resample, LevelInterpolatesBetweenSamples)
{
    // Samples at 0 and 0.2 seconds; ticks at 0, 0.1, 0.2.
    const TimeSeries out =
        resampleLevel({0.0, 0.2}, {1.0, 3.0}, 0.1);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Resample, LevelClampsOutsideTheSampledRange)
{
    // First sample at 0.15s: ticks 0 and 0.1 clamp to its value.
    const TimeSeries out =
        resampleLevel({0.15, 0.25}, {5.0, 7.0}, 0.1);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 5.0);
    EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(Resample, RateConservesTheTotal)
{
    // Irregular sampling; the resampled total must match the input.
    const std::vector<double> times{0.07, 0.18, 0.33, 0.4};
    const std::vector<double> values{100.0, 250.0, 75.0, 30.0};
    const TimeSeries out = resampleRate(times, values, 0.1);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
        total += out[i];
    // The final tick extends past times.back(), so the full total is
    // captured.
    EXPECT_NEAR(total, rateTotal(values), 1e-9);
}

TEST(Resample, RateOnUniformGridPassesThrough)
{
    const std::vector<double> times{0.0, 0.1, 0.2};
    const std::vector<double> values{10.0, 20.0, 30.0};
    const TimeSeries out = resampleRate(times, values, 0.1);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 10.0);
    EXPECT_EQ(out[1], 20.0);
    EXPECT_EQ(out[2], 30.0);
}

TEST(Resample, GridSizeCoversTheLastSample)
{
    EXPECT_EQ(resampleGridSize({0.0, 0.1, 0.2}, 0.1), 3u);
    EXPECT_EQ(resampleGridSize({0.0, 0.25}, 0.1), 3u);
    EXPECT_EQ(resampleGridSize({0.05}, 0.1), 1u);
}

TEST(Resample, RejectsBadInputs)
{
    EXPECT_THROW(resampleLevel({}, {}, 0.1), FatalError);
    EXPECT_THROW(resampleLevel({0.0}, {1.0}, 0.0), FatalError);
    EXPECT_THROW(resampleLevel({0.0, 0.1}, {1.0}, 0.1), FatalError);
    EXPECT_THROW(resampleLevel({0.1, 0.1}, {1.0, 2.0}, 0.1),
                 FatalError);
    EXPECT_THROW(resampleLevel({0.2, 0.1}, {1.0, 2.0}, 0.1),
                 FatalError);
}

} // namespace
} // namespace ingest
} // namespace mbs
