/**
 * @file
 * Trace-bundle writer/reader tests: the bit-exact round trip, alias
 * and unit normalization over hand-written bundles, resampling of
 * off-grid traces, scalar derivation from Rate columns, and
 * memoization through a ProfileCache.
 */

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "obs/metrics.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"
#include "ingest/schema.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace ingest {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on destruction. */
class BundleTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-bundle-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
        fs::create_directories(root);
    }

    void TearDown() override { fs::remove_all(root); }

    fs::path root;
};

/** A profile with awkward (non-round) values in every series. */
BenchmarkProfile
syntheticProfile(const std::string &name, std::uint64_t seed,
                 std::size_t samples, double tick)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "Synthetic Suite";
    Xoshiro256StarStar rng(seed);
    p.runtimeSeconds = tick * double(samples) * rng.uniform();
    p.instructions = 1e9 * rng.uniform();
    p.ipc = 3.0 * rng.uniform();
    p.cacheMpki = 40.0 * rng.uniform();
    p.branchMpki = 8.0 * rng.uniform();
    forEachMetricSeries(p.series, [&](const char *, TimeSeries &s) {
        std::vector<double> values;
        values.reserve(samples);
        for (std::size_t i = 0; i < samples; ++i)
            values.push_back(rng.uniform());
        s = TimeSeries(tick, std::move(values));
    });
    return p;
}

void
expectProfilesBitIdentical(const BenchmarkProfile &a,
                           const BenchmarkProfile &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.suite, b.suite);
    EXPECT_EQ(a.runtimeSeconds, b.runtimeSeconds);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cacheMpki, b.cacheMpki);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    forEachMetricSeries(a.series, [&](const char *name,
                                      const TimeSeries &sa) {
        forEachMetricSeries(b.series, [&](const char *other,
                                          const TimeSeries &sb) {
            if (std::string(name) != other)
                return;
            ASSERT_EQ(sa.size(), sb.size()) << name;
            EXPECT_EQ(sa.interval(), sb.interval()) << name;
            for (std::size_t i = 0; i < sa.size(); ++i)
                ASSERT_EQ(sa[i], sb[i]) << name << " sample " << i;
        });
    });
}

TEST_F(BundleTest, WriteReadRoundTripIsBitExact)
{
    const SocConfig config = SocConfig::snapdragon888();
    TraceBundleWriter writer(config, 0.1);
    std::vector<BenchmarkProfile> original;
    original.push_back(syntheticProfile("Alpha Bench", 1, 64, 0.1));
    original.push_back(syntheticProfile("Beta Bench", 2, 113, 0.1));
    for (const auto &p : original)
        writer.add(p, 30.0, true);
    writer.write(root);

    const TraceBundleReader reader;
    const IngestResult result = reader.read(root);
    ASSERT_EQ(result.profiles.size(), original.size());
    EXPECT_FALSE(result.fromCache);
    EXPECT_EQ(result.manifest.socConfigDigest, config.digest());
    EXPECT_EQ(result.stats.aliasHits, 0u);
    for (std::size_t i = 0; i < original.size(); ++i)
        expectProfilesBitIdentical(original[i], result.profiles[i]);
}

TEST_F(BundleTest, ManifestCarriesWorkloadFacts)
{
    TraceBundleWriter writer(SocConfig::snapdragon888(), 0.1);
    writer.add(syntheticProfile("Solo", 3, 16, 0.1), 45.5, false);
    writer.write(root);

    const IngestResult result = TraceBundleReader().read(root);
    ASSERT_EQ(result.manifest.benchmarks.size(), 1u);
    EXPECT_DOUBLE_EQ(
        result.manifest.benchmarks[0].plannedRuntimeSeconds, 45.5);
    EXPECT_FALSE(
        result.manifest.benchmarks[0].individuallyExecutable);
}

/** Write a minimal hand-rolled bundle with one trace file. */
void
writeBundle(const fs::path &root, const std::string &manifest,
            const std::string &csv,
            const std::string &file = "traces/t.csv")
{
    fs::create_directories((root / file).parent_path());
    std::ofstream(root / "manifest.json") << manifest;
    std::ofstream(root / file) << csv;
}

std::string
minimalManifest(const std::string &extraBenchFields = "")
{
    return std::string("{\n")
        + "  \"schema\": \"mbs.trace-bundle\",\n"
          "  \"schema_version\": 1,\n"
          "  \"soc\": {\"name\": \"Test SoC\",\n"
          "    \"config_digest\": \"0x00000000000000ab\",\n"
          "    \"gpu_max_freq_hz\": 840e6,\n"
          "    \"aie_max_freq_hz\": 1000e6},\n"
          "  \"sample_period_seconds\": 0.1,\n"
          "  \"benchmarks\": [{\"name\": \"T\", \"suite\": \"S\",\n"
          "    \"file\": \"traces/t.csv\""
        + extraBenchFields + "}]\n}\n";
}

TEST_F(BundleTest, AliasedPercentColumnsAreNormalized)
{
    // A vendor-style trace: percent CPU load, KB/s storage reads,
    // MHz GPU frequency. Everything else is absent (lax mode).
    writeBundle(root, minimalManifest(),
                "time_s,CPU Utilization %,Read Throughput (KB/s),"
                "GPU Frequency (MHz)\n"
                "0.0,50,1024,420\n"
                "0.1,100,2048,840\n");
    IngestOptions options;
    options.lax = true;
    const IngestResult result = TraceBundleReader(options).read(root);
    ASSERT_EQ(result.profiles.size(), 1u);
    const BenchmarkProfile &p = result.profiles[0];
    EXPECT_EQ(result.stats.aliasHits, 3u);
    EXPECT_EQ(result.stats.rows, 2u);
    ASSERT_EQ(p.series.cpuLoad.size(), 2u);
    EXPECT_DOUBLE_EQ(p.series.cpuLoad[0], 0.5);
    EXPECT_DOUBLE_EQ(p.series.cpuLoad[1], 1.0);
    EXPECT_DOUBLE_EQ(p.series.storageReadBw[0], 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(p.series.gpuFrequency[0], 0.5);
    EXPECT_DOUBLE_EQ(p.series.gpuFrequency[1], 1.0);
    // Absent counters are gap-filled with zeros under --lax.
    ASSERT_EQ(p.series.aieLoad.size(), 2u);
    EXPECT_EQ(p.series.aieLoad[0], 0.0);
}

TEST_F(BundleTest, OffGridTracesAreResampledAndScalarsDerived)
{
    // Irregular timestamps, no summary block: series interpolate to
    // the 0.1s grid and the scalars derive from the Rate columns.
    writeBundle(root, minimalManifest(),
                "time_s,cpu.load,cpu.instructions,cpu.cycles\n"
                "0.0,0.2,1000,2000\n"
                "0.15,0.4,1500,2500\n"
                "0.3,0.6,500,500\n");
    IngestOptions options;
    options.lax = true;
    const IngestResult result = TraceBundleReader(options).read(root);
    const BenchmarkProfile &p = result.profiles[0];
    ASSERT_EQ(p.series.cpuLoad.size(), 4u);
    EXPECT_DOUBLE_EQ(p.series.cpuLoad[0], 0.2);
    EXPECT_NEAR(p.series.cpuLoad[1], 0.2 + 0.2 * (0.10 / 0.15),
                1e-12);
    EXPECT_DOUBLE_EQ(p.series.cpuLoad[3], 0.6);
    EXPECT_DOUBLE_EQ(p.instructions, 3000.0);
    EXPECT_DOUBLE_EQ(p.ipc, 3000.0 / 5000.0);
}

TEST_F(BundleTest, TickOverrideResamples)
{
    TraceBundleWriter writer(SocConfig::snapdragon888(), 0.1);
    writer.add(syntheticProfile("Fine", 4, 40, 0.1), 4.0, true);
    writer.write(root);

    IngestOptions options;
    options.tickSeconds = 0.2;
    const IngestResult result = TraceBundleReader(options).read(root);
    EXPECT_DOUBLE_EQ(result.tickSeconds, 0.2);
    // 40 samples at 0.1s span 3.9s -> 20 ticks at 0.2s.
    EXPECT_EQ(result.profiles[0].series.cpuLoad.size(), 20u);
    EXPECT_DOUBLE_EQ(result.profiles[0].series.cpuLoad.interval(),
                     0.2);
}

TEST_F(BundleTest, CacheMemoizesByBundleDigest)
{
    TraceBundleWriter writer(SocConfig::snapdragon888(), 0.1);
    writer.add(syntheticProfile("Cached", 5, 32, 0.1), 10.0, true);
    writer.write(root / "bundle");

    ProfileStore store(root / "cache");
    IngestOptions options;
    options.cache = &store;

    const IngestResult cold =
        TraceBundleReader(options).read(root / "bundle");
    EXPECT_FALSE(cold.fromCache);
    const IngestResult warm =
        TraceBundleReader(options).read(root / "bundle");
    EXPECT_TRUE(warm.fromCache);
    ASSERT_EQ(warm.profiles.size(), 1u);
    expectProfilesBitIdentical(cold.profiles[0], warm.profiles[0]);

    // Touching a trace byte changes the digest: a miss again.
    std::ofstream(root / "bundle" / "traces" / "cached.csv",
                  std::ios::app)
        << "# trailing comment\n";
    // (Appending a junk line actually breaks parsing; just check the
    // digest changed by reading with lax off and expecting a fresh
    // parse error rather than a stale cache hit.)
    EXPECT_THROW(TraceBundleReader(options).read(root / "bundle"),
                 FatalError);
}

TEST_F(BundleTest, ObsCountersAccumulate)
{
    auto &metrics = obs::MetricsRegistry::instance();
    const auto rows0 = metrics.counter("ingest.rows").value();
    const auto bundles0 = metrics.counter("ingest.bundles").value();

    TraceBundleWriter writer(SocConfig::snapdragon888(), 0.1);
    writer.add(syntheticProfile("Obs", 6, 25, 0.1), 2.5, true);
    writer.write(root);
    TraceBundleReader().read(root);

    EXPECT_EQ(metrics.counter("ingest.rows").value(), rows0 + 25);
    EXPECT_EQ(metrics.counter("ingest.bundles").value(),
              bundles0 + 1);
}

} // namespace
} // namespace ingest
} // namespace mbs
