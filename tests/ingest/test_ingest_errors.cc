/**
 * @file
 * Negative-path ingestion tests: every malformed bundle dies with a
 * positioned `<file>:<line>:` diagnostic, structural faults are fatal
 * even under --lax, and recoverable faults are dropped-and-counted
 * only when --lax asks for it.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ingest/bundle_reader.hh"

namespace mbs {
namespace ingest {
namespace {

namespace fs = std::filesystem;

class IngestErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-ingest-err-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
        fs::create_directories(root / "traces");
    }

    void TearDown() override { fs::remove_all(root); }

    void writeManifest(int schemaVersion = 1)
    {
        std::ofstream(root / "manifest.json")
            << "{\n"
               "  \"schema\": \"mbs.trace-bundle\",\n"
               "  \"schema_version\": "
            << schemaVersion
            << ",\n"
               "  \"soc\": {\"name\": \"Test SoC\",\n"
               "    \"config_digest\": \"0x00000000000000ab\",\n"
               "    \"gpu_max_freq_hz\": 840e6,\n"
               "    \"aie_max_freq_hz\": 1000e6},\n"
               "  \"sample_period_seconds\": 0.1,\n"
               "  \"benchmarks\": [{\"name\": \"T\",\n"
               "    \"suite\": \"S\", \"file\": \"traces/t.csv\"}]\n"
               "}\n";
    }

    void writeTrace(const std::string &csv)
    {
        std::ofstream(root / "traces" / "t.csv") << csv;
    }

    /** Run a reader and return the FatalError message it dies with. */
    std::string readerDies(const IngestOptions &options = {})
    {
        try {
            TraceBundleReader(options).read(root);
        } catch (const FatalError &e) {
            return e.what();
        }
        ADD_FAILURE() << "expected FatalError, but read() succeeded";
        return "";
    }

    static void expectContains(const std::string &msg,
                               const std::string &needle)
    {
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "message: " << msg;
    }

    /** The positioned prefix every trace diagnostic must carry. */
    std::string tracePos(int line) const
    {
        return (root / "traces" / "t.csv").string() + ":" +
               std::to_string(line) + ":";
    }

    fs::path root;
};

TEST_F(IngestErrorTest, MissingManifestDies)
{
    const std::string msg = readerDies();
    expectContains(msg, "cannot open trace-bundle manifest");
    expectContains(msg, (root / "manifest.json").string());
}

TEST_F(IngestErrorTest, SchemaVersionMismatchDies)
{
    writeManifest(/*schemaVersion=*/2);
    writeTrace("time_s,cpu.load\n0.0,0.5\n");
    const std::string msg = readerDies();
    expectContains(msg, (root / "manifest.json").string() + ":");
    expectContains(msg, "unsupported schema_version 2 (supported: 1)");
}

TEST_F(IngestErrorTest, WrongSchemaNameDies)
{
    std::ofstream(root / "manifest.json")
        << "{\"schema\": \"other.format\", \"schema_version\": 1,\n"
           "\"sample_period_seconds\": 0.1,\n"
           "\"benchmarks\": [{\"name\": \"T\", \"suite\": \"S\",\n"
           "\"file\": \"traces/t.csv\"}]}\n";
    expectContains(readerDies(),
                   "schema 'other.format' is not 'mbs.trace-bundle'");
}

TEST_F(IngestErrorTest, MissingTraceFileDies)
{
    writeManifest();
    // traces/t.csv intentionally absent.
    const std::string msg = readerDies();
    expectContains(msg, "cannot open trace file");
    expectContains(msg, (root / "traces" / "t.csv").string());
}

TEST_F(IngestErrorTest, EmptyTraceFileDies)
{
    writeManifest();
    writeTrace("");
    expectContains(readerDies(),
                   tracePos(1) + " empty trace file (no header row)");
}

TEST_F(IngestErrorTest, TruncatedRowDies)
{
    // The last row is cut off mid-record (a truncated download).
    writeManifest();
    writeTrace("time_s,cpu.load,gpu.load\n"
               "0.0,0.5,0.25\n"
               "0.1,0.6\n");
    expectContains(readerDies(),
                   tracePos(3) + " expected 3 fields, got 2");
}

TEST_F(IngestErrorTest, DuplicateTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,0.6\n0.1,0.7\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(4) + " non-monotonic timestamp 0.1 (previous 0.1)");
}

TEST_F(IngestErrorTest, BackwardsTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.2,0.6\n0.1,0.7\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(4) + " non-monotonic timestamp 0.1 (previous 0.2)");
}

TEST_F(IngestErrorTest, MalformedTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\nbogus,0.6\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(readerDies(lax),
                   tracePos(3) + " malformed timestamp 'bogus'");
}

TEST_F(IngestErrorTest, UnknownCounterColumnDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load,wifi.signal\n0.0,0.5,42\n");
    expectContains(
        readerDies(),
        tracePos(1) + " unknown counter column 'wifi.signal'");
}

TEST_F(IngestErrorTest, DuplicateCounterColumnDiesEvenUnderLax)
{
    // Two headers normalizing to the same canonical counter.
    writeManifest();
    writeTrace("time_s,cpu.load,CPU Utilization %\n0.0,0.5,50\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(1) + " duplicate column for counter 'cpu.load'");
}

TEST_F(IngestErrorTest, NanSampleDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,nan\n");
    expectContains(readerDies(),
                   tracePos(3) + " non-finite sample for 'cpu.load'");
}

TEST_F(IngestErrorTest, InfSampleDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,gpu.load\n0.0,0.5\n0.1,inf\n");
    expectContains(readerDies(),
                   tracePos(3) + " non-finite sample for 'gpu.load'");
}

TEST_F(IngestErrorTest, MalformedNumberDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,oops\n");
    expectContains(readerDies(),
                   tracePos(3) + " malformed number 'oops'");
}

TEST_F(IngestErrorTest, MissingCanonicalColumnDiesWhenStrict)
{
    // A trace carrying only cpu.load: strict mode demands the full
    // canonical set, pointing at the first one it cannot find.
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n");
    expectContains(readerDies(),
                   tracePos(1) + " missing counter column '");
}

TEST_F(IngestErrorTest, AllRowsBadDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,nan\n0.1,inf\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(readerDies(lax), "no samples");
}

TEST_F(IngestErrorTest, LaxDropsAndCountsRecoverableFaults)
{
    writeManifest();
    writeTrace("time_s,cpu.load,wifi.signal\n"
               "0.0,0.5,1\n"
               "0.1,nan,2\n"   // dropped: non-finite sample
               "0.2,0.7\n"     // dropped: short row
               "0.3,0.8,4\n");
    IngestOptions options;
    options.lax = true;
    const IngestResult result = TraceBundleReader(options).read(root);
    EXPECT_EQ(result.stats.rows, 2u);
    // Two bad rows plus the zero-gap-filled absent canonical columns.
    EXPECT_GE(result.stats.droppedSamples, 2u);
    ASSERT_EQ(result.profiles.size(), 1u);
    ASSERT_EQ(result.profiles[0].series.cpuLoad.size(), 4u);
    EXPECT_DOUBLE_EQ(result.profiles[0].series.cpuLoad[0], 0.5);
    EXPECT_DOUBLE_EQ(result.profiles[0].series.cpuLoad[3], 0.8);
}

TEST_F(IngestErrorTest, TimeColumnMustComeFirst)
{
    writeManifest();
    writeTrace("cpu.load,time_s\n0.5,0.0\n");
    expectContains(readerDies(),
                   tracePos(1) + " first column must be a time column");
}

TEST_F(IngestErrorTest, ManifestWithoutBenchmarksDies)
{
    std::ofstream(root / "manifest.json")
        << "{\"schema\": \"mbs.trace-bundle\", \"schema_version\": 1,\n"
           "\"sample_period_seconds\": 0.1, \"benchmarks\": []}\n";
    expectContains(readerDies(), "'benchmarks' is empty");
}

} // namespace
} // namespace ingest
} // namespace mbs
