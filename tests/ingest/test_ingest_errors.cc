/**
 * @file
 * Negative-path ingestion tests: every malformed bundle dies with a
 * positioned `<file>:<line>:` diagnostic, structural faults are fatal
 * even under --lax, and recoverable faults are dropped-and-counted
 * only when --lax asks for it.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "ingest/bundle_reader.hh"

namespace mbs {
namespace ingest {
namespace {

namespace fs = std::filesystem;

class IngestErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-ingest-err-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
        fs::create_directories(root / "traces");
    }

    void TearDown() override { fs::remove_all(root); }

    void writeManifest(int schemaVersion = 1)
    {
        std::ofstream(root / "manifest.json")
            << "{\n"
               "  \"schema\": \"mbs.trace-bundle\",\n"
               "  \"schema_version\": "
            << schemaVersion
            << ",\n"
               "  \"soc\": {\"name\": \"Test SoC\",\n"
               "    \"config_digest\": \"0x00000000000000ab\",\n"
               "    \"gpu_max_freq_hz\": 840e6,\n"
               "    \"aie_max_freq_hz\": 1000e6},\n"
               "  \"sample_period_seconds\": 0.1,\n"
               "  \"benchmarks\": [{\"name\": \"T\",\n"
               "    \"suite\": \"S\", \"file\": \"traces/t.csv\"}]\n"
               "}\n";
    }

    void writeTrace(const std::string &csv)
    {
        std::ofstream(root / "traces" / "t.csv") << csv;
    }

    /** Run a reader and return the FatalError message it dies with. */
    std::string readerDies(const IngestOptions &options = {})
    {
        try {
            TraceBundleReader(options).read(root);
        } catch (const FatalError &e) {
            return e.what();
        }
        ADD_FAILURE() << "expected FatalError, but read() succeeded";
        return "";
    }

    static void expectContains(const std::string &msg,
                               const std::string &needle)
    {
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "message: " << msg;
    }

    /** The positioned prefix every trace diagnostic must carry. */
    std::string tracePos(int line) const
    {
        return (root / "traces" / "t.csv").string() + ":" +
               std::to_string(line) + ":";
    }

    fs::path root;
};

TEST_F(IngestErrorTest, MissingManifestDies)
{
    const std::string msg = readerDies();
    expectContains(msg, "cannot open trace-bundle manifest");
    expectContains(msg, (root / "manifest.json").string());
}

TEST_F(IngestErrorTest, SchemaVersionMismatchDies)
{
    writeManifest(/*schemaVersion=*/2);
    writeTrace("time_s,cpu.load\n0.0,0.5\n");
    const std::string msg = readerDies();
    expectContains(msg, (root / "manifest.json").string() + ":");
    expectContains(msg, "unsupported schema_version 2 (supported: 1)");
}

TEST_F(IngestErrorTest, WrongSchemaNameDies)
{
    std::ofstream(root / "manifest.json")
        << "{\"schema\": \"other.format\", \"schema_version\": 1,\n"
           "\"sample_period_seconds\": 0.1,\n"
           "\"benchmarks\": [{\"name\": \"T\", \"suite\": \"S\",\n"
           "\"file\": \"traces/t.csv\"}]}\n";
    expectContains(readerDies(),
                   "schema 'other.format' is not 'mbs.trace-bundle'");
}

TEST_F(IngestErrorTest, MissingTraceFileDies)
{
    writeManifest();
    // traces/t.csv intentionally absent.
    const std::string msg = readerDies();
    expectContains(msg, "cannot open trace file");
    expectContains(msg, (root / "traces" / "t.csv").string());
}

TEST_F(IngestErrorTest, EmptyTraceFileDies)
{
    writeManifest();
    writeTrace("");
    expectContains(readerDies(),
                   tracePos(1) + " empty trace file (no header row)");
}

TEST_F(IngestErrorTest, TruncatedRowDies)
{
    // The last row is cut off mid-record (a truncated download).
    writeManifest();
    writeTrace("time_s,cpu.load,gpu.load\n"
               "0.0,0.5,0.25\n"
               "0.1,0.6\n");
    expectContains(readerDies(),
                   tracePos(3) + " expected 3 fields, got 2");
}

TEST_F(IngestErrorTest, DuplicateTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,0.6\n0.1,0.7\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(4) + " non-monotonic timestamp 0.1 (previous 0.1)");
}

TEST_F(IngestErrorTest, BackwardsTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.2,0.6\n0.1,0.7\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(4) + " non-monotonic timestamp 0.1 (previous 0.2)");
}

TEST_F(IngestErrorTest, MalformedTimestampDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\nbogus,0.6\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(readerDies(lax),
                   tracePos(3) + " malformed timestamp 'bogus'");
}

TEST_F(IngestErrorTest, UnknownCounterColumnDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load,wifi.signal\n0.0,0.5,42\n");
    expectContains(
        readerDies(),
        tracePos(1) + " unknown counter column 'wifi.signal'");
}

TEST_F(IngestErrorTest, DuplicateCounterColumnDiesEvenUnderLax)
{
    // Two headers normalizing to the same canonical counter.
    writeManifest();
    writeTrace("time_s,cpu.load,CPU Utilization %\n0.0,0.5,50\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(
        readerDies(lax),
        tracePos(1) + " duplicate column for counter 'cpu.load'");
}

TEST_F(IngestErrorTest, NanSampleDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,nan\n");
    expectContains(readerDies(),
                   tracePos(3) + " non-finite sample for 'cpu.load'");
}

TEST_F(IngestErrorTest, InfSampleDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,gpu.load\n0.0,0.5\n0.1,inf\n");
    expectContains(readerDies(),
                   tracePos(3) + " non-finite sample for 'gpu.load'");
}

TEST_F(IngestErrorTest, MalformedNumberDiesWhenStrict)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,oops\n");
    expectContains(readerDies(),
                   tracePos(3) + " malformed number 'oops'");
}

TEST_F(IngestErrorTest, MissingCanonicalColumnDiesWhenStrict)
{
    // A trace carrying only cpu.load: strict mode demands the full
    // canonical set, pointing at the first one it cannot find.
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n");
    expectContains(readerDies(),
                   tracePos(1) + " missing counter column '");
}

TEST_F(IngestErrorTest, AllRowsBadDiesEvenUnderLax)
{
    writeManifest();
    writeTrace("time_s,cpu.load\n0.0,nan\n0.1,inf\n");
    IngestOptions lax;
    lax.lax = true;
    expectContains(readerDies(lax), "no samples");
}

TEST_F(IngestErrorTest, LaxDropsAndCountsRecoverableFaults)
{
    writeManifest();
    writeTrace("time_s,cpu.load,wifi.signal\n"
               "0.0,0.5,1\n"
               "0.1,nan,2\n"   // dropped: non-finite sample
               "0.2,0.7\n"     // dropped: short row
               "0.3,0.8,4\n");
    IngestOptions options;
    options.lax = true;
    const IngestResult result = TraceBundleReader(options).read(root);
    EXPECT_EQ(result.stats.rows, 2u);
    // Two bad rows plus the zero-gap-filled absent canonical columns.
    EXPECT_GE(result.stats.droppedSamples, 2u);
    ASSERT_EQ(result.profiles.size(), 1u);
    ASSERT_EQ(result.profiles[0].series.cpuLoad.size(), 4u);
    EXPECT_DOUBLE_EQ(result.profiles[0].series.cpuLoad[0], 0.5);
    EXPECT_DOUBLE_EQ(result.profiles[0].series.cpuLoad[3], 0.8);
}

TEST_F(IngestErrorTest, TimeColumnMustComeFirst)
{
    writeManifest();
    writeTrace("cpu.load,time_s\n0.5,0.0\n");
    expectContains(readerDies(),
                   tracePos(1) + " first column must be a time column");
}

TEST_F(IngestErrorTest, ManifestWithoutBenchmarksDies)
{
    std::ofstream(root / "manifest.json")
        << "{\"schema\": \"mbs.trace-bundle\", \"schema_version\": 1,\n"
           "\"sample_period_seconds\": 0.1, \"benchmarks\": []}\n";
    expectContains(readerDies(), "'benchmarks' is empty");
}

/**
 * Partial-bundle salvage: with two benchmarks in the manifest, one
 * broken trace must not sink the other — under --lax the broken
 * benchmark is dropped with its positioned diagnostic and the rest
 * of the bundle survives; strict mode still dies in place.
 */
class IngestSalvageTest : public IngestErrorTest
{
  protected:
    /**
     * "Bad" (traces/t.csv, written per test) comes first so strict
     * mode trips over it before anything else; "Good" carries a
     * clean lax-parsable trace.
     */
    void writeTwoBenchmarkManifest()
    {
        std::ofstream(root / "manifest.json")
            << "{\n"
               "  \"schema\": \"mbs.trace-bundle\",\n"
               "  \"schema_version\": 1,\n"
               "  \"soc\": {\"name\": \"Test SoC\",\n"
               "    \"config_digest\": \"0x00000000000000ab\",\n"
               "    \"gpu_max_freq_hz\": 840e6,\n"
               "    \"aie_max_freq_hz\": 1000e6},\n"
               "  \"sample_period_seconds\": 0.1,\n"
               "  \"benchmarks\": [\n"
               "    {\"name\": \"Bad\", \"suite\": \"S\",\n"
               "     \"file\": \"traces/t.csv\"},\n"
               "    {\"name\": \"Good\", \"suite\": \"S\",\n"
               "     \"file\": \"traces/good.csv\"}\n"
               "  ]\n"
               "}\n";
        std::ofstream(root / "traces" / "good.csv")
            << "time_s,cpu.load\n0.0,0.5\n0.1,0.6\n0.2,0.7\n";
    }
};

TEST_F(IngestSalvageTest, LaxSalvagesAroundOneTruncatedTrace)
{
    writeTwoBenchmarkManifest();
    // The bad trace is truncated to zero bytes — a row-level drop
    // cannot absorb that, so the whole benchmark must be salvaged.
    writeTrace("");
    IngestOptions lax;
    lax.lax = true;
    const IngestResult result = TraceBundleReader(lax).read(root);

    ASSERT_EQ(result.profiles.size(), 1u);
    EXPECT_EQ(result.profiles[0].name, "Good");
    EXPECT_EQ(result.profiles[0].series.cpuLoad.size(), 3u);

    // The drop is recorded with the full positioned diagnostic.
    ASSERT_EQ(result.stats.droppedBenchmarks.size(), 1u);
    EXPECT_EQ(result.stats.droppedBenchmarks[0].name, "Bad");
    expectContains(result.stats.droppedBenchmarks[0].error,
                   tracePos(1) + " empty trace file (no header row)");

    // The returned manifest is pruned to the survivors, so anything
    // downstream (pipeline, re-export) sees a consistent bundle.
    ASSERT_EQ(result.manifest.benchmarks.size(), 1u);
    EXPECT_EQ(result.manifest.benchmarks[0].name, "Good");
}

TEST_F(IngestSalvageTest, StrictStillDiesOnTheTruncatedTrace)
{
    writeTwoBenchmarkManifest();
    writeTrace("");
    expectContains(readerDies(),
                   tracePos(1) + " empty trace file (no header row)");
}

TEST_F(IngestSalvageTest, LaxSalvagesAroundMissingTraceFile)
{
    writeTwoBenchmarkManifest();
    // traces/t.csv intentionally absent.
    IngestOptions lax;
    lax.lax = true;
    const IngestResult result = TraceBundleReader(lax).read(root);
    ASSERT_EQ(result.profiles.size(), 1u);
    EXPECT_EQ(result.profiles[0].name, "Good");
    ASSERT_EQ(result.stats.droppedBenchmarks.size(), 1u);
    expectContains(result.stats.droppedBenchmarks[0].error,
                   "cannot open trace file");
}

TEST_F(IngestSalvageTest, ZeroSurvivorsDiesEvenUnderLax)
{
    // Salvage is partial by definition: when every benchmark drops,
    // the first diagnostic surfaces instead of an empty result.
    writeManifest();
    writeTrace("");
    IngestOptions lax;
    lax.lax = true;
    const std::string msg = readerDies(lax);
    expectContains(msg,
                   tracePos(1) + " empty trace file (no header row)");
    expectContains(msg, "no benchmark survived --lax salvage");
}

TEST_F(IngestSalvageTest, InjectedCsvFaultsSalvageUnderLax)
{
    // An injected hard read error behaves exactly like a damaged
    // bundle: dropped under --lax. A burst of 3 exhausts the first
    // trace read's whole retry budget (each retry is one arrival)
    // and leaves the second benchmark's read untouched.
    writeTwoBenchmarkManifest();
    writeTrace("time_s,cpu.load\n0.0,0.5\n0.1,0.6\n");
    fault::ScopedPlan guard(
        fault::FaultPlan::parse("ingest.csv:eio@3", 13));
    IngestOptions lax;
    lax.lax = true;
    const IngestResult result = TraceBundleReader(lax).read(root);

    // "Bad" is read first, so it is the one the burst kills — even
    // though its trace bytes on disk are perfectly valid.
    ASSERT_EQ(result.profiles.size(), 1u);
    EXPECT_EQ(result.profiles[0].name, "Good");
    ASSERT_EQ(result.stats.droppedBenchmarks.size(), 1u);
    EXPECT_EQ(result.stats.droppedBenchmarks[0].name, "Bad");
    expectContains(result.stats.droppedBenchmarks[0].error,
                   "injected read error (retries exhausted)");
}

} // namespace
} // namespace ingest
} // namespace mbs
