/**
 * @file
 * Schema tests: canonical-name and alias resolution, unit
 * conversions, time-column recognition, and the alias table's
 * integrity against the canonical counter set.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ingest/schema.hh"
#include "profiler/session.hh"

namespace mbs {
namespace ingest {
namespace {

ConversionContext
snapdragonCtx()
{
    return ConversionContext{840e6, 1000e6};
}

TEST(Schema, CanonicalNamesResolveWithoutAliasOrScaling)
{
    MetricSeries probe;
    forEachMetricSeries(probe, [](const char *name,
                                  const TimeSeries &) {
        const auto col =
            resolveCounterColumn(name, ConversionContext{});
        ASSERT_TRUE(col.has_value()) << name;
        EXPECT_EQ(col->canonical, name);
        EXPECT_EQ(col->scale, 1.0);
        EXPECT_FALSE(col->viaAlias);
        EXPECT_EQ(col->semantics, ColumnSemantics::Level);
    });
}

TEST(Schema, MatchingIsCaseAndWhitespaceInsensitive)
{
    const auto col =
        resolveCounterColumn("  CPU.Load  ", ConversionContext{});
    ASSERT_TRUE(col.has_value());
    EXPECT_EQ(col->canonical, "cpu.load");
    EXPECT_FALSE(col->viaAlias);
}

TEST(Schema, VendorAliasesConvertUnits)
{
    const auto ctx = snapdragonCtx();

    const auto pct = resolveCounterColumn("CPU Utilization %", ctx);
    ASSERT_TRUE(pct.has_value());
    EXPECT_EQ(pct->canonical, "cpu.load");
    EXPECT_DOUBLE_EQ(pct->scale, 0.01);
    EXPECT_TRUE(pct->viaAlias);

    const auto kib =
        resolveCounterColumn("Read Throughput (KB/s)", ctx);
    ASSERT_TRUE(kib.has_value());
    EXPECT_EQ(kib->canonical, "storage.read.bandwidth");
    EXPECT_DOUBLE_EQ(kib->scale, 1024.0);

    const auto mhz = resolveCounterColumn("GPU Frequency (MHz)", ctx);
    ASSERT_TRUE(mhz.has_value());
    EXPECT_EQ(mhz->canonical, "gpu.frequency.fraction");
    // 840 MHz raw must land on fraction 1.0.
    EXPECT_DOUBLE_EQ(840.0 * mhz->scale, 1.0);
}

TEST(Schema, MhzAliasWithoutMaxFrequencyDies)
{
    EXPECT_THROW(
        resolveCounterColumn("GPU Frequency (MHz)",
                             ConversionContext{}),
        FatalError);
}

TEST(Schema, RateColumnsCarryRateSemantics)
{
    const auto direct =
        resolveCounterColumn("cpu.instructions", ConversionContext{});
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(direct->semantics, ColumnSemantics::Rate);

    const auto alias =
        resolveCounterColumn("Instructions", ConversionContext{});
    ASSERT_TRUE(alias.has_value());
    EXPECT_EQ(alias->canonical, "cpu.instructions");
    EXPECT_EQ(alias->semantics, ColumnSemantics::Rate);
}

TEST(Schema, UnknownHeaderResolvesToNothing)
{
    EXPECT_FALSE(resolveCounterColumn("wifi.signal.strength",
                                      ConversionContext{})
                     .has_value());
}

TEST(Schema, TimeColumnRecognitionAndScaling)
{
    double scale = 0.0;
    EXPECT_TRUE(resolveTimeColumn("time_s", &scale));
    EXPECT_DOUBLE_EQ(scale, 1.0);
    EXPECT_TRUE(resolveTimeColumn("Timestamp_MS", &scale));
    EXPECT_DOUBLE_EQ(scale, 1e-3);
    EXPECT_FALSE(resolveTimeColumn("cpu.load", &scale));
}

TEST(Schema, AliasTableTargetsOnlyCanonicalNames)
{
    const auto ctx = snapdragonCtx();
    for (const AliasEntry &entry : aliasTable()) {
        // Every alias target must itself resolve (i.e. be canonical),
        // so an alias can never smuggle in an unknown counter.
        const auto target = resolveCounterColumn(entry.canonical, ctx);
        ASSERT_TRUE(target.has_value()) << entry.canonical;
        EXPECT_FALSE(target->viaAlias) << entry.canonical;

        const auto via = resolveCounterColumn(entry.alias, ctx);
        ASSERT_TRUE(via.has_value()) << entry.alias;
        EXPECT_EQ(via->canonical, entry.canonical) << entry.alias;
        EXPECT_TRUE(via->viaAlias) << entry.alias;
    }
}

} // namespace
} // namespace ingest
} // namespace mbs
