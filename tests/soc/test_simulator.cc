/**
 * @file
 * Tests for the tick-based SoC simulator: determinism, budget
 * accounting, frame invariants, and cross-component interactions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "soc/simulator.hh"

namespace mbs {
namespace {

TimedPhase
cpuPhase(double duration_s, double inst_b, int threads = 4,
         double intensity = 0.6)
{
    TimedPhase p;
    p.durationSeconds = duration_s;
    p.demand.threads = {ThreadDemand{threads, intensity}};
    p.demand.cpu.instructionsBillions = inst_b;
    p.demand.cpu.baseIpc = 2.8;
    p.demand.cpu.workingSetBytes = 4ULL << 20;
    p.demand.cpu.locality = 0.97;
    return p;
}

TimedPhase
gpuPhase(double duration_s, double rate)
{
    TimedPhase p;
    p.durationSeconds = duration_s;
    p.demand.threads = {ThreadDemand{2, 0.2}};
    p.demand.cpu.instructionsBillions = 0.05 * duration_s;
    p.demand.gpu.workRate = rate;
    p.demand.gpu.api = GraphicsApi::Vulkan;
    p.demand.gpu.textureBandwidth = 0.5;
    p.demand.gpu.textureBytes = 1500ULL << 20;
    return p;
}

SimOptions
quietOptions(std::uint64_t seed = 11)
{
    SimOptions o;
    o.seed = seed;
    o.durationJitter = 0.0;
    o.demandJitter = 0.0;
    return o;
}

TEST(Simulator, EmptyPhaseListIsFatal)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    EXPECT_THROW(sim.run({}), FatalError);
}

TEST(Simulator, NonPositiveTickIsFatal)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions o;
    o.tickSeconds = 0.0;
    EXPECT_THROW(sim.run({cpuPhase(1.0, 0.1)}, o), FatalError);
}

TEST(Simulator, FrameCountMatchesDuration)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({cpuPhase(10.0, 1.0)}, quietOptions());
    EXPECT_EQ(result.frames.size(), 100u);
    EXPECT_NEAR(result.totals.runtimeSeconds, 10.0, 1e-9);
}

TEST(Simulator, RetiresTheInstructionBudget)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({cpuPhase(10.0, 1.5)}, quietOptions());
    EXPECT_NEAR(result.totals.instructions, 1.5e9, 0.02e9);
}

TEST(Simulator, IsDeterministicForSeed)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions o;
    o.seed = 42;
    const auto a = sim.run({cpuPhase(5.0, 1.0), gpuPhase(5.0, 0.8)}, o);
    const auto b = sim.run({cpuPhase(5.0, 1.0), gpuPhase(5.0, 0.8)}, o);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_DOUBLE_EQ(a.totals.instructions, b.totals.instructions);
    EXPECT_DOUBLE_EQ(a.totals.cacheMisses, b.totals.cacheMisses);
    for (std::size_t i = 0; i < a.frames.size(); i += 7)
        EXPECT_DOUBLE_EQ(a.frames[i].cpuLoad, b.frames[i].cpuLoad);
}

TEST(Simulator, DifferentSeedsDiffer)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions a;
    a.seed = 1;
    SimOptions b;
    b.seed = 2;
    const auto ra = sim.run({cpuPhase(5.0, 1.0)}, a);
    const auto rb = sim.run({cpuPhase(5.0, 1.0)}, b);
    EXPECT_NE(ra.totals.instructions, rb.totals.instructions);
}

TEST(Simulator, FrameValuesStayInRange)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result =
        sim.run({cpuPhase(5.0, 2.0, 8, 0.9), gpuPhase(5.0, 1.0)});
    for (const auto &f : result.frames) {
        EXPECT_GE(f.cpuLoad, 0.0);
        EXPECT_LE(f.cpuLoad, 1.0);
        for (std::size_t c = 0; c < numClusters; ++c) {
            EXPECT_GE(f.clusterLoad[c], 0.0);
            EXPECT_LE(f.clusterLoad[c], 1.0);
            EXPECT_LE(f.clusterUtilization[c], 1.0);
        }
        EXPECT_GE(f.gpu.load, 0.0);
        EXPECT_LE(f.gpu.load, 1.0);
        EXPECT_GE(f.aie.load, 0.0);
        EXPECT_LE(f.aie.load, 1.0);
        EXPECT_GE(f.memory.usedFraction, 0.0);
        EXPECT_LE(f.memory.usedFraction, 1.0);
        EXPECT_GE(f.instructions, 0.0);
        EXPECT_GE(f.cycles, 0.0);
    }
}

TEST(Simulator, ActiveCyclesFitWithinUtilizedCycles)
{
    // Consistency invariant: retired work never exceeds the cycles
    // the placement provides.
    const SocConfig cfg = SocConfig::snapdragon888();
    const SocSimulator sim(cfg);
    const auto result =
        sim.run({cpuPhase(5.0, 2.0, 8, 0.9)}, quietOptions());
    for (const auto &f : result.frames) {
        double available = 0.0;
        for (std::size_t c = 0; c < numClusters; ++c) {
            available += double(cfg.clusters[c].cores) *
                f.clusterFrequencyHz[c] * f.clusterUtilization[c] *
                result.tickSeconds;
        }
        EXPECT_LE(f.cycles, available * 1.0001);
    }
}

TEST(Simulator, IpcEqualsInstructionsOverCycles)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({cpuPhase(3.0, 1.0)}, quietOptions());
    for (const auto &f : result.frames) {
        if (f.cycles > 0.0) {
            EXPECT_NEAR(f.ipc, f.instructions / f.cycles, 1e-9);
        }
    }
}

TEST(Simulator, GpuContentionDepressesIpc)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    TimedPhase calm = cpuPhase(5.0, 0.5, 2, 0.3);
    TimedPhase contended = calm;
    contended.demand.gpu.workRate = 1.0;
    contended.demand.gpu.api = GraphicsApi::Vulkan;
    contended.demand.gpu.textureBandwidth = 0.9;
    const auto a = sim.run({calm}, quietOptions());
    const auto b = sim.run({contended}, quietOptions());
    EXPECT_GT(a.totals.ipc(), b.totals.ipc());
    EXPECT_LT(a.totals.cacheMpki(), b.totals.cacheMpki());
}

TEST(Simulator, Av1PhaseRaisesCpuLoadVsSupportedCodec)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    TimedPhase h264;
    h264.durationSeconds = 5.0;
    h264.demand.cpu.instructionsBillions = 0.2;
    h264.demand.aie.workRate = 0.5;
    h264.demand.aie.codec = MediaCodec::H264;
    TimedPhase av1 = h264;
    av1.demand.aie.codec = MediaCodec::Av1;

    const auto a = sim.run({h264}, quietOptions());
    const auto b = sim.run({av1}, quietOptions());
    double cpu_a = 0.0, cpu_b = 0.0, aie_a = 0.0, aie_b = 0.0;
    for (const auto &f : a.frames) {
        cpu_a += f.cpuLoad;
        aie_a += f.aie.load;
    }
    for (const auto &f : b.frames) {
        cpu_b += f.cpuLoad;
        aie_b += f.aie.load;
    }
    EXPECT_GT(cpu_b, cpu_a * 1.5); // software decode burns CPU
    EXPECT_GT(aie_a, aie_b);       // and leaves the AIE idle
}

TEST(Simulator, PhaseIndexTracksPhases)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result =
        sim.run({cpuPhase(2.0, 0.2), gpuPhase(3.0, 0.5)},
                quietOptions());
    EXPECT_EQ(result.frames.front().phaseIndex, 0u);
    EXPECT_EQ(result.frames.back().phaseIndex, 1u);
    // Indices are non-decreasing.
    std::size_t prev = 0;
    for (const auto &f : result.frames) {
        EXPECT_GE(f.phaseIndex, prev);
        prev = f.phaseIndex;
    }
}

TEST(Simulator, TotalsAccumulateAcrossFrames)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({cpuPhase(4.0, 0.8)}, quietOptions());
    double inst = 0.0, misses = 0.0;
    for (const auto &f : result.frames) {
        inst += f.instructions;
        misses += f.cacheMisses;
    }
    EXPECT_NEAR(result.totals.instructions, inst, 1.0);
    EXPECT_NEAR(result.totals.cacheMisses, misses, 1.0);
}

/** Property: duration jitter stays within a few sigma. */
class SimulatorJitter : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimulatorJitter, RuntimeCloseToNominal)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions o;
    o.seed = GetParam();
    const auto result = sim.run({cpuPhase(30.0, 1.0)}, o);
    EXPECT_NEAR(result.totals.runtimeSeconds, 30.0, 30.0 * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorJitter,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

TEST(SimulatorObservability, RunReportsInternalMetrics)
{
    auto &reg = obs::MetricsRegistry::instance();
    const std::uint64_t ticksBefore =
        reg.counter("sim.ticks").value();
    const std::uint64_t runsBefore = reg.counter("sim.runs").value();

    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({cpuPhase(10.0, 1.0)});

    EXPECT_EQ(reg.counter("sim.runs").value(), runsBefore + 1);
    EXPECT_EQ(reg.counter("sim.ticks").value(),
              ticksBefore + result.frames.size());
    EXPECT_GE(reg.counter("sim.cache_evals").value(),
              result.frames.size() * numClusters);
    EXPECT_GE(reg.counter("sim.memory_evals").value(),
              result.frames.size());
}

TEST(SimulatorObservability, TracedRunNestsSimulateSpan)
{
    auto &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    const SocSimulator sim(SocConfig::snapdragon888());
    sim.run({cpuPhase(5.0, 0.5)});
    tracer.setEnabled(false);
    const auto summaries = tracer.spanSummaries("sim");
    tracer.clear();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].name, "simulate");
    EXPECT_EQ(summaries[0].count, 1u);
}

} // namespace
} // namespace mbs
