/**
 * @file
 * Tests for the EAS-like scheduler model. These encode the placement
 * behaviours behind the paper's Observations #7-#9.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "soc/scheduler.hh"

namespace mbs {
namespace {

Scheduler
makeScheduler()
{
    return Scheduler(SocConfig::snapdragon888());
}

constexpr auto little = std::size_t(ClusterId::Little);
constexpr auto mid = std::size_t(ClusterId::Mid);
constexpr auto big = std::size_t(ClusterId::Big);

TEST(Scheduler, CoreCapacitiesMatchConfig)
{
    const auto sched = makeScheduler();
    EXPECT_DOUBLE_EQ(sched.coreCapacity(ClusterId::Little), 0.35);
    EXPECT_DOUBLE_EQ(sched.coreCapacity(ClusterId::Mid), 0.70);
    EXPECT_DOUBLE_EQ(sched.coreCapacity(ClusterId::Big), 1.0);
}

TEST(Scheduler, IdleHasOnlyBackgroundLoad)
{
    const auto sched = makeScheduler();
    const Placement p = sched.place({});
    EXPECT_GT(p.utilization[little], 0.0); // OS background
    EXPECT_DOUBLE_EQ(p.utilization[mid], 0.0);
    EXPECT_DOUBLE_EQ(p.utilization[big], 0.0);
    EXPECT_DOUBLE_EQ(p.unservedDemand, 0.0);
}

TEST(Scheduler, LightThreadsStayOnLittle)
{
    // Observation #8: GPU-driver-class threads fit the little cores.
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{3, 0.2}});
    EXPECT_EQ(p.threads[little], 3);
    EXPECT_EQ(p.threads[mid], 0);
    EXPECT_EQ(p.threads[big], 0);
}

TEST(Scheduler, MediumThreadGoesToMid)
{
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{1, 0.5}});
    EXPECT_EQ(p.threads[mid], 1);
    EXPECT_EQ(p.threads[big], 0);
}

TEST(Scheduler, HeavySingleThreadLandsOnBig)
{
    // Observation #7: heavy threads use the powerful core.
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{1, 0.95}});
    EXPECT_EQ(p.threads[big], 1);
    EXPECT_GT(p.utilization[big], 0.9);
    EXPECT_EQ(p.threads[mid], 0);
}

TEST(Scheduler, EightHeavyThreadsLoadEveryCluster)
{
    // Observation #9: only explicitly multi-core workloads occupy
    // all clusters at once.
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{8, 0.85}});
    EXPECT_GT(p.threads[big], 0);
    EXPECT_GT(p.threads[mid], 0);
    EXPECT_GT(p.threads[little], 0);
    EXPECT_GT(p.utilization[little], 0.9);
    EXPECT_GT(p.utilization[mid], 0.9);
    // Over-capacity demand is reported, not silently dropped.
    EXPECT_GT(p.unservedDemand, 0.0);
}

TEST(Scheduler, LittleOverflowSpillsUpward)
{
    const auto sched = makeScheduler();
    // Six light threads: four little cores fill up, then mid.
    const Placement p = sched.place({ThreadDemand{6, 0.25}});
    EXPECT_EQ(p.threads[little] + p.threads[mid] + p.threads[big], 6);
    EXPECT_GT(p.threads[mid], 0);
}

TEST(Scheduler, UtilizationNeverExceedsOne)
{
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{32, 1.0}});
    for (std::size_t c = 0; c < numClusters; ++c) {
        EXPECT_LE(p.utilization[c], 1.0);
        EXPECT_GE(p.utilization[c], 0.0);
    }
}

TEST(Scheduler, ZeroIntensityThreadsAreIgnored)
{
    const auto sched = makeScheduler();
    const Placement idle = sched.place({});
    const Placement p = sched.place({ThreadDemand{5, 0.0}});
    EXPECT_EQ(p.threads[little], idle.threads[little]);
    EXPECT_EQ(p.threads[mid], 0);
}

TEST(Scheduler, MidSizedGroupPrefersMidCluster)
{
    // Aitutu-style inference threads (0.52-0.55) populate the mid
    // cluster, the basis of the paper's Observation #7 exception.
    const auto sched = makeScheduler();
    const Placement p = sched.place({ThreadDemand{3, 0.52}});
    EXPECT_EQ(p.threads[mid], 3);
    EXPECT_GT(p.utilization[mid], 0.7);
    EXPECT_EQ(p.threads[big], 0);
}

/** Property: total served demand never exceeds total capacity. */
class SchedulerConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerConservation, DemandIsConserved)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const Scheduler sched(cfg);
    Xoshiro256StarStar rng{std::uint64_t(GetParam())};

    for (int trial = 0; trial < 50; ++trial) {
        std::vector<ThreadDemand> demands;
        double requested = 0.0;
        const int groups = 1 + int(rng.uniformInt(4));
        for (int g = 0; g < groups; ++g) {
            ThreadDemand d;
            d.count = 1 + int(rng.uniformInt(8));
            d.intensity = rng.uniform(0.05, 1.0);
            requested += d.count * d.intensity;
            demands.push_back(d);
        }
        const Placement p = sched.place(demands);

        // Served = sum over clusters of util * cores * capacity,
        // minus background noise; must be <= requested and the
        // shortfall must equal unservedDemand (within tolerance).
        double served = 0.0;
        for (std::size_t c = 0; c < numClusters; ++c) {
            served += p.utilization[c] *
                double(cfg.clusters[c].cores) *
                cfg.clusters[c].relativePerf;
        }
        const double background = cfg.osBackgroundLoad *
            cfg.clusters[little].relativePerf *
            double(cfg.clusters[little].cores);
        EXPECT_LE(served - background, requested + 1e-6);
        EXPECT_NEAR(served - background + p.unservedDemand, requested,
                    0.15 * requested + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace mbs
