/**
 * @file
 * Tests for the SoC configuration (Table II platform).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "soc/config.hh"

namespace mbs {
namespace {

TEST(SocConfig, Snapdragon888MatchesTableII)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    ASSERT_EQ(cfg.clusters.size(), numClusters);

    const auto &little = cfg.clusters[std::size_t(ClusterId::Little)];
    EXPECT_EQ(little.cores, 4);
    EXPECT_DOUBLE_EQ(little.maxFreqHz, 1.80e9);
    EXPECT_EQ(little.l2Bytes, 128ULL << 10);

    const auto &mid = cfg.clusters[std::size_t(ClusterId::Mid)];
    EXPECT_EQ(mid.cores, 3);
    EXPECT_DOUBLE_EQ(mid.maxFreqHz, 2.42e9);
    EXPECT_EQ(mid.l2Bytes, 512ULL << 10);

    const auto &big = cfg.clusters[std::size_t(ClusterId::Big)];
    EXPECT_EQ(big.cores, 1);
    EXPECT_DOUBLE_EQ(big.maxFreqHz, 3.00e9);
    EXPECT_EQ(big.l2Bytes, 1ULL << 20);
    EXPECT_DOUBLE_EQ(big.relativePerf, 1.0);

    EXPECT_EQ(cfg.totalCores(), 8);
    EXPECT_EQ(cfg.cache.l3Bytes, 4ULL << 20);
    EXPECT_EQ(cfg.cache.slcBytes, 3ULL << 20);
    EXPECT_EQ(cfg.gpu.name, "Adreno 660");
    EXPECT_EQ(cfg.aie.name, "Hexagon 780");
    // 11.83 GB visible of the nominal 12 GB LPDDR5.
    EXPECT_NEAR(double(cfg.memory.totalBytes) / double(1ULL << 30),
                11.83, 0.01);
}

TEST(SocConfig, ClusterPerfOrdering)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    EXPECT_LT(cfg.clusters[0].relativePerf,
              cfg.clusters[1].relativePerf);
    EXPECT_LT(cfg.clusters[1].relativePerf,
              cfg.clusters[2].relativePerf);
    EXPECT_LT(cfg.clusters[0].ipcScale, cfg.clusters[1].ipcScale);
    EXPECT_LT(cfg.clusters[1].ipcScale, cfg.clusters[2].ipcScale);
}

TEST(SocConfig, Av1IsUnsupported)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    EXPECT_TRUE(cfg.aie.supportsH264);
    EXPECT_TRUE(cfg.aie.supportsH265);
    EXPECT_TRUE(cfg.aie.supportsVp9);
    EXPECT_FALSE(cfg.aie.supportsAv1);
}

TEST(SocConfig, ValidateRejectsWrongClusterCount)
{
    SocConfig cfg = SocConfig::snapdragon888();
    cfg.clusters.pop_back();
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SocConfig, ValidateRejectsZeroCores)
{
    SocConfig cfg = SocConfig::snapdragon888();
    cfg.clusters[0].cores = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SocConfig, ValidateRejectsBadFrequencyRange)
{
    SocConfig cfg = SocConfig::snapdragon888();
    cfg.clusters[1].minFreqHz = cfg.clusters[1].maxFreqHz * 2.0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SocConfig, ValidateRejectsBigPerfNotOne)
{
    SocConfig cfg = SocConfig::snapdragon888();
    cfg.clusters[std::size_t(ClusterId::Big)].relativePerf = 0.9;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SocConfig, ValidateRejectsIdleOverTotalMemory)
{
    SocConfig cfg = SocConfig::snapdragon888();
    cfg.memory.idleBytes = cfg.memory.totalBytes + 1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SocConfig, MidrangeIsValidAndSlower)
{
    const SocConfig mid = SocConfig::midrange();
    const SocConfig flag = SocConfig::snapdragon888();
    EXPECT_NO_THROW(mid.validate());
    for (std::size_t c = 0; c < numClusters; ++c) {
        EXPECT_LT(mid.clusters[c].maxFreqHz,
                  flag.clusters[c].maxFreqHz);
    }
    EXPECT_LT(mid.cache.l3Bytes, flag.cache.l3Bytes);
    EXPECT_LT(mid.gpu.maxFreqHz, flag.gpu.maxFreqHz);
    EXPECT_LT(mid.memory.totalBytes, flag.memory.totalBytes);
}

TEST(ClusterName, MatchesPaperTerms)
{
    EXPECT_EQ(clusterName(ClusterId::Little), "CPU Little");
    EXPECT_EQ(clusterName(ClusterId::Mid), "CPU Mid");
    EXPECT_EQ(clusterName(ClusterId::Big), "CPU Big");
}

} // namespace
} // namespace mbs
