/**
 * @file
 * Tests for the GPU model, including the API-efficiency and
 * off-screen effects behind the paper's Observation #2 and the
 * off-screen GPU-load findings.
 */

#include <gtest/gtest.h>

#include "soc/gpu.hh"

namespace mbs {
namespace {

GpuModel
makeGpu()
{
    return GpuModel(SocConfig::snapdragon888().gpu);
}

GpuDemand
baseDemand(double rate = 0.6)
{
    GpuDemand d;
    d.workRate = rate;
    d.api = GraphicsApi::Vulkan;
    d.textureBandwidth = 0.4;
    d.textureBytes = 1000ULL << 20;
    return d;
}

TEST(Gpu, IdleDemandProducesNoLoad)
{
    const auto gpu = makeGpu();
    GpuDemand d;
    const GpuState s = gpu.evaluate(d);
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
    EXPECT_DOUBLE_EQ(s.load, 0.0);
    EXPECT_DOUBLE_EQ(s.shadersBusy, 0.0);
}

TEST(Gpu, OpenGlCostsMoreThanVulkan)
{
    // Observation #2: OpenGL benchmarks show ~9% higher GPU load.
    const auto gpu = makeGpu();
    GpuDemand gl = baseDemand(0.6);
    gl.api = GraphicsApi::OpenGlEs;
    GpuDemand vk = baseDemand(0.6);
    const double ratio = gpu.workMultiplier(gl) /
        gpu.workMultiplier(vk);
    EXPECT_NEAR(ratio, 1.0926, 1e-6);
    EXPECT_GE(gpu.evaluate(gl).load, gpu.evaluate(vk).load);
}

TEST(Gpu, OffscreenRaisesLoad)
{
    const auto gpu = makeGpu();
    GpuDemand on = baseDemand(0.6);
    GpuDemand off = baseDemand(0.6);
    off.offscreen = true;
    EXPECT_GT(gpu.workMultiplier(off), gpu.workMultiplier(on));
    EXPECT_GE(gpu.evaluate(off).load, gpu.evaluate(on).load);
}

TEST(Gpu, ResolutionScalesSubLinearly)
{
    const auto gpu = makeGpu();
    GpuDemand hd = baseDemand(0.4);
    GpuDemand uhd = baseDemand(0.4);
    uhd.resolutionScale = 4.0;
    const double ratio = gpu.workMultiplier(uhd) /
        gpu.workMultiplier(hd);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 4.0);
}

TEST(Gpu, LoadIsFrequencyTimesUtilizationFraction)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const GpuModel gpu(cfg.gpu);
    const GpuState s = gpu.evaluate(baseDemand(0.5));
    EXPECT_NEAR(s.load,
                (s.frequencyHz / cfg.gpu.maxFreqHz) * s.utilization,
                1e-12);
}

TEST(Gpu, ShadersBusyNeverExceedsUtilization)
{
    const auto gpu = makeGpu();
    for (double rate = 0.05; rate <= 1.0; rate += 0.05) {
        const GpuState s = gpu.evaluate(baseDemand(rate));
        EXPECT_LE(s.shadersBusy, s.utilization + 1e-12);
    }
}

TEST(Gpu, BusBusyFollowsTextureBandwidth)
{
    const auto gpu = makeGpu();
    GpuDemand light = baseDemand(0.6);
    light.textureBandwidth = 0.1;
    GpuDemand heavy = baseDemand(0.6);
    heavy.textureBandwidth = 0.8;
    EXPECT_GT(gpu.evaluate(heavy).busBusy,
              gpu.evaluate(light).busBusy);
}

TEST(Gpu, SaturatesGracefully)
{
    const auto gpu = makeGpu();
    const GpuState s = gpu.evaluate(baseDemand(1.4));
    EXPECT_LE(s.utilization, 1.0);
    EXPECT_LE(s.load, 1.0);
    EXPECT_LE(s.busBusy, 1.0);
}

TEST(Gpu, TextureBytesPassThrough)
{
    const auto gpu = makeGpu();
    GpuDemand d = baseDemand(0.5);
    d.textureBytes = 1234ULL << 20;
    EXPECT_EQ(gpu.evaluate(d).textureBytes, 1234ULL << 20);
}

/** Property: load is monotone in work rate for any API/resolution. */
struct GpuSweepParam
{
    GraphicsApi api;
    double resolution;
    bool offscreen;
};

class GpuLoadMonotonic : public ::testing::TestWithParam<GpuSweepParam>
{
};

TEST_P(GpuLoadMonotonic, LoadNonDecreasingInWorkRate)
{
    const auto gpu = makeGpu();
    const auto param = GetParam();
    double prev = 0.0;
    for (double rate = 0.0; rate <= 1.0; rate += 0.02) {
        GpuDemand d;
        d.workRate = rate;
        d.api = param.api;
        d.resolutionScale = param.resolution;
        d.offscreen = param.offscreen;
        const double load = gpu.evaluate(d).load;
        EXPECT_GE(load, prev - 1e-9);
        prev = load;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GpuLoadMonotonic,
    ::testing::Values(GpuSweepParam{GraphicsApi::Vulkan, 1.0, false},
                      GpuSweepParam{GraphicsApi::OpenGlEs, 1.0, false},
                      GpuSweepParam{GraphicsApi::Vulkan, 1.78, true},
                      GpuSweepParam{GraphicsApi::OpenGlEs, 4.0, true}));

} // namespace
} // namespace mbs
