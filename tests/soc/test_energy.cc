/**
 * @file
 * Tests for the power/energy model extension.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "soc/energy.hh"
#include "soc/simulator.hh"

namespace mbs {
namespace {

SimulationResult
simulate(double cpu_intensity, double gpu_rate,
         double duration = 10.0)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    TimedPhase p;
    p.durationSeconds = duration;
    p.demand.threads = {ThreadDemand{4, cpu_intensity}};
    p.demand.cpu.instructionsBillions = 0.2 * duration;
    p.demand.gpu.workRate = gpu_rate;
    p.demand.gpu.api =
        gpu_rate > 0.0 ? GraphicsApi::Vulkan : GraphicsApi::None;
    SimOptions o;
    o.durationJitter = 0.0;
    o.demandJitter = 0.0;
    return sim.run({p}, o);
}

TEST(Energy, BreakdownSumsToTotal)
{
    const EnergyModel model(SocConfig::snapdragon888());
    const auto e = model.energyOf(simulate(0.5, 0.5));
    double sum = e.gpuJ + e.aieJ + e.dramJ + e.storageJ;
    for (double j : e.cpuJ)
        sum += j;
    EXPECT_NEAR(e.total(), sum, 1e-9);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, HeavierCpuWorkCostsMore)
{
    const EnergyModel model(SocConfig::snapdragon888());
    const auto light = model.energyOf(simulate(0.2, 0.0));
    const auto heavy = model.energyOf(simulate(0.9, 0.0));
    EXPECT_GT(heavy.total(), light.total());
}

TEST(Energy, GpuWorkShowsUpInGpuBucket)
{
    const EnergyModel model(SocConfig::snapdragon888());
    const auto idle = model.energyOf(simulate(0.2, 0.0));
    const auto busy = model.energyOf(simulate(0.2, 0.9));
    EXPECT_GT(busy.gpuJ, idle.gpuJ * 2.0);
}

TEST(Energy, AveragePowerIsPlausibleForAPhone)
{
    const EnergyModel model(SocConfig::snapdragon888());
    const auto result = simulate(0.8, 0.9);
    const auto e = model.energyOf(result);
    const double watts =
        e.averagePowerW(result.totals.runtimeSeconds);
    // A flagship phone under combined CPU+GPU load draws single-digit
    // watts.
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 15.0);
}

TEST(Energy, FramePowerMatchesIntegration)
{
    const EnergyModel model(SocConfig::snapdragon888());
    const auto result = simulate(0.5, 0.4);
    double integrated = 0.0;
    for (const auto &f : result.frames)
        integrated += model.framePowerW(f) * result.tickSeconds;
    const auto e = model.energyOf(result);
    // framePowerW omits the per-miss DRAM energy; the rest matches.
    EXPECT_NEAR(integrated, e.total(),
                e.dramJ + 0.01 * e.total());
}

TEST(Energy, BigCoreCostsMoreThanLittlePerUnit)
{
    const PowerParams params;
    EXPECT_GT(params.cpuDynamicW[std::size_t(ClusterId::Big)],
              params.cpuDynamicW[std::size_t(ClusterId::Mid)]);
    EXPECT_GT(params.cpuDynamicW[std::size_t(ClusterId::Mid)],
              params.cpuDynamicW[std::size_t(ClusterId::Little)]);
}

TEST(Energy, EmptyRunIsFatal)
{
    const EnergyModel model(SocConfig::snapdragon888());
    SimulationResult empty;
    EXPECT_THROW(model.energyOf(empty), FatalError);
}

TEST(Energy, DvfsCubeMakesRacingExpensive)
{
    // The same instruction budget executed at high frequency costs
    // more CPU energy than spread out at low frequency (race-to-idle
    // trade-off visible through the cubic term).
    const SocSimulator sim(SocConfig::snapdragon888());
    const EnergyModel model(SocConfig::snapdragon888());

    TimedPhase fast;
    fast.durationSeconds = 5.0;
    fast.demand.threads = {ThreadDemand{4, 0.95}};
    fast.demand.cpu.instructionsBillions = 1.0;

    TimedPhase slow;
    slow.durationSeconds = 20.0;
    slow.demand.threads = {ThreadDemand{4, 0.20}};
    slow.demand.cpu.instructionsBillions = 1.0;

    SimOptions o;
    o.durationJitter = 0.0;
    o.demandJitter = 0.0;
    const auto fast_e = model.energyOf(sim.run({fast}, o));
    const auto slow_e = model.energyOf(sim.run({slow}, o));
    double fast_cpu = 0.0, slow_cpu = 0.0;
    for (std::size_t c = 0; c < numClusters; ++c) {
        fast_cpu += fast_e.cpuJ[c];
        slow_cpu += slow_e.cpuJ[c];
    }
    EXPECT_GT(fast_cpu, slow_cpu);
}

} // namespace
} // namespace mbs
