/**
 * @file
 * Tests for the analytical cache and branch models.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "soc/caches.hh"

namespace mbs {
namespace {

ClusterConfig
bigCluster()
{
    return SocConfig::snapdragon888()
        .clusters[std::size_t(ClusterId::Big)];
}

TEST(MissRatio, ResidentWorkingSetHitsFloor)
{
    const double m = CacheModel::missRatio(32 << 10, 64 << 10, 0.9);
    EXPECT_NEAR(m, 0.003, 1e-9);
}

TEST(MissRatio, GrowsWithWorkingSet)
{
    const std::uint64_t cap = 64ULL << 10;
    double prev = 0.0;
    for (std::uint64_t ws = cap; ws <= (256ULL << 20); ws *= 4) {
        const double m = CacheModel::missRatio(ws, cap, 0.8);
        EXPECT_GE(m, prev);
        prev = m;
    }
}

TEST(MissRatio, ShrinksWithLocality)
{
    const double lo = CacheModel::missRatio(16 << 20, 64 << 10, 0.3);
    const double hi = CacheModel::missRatio(16 << 20, 64 << 10, 0.95);
    EXPECT_GT(lo, hi);
}

TEST(MissRatio, ShrinksWithCapacity)
{
    const double small = CacheModel::missRatio(16 << 20, 64 << 10, 0.8);
    const double large = CacheModel::missRatio(16 << 20, 4 << 20, 0.8);
    EXPECT_GT(small, large);
}

TEST(MissRatio, ZeroCapacityIsPanic)
{
    EXPECT_THROW(CacheModel::missRatio(1 << 20, 0, 0.9), PanicError);
}

TEST(CacheModel, MpkiLevelsFilterMonotonically)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CacheModel model(cfg.cache, bigCluster());
    CpuCharacter cpu;
    cpu.memIntensity = 0.3;
    cpu.workingSetBytes = 32ULL << 20;
    cpu.locality = 0.9;
    const CacheStats s = model.evaluate(cpu, 0.0);
    EXPECT_GE(s.l1Mpki, s.l2Mpki);
    EXPECT_GE(s.l2Mpki, s.l3Mpki);
    EXPECT_GE(s.l3Mpki, s.slcMpki);
    EXPECT_NEAR(s.totalMpki,
                s.l1Mpki + s.l2Mpki + s.l3Mpki + s.slcMpki, 1e-9);
    EXPECT_GT(s.memoryCpi, 0.0);
}

TEST(CacheModel, ContentionRaisesSharedLevelMisses)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CacheModel model(cfg.cache, bigCluster());
    CpuCharacter cpu;
    cpu.workingSetBytes = 3ULL << 20; // fits L3 when uncontended
    cpu.locality = 0.9;
    const CacheStats calm = model.evaluate(cpu, 0.0);
    const CacheStats contended = model.evaluate(cpu, 0.8);
    EXPECT_GT(contended.l3Mpki, calm.l3Mpki);
    EXPECT_GT(contended.memoryCpi, calm.memoryCpi);
    // Private levels are unaffected by shared contention.
    EXPECT_DOUBLE_EQ(contended.l1Mpki, calm.l1Mpki);
    EXPECT_DOUBLE_EQ(contended.l2Mpki, calm.l2Mpki);
}

TEST(CacheModel, LittleCoreSeesSmallerL2)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CacheModel big(cfg.cache, bigCluster());
    CacheModel little(cfg.cache,
                      cfg.clusters[std::size_t(ClusterId::Little)]);
    CpuCharacter cpu;
    cpu.workingSetBytes = 512ULL << 10; // fits big L2, not little L2
    cpu.locality = 0.8;
    EXPECT_GT(little.evaluate(cpu, 0.0).l2Mpki,
              big.evaluate(cpu, 0.0).l2Mpki);
}

TEST(CacheModel, MemIntensityScalesMpki)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CacheModel model(cfg.cache, bigCluster());
    CpuCharacter cpu;
    cpu.workingSetBytes = 64ULL << 20;
    cpu.locality = 0.9;
    cpu.memIntensity = 0.2;
    const double low = model.evaluate(cpu, 0.0).totalMpki;
    cpu.memIntensity = 0.4;
    const double high = model.evaluate(cpu, 0.0).totalMpki;
    EXPECT_NEAR(high, 2.0 * low, 1e-9);
}

TEST(BranchModel, MpkiFollowsPredictability)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    BranchModel model(cfg.cache);
    CpuCharacter cpu;
    cpu.branchFraction = 0.2;
    cpu.branchPredictability = 0.95;
    const BranchStats s = model.evaluate(cpu);
    EXPECT_NEAR(s.mpki, 200.0 * 0.05, 1e-9);
    EXPECT_NEAR(s.branchCpi, s.mpki * cfg.cache.branchPenalty / 1000.0,
                1e-12);
}

TEST(BranchModel, WeakerPredictorRaisesMpki)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    BranchModel model(cfg.cache);
    CpuCharacter cpu;
    cpu.branchFraction = 0.2;
    cpu.branchPredictability = 0.95;
    EXPECT_GT(model.evaluate(cpu, 0.9).mpki,
              model.evaluate(cpu, 1.0).mpki);
}

TEST(BranchModel, InvalidQualityIsFatal)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    BranchModel model(cfg.cache);
    CpuCharacter cpu;
    EXPECT_THROW(model.evaluate(cpu, 0.0), FatalError);
    EXPECT_THROW(model.evaluate(cpu, 1.5), FatalError);
}

/** Property: total MPKI is monotone in working-set size. */
class CacheWorkingSetSweep
    : public ::testing::TestWithParam<double /*locality*/>
{
};

TEST_P(CacheWorkingSetSweep, MpkiMonotoneInWorkingSet)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CacheModel model(cfg.cache, bigCluster());
    CpuCharacter cpu;
    cpu.locality = GetParam();
    double prev = 0.0;
    for (std::uint64_t ws = 16ULL << 10; ws <= (512ULL << 20);
         ws *= 2) {
        cpu.workingSetBytes = ws;
        const double mpki = model.evaluate(cpu, 0.0).totalMpki;
        EXPECT_GE(mpki, prev - 1e-9)
            << "ws=" << ws << " locality=" << GetParam();
        prev = mpki;
    }
}

INSTANTIATE_TEST_SUITE_P(Localities, CacheWorkingSetSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 0.97));

} // namespace
} // namespace mbs
