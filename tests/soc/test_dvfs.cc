/**
 * @file
 * Tests for the DVFS governor model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "soc/dvfs.hh"

namespace mbs {
namespace {

TEST(Dvfs, OppTableSpansRange)
{
    DvfsGovernor gov(0.3e9, 1.8e9, 8);
    ASSERT_EQ(gov.operatingPoints().size(), 8u);
    EXPECT_DOUBLE_EQ(gov.minFrequency(), 0.3e9);
    EXPECT_DOUBLE_EQ(gov.maxFrequency(), 1.8e9);
}

TEST(Dvfs, ZeroUtilizationPicksMinimum)
{
    DvfsGovernor gov(0.3e9, 1.8e9);
    EXPECT_DOUBLE_EQ(gov.frequencyFor(0.0), 0.3e9);
}

TEST(Dvfs, FullUtilizationPicksMaximum)
{
    DvfsGovernor gov(0.3e9, 1.8e9);
    EXPECT_DOUBLE_EQ(gov.frequencyFor(1.0), 1.8e9);
}

TEST(Dvfs, HeadroomRoundsUp)
{
    // With headroom 1.25, util 0.8 targets exactly max frequency.
    DvfsGovernor gov(1e9, 2e9, 2, 1.25);
    EXPECT_DOUBLE_EQ(gov.frequencyFor(0.8), 2e9);
    // Util 0.3 targets 0.75e9 < min OPP -> min.
    EXPECT_DOUBLE_EQ(gov.frequencyFor(0.3), 1e9);
}

TEST(Dvfs, FrequencyIsAlwaysAnOpp)
{
    DvfsGovernor gov(0.5e9, 2.42e9, 8);
    for (double u = 0.0; u <= 1.0; u += 0.01) {
        const double f = gov.frequencyFor(u);
        bool found = false;
        for (double opp : gov.operatingPoints()) {
            if (opp == f)
                found = true;
        }
        EXPECT_TRUE(found) << "freq " << f << " not an OPP";
    }
}

TEST(Dvfs, ClampsUtilizationOutOfRange)
{
    DvfsGovernor gov(0.5e9, 2e9);
    EXPECT_DOUBLE_EQ(gov.frequencyFor(-0.5), 0.5e9);
    EXPECT_DOUBLE_EQ(gov.frequencyFor(2.0), 2e9);
}

TEST(Dvfs, InvalidConstructionIsFatal)
{
    EXPECT_THROW(DvfsGovernor(0.0, 1e9), FatalError);
    EXPECT_THROW(DvfsGovernor(2e9, 1e9), FatalError);
    EXPECT_THROW(DvfsGovernor(1e9, 2e9, 1), FatalError);
    EXPECT_THROW(DvfsGovernor(1e9, 2e9, 8, 0.9), FatalError);
}

/** Property: frequency is monotonically non-decreasing in demand. */
class DvfsMonotonic
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(DvfsMonotonic, FrequencyNonDecreasing)
{
    const auto [min_hz, max_hz] = GetParam();
    DvfsGovernor gov(min_hz, max_hz, 8);
    double prev = 0.0;
    for (double u = 0.0; u <= 1.0; u += 0.005) {
        const double f = gov.frequencyFor(u);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, DvfsMonotonic,
    ::testing::Values(std::make_pair(0.3e9, 1.8e9),
                      std::make_pair(0.5e9, 2.42e9),
                      std::make_pair(0.7e9, 3.0e9),
                      std::make_pair(180e6, 840e6)));

} // namespace
} // namespace mbs
