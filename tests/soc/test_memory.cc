/**
 * @file
 * Tests for the memory and storage models.
 */

#include <gtest/gtest.h>

#include "soc/memory.hh"

namespace mbs {
namespace {

TEST(Memory, IncludesIdleBaseline)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const MemorySystem mem(cfg.memory);
    MemoryDemand d;
    d.footprintBytes = 0;
    const MemoryState s = mem.evaluate(d, 0);
    EXPECT_EQ(s.usedBytes, cfg.memory.idleBytes);
}

TEST(Memory, AddsFootprintAndTextures)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const MemorySystem mem(cfg.memory);
    MemoryDemand d;
    d.footprintBytes = 1ULL << 30;
    const MemoryState s = mem.evaluate(d, 2ULL << 30);
    EXPECT_EQ(s.usedBytes,
              cfg.memory.idleBytes + (1ULL << 30) + (2ULL << 30));
    EXPECT_NEAR(s.usedFraction,
                double(s.usedBytes) / double(cfg.memory.totalBytes),
                1e-12);
}

TEST(Memory, SaturatesAtPhysicalCapacity)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const MemorySystem mem(cfg.memory);
    MemoryDemand d;
    d.footprintBytes = 64ULL << 30;
    const MemoryState s = mem.evaluate(d, 64ULL << 30);
    EXPECT_EQ(s.usedBytes, cfg.memory.totalBytes);
    EXPECT_DOUBLE_EQ(s.usedFraction, 1.0);
}

TEST(Memory, AccessorsExposeConfig)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const MemorySystem mem(cfg.memory);
    EXPECT_EQ(mem.idleBytes(), cfg.memory.idleBytes);
    EXPECT_EQ(mem.totalBytes(), cfg.memory.totalBytes);
}

TEST(Storage, BandwidthScalesWithRate)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const StorageModel storage(cfg.storage);
    StorageDemand d;
    d.ioRate = 0.5;
    const StorageState s = storage.evaluate(d);
    EXPECT_DOUBLE_EQ(s.utilization, 0.5);
    EXPECT_DOUBLE_EQ(s.bandwidth, 0.5 * cfg.storage.peakBandwidth);
}

TEST(Storage, ClampsRate)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    const StorageModel storage(cfg.storage);
    StorageDemand d;
    d.ioRate = 1.7;
    EXPECT_DOUBLE_EQ(storage.evaluate(d).utilization, 1.0);
    d.ioRate = -0.5;
    EXPECT_DOUBLE_EQ(storage.evaluate(d).utilization, 0.0);
}

} // namespace
} // namespace mbs
