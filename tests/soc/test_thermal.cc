/**
 * @file
 * Tests for the thermal/throttling model extension.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "soc/simulator.hh"
#include "soc/thermal.hh"

namespace mbs {
namespace {

TEST(Thermal, StartsAtAmbient)
{
    const ThermalModel model;
    EXPECT_DOUBLE_EQ(model.temperatureC(), 25.0);
    EXPECT_DOUBLE_EQ(model.throttleFactor(), 1.0);
}

TEST(Thermal, RelaxesTowardSteadyState)
{
    ThermalParams params;
    ThermalModel model(params);
    // 5 W * 8 C/W + 25 C ambient -> 65 C steady state.
    for (int i = 0; i < 10000; ++i)
        model.step(5.0, 0.1);
    EXPECT_NEAR(model.temperatureC(), 65.0, 0.5);
}

TEST(Thermal, TimeConstantIsRC)
{
    ThermalParams params; // R*C = 64 s
    ThermalModel model(params);
    // After one time constant, ~63.2% of the way to steady state.
    for (int i = 0; i < 640; ++i)
        model.step(5.0, 0.1);
    const double progress =
        (model.temperatureC() - 25.0) / (65.0 - 25.0);
    EXPECT_NEAR(progress, 0.632, 0.02);
}

TEST(Thermal, ShortBurstBarelyWarms)
{
    ThermalModel model;
    for (int i = 0; i < 300; ++i) // thirty seconds at 8 W
        model.step(8.0, 0.1);
    EXPECT_LT(model.temperatureC(), 62.0);
    EXPECT_DOUBLE_EQ(model.throttleFactor(), 1.0);
}

TEST(Thermal, SustainedHeavyLoadThrottles)
{
    ThermalModel model;
    for (int i = 0; i < 12000; ++i) // twenty minutes at 9 W
        model.step(9.0, 0.1);
    EXPECT_GT(model.temperatureC(), 90.0);
    EXPECT_LT(model.throttleFactor(), 1.0);
    EXPECT_GE(model.throttleFactor(),
              model.params().minThrottleFactor);
}

TEST(Thermal, ThrottleFactorHasFloor)
{
    ThermalParams params;
    ThermalModel model(params);
    for (int i = 0; i < 100000; ++i)
        model.step(50.0, 0.1); // absurd power
    EXPECT_DOUBLE_EQ(model.throttleFactor(),
                     params.minThrottleFactor);
}

TEST(Thermal, InvalidParamsAreFatal)
{
    ThermalParams bad;
    bad.thermalResistanceCperW = 0.0;
    EXPECT_THROW(ThermalModel{bad}, FatalError);
    bad = ThermalParams{};
    bad.throttleC = bad.ambientC;
    EXPECT_THROW(ThermalModel{bad}, FatalError);
    bad = ThermalParams{};
    bad.minThrottleFactor = 0.0;
    EXPECT_THROW(ThermalModel{bad}, FatalError);
}

TEST(Thermal, StepRejectsNonPositiveDt)
{
    ThermalModel model;
    EXPECT_THROW(model.step(1.0, 0.0), FatalError);
}

TimedPhase
sustainedGpuPhase(double duration)
{
    TimedPhase p;
    p.durationSeconds = duration;
    p.demand.threads = {ThreadDemand{4, 0.3}};
    p.demand.cpu.instructionsBillions = 0.02 * duration;
    p.demand.gpu.workRate = 0.95;
    p.demand.gpu.api = GraphicsApi::Vulkan;
    p.demand.gpu.textureBandwidth = 0.7;
    return p;
}

TEST(ThermalSimulation, DisabledByDefaultKeepsAmbient)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto result = sim.run({sustainedGpuPhase(60.0)});
    for (const auto &f : result.frames) {
        EXPECT_DOUBLE_EQ(f.socTemperatureC, 25.0);
        EXPECT_DOUBLE_EQ(f.throttleFactor, 1.0);
    }
}

TEST(ThermalSimulation, SustainedRunHeatsAndThrottles)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions opts;
    opts.thermal.enabled = true;
    opts.durationJitter = 0.0;
    opts.demandJitter = 0.0;
    const auto result =
        sim.run({sustainedGpuPhase(1200.0)}, opts);
    // The die warms monotonically-ish and ends hot.
    EXPECT_GT(result.frames.back().socTemperatureC, 62.0);
    EXPECT_LT(result.frames.back().throttleFactor, 1.0);
    // GPU load late in the run falls below the early burst value.
    const double early = result.frames[100].gpu.load;
    const double late = result.frames.back().gpu.load;
    EXPECT_LT(late, early);
}

TEST(ThermalSimulation, ShortBurstKeepsFullPerformance)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions opts;
    opts.thermal.enabled = true;
    opts.durationJitter = 0.0;
    opts.demandJitter = 0.0;
    const auto result = sim.run({sustainedGpuPhase(60.0)}, opts);
    EXPECT_DOUBLE_EQ(result.frames.back().throttleFactor, 1.0);
    EXPECT_LT(result.frames.back().socTemperatureC, 62.0);
}

TEST(ThermalSimulation, EnabledMatchesDisabledWhileCool)
{
    // Before the die crosses the throttle threshold, the thermal
    // extension must not perturb any performance counter.
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions off;
    off.durationJitter = 0.0;
    off.demandJitter = 0.0;
    SimOptions on = off;
    on.thermal.enabled = true;
    const auto a = sim.run({sustainedGpuPhase(30.0)}, off);
    const auto b = sim.run({sustainedGpuPhase(30.0)}, on);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_DOUBLE_EQ(a.totals.instructions, b.totals.instructions);
    for (std::size_t i = 0; i < a.frames.size(); i += 37)
        EXPECT_DOUBLE_EQ(a.frames[i].gpu.load, b.frames[i].gpu.load);
}

} // namespace
} // namespace mbs
