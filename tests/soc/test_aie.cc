/**
 * @file
 * Tests for the AIE/DSP model and the codec-support bounce behaviour
 * (the AV1 software-decode effect in Antutu UX).
 */

#include <gtest/gtest.h>

#include "soc/aie.hh"

namespace mbs {
namespace {

AieModel
makeAie()
{
    return AieModel(SocConfig::snapdragon888().aie);
}

TEST(Aie, SupportedCodecsMatchSnapdragon888)
{
    const auto aie = makeAie();
    EXPECT_TRUE(aie.supportsCodec(MediaCodec::None));
    EXPECT_TRUE(aie.supportsCodec(MediaCodec::H264));
    EXPECT_TRUE(aie.supportsCodec(MediaCodec::H265));
    EXPECT_TRUE(aie.supportsCodec(MediaCodec::Vp9));
    EXPECT_FALSE(aie.supportsCodec(MediaCodec::Av1));
}

TEST(Aie, IdleDemandProducesNoLoad)
{
    const auto aie = makeAie();
    AieDemand d;
    const AieState s = aie.evaluate(d);
    EXPECT_DOUBLE_EQ(s.load, 0.0);
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
    EXPECT_DOUBLE_EQ(s.cpuBounceDemand, 0.0);
}

TEST(Aie, SupportedCodecRunsOnAie)
{
    const auto aie = makeAie();
    AieDemand d;
    d.workRate = 0.5;
    d.codec = MediaCodec::H264;
    const AieState s = aie.evaluate(d);
    EXPECT_GT(s.load, 0.0);
    EXPECT_DOUBLE_EQ(s.cpuBounceDemand, 0.0);
}

TEST(Aie, UnsupportedCodecBouncesToCpu)
{
    const auto aie = makeAie();
    AieDemand d;
    d.workRate = 0.5;
    d.codec = MediaCodec::Av1;
    const AieState s = aie.evaluate(d);
    EXPECT_DOUBLE_EQ(s.load, 0.0);
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
    EXPECT_NEAR(s.cpuBounceDemand,
                0.5 * AieModel::softwareDecodeFactor, 1e-12);
}

TEST(Aie, SoftwareDecodeIsMoreExpensive)
{
    EXPECT_GT(AieModel::softwareDecodeFactor, 1.0);
}

TEST(Aie, LoadMonotoneInWorkRate)
{
    const auto aie = makeAie();
    double prev = 0.0;
    for (double rate = 0.0; rate <= 1.0; rate += 0.05) {
        AieDemand d;
        d.workRate = rate;
        const double load = aie.evaluate(d).load;
        EXPECT_GE(load, prev - 1e-9);
        prev = load;
    }
}

TEST(Aie, FullDemandReachesFullLoad)
{
    const auto aie = makeAie();
    AieDemand d;
    d.workRate = 1.0;
    const AieState s = aie.evaluate(d);
    EXPECT_NEAR(s.load, 1.0, 1e-9);
    EXPECT_NEAR(s.utilization, 1.0, 1e-9);
}

TEST(Aie, Av1OnPermissiveConfigStaysOnAie)
{
    AieConfig cfg = SocConfig::snapdragon888().aie;
    cfg.supportsAv1 = true; // a newer SoC generation
    const AieModel aie(cfg);
    AieDemand d;
    d.workRate = 0.5;
    d.codec = MediaCodec::Av1;
    const AieState s = aie.evaluate(d);
    EXPECT_GT(s.load, 0.0);
    EXPECT_DOUBLE_EQ(s.cpuBounceDemand, 0.0);
}

} // namespace
} // namespace mbs
