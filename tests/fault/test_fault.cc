/**
 * @file
 * Fault-injection framework tests: spec parsing and round-tripping,
 * trigger semantics (burst vs rate), decision determinism under
 * re-arm, payload-mutation determinism, the idle fast path and the
 * fault.* instruments.
 */

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace fault {
namespace {

std::uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

/** Collect the injector's verdicts for @p arrivals at @p site. */
std::vector<std::optional<Kind>>
drain(const std::string &site, int arrivals)
{
    std::vector<std::optional<Kind>> verdicts;
    for (int i = 0; i < arrivals; ++i)
        verdicts.push_back(Injector::instance().next(site));
    return verdicts;
}

TEST(FaultPlan, ParsesBurstAndRateEntries)
{
    const FaultPlan plan =
        FaultPlan::parse("store.read:eio@3,ingest.csv:truncate@0.01",
                         7);
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.seed(), 7u);
    EXPECT_EQ(plan.describe(),
              "store.read:eio@3,ingest.csv:truncate@0.01");
}

TEST(FaultPlan, DescribeRoundTripsThroughParse)
{
    // Including the uniform plan, whose entries use kind "any" and a
    // whole-valued rate — the two corners of the grammar.
    for (const FaultPlan &plan :
         {FaultPlan::uniform(1.0, 3),
          FaultPlan::parse("exec.task:eio@2,store.read:corrupt@0.5",
                           3),
          FaultPlan::parse("telemetry.write:any@0.25", 3)}) {
        const FaultPlan back = FaultPlan::parse(plan.describe(), 3);
        EXPECT_EQ(back.describe(), plan.describe());
    }
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("store.read", 1), FatalError);
    EXPECT_THROW(FaultPlan::parse("no.such.site:eio@1", 1),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("store.read:frob@1", 1),
                 FatalError);
    // store.write only supports eio.
    EXPECT_THROW(FaultPlan::parse("store.write:truncate@1", 1),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("store.read:eio@0", 1), FatalError);
    EXPECT_THROW(FaultPlan::parse("store.read:eio@1.5", 1),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("store.read:eio@-0.5", 1),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("store.read:eio@x", 1),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("", 1), FatalError);
    EXPECT_THROW(FaultPlan::uniform(0.0, 1), FatalError);
    EXPECT_THROW(FaultPlan::uniform(1.5, 1), FatalError);
}

TEST(FaultPlan, KnownSitesAndKindsAreConsistent)
{
    const auto &sites = FaultPlan::knownSites();
    EXPECT_EQ(sites.size(), 7u);
    for (const std::string &site : sites)
        EXPECT_FALSE(FaultPlan::kindsFor(site).empty()) << site;
    EXPECT_TRUE(FaultPlan::kindsFor("no.such.site").empty());
}

TEST(Injector, IdleInjectsNothing)
{
    // No plan armed: the fast path must stay silent at every site.
    EXPECT_FALSE(Injector::instance().active());
    const std::uint64_t injected = counterValue("fault.injected");
    for (const std::string &site : FaultPlan::knownSites())
        EXPECT_FALSE(check(site.c_str()).has_value());
    EXPECT_EQ(counterValue("fault.injected"), injected);
}

TEST(Injector, BurstFiresOnExactlyTheFirstNArrivals)
{
    const std::uint64_t injected = counterValue("fault.injected");
    ScopedPlan guard(FaultPlan::parse("store.read:eio@3", 11));
    EXPECT_TRUE(Injector::instance().active());
    const auto verdicts = drain("store.read", 10);
    for (int i = 0; i < 10; ++i) {
        if (i < 3)
            EXPECT_EQ(verdicts[i], Kind::Error) << "arrival " << i;
        else
            EXPECT_FALSE(verdicts[i].has_value()) << "arrival " << i;
    }
    // Other sites are untouched by a single-site plan.
    EXPECT_FALSE(check("exec.task").has_value());
    EXPECT_EQ(counterValue("fault.injected"), injected + 3);
}

TEST(Injector, RearmReplaysTheSamePattern)
{
    const FaultPlan plan = FaultPlan::uniform(0.3, 99);
    std::vector<std::optional<Kind>> first, second;
    {
        ScopedPlan guard(plan);
        first = drain("ingest.csv", 64);
    }
    {
        ScopedPlan guard(plan);
        second = drain("ingest.csv", 64);
    }
    EXPECT_EQ(first, second);
    // A fair rate produces a mixed pattern, not all-or-nothing.
    int fired = 0;
    for (const auto &v : first)
        fired += v.has_value() ? 1 : 0;
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 64);
}

TEST(Injector, DifferentSeedsProduceDifferentPatterns)
{
    std::vector<std::optional<Kind>> a, b;
    {
        ScopedPlan guard(FaultPlan::uniform(0.3, 1));
        a = drain("ingest.csv", 64);
    }
    {
        ScopedPlan guard(FaultPlan::uniform(0.3, 2));
        b = drain("ingest.csv", 64);
    }
    EXPECT_NE(a, b);
}

TEST(Injector, RateOneAlwaysFiresAndRespectsSiteKinds)
{
    ScopedPlan guard(FaultPlan::uniform(1.0, 5));
    for (const std::string &site : FaultPlan::knownSites()) {
        const auto verdicts = drain(site, 8);
        const auto &allowed = FaultPlan::kindsFor(site);
        for (const auto &v : verdicts) {
            ASSERT_TRUE(v.has_value()) << site;
            EXPECT_NE(std::find(allowed.begin(), allowed.end(), *v),
                      allowed.end())
                << site;
        }
    }
}

TEST(Injector, MutateIsDeterministicUnderRearm)
{
    const FaultPlan plan = FaultPlan::parse("store.read:corrupt@1",
                                            21);
    const std::string payload(2048, 'x');
    std::string first, second, firstNext;
    {
        ScopedPlan guard(plan);
        first = Injector::instance().mutate(Kind::Corrupt,
                                            "store.read", payload);
        // The per-site stream advances: a second mutation differs.
        firstNext = Injector::instance().mutate(Kind::Corrupt,
                                                "store.read", payload);
    }
    {
        ScopedPlan guard(plan);
        second = Injector::instance().mutate(Kind::Corrupt,
                                             "store.read", payload);
    }
    EXPECT_EQ(first, second);
    EXPECT_NE(first, payload);
    EXPECT_NE(first, firstNext);
    EXPECT_EQ(first.size(), payload.size());
}

TEST(Injector, TruncateShortensButKeepsSomePrefix)
{
    ScopedPlan guard(FaultPlan::parse("ingest.csv:truncate@1", 33));
    const std::string payload(1000, 'y');
    const std::string cut = Injector::instance().mutate(
        Kind::Truncate, "ingest.csv", payload);
    EXPECT_LT(cut.size(), payload.size());
    EXPECT_GT(cut.size(), 0u);
    EXPECT_EQ(cut, payload.substr(0, cut.size()));
}

TEST(Injector, RecoveredAndDegradedCountAndDisarmResets)
{
    const std::uint64_t recovered = counterValue("fault.recovered");
    const std::uint64_t degraded = counterValue("fault.degraded");
    {
        ScopedPlan guard(FaultPlan::parse("store.read:eio@1", 55));
        Injector::instance().recovered("store.read", "retried");
        Injector::instance().degraded("store.read", "gave up");
    }
    EXPECT_EQ(counterValue("fault.recovered"), recovered + 1);
    EXPECT_EQ(counterValue("fault.degraded"), degraded + 1);
    // ScopedPlan disarmed on scope exit; the injector is idle again.
    EXPECT_FALSE(Injector::instance().active());
    EXPECT_FALSE(check("store.read").has_value());
}

TEST(Injector, InjectedFaultNamesItsSite)
{
    const InjectedFault fault("exec.task");
    EXPECT_EQ(fault.site(), "exec.task");
    EXPECT_STREQ(fault.what(), "injected fault at exec.task");
}

} // namespace
} // namespace fault
} // namespace mbs
