/**
 * @file
 * The paper's Observations #1-#9 encoded as integration tests over
 * the simulated measurements.
 */

#include <gtest/gtest.h>

#include "report_fixture.hh"

namespace mbs {
namespace {

using testutil::profile;
using testutil::report;

// --- Observation #1: multi-core/multi-threaded components spike CPU
//     load; single-core sections sit much lower.

TEST(Observation1, GeekbenchCpuLoadSpikesInMultiCoreSection)
{
    for (const char *name : {"Geekbench 5 CPU", "Geekbench 6 CPU"}) {
        const auto &series = profile(name).series.cpuLoad;
        // The single-core opening sits far below the multi-core
        // finale (the paper: single-core parts run near 30% load).
        const double single_core = series.atNormalizedTime(0.05);
        const double multi_core = series.atNormalizedTime(0.95);
        EXPECT_GT(multi_core, single_core * 1.5) << name;
    }
}

TEST(Observation1, AntutuCpuGemmUptickAtStart)
{
    const auto &series = profile("Antutu CPU").series.cpuLoad;
    // GEMM occupies the first ~11% of the segment and is multi-
    // threaded: the start must be hotter than the single-core middle.
    const double start = series.atNormalizedTime(0.05);
    const double middle = series.atNormalizedTime(0.5);
    EXPECT_GT(start, middle);
}

TEST(Observation1, SlingshotPhysicsSpikesCpu)
{
    const auto &p = profile("3DMark Slingshot");
    // Physics tests sit at ~64-86% of the run (after two graphics
    // tests), with escalating multi-threaded CPU demand.
    const double graphics = p.series.cpuLoad.atNormalizedTime(0.3);
    const double physics = p.series.cpuLoad.atNormalizedTime(0.75);
    EXPECT_GT(physics, graphics * 1.3);
    // And the physics test minimizes GPU work.
    const double gpu_graphics =
        p.series.gpuLoad.atNormalizedTime(0.3);
    const double gpu_physics =
        p.series.gpuLoad.atNormalizedTime(0.75);
    EXPECT_LT(gpu_physics, gpu_graphics * 0.5);
}

// --- Observation #2: Vulkan is more efficient than OpenGL.

TEST(Observation2, OpenGlScenesShowHigherGpuLoadThanVulkan)
{
    // Compare matched GFXBench High scenes (same rate/res/screen).
    const auto &gfx = testutil::registry().unit("GFXBench High");
    const ProfilerSession session(SocConfig::snapdragon888());
    double gl = 0.0, vk = 0.0;
    int gl_n = 0, vk_n = 0;
    const auto p = session.profile(gfx);
    for (std::size_t i = 0; i < gfx.phases().size(); ++i) {
        const auto &phase = gfx.phases()[i];
        const double at = gfx.phaseStartFraction(i) + 0.01;
        const double load = p.series.gpuLoad.atNormalizedTime(at);
        if (phase.demand.gpu.api == GraphicsApi::OpenGlEs &&
            phase.demand.gpu.workRate == 0.85) {
            gl += load;
            ++gl_n;
        }
        if (phase.demand.gpu.api == GraphicsApi::Vulkan &&
            phase.demand.gpu.workRate == 0.85) {
            vk += load;
            ++vk_n;
        }
    }
    ASSERT_GT(gl_n, 0);
    ASSERT_GT(vk_n, 0);
    EXPECT_GT(gl / gl_n, vk / vk_n);
}

// --- Observation #3: GPU resources are not exclusive to GPU
//     benchmarks.

TEST(Observation3, PcmarkWorkUsesShadersSustained)
{
    const auto &p = profile("PCMark Work");
    // Photo/video editing keep shaders busy for sustained periods.
    EXPECT_GT(p.series.shadersBusy.fractionAbove(0.3), 0.2);
    // Yet PCMark Work is not a graphics benchmark.
    EXPECT_LT(p.avgGpuLoad(), 0.5);
}

TEST(Observation3, BusTrafficNotProportionalToGraphicsIntensity)
{
    // GFXBench Low's texturing tests push the bus harder than some
    // higher-GPU-load scenes; compare bus/load ratios.
    const auto &low = profile("GFXBench Low");
    const auto &compute = profile("Geekbench 6 Compute");
    const double low_ratio =
        low.avgGpuBusBusy() / low.avgGpuLoad();
    const double compute_ratio =
        compute.avgGpuBusBusy() / compute.avgGpuLoad();
    EXPECT_GT(low_ratio, compute_ratio);
}

// --- Observation #4: newer benchmarks are not always more
//     computationally intensive.

TEST(Observation4, SwordsmanIsNotTheCpuHeaviestAntutuGpuPart)
{
    const auto &p = profile("Antutu GPU");
    // CPU load during Swordsman (newest, first 15%) vs Terracotta
    // (oldest, 50-95%).
    const double swordsman = p.series.cpuLoad.atNormalizedTime(0.08);
    const double terracotta = p.series.cpuLoad.atNormalizedTime(0.7);
    EXPECT_LT(swordsman, terracotta * 1.3);
}

TEST(Observation4, LoadingSpikesNearSixteenAndFortyNinePercent)
{
    const auto &series = profile("Antutu GPU").series.cpuLoad;
    const auto window_max = [&series](double lo, double hi) {
        double best = 0.0;
        for (double t = lo; t <= hi; t += 0.002)
            best = std::max(best, series.atNormalizedTime(t));
        return best;
    };
    const double spike1 = window_max(0.14, 0.20);
    const double spike2 = window_max(0.46, 0.53);
    const double swordsman = series.atNormalizedTime(0.08);
    EXPECT_GT(spike1, swordsman * 1.2);
    EXPECT_GT(spike2, swordsman * 1.2);
}

// --- Observation #5: benchmarks make little use of the AIE.

TEST(Observation5, AverageAieLoadIsLow)
{
    double sum = 0.0;
    for (const auto &p : report().profiles)
        sum += p.avgAieLoad();
    const double avg = sum / double(report().profiles.size());
    EXPECT_LT(avg, 0.12); // "the average load is just 5%"
    EXPECT_GT(avg, 0.01);
}

TEST(Observation5, GfxSpecialHasHighestAieLoad)
{
    const double special = profile("GFXBench Special").avgAieLoad();
    for (const auto &p : report().profiles) {
        if (p.name != "GFXBench Special")
            EXPECT_LT(p.avgAieLoad(), special) << p.name;
    }
    // Peaks above 50% of the metric near section ends.
    EXPECT_GT(profile("GFXBench Special").series.aieLoad.max(), 0.5);
}

TEST(Observation5, AntutuUxHasAiePeaksNearFifty)
{
    const auto &series = profile("Antutu UX").series.aieLoad;
    EXPECT_GT(series.max(), 0.35);
    EXPECT_LT(series.mean(), 0.3);
}

TEST(Observation5, WildLifeUsesFftPostProcessing)
{
    EXPECT_GT(profile("3DMark Wild Life").series.aieLoad.max(), 0.15);
    EXPECT_GT(profile("3DMark Wild Life Extreme")
                  .series.aieLoad.max(), 0.15);
}

// --- Observation #6: moderate memory footprints.

TEST(Observation6, AverageMemoryUsageIsModerate)
{
    double sum = 0.0;
    for (const auto &p : report().profiles)
        sum += p.avgUsedMemory();
    const double avg = sum / double(report().profiles.size());
    // Paper: 21.6% of 11.83 GB. Accept the 15-30% band.
    EXPECT_GT(avg, 0.15);
    EXPECT_LT(avg, 0.30);
}

TEST(Observation6, GpuBenchmarksUseMoreMemory)
{
    double gpu = 0.0, cpu = 0.0;
    gpu += profile("GFXBench High").avgUsedMemory();
    gpu += profile("3DMark Wild Life Extreme").avgUsedMemory();
    cpu += profile("Geekbench 5 CPU").avgUsedMemory();
    cpu += profile("Antutu CPU").avgUsedMemory();
    EXPECT_GT(gpu / 2.0, cpu / 2.0 * 1.5);
}

TEST(Observation6, WildLifeExtremeHasHighestAverageMemory)
{
    const double wle =
        profile("3DMark Wild Life Extreme").avgUsedMemory();
    for (const auto &p : report().profiles) {
        if (p.name != "3DMark Wild Life Extreme")
            EXPECT_LE(p.avgUsedMemory(), wle + 1e-9) << p.name;
    }
    // ~3.8-4.1 GB of 11.83 GB.
    EXPECT_GT(wle, 0.28);
    EXPECT_LT(wle, 0.40);
}

TEST(Observation6, AntutuGpuHasHighestPeakMemory)
{
    const double peak =
        profile("Antutu GPU").series.usedMemory.max();
    for (const auto &p : report().profiles) {
        if (p.name != "Antutu GPU")
            EXPECT_LE(p.series.usedMemory.max(), peak + 1e-9)
                << p.name;
    }
    // ~4.3 GB of 11.83 GB, minus idle baseline.
    EXPECT_GT(peak, 0.30);
}

// --- Observation #7: big cores see higher load levels than mid.

TEST(Observation7, BigSustainsHighLoadLongerThanMidOverall)
{
    constexpr auto mid = std::size_t(ClusterId::Mid);
    constexpr auto big = std::size_t(ClusterId::Big);
    int big_wins = 0, comparisons = 0;
    std::string loser;
    for (const auto &p : report().profiles) {
        // "Benchmarks that they are actively used": both clusters
        // see meaningful load for at least 10% of the run.
        if (p.series.clusterLoad[big].fractionAbove(0.25) < 0.1 ||
            p.series.clusterLoad[mid].fractionAbove(0.25) < 0.1) {
            continue;
        }
        ++comparisons;
        const double big_high =
            p.series.clusterLoad[big].fractionAbove(0.5);
        const double mid_high =
            p.series.clusterLoad[mid].fractionAbove(0.5);
        if (big_high >= mid_high - 0.01)
            ++big_wins;
        else
            loser = p.name;
    }
    ASSERT_GT(comparisons, 3);
    // All but one favour the big cluster; Aitutu is the exception.
    EXPECT_EQ(big_wins, comparisons - 1);
    EXPECT_EQ(loser, "Aitutu");
}

TEST(Observation7, AitutuIsTheException)
{
    const auto &p = profile("Aitutu");
    constexpr auto mid = std::size_t(ClusterId::Mid);
    constexpr auto big = std::size_t(ClusterId::Big);
    EXPECT_GT(p.series.clusterLoad[mid].fractionAbove(0.5),
              p.series.clusterLoad[big].fractionAbove(0.5));
}

// --- Observation #8: GPU tests use only the efficient cores.

TEST(Observation8, GpuBenchmarksLeaveMidAndBigIdle)
{
    constexpr auto little = std::size_t(ClusterId::Little);
    constexpr auto mid = std::size_t(ClusterId::Mid);
    constexpr auto big = std::size_t(ClusterId::Big);
    for (const char *name :
         {"3DMark Wild Life", "GFXBench High", "GFXBench Low"}) {
        const auto &p = profile(name);
        EXPECT_GT(p.series.clusterLoad[little].mean(), 0.2) << name;
        EXPECT_LT(p.series.clusterLoad[mid].mean(), 0.1) << name;
        EXPECT_LT(p.series.clusterLoad[big].mean(), 0.1) << name;
    }
}

// --- Observation #9: few workloads exploit every cluster at once.

TEST(Observation9, OnlyMultiCoreBenchmarksStressAllClusters)
{
    const std::set<std::string> expected{
        "Aitutu", "Antutu CPU", "Geekbench 5 CPU", "Geekbench 6 CPU"};
    std::set<std::string> found;
    for (const auto &p : report().profiles) {
        if (CharacterizationPipeline::stressesAllCpuClusters(p))
            found.insert(p.name);
    }
    EXPECT_EQ(found, expected);
}

TEST(Observation9, Geekbench5SustainsMidLoadOverHalfItsRuntime)
{
    constexpr auto mid = std::size_t(ClusterId::Mid);
    const auto &p = profile("Geekbench 5 CPU");
    EXPECT_GT(p.series.clusterLoad[mid].fractionAbove(0.75), 0.5);
    // And it is the only benchmark that does so.
    for (const auto &other : report().profiles) {
        if (other.name == "Geekbench 5 CPU")
            continue;
        EXPECT_LE(other.series.clusterLoad[mid].fractionAbove(0.75),
                  0.5)
            << other.name;
    }
}

} // namespace
} // namespace mbs
