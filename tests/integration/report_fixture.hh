/**
 * @file
 * Shared fixture: runs the full characterization pipeline once and
 * caches the report for all integration tests.
 */

#ifndef MBS_TESTS_INTEGRATION_REPORT_FIXTURE_HH
#define MBS_TESTS_INTEGRATION_REPORT_FIXTURE_HH

#include <gtest/gtest.h>

#include "core/pipeline.hh"

namespace mbs {
namespace testutil {

inline const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

inline const CharacterizationReport &
report()
{
    static const CharacterizationReport rep = [] {
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888());
        return pipeline.run(registry());
    }();
    return rep;
}

inline const BenchmarkProfile &
profile(const std::string &name)
{
    for (const auto &p : report().profiles) {
        if (p.name == name)
            return p;
    }
    throw std::runtime_error("no profile named " + name);
}

} // namespace testutil
} // namespace mbs

#endif // MBS_TESTS_INTEGRATION_REPORT_FIXTURE_HH
