/**
 * @file
 * Golden tests for the run ledger: records captured from in-process
 * pipeline runs at --jobs 1 and --jobs 4 must carry byte-identical
 * stable blocks and compare with zero deltas at threshold 0, and a
 * run with an injected executor fault must regress exec.tasks and
 * surface the fault.* counters as new rows — the exact contract
 * `mobilebench compare` turns into an exit status.
 *
 * Runs the pipeline with zeroAll() between runs (reset() would
 * destroy instruments whose references hot paths cache), so the
 * records cover exactly what the CLI appends to the ledger.
 */

#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/digest.hh"
#include "core/pipeline.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "report/capture.hh"
#include "report/compare.hh"
#include "report/ledger.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

using obs::MetricsRegistry;
using obs::TimeSeriesSampler;

/** Run the full pipeline in-process and capture a ledger record. */
report::LedgerRecord
captureRun(int jobs)
{
    MetricsRegistry::instance().zeroAll();
    auto &sampler = TimeSeriesSampler::instance();
    sampler.reset();
    sampler.setEnabled(true);

    PipelineOptions options;
    options.profile.jobs = jobs;
    const SocConfig soc = SocConfig::snapdragon888();
    const CharacterizationPipeline pipeline(soc, options);
    const WorkloadRegistry registry;
    const auto report = pipeline.run(registry);
    EXPECT_FALSE(report.profiles.empty());

    Fnv1a suite;
    for (const auto &s : registry.suites())
        suite.mix(s.digest());

    report::CaptureContext context;
    context.command = "pipeline";
    context.runId = "cafef00dcafef00d";
    context.socName = soc.name;
    context.socConfigDigest = soc.digest();
    context.suiteDigest = suite.value();
    context.seed = options.profile.seed;
    context.runs = options.profile.runs;
    context.tickSeconds = options.profile.tickSeconds;
    context.jobs = jobs;
    context.wallSeconds = 0.25 * jobs; // volatile by contract
    const report::LedgerRecord record =
        report::captureRecord(context);

    sampler.setEnabled(false);
    sampler.reset();
    return record;
}

class LedgerGoldenTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        fault::Injector::instance().disarm();
        auto &sampler = TimeSeriesSampler::instance();
        sampler.setEnabled(false);
        sampler.reset();
        MetricsRegistry::instance().zeroAll();
    }
};

TEST_F(LedgerGoldenTest, StableBlocksIdenticalAcrossJobCounts)
{
    const report::LedgerRecord serial = captureRun(1);
    const report::LedgerRecord parallel = captureRun(4);

    // Sanity: the runs actually produced a metrics snapshot.
    ASSERT_NE(serial.findMetric("exec.tasks"), nullptr);
    EXPECT_GT(serial.logicalTicks, 0u);

    // The contract: byte-identical stable blocks, not merely equal
    // values — the golden the CLI lane asserts with diff.
    EXPECT_EQ(serial.stableJson(), parallel.stableJson());

    // And the volatile side really did differ (jobs, wall clock),
    // proving the stable/volatile split carries the determinism.
    EXPECT_NE(serial.jobs, parallel.jobs);

    const report::CompareResult diff =
        report::compareRecords(serial, parallel, 0.0);
    EXPECT_FALSE(diff.regression()) << diff.toText();
    for (const auto &row : diff.metrics)
        EXPECT_EQ(row.delta, 0.0) << row.name;
    EXPECT_EQ(diff.logicalTicks.delta, 0.0);
}

TEST_F(LedgerGoldenTest, InjectedExecutorFaultFlagsRegression)
{
    report::LedgerRecord base = captureRun(1);
    // Model the CLI reality (one process per run): the baseline run
    // never registered the fault.* instruments, so they appear from
    // nothing on the faulted side. In this shared-process binary a
    // previously armed plan may have left them behind at zero.
    base.metrics.erase(
        std::remove_if(base.metrics.begin(), base.metrics.end(),
                       [](const report::LedgerMetric &m) {
                           return m.name.rfind("fault.", 0) == 0;
                       }),
        base.metrics.end());

    // Same run with faults injected at the executor's task site: the
    // retry path re-executes tasks, so exec.tasks must grow and the
    // fault.* counters appear from nothing.
    report::LedgerRecord faulted;
    {
        const fault::ScopedPlan plan(
            fault::FaultPlan::parse("exec.task:eio@2", 42));
        faulted = captureRun(1);
    }

    const report::LedgerMetric *baseTasks =
        base.findMetric("exec.tasks");
    const report::LedgerMetric *faultTasks =
        faulted.findMetric("exec.tasks");
    ASSERT_NE(baseTasks, nullptr);
    ASSERT_NE(faultTasks, nullptr);
    EXPECT_GT(faultTasks->value, baseTasks->value);

    const report::CompareResult diff =
        report::compareRecords(base, faulted, 0.01);
    ASSERT_TRUE(diff.regression()) << diff.toText();
    EXPECT_NE(std::find(diff.regressions.begin(),
                        diff.regressions.end(), "exec.tasks"),
              diff.regressions.end())
        << diff.toText();

    // fault.* counters exist only on the faulted side: reported as
    // new, never as regressions.
    bool sawNewFault = false;
    for (const auto &row : diff.metrics) {
        if (row.name.rfind("fault.", 0) != 0)
            continue;
        EXPECT_NE(row.verdict, "regression") << row.name;
        if (row.verdict == "new")
            sawNewFault = true;
    }
    EXPECT_TRUE(sawNewFault) << diff.toText();
}

TEST_F(LedgerGoldenTest, RecordRoundTripsThroughTheLedger)
{
    report::LedgerRecord record = captureRun(2);
    const std::string dir =
        std::string(::testing::TempDir()) + "mbs-ledger-golden";
    std::filesystem::remove_all(dir);
    report::RunLedger ledger(dir);
    const std::uint64_t seq = ledger.append(record);
    const report::LedgerRecord back =
        ledger.resolve(std::to_string(seq));
    EXPECT_EQ(back.stableJson(), record.stableJson());
    EXPECT_FALSE(
        report::compareRecords(record, back, 0.0).regression());
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mbs
