/**
 * @file
 * Reproducibility tests: the whole analysis is a pure function of
 * the seed.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "report_fixture.hh"

namespace mbs {
namespace {

TEST(Determinism, TwoPipelineRunsAreIdentical)
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const auto a = pipeline.run(testutil::registry());
    const auto b = pipeline.run(testutil::registry());

    ASSERT_EQ(a.profiles.size(), b.profiles.size());
    for (std::size_t i = 0; i < a.profiles.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.profiles[i].instructions,
                         b.profiles[i].instructions);
        EXPECT_DOUBLE_EQ(a.profiles[i].ipc, b.profiles[i].ipc);
        EXPECT_DOUBLE_EQ(a.profiles[i].cacheMpki,
                         b.profiles[i].cacheMpki);
    }
    EXPECT_EQ(a.chosenK, b.chosenK);
    EXPECT_EQ(a.hierarchicalLabels, b.hierarchicalLabels);
    EXPECT_EQ(a.kmeansLabels, b.kmeansLabels);
    EXPECT_EQ(a.naiveSubset.members, b.naiveSubset.members);
    EXPECT_EQ(a.naiveCurve, b.naiveCurve);
}

TEST(Determinism, DifferentSeedChangesMeasurementsNotStructure)
{
    PipelineOptions opts;
    opts.profile.seed = 987654321;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    const auto other = pipeline.run(testutil::registry());
    const auto &base = testutil::report();

    // Raw measurements shift...
    bool any_difference = false;
    for (std::size_t i = 0; i < base.profiles.size(); ++i) {
        if (base.profiles[i].instructions !=
            other.profiles[i].instructions) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);

    // ...but the structural conclusions are robust to run-to-run
    // variation: same k, same partition, same subsets.
    EXPECT_EQ(other.chosenK, base.chosenK);
    EXPECT_TRUE(samePartition(other.hierarchicalLabels,
                              base.hierarchicalLabels));
    EXPECT_EQ(other.naiveSubset.members, base.naiveSubset.members);
    EXPECT_EQ(other.selectSubset.members, base.selectSubset.members);
    EXPECT_EQ(other.selectPlusGpuSubset.members,
              base.selectPlusGpuSubset.members);
}

TEST(Determinism, ReducedSamplingRateKeepsStructure)
{
    // An ablation of the profiler cadence: 5 Hz instead of 10 Hz.
    PipelineOptions opts;
    opts.profile.tickSeconds = 0.2;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    const auto coarse = pipeline.run(testutil::registry());
    EXPECT_EQ(coarse.chosenK, 5);
    EXPECT_TRUE(samePartition(coarse.hierarchicalLabels,
                              testutil::report().hierarchicalLabels));
}

TEST(Determinism, SingleRunProfileKeepsSubsets)
{
    PipelineOptions opts;
    opts.profile.runs = 1;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    const auto single = pipeline.run(testutil::registry());
    EXPECT_EQ(single.naiveSubset.members,
              testutil::report().naiveSubset.members);
}

} // namespace
} // namespace mbs
