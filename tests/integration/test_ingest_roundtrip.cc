/**
 * @file
 * The export/ingest round trip: profiles written as a trace bundle
 * and read back are bit-identical, and analyze() over the re-ingested
 * profiles renders every report section byte-for-byte identically to
 * the direct pipeline — at any --jobs count.
 */

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"

#include "report_fixture.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

/** Export the fixture report's profiles, ingest them back once. */
class IngestRoundTrip : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        const CharacterizationReport &direct = testutil::report();
        const WorkloadRegistry &registry = testutil::registry();

        bundleDir = new fs::path(fs::path(::testing::TempDir()) /
                                 "mbs-ingest-roundtrip");
        fs::remove_all(*bundleDir);

        const double tick =
            direct.profiles.front().series.cpuLoad.interval();
        ingest::TraceBundleWriter writer(SocConfig::snapdragon888(),
                                         tick);
        for (const auto &p : direct.profiles) {
            const Benchmark &unit = registry.unit(p.name);
            writer.add(p, unit.totalDurationSeconds(),
                       unit.individuallyExecutable());
        }
        writer.write(*bundleDir);

        result = new ingest::IngestResult(
            ingest::TraceBundleReader().read(*bundleDir));
    }

    static void TearDownTestSuite()
    {
        fs::remove_all(*bundleDir);
        delete bundleDir;
        delete result;
        bundleDir = nullptr;
        result = nullptr;
    }

    static std::vector<WorkloadInfo> manifestWorkloads()
    {
        std::vector<WorkloadInfo> out;
        for (const auto &b : result->manifest.benchmarks) {
            WorkloadInfo info;
            info.plannedRuntimeSeconds = b.plannedRuntimeSeconds;
            info.individuallyExecutable = b.individuallyExecutable;
            out.push_back(info);
        }
        return out;
    }

    static fs::path *bundleDir;
    static ingest::IngestResult *result;
};

fs::path *IngestRoundTrip::bundleDir = nullptr;
ingest::IngestResult *IngestRoundTrip::result = nullptr;

TEST_F(IngestRoundTrip, ProfilesSurviveBitExactly)
{
    const CharacterizationReport &direct = testutil::report();
    ASSERT_EQ(result->profiles.size(), direct.profiles.size());
    EXPECT_EQ(result->stats.aliasHits, 0u);
    EXPECT_EQ(result->stats.droppedSamples, 0u);
    for (std::size_t i = 0; i < direct.profiles.size(); ++i) {
        const BenchmarkProfile &a = direct.profiles[i];
        const BenchmarkProfile &b = result->profiles[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.suite, b.suite);
        EXPECT_EQ(a.runtimeSeconds, b.runtimeSeconds);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.ipc, b.ipc);
        EXPECT_EQ(a.cacheMpki, b.cacheMpki);
        EXPECT_EQ(a.branchMpki, b.branchMpki);
        forEachMetricSeries(
            a.series, [&](const char *name, const TimeSeries &sa) {
                forEachMetricSeries(
                    b.series,
                    [&](const char *other, const TimeSeries &sb) {
                        if (std::string(name) != other)
                            return;
                        ASSERT_EQ(sa.size(), sb.size())
                            << a.name << " " << name;
                        for (std::size_t k = 0; k < sa.size(); ++k)
                            ASSERT_EQ(sa[k], sb[k])
                                << a.name << " " << name
                                << " sample " << k;
                    });
            });
    }
}

TEST_F(IngestRoundTrip, ManifestMirrorsRegistryFacts)
{
    const WorkloadRegistry &registry = testutil::registry();
    ASSERT_EQ(result->manifest.benchmarks.size(),
              testutil::report().profiles.size());
    for (const auto &b : result->manifest.benchmarks) {
        const Benchmark &unit = registry.unit(b.name);
        EXPECT_EQ(b.plannedRuntimeSeconds,
                  unit.totalDurationSeconds())
            << b.name;
        EXPECT_EQ(b.individuallyExecutable,
                  unit.individuallyExecutable())
            << b.name;
        EXPECT_TRUE(b.summary.present) << b.name;
    }
    EXPECT_EQ(result->manifest.socConfigDigest,
              SocConfig::snapdragon888().digest());
}

/** Render every registry-independent section as one string. */
std::string
renderSections(const CharacterizationReport &report)
{
    return renderFig1(report) + renderTableIII(report) +
           renderTableV(report) + renderFig4(report) +
           renderFig5And6(report) + renderTableVI(report) +
           renderFig7(report);
}

TEST_F(IngestRoundTrip, AnalyzeReproducesTheDirectReportByteForByte)
{
    const CharacterizationReport &direct = testutil::report();

    // Re-analyze the ingested profiles at two different parallelism
    // levels: the rendered report must not depend on either the data
    // path (simulated vs ingested) or the jobs count.
    for (const int jobs : {1, 4}) {
        PipelineOptions options;
        options.profile.jobs = jobs;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), options);
        const CharacterizationReport ingested =
            pipeline.analyze(result->profiles, manifestWorkloads());
        EXPECT_EQ(renderSections(ingested), renderSections(direct))
            << "jobs=" << jobs;
    }
}

TEST_F(IngestRoundTrip, AnalyzeMatchesStructuredResultsToo)
{
    const CharacterizationReport &direct = testutil::report();
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const CharacterizationReport ingested =
        pipeline.analyze(result->profiles, manifestWorkloads());
    EXPECT_EQ(ingested.chosenK, direct.chosenK);
    EXPECT_EQ(ingested.hierarchicalLabels, direct.hierarchicalLabels);
    EXPECT_EQ(ingested.kmeansLabels, direct.kmeansLabels);
    EXPECT_EQ(ingested.pamLabels, direct.pamLabels);
    EXPECT_EQ(ingested.naiveSubset.members, direct.naiveSubset.members);
    EXPECT_EQ(ingested.selectSubset.members, direct.selectSubset.members);
    EXPECT_EQ(ingested.selectPlusGpuSubset.members,
              direct.selectPlusGpuSubset.members);
    EXPECT_EQ(ingested.fullRuntimeSeconds, direct.fullRuntimeSeconds);
}

} // namespace
} // namespace mbs
