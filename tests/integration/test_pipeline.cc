/**
 * @file
 * Structural tests of the full pipeline: clustering agreement, the
 * chosen k, the cluster memberships (Figs. 4-6), Fig. 7 curves, and
 * the report renderers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/report.hh"
#include "report_fixture.hh"
#include "subset/subset.hh"

namespace mbs {
namespace {

using testutil::profile;
using testutil::registry;
using testutil::report;

TEST(Fig4, OptimalKIsFive)
{
    EXPECT_EQ(report().chosenK, 5);
}

TEST(Fig4, SweepCoversThreeAlgorithmsTimesNineKs)
{
    EXPECT_EQ(report().validation.size(), 27u);
    std::set<std::string> algos;
    for (const auto &v : report().validation) {
        algos.insert(v.algorithm);
        EXPECT_GE(v.k, 2);
        EXPECT_LE(v.k, 10);
        EXPECT_GE(v.dunn, 0.0);
        EXPECT_GE(v.silhouette, -1.0);
        EXPECT_LE(v.silhouette, 1.0);
        EXPECT_GE(v.apn, 0.0);
        EXPECT_LE(v.apn, 1.0);
        EXPECT_GE(v.ad, 0.0);
    }
    EXPECT_EQ(algos.size(), 3u);
}

TEST(Fig4, AdBiasesTowardHigherK)
{
    // Paper: "The AD measure indicates a strong bias for a higher
    // number of clusters": AD at k=10 < AD at k=2 for every
    // algorithm.
    std::map<std::string, std::map<int, double>> ad;
    for (const auto &v : report().validation)
        ad[v.algorithm][v.k] = v.ad;
    for (const auto &[algo, by_k] : ad)
        EXPECT_LT(by_k.at(10), by_k.at(2)) << algo;
}

TEST(Fig5And6, AllThreeAlgorithmsAgree)
{
    EXPECT_TRUE(report().algorithmsAgree);
    EXPECT_TRUE(samePartition(report().kmeansLabels,
                              report().pamLabels));
    EXPECT_TRUE(samePartition(report().kmeansLabels,
                              report().hierarchicalLabels));
}

TEST(Fig5And6, ClusterMembershipsMatchPaperStructure)
{
    // Look up each benchmark's label.
    std::map<std::string, int> label;
    for (std::size_t i = 0; i < report().profiles.size(); ++i) {
        label[report().profiles[i].name] =
            report().hierarchicalLabels[i];
    }

    // All Antutu segments share a cluster except Antutu GPU.
    EXPECT_EQ(label["Antutu CPU"], label["Antutu Mem"]);
    EXPECT_EQ(label["Antutu CPU"], label["Antutu UX"]);
    EXPECT_NE(label["Antutu CPU"], label["Antutu GPU"]);

    // The GPU-game cluster.
    EXPECT_EQ(label["Antutu GPU"], label["3DMark Slingshot"]);
    EXPECT_EQ(label["Antutu GPU"], label["3DMark Wild Life"]);
    EXPECT_EQ(label["Antutu GPU"], label["GFXBench High"]);
    EXPECT_EQ(label["Antutu GPU"], label["GFXBench Low"]);

    // The CPU-centric cluster includes the Geekbench CPU tests and
    // Aitutu.
    EXPECT_EQ(label["Antutu CPU"], label["Geekbench 5 CPU"]);
    EXPECT_EQ(label["Antutu CPU"], label["Geekbench 6 CPU"]);
    EXPECT_EQ(label["Antutu CPU"], label["Aitutu"]);

    // GPU compute pair.
    EXPECT_EQ(label["Geekbench 5 Compute"],
              label["Geekbench 6 Compute"]);
    EXPECT_NE(label["Geekbench 5 Compute"], label["Antutu GPU"]);

    // GFXBench Special and PCMark Storage stand alone.
    for (const auto &[name, l] : label) {
        if (name != "GFXBench Special") {
            EXPECT_NE(l, label["GFXBench Special"]) << name;
        }
        if (name != "PCMark Storage") {
            EXPECT_NE(l, label["PCMark Storage"]) << name;
        }
    }
}

TEST(Fig7, CurvesAreMonotoneAndEndAtZero)
{
    for (const auto *curve :
         {&report().naiveCurve, &report().selectCurve,
          &report().selectPlusGpuCurve}) {
        ASSERT_EQ(curve->size(), 18u);
        for (std::size_t i = 1; i < curve->size(); ++i)
            EXPECT_LE((*curve)[i], (*curve)[i - 1] + 1e-9);
        EXPECT_NEAR(curve->back(), 0.0, 1e-9);
    }
}

TEST(Fig7, SelectPlusGpuBeatsNaiveAtSevenBenchmarks)
{
    // Paper: 9.78% lower distance than Naive extended to 7.
    EXPECT_LT(report().selectPlusGpuCurve[6],
              report().naiveCurve[6]);
}

TEST(Fig7, SelectPlusGpuBeatsNaiveAtFive)
{
    // Paper: 22.96% lower than the 5-benchmark Naive subset.
    const double naive5 = report().naiveCurve[4];
    const double plus7 = report().selectPlusGpuCurve[6];
    EXPECT_LT(plus7, naive5 * 0.9);
}

TEST(Fig7, SubsetPercentileIsBelowRandom)
{
    const double pct = subsetDistancePercentile(
        report().clusterFeatures,
        report().selectPlusGpuSubset.members, 400, 7);
    EXPECT_LT(pct, 50.0); // towards the lower end of the range
}

TEST(Render, EveryTableAndFigureRenders)
{
    const auto &r = report();
    EXPECT_NE(renderTableI(registry()).find("Antutu"),
              std::string::npos);
    EXPECT_NE(renderTableII(SocConfig::snapdragon888())
                  .find("Adreno 660"),
              std::string::npos);
    EXPECT_NE(renderFig1(r).find("Geekbench 6 CPU"),
              std::string::npos);
    EXPECT_NE(renderTableIII(r).find("Cache MPKI"),
              std::string::npos);
    EXPECT_NE(renderTableIV().find("% Shaders Busy"),
              std::string::npos);
    EXPECT_NE(renderFig2(r, "Antutu GPU").find("GPU Load"),
              std::string::npos);
    EXPECT_NE(renderFig3(r, "Geekbench 5 CPU").find("CPU Big"),
              std::string::npos);
    EXPECT_NE(renderTableV(r).find("75%-100%"), std::string::npos);
    EXPECT_NE(renderFig4(r).find("Silhouette"), std::string::npos);
    EXPECT_NE(renderFig5And6(r).find("agree"), std::string::npos);
    EXPECT_NE(renderTableVI(r).find("74.98%"), std::string::npos);
    EXPECT_NE(renderFig7(r).find("Select+GPU"), std::string::npos);
}

TEST(Render, Fig2UnknownBenchmarkIsFatal)
{
    EXPECT_THROW(renderFig2(report(), "Unknown"), FatalError);
    EXPECT_THROW(renderFig3(report(), "Unknown"), FatalError);
}

TEST(Pipeline, ProfilesComeBackInRegistryOrder)
{
    const auto names = registry().unitNames();
    ASSERT_EQ(report().profiles.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(report().profiles[i].name, names[i]);
}

TEST(Pipeline, ClusterFeaturesAreNormalized)
{
    const auto &m = report().clusterFeatures;
    EXPECT_EQ(m.rows(), 18u);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_GE(m.at(r, c), -1.0);
            EXPECT_LE(m.at(r, c), 1.0);
        }
    }
    // Every column hits 1.0 somewhere (max-normalization).
    for (std::size_t c = 0; c < m.cols(); ++c) {
        double max = 0.0;
        for (std::size_t r = 0; r < m.rows(); ++r)
            max = std::max(max, std::abs(m.at(r, c)));
        EXPECT_NEAR(max, 1.0, 1e-9) << m.colNames()[c];
    }
}

} // namespace
} // namespace mbs
