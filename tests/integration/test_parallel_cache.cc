/**
 * @file
 * Golden tests for the parallel executor and the profile store:
 * profiling with --jobs 4 is bit-identical to serial, and a warm
 * cache reproduces the cold report without a single simulator tick.
 */

#include <cstdint>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "report_fixture.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

std::uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

void
expectProfilesBitIdentical(const std::vector<BenchmarkProfile> &a,
                           const std::vector<BenchmarkProfile> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].name);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].suite, b[i].suite);
        // Bitwise equality, not EXPECT_DOUBLE_EQ: the merge contract
        // promises identical arithmetic, not merely close results.
        EXPECT_EQ(a[i].runtimeSeconds, b[i].runtimeSeconds);
        EXPECT_EQ(a[i].instructions, b[i].instructions);
        EXPECT_EQ(a[i].ipc, b[i].ipc);
        EXPECT_EQ(a[i].cacheMpki, b[i].cacheMpki);
        EXPECT_EQ(a[i].branchMpki, b[i].branchMpki);
        EXPECT_EQ(a[i].series.cpuLoad.values(),
                  b[i].series.cpuLoad.values());
        EXPECT_EQ(a[i].series.gpuLoad.values(),
                  b[i].series.gpuLoad.values());
        EXPECT_EQ(a[i].series.usedMemory.values(),
                  b[i].series.usedMemory.values());
        EXPECT_EQ(a[i].series.storageUtil.values(),
                  b[i].series.storageUtil.values());
        EXPECT_EQ(a[i].series.storageReadBw.values(),
                  b[i].series.storageReadBw.values());
        EXPECT_EQ(a[i].series.storageWriteBw.values(),
                  b[i].series.storageWriteBw.values());
        EXPECT_EQ(a[i].series.gpuFrequency.values(),
                  b[i].series.gpuFrequency.values());
        EXPECT_EQ(a[i].series.textureResidency.values(),
                  b[i].series.textureResidency.values());
        for (std::size_t c = 0; c < numClusters; ++c) {
            EXPECT_EQ(a[i].series.clusterLoad[c].values(),
                      b[i].series.clusterLoad[c].values());
        }
        EXPECT_EQ(a[i].series.cpuLoad.interval(),
                  b[i].series.cpuLoad.interval());
    }
}

void
expectReportsBitIdentical(const CharacterizationReport &a,
                          const CharacterizationReport &b)
{
    expectProfilesBitIdentical(a.profiles, b.profiles);

    ASSERT_EQ(a.validation.size(), b.validation.size());
    for (std::size_t i = 0; i < a.validation.size(); ++i) {
        SCOPED_TRACE(a.validation[i].algorithm + " k=" +
                     std::to_string(a.validation[i].k));
        EXPECT_EQ(a.validation[i].algorithm, b.validation[i].algorithm);
        EXPECT_EQ(a.validation[i].k, b.validation[i].k);
        EXPECT_EQ(a.validation[i].dunn, b.validation[i].dunn);
        EXPECT_EQ(a.validation[i].silhouette,
                  b.validation[i].silhouette);
        EXPECT_EQ(a.validation[i].connectivity,
                  b.validation[i].connectivity);
        EXPECT_EQ(a.validation[i].apn, b.validation[i].apn);
        EXPECT_EQ(a.validation[i].ad, b.validation[i].ad);
    }

    EXPECT_EQ(a.chosenK, b.chosenK);
    EXPECT_EQ(a.hierarchicalLabels, b.hierarchicalLabels);
    EXPECT_EQ(a.kmeansLabels, b.kmeansLabels);
    EXPECT_EQ(a.pamLabels, b.pamLabels);
    EXPECT_EQ(a.algorithmsAgree, b.algorithmsAgree);
    EXPECT_EQ(a.naiveSubset.members, b.naiveSubset.members);
    EXPECT_EQ(a.selectSubset.members, b.selectSubset.members);
    EXPECT_EQ(a.selectPlusGpuSubset.members,
              b.selectPlusGpuSubset.members);
    EXPECT_EQ(a.naiveCurve, b.naiveCurve);
    EXPECT_EQ(a.selectCurve, b.selectCurve);
    EXPECT_EQ(a.selectPlusGpuCurve, b.selectPlusGpuCurve);
    EXPECT_EQ(a.fullRuntimeSeconds, b.fullRuntimeSeconds);
}

TEST(ParallelDeterminism, ProfileAllWithFourJobsMatchesSerial)
{
    ProfileOptions serial_opts;
    serial_opts.jobs = 1;
    const ProfilerSession serial(SocConfig::snapdragon888(),
                                 serial_opts);

    ProfileOptions parallel_opts;
    parallel_opts.jobs = 4;
    const ProfilerSession parallel(SocConfig::snapdragon888(),
                                   parallel_opts);

    expectProfilesBitIdentical(
        serial.profileAll(testutil::registry()),
        parallel.profileAll(testutil::registry()));
}

TEST(ParallelDeterminism, PipelineWithFourJobsMatchesSerial)
{
    // The parallel validation sweep must also merge by slot: the
    // whole report — sweep points included — is bit-identical.
    PipelineOptions opts;
    opts.profile.jobs = 4;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    expectReportsBitIdentical(testutil::report(),
                              pipeline.run(testutil::registry()));
}

TEST(ProfileCache, WarmRunSkipsSimulationAndReproducesReport)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "mbs-warm-cache";
    fs::remove_all(dir);

    PipelineOptions opts;
    opts.cacheDir = dir.string();
    opts.profile.jobs = 2;

    const std::uint64_t cold_ticks = counterValue("sim.ticks");
    const CharacterizationReport cold =
        CharacterizationPipeline(SocConfig::snapdragon888(), opts)
            .run(testutil::registry());
    EXPECT_GT(counterValue("sim.ticks"), cold_ticks);
    EXPECT_GT(ProfileStore(dir).stats().entries, 0u);

    const std::uint64_t warm_ticks = counterValue("sim.ticks");
    const std::uint64_t warm_misses = counterValue("store.misses");
    const CharacterizationReport warm =
        CharacterizationPipeline(SocConfig::snapdragon888(), opts)
            .run(testutil::registry());

    // Every unit was served from the store: no simulator tick ran and
    // no probe missed.
    EXPECT_EQ(counterValue("sim.ticks"), warm_ticks);
    EXPECT_EQ(counterValue("store.misses"), warm_misses);
    expectReportsBitIdentical(cold, warm);

    fs::remove_all(dir);
}

TEST(ProfileCache, FaultedWarmRunStaysBitIdenticalAcrossJobCounts)
{
    // Satellite of the chaos contract: a warm cache under injected
    // store.read corruption evicts, quarantines the flapping entries
    // and recomputes — and the profiles stay bit-identical to the
    // fault-free run at every job count. Quarantine bookkeeping
    // lives in the store instance, so one store serves every run.
    const fs::path dir =
        fs::path(::testing::TempDir()) / "mbs-faulted-warm-cache";
    fs::remove_all(dir);
    ProfileStore store(dir);

    ProfileOptions opts;
    opts.cache = &store;
    opts.jobs = 1;
    const auto clean =
        ProfilerSession(SocConfig::snapdragon888(), opts)
            .profileAll(testutil::registry());
    EXPECT_GT(store.stats().entries, 0u);

    // Every cached read is corrupted. One faulted run per job count:
    // the second one pushes each entry past the quarantine threshold.
    const std::uint64_t quarantines =
        counterValue("store.quarantined");
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("store.read:corrupt@100000", 42);
    for (int jobs : {1, 4}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        fault::ScopedPlan guard(plan);
        ProfileOptions faulted = opts;
        faulted.jobs = jobs;
        expectProfilesBitIdentical(
            clean,
            ProfilerSession(SocConfig::snapdragon888(), faulted)
                .profileAll(testutil::registry()));
    }
    EXPECT_GT(counterValue("store.quarantined"), quarantines);

    // With the plan gone, quarantine still bypasses the flapping
    // entries: the warm run recomputes them and stays identical.
    expectProfilesBitIdentical(
        clean, ProfilerSession(SocConfig::snapdragon888(), opts)
                   .profileAll(testutil::registry()));

    fs::remove_all(dir);
}

TEST(ProfileCache, DifferentSeedMissesTheCache)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "mbs-seed-cache";
    fs::remove_all(dir);

    ProfileStore store(dir);
    ProfileOptions opts;
    opts.cache = &store;
    const ProfilerSession session(SocConfig::snapdragon888(), opts);
    const auto &bench =
        testutil::registry().unit("3DMark Wild Life");
    (void)session.profile(bench);

    ProfileOptions other = opts;
    other.seed += 1;
    const ProfilerSession session2(SocConfig::snapdragon888(), other);
    const std::uint64_t misses = counterValue("store.misses");
    (void)session2.profile(bench);
    EXPECT_GT(counterValue("store.misses"), misses);

    fs::remove_all(dir);
}

} // namespace
} // namespace mbs
