/**
 * @file
 * Parameterized invariant sweep: every benchmark unit, run through
 * the profiler, must satisfy the same contract — the instruction
 * budget is retired, every load stays in range, runtimes track the
 * calibrated durations, and profiles are reproducible.
 */

#include <gtest/gtest.h>

#include "report_fixture.hh"

namespace mbs {
namespace {

class PerBenchmark : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile &
    profile() const
    {
        return testutil::profile(GetParam());
    }

    const Benchmark &
    benchmark() const
    {
        return testutil::registry().unit(GetParam());
    }
};

TEST_P(PerBenchmark, RetiresItsInstructionBudget)
{
    const double budget =
        benchmark().totalInstructionsBillions() * 1e9;
    EXPECT_NEAR(profile().instructions, budget, 0.05 * budget);
}

TEST_P(PerBenchmark, RuntimeTracksCalibratedDuration)
{
    const double nominal = benchmark().totalDurationSeconds();
    EXPECT_NEAR(profile().runtimeSeconds, nominal, 0.08 * nominal);
}

TEST_P(PerBenchmark, MetricsAreInPlausibleRanges)
{
    const auto &p = profile();
    EXPECT_GT(p.ipc, 0.05);
    EXPECT_LT(p.ipc, 3.0);
    EXPECT_GT(p.cacheMpki, 0.0);
    EXPECT_LT(p.cacheMpki, 200.0);
    EXPECT_GT(p.branchMpki, 0.0);
    EXPECT_LT(p.branchMpki, 30.0);
}

TEST_P(PerBenchmark, LoadsStayInUnitRange)
{
    const auto &s = profile().series;
    for (const TimeSeries *series :
         {&s.cpuLoad, &s.gpuLoad, &s.shadersBusy, &s.gpuBusBusy,
          &s.aieLoad, &s.usedMemory, &s.storageUtil}) {
        EXPECT_GE(series->min(), 0.0);
        EXPECT_LE(series->max(), 1.0 + 1e-9);
    }
    for (std::size_t c = 0; c < numClusters; ++c) {
        EXPECT_GE(s.clusterLoad[c].min(), 0.0);
        EXPECT_LE(s.clusterLoad[c].max(), 1.0 + 1e-9);
    }
}

TEST_P(PerBenchmark, SeriesLengthsAgree)
{
    const auto &s = profile().series;
    const std::size_t n = s.cpuLoad.size();
    EXPECT_GT(n, 10u);
    EXPECT_EQ(s.gpuLoad.size(), n);
    EXPECT_EQ(s.aieLoad.size(), n);
    EXPECT_EQ(s.usedMemory.size(), n);
    EXPECT_EQ(s.clusterLoad[0].size(), n);
}

TEST_P(PerBenchmark, TheOsBaselineKeepsLittleClusterAlive)
{
    // The OS background load means the little cluster never sits at
    // exactly zero for a whole run.
    EXPECT_GT(profile()
                  .series
                  .clusterLoad[std::size_t(ClusterId::Little)]
                  .mean(),
              0.01);
}

TEST_P(PerBenchmark, ProfilesAreReproducible)
{
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto a = session.profile(benchmark());
    const auto b = session.profile(benchmark());
    EXPECT_DOUBLE_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.cacheMpki, b.cacheMpki);
    EXPECT_DOUBLE_EQ(a.avgGpuLoad(), b.avgGpuLoad());
}

INSTANTIATE_TEST_SUITE_P(
    AllUnits, PerBenchmark,
    ::testing::Values(
        "3DMark Slingshot", "3DMark Slingshot Extreme",
        "3DMark Wild Life", "3DMark Wild Life Extreme", "Antutu CPU",
        "Antutu GPU", "Antutu Mem", "Antutu UX", "Aitutu",
        "Geekbench 5 CPU", "Geekbench 5 Compute", "Geekbench 6 CPU",
        "Geekbench 6 Compute", "GFXBench High", "GFXBench Low",
        "GFXBench Special", "PCMark Storage", "PCMark Work"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace mbs
