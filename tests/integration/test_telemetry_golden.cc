/**
 * @file
 * Golden tests for the deterministic telemetry exports: a full
 * pipeline run at --jobs 1 and --jobs 4 must produce byte-identical
 * Prometheus expositions and logical-clock time series, and repeated
 * runs at the same job count must reproduce them exactly.
 *
 * Runs the pipeline in-process with zeroAll() between runs (reset()
 * would destroy instruments whose references hot paths cache), so
 * the comparison covers exactly what `mobilebench pipeline
 * --telemetry-out` writes.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.hh"
#include "core/pipeline.hh"
#include "obs/export_prometheus.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

using obs::ClockDomain;
using obs::MetricsRegistry;
using obs::TimeSeriesSampler;

/** The deterministic artifacts of one pipeline run. */
struct TelemetryArtifacts
{
    std::string prometheus;
    std::string logicalCsv;
    std::uint64_t logicalTicks = 0;
};

/** Logical-domain rows only: the deterministic prefix of the CSV. */
std::string
logicalRows(const std::string &csv)
{
    std::string out;
    for (const auto &line : split(csv, '\n')) {
        if (startsWith(line, "logical,"))
            out += line + "\n";
    }
    return out;
}

TelemetryArtifacts
runPipeline(int jobs)
{
    MetricsRegistry::instance().zeroAll();
    auto &sampler = TimeSeriesSampler::instance();
    sampler.reset();
    sampler.setEnabled(true);

    PipelineOptions options;
    options.profile.jobs = jobs;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), options);
    const WorkloadRegistry registry;
    const auto report = pipeline.run(registry);
    EXPECT_FALSE(report.profiles.empty());

    TelemetryArtifacts artifacts;
    artifacts.prometheus =
        toPrometheusText(MetricsRegistry::instance().snapshot());
    artifacts.logicalCsv = logicalRows(sampler.toCsv());
    artifacts.logicalTicks = sampler.logicalTicks();

    sampler.setEnabled(false);
    sampler.reset();
    return artifacts;
}

class TelemetryGoldenTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        auto &sampler = TimeSeriesSampler::instance();
        sampler.setEnabled(false);
        sampler.reset();
        MetricsRegistry::instance().zeroAll();
    }
};

TEST_F(TelemetryGoldenTest, ArtifactsIdenticalAcrossJobCounts)
{
    const TelemetryArtifacts serial = runPipeline(1);
    const TelemetryArtifacts parallel = runPipeline(4);

    // Sanity: the run actually produced telemetry.
    EXPECT_NE(serial.prometheus.find("sim_ticks"), std::string::npos);
    EXPECT_GT(serial.logicalTicks, 0u);
    EXPECT_FALSE(serial.logicalCsv.empty());

    // The contract: byte-identical, not merely similar.
    EXPECT_EQ(serial.prometheus, parallel.prometheus);
    EXPECT_EQ(serial.logicalCsv, parallel.logicalCsv);
    EXPECT_EQ(serial.logicalTicks, parallel.logicalTicks);
}

TEST_F(TelemetryGoldenTest, ArtifactsIdenticalAcrossRepeatedRuns)
{
    const TelemetryArtifacts first = runPipeline(2);
    const TelemetryArtifacts second = runPipeline(2);
    EXPECT_EQ(first.prometheus, second.prometheus);
    EXPECT_EQ(first.logicalCsv, second.logicalCsv);
}

} // namespace
} // namespace mbs
