/**
 * @file
 * Paper-number calibration checks: the simulated measurements must
 * land in the bands the paper reports (Fig. 1 aggregates, Table III
 * correlation structure, Table V shares, Table VI runtimes).
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "report_fixture.hh"
#include "stats/correlation.hh"

namespace mbs {
namespace {

using testutil::profile;
using testutil::report;

TEST(Fig1, InstructionCountStatistics)
{
    double sum = 0.0;
    for (const auto &p : report().profiles)
        sum += p.instructions;
    // Average ~14 B.
    EXPECT_NEAR(sum / 18.0 / 1e9, 14.0, 1.5);
    // Extremes: GFXBench Special ~1 B, Geekbench 6 CPU ~57 B.
    EXPECT_NEAR(profile("GFXBench Special").instructions / 1e9, 1.0,
                0.2);
    EXPECT_NEAR(profile("Geekbench 6 CPU").instructions / 1e9, 57.0,
                3.0);
}

TEST(Fig1, CpuBenchmarksHaveHighIpc)
{
    // Paper: CPU-targeted benchmarks average IPC 1.16.
    const double avg = (profile("Antutu CPU").ipc +
                        profile("Geekbench 5 CPU").ipc +
                        profile("Geekbench 6 CPU").ipc) / 3.0;
    EXPECT_GT(avg, 0.85);
    EXPECT_LT(avg, 1.5);
}

TEST(Fig1, GraphicsBenchmarksHaveLowIpc)
{
    // Paper: graphics-focused benchmarks average IPC ~0.55.
    double sum = 0.0;
    const char *names[] = {"3DMark Wild Life", "GFXBench High",
                           "GFXBench Low", "3DMark Slingshot"};
    for (const char *n : names)
        sum += profile(n).ipc;
    const double avg = sum / 4.0;
    EXPECT_GT(avg, 0.3);
    EXPECT_LT(avg, 0.75);
    // And clearly below the CPU group.
    EXPECT_LT(avg, profile("Geekbench 5 CPU").ipc * 0.6);
}

TEST(Fig1, AntutuMemIsTheIpcOutlier)
{
    // Paper: IPC 0.45, "affected by its high number of cache misses".
    const auto &mem = profile("Antutu Mem");
    EXPECT_GT(mem.ipc, 0.25);
    EXPECT_LT(mem.ipc, 0.6);
    // Highest cache MPKI in the whole set.
    for (const auto &p : report().profiles) {
        if (p.name != "Antutu Mem")
            EXPECT_LT(p.cacheMpki, mem.cacheMpki) << p.name;
    }
}

TEST(Fig1, AverageRuntimeMatchesSet)
{
    double sum = 0.0;
    for (const auto &p : report().profiles)
        sum += p.runtimeSeconds;
    // 4429.5 s over 18 units ~= 246 s ("slightly over 200 seconds").
    EXPECT_NEAR(sum / 18.0, 246.0, 15.0);
}

TEST(TableIII, CorrelationStructure)
{
    const CorrelationMatrix corr(report().fig1Metrics);
    // Strong negative IPC <-> cache MPKI (paper: -0.845).
    EXPECT_LT(corr.at("IPC", "Cache MPKI"), -0.6);
    // Negative IPC <-> branch MPKI (paper: -0.672).
    EXPECT_LT(corr.at("IPC", "Branch MPKI"), -0.3);
    // Positive cache <-> branch MPKI (paper: 0.867).
    EXPECT_GT(corr.at("Cache MPKI", "Branch MPKI"), 0.3);
    // Moderate positive IC <-> runtime (paper: 0.588).
    EXPECT_GT(corr.at("IC", "Runtime"), 0.4);
    EXPECT_LT(corr.at("IC", "Runtime"), 0.8);
    // Moderate positive IC <-> IPC (paper: 0.400).
    EXPECT_GT(corr.at("IC", "IPC"), 0.2);
    // Weak negative runtime <-> IPC (paper: -0.242).
    EXPECT_LT(corr.at("Runtime", "IPC"), 0.0);
}

TEST(TableV, MidAndBigClustersAreMostlyIdle)
{
    const auto shares = loadLevelShares(report());
    constexpr auto mid = std::size_t(ClusterId::Mid);
    constexpr auto big = std::size_t(ClusterId::Big);
    // Paper: Mid 76% and Big 69% of time in the 0-25% level.
    EXPECT_GT(shares[mid][0], 0.6);
    EXPECT_GT(shares[big][0], 0.6);
    // But when used, both have a meaningful high-load tail.
    EXPECT_GT(shares[mid][3], 0.05);
    EXPECT_GT(shares[big][3], 0.05);
}

TEST(TableV, LittleClusterIsBusyAcrossLevels)
{
    const auto shares = loadLevelShares(report());
    constexpr auto little = std::size_t(ClusterId::Little);
    // Paper: Little spends only 21% idle; ours stays below 50%.
    EXPECT_LT(shares[little][0], 0.5);
    // And spreads across the remaining levels.
    EXPECT_GT(shares[little][1] + shares[little][2] +
                  shares[little][3],
              0.5);
    const double total = shares[little][0] + shares[little][1] +
        shares[little][2] + shares[little][3];
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TableVI, RuntimesMatchExactly)
{
    EXPECT_NEAR(report().fullRuntimeSeconds, 4429.5, 0.01);
    EXPECT_NEAR(report().naiveSubset.runtimeSeconds, 401.7, 0.01);
    EXPECT_NEAR(report().selectSubset.runtimeSeconds, 865.2, 0.01);
    EXPECT_NEAR(report().selectPlusGpuSubset.runtimeSeconds, 1108.36,
                0.01);
}

TEST(TableVI, ReductionsMatchPaper)
{
    EXPECT_NEAR(report().naiveSubset.runtimeReduction, 0.9093, 0.001);
    EXPECT_NEAR(report().selectSubset.runtimeReduction, 0.8047,
                0.001);
    EXPECT_NEAR(report().selectPlusGpuSubset.runtimeReduction, 0.7498,
                0.001);
}

TEST(TableVI, SubsetMembershipsMatchPaper)
{
    const auto &naive = report().naiveSubset.members;
    const std::set<std::string> naive_set(naive.begin(), naive.end());
    EXPECT_EQ(naive_set,
              (std::set<std::string>{
                  "PCMark Storage", "Geekbench 5 CPU",
                  "GFXBench Special", "3DMark Wild Life",
                  "Geekbench 5 Compute"}));

    const auto &sel = report().selectSubset.members;
    const std::set<std::string> select_set(sel.begin(), sel.end());
    EXPECT_EQ(select_set,
              (std::set<std::string>{
                  "Antutu CPU", "Antutu GPU", "Antutu Mem",
                  "Antutu UX", "GFXBench Special",
                  "Geekbench 5 CPU"}));

    const auto &plus = report().selectPlusGpuSubset.members;
    EXPECT_EQ(plus.size(), 7u);
    EXPECT_EQ(plus.back(), "Geekbench 6 Compute");
}

TEST(SelectRationale, Geekbench6ComputeHasHighestGpuLoad)
{
    const double gb6c = profile("Geekbench 6 Compute").avgGpuLoad();
    for (const auto &p : report().profiles) {
        if (p.name != "Geekbench 6 Compute")
            EXPECT_LT(p.avgGpuLoad(), gb6c) << p.name;
    }
}

TEST(OffScreen, RaisesGpuLoad)
{
    // Paper: High-Level off-screen +14.5%, Low-Level +62.85%.
    const auto &low = testutil::registry().unit("GFXBench Low");
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p = session.profile(low);
    double on = 0.0, off = 0.0;
    int on_n = 0, off_n = 0;
    for (std::size_t i = 0; i < low.phases().size(); ++i) {
        const double at = low.phaseStartFraction(i) + 0.02;
        const double load = p.series.gpuLoad.atNormalizedTime(at);
        if (low.phases()[i].demand.gpu.offscreen) {
            off += load;
            ++off_n;
        } else {
            on += load;
            ++on_n;
        }
    }
    ASSERT_GT(on_n, 0);
    ASSERT_GT(off_n, 0);
    // Low-level off-screen: a large increase (paper: +62.85%).
    EXPECT_GT(off / off_n, (on / on_n) * 1.3);
}

} // namespace
} // namespace mbs
