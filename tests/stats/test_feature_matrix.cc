/**
 * @file
 * Tests for the named feature matrix and distance helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "stats/feature_matrix.hh"

namespace mbs {
namespace {

FeatureMatrix
small()
{
    FeatureMatrix m({"x", "y"});
    m.addRow("p", {3.0, 4.0});
    m.addRow("q", {0.0, 0.0});
    m.addRow("r", {-3.0, 2.0});
    return m;
}

TEST(FeatureMatrix, ShapeAndAccess)
{
    const auto m = small();
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
    EXPECT_EQ(m.rowIndex("q"), 1u);
    EXPECT_EQ(m.colIndex("y"), 1u);
    EXPECT_TRUE(m.hasRow("r"));
    EXPECT_FALSE(m.hasRow("zz"));
}

TEST(FeatureMatrix, DuplicateRowIsFatal)
{
    FeatureMatrix m({"x"});
    m.addRow("a", {1.0});
    EXPECT_THROW(m.addRow("a", {2.0}), FatalError);
}

TEST(FeatureMatrix, WrongWidthRowIsFatal)
{
    FeatureMatrix m({"x", "y"});
    EXPECT_THROW(m.addRow("a", {1.0}), FatalError);
}

TEST(FeatureMatrix, UnknownLookupsAreFatal)
{
    const auto m = small();
    EXPECT_THROW(m.rowIndex("none"), FatalError);
    EXPECT_THROW(m.colIndex("none"), FatalError);
    EXPECT_THROW(m.at(5, 0), FatalError);
}

TEST(FeatureMatrix, ColumnExtraction)
{
    const auto m = small();
    const auto col = m.column(0);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[2], -3.0);
}

TEST(FeatureMatrix, NormalizedByColumnMaxUsesAbsolutes)
{
    const auto n = small().normalizedByColumnMax();
    EXPECT_DOUBLE_EQ(n.at(0, 0), 1.0);   // 3 / |3|
    EXPECT_DOUBLE_EQ(n.at(2, 0), -1.0);  // -3 / 3
    EXPECT_DOUBLE_EQ(n.at(0, 1), 1.0);   // 4 / 4
    EXPECT_DOUBLE_EQ(n.at(2, 1), 0.5);   // 2 / 4
}

TEST(FeatureMatrix, NormalizedByColumnMaxHandlesZeroColumn)
{
    FeatureMatrix m({"z"});
    m.addRow("a", {0.0});
    m.addRow("b", {0.0});
    const auto n = m.normalizedByColumnMax();
    EXPECT_DOUBLE_EQ(n.at(0, 0), 0.0);
}

TEST(FeatureMatrix, MinMaxNormalizationBounds)
{
    const auto n = small().normalizedMinMax();
    for (std::size_t r = 0; r < n.rows(); ++r) {
        for (std::size_t c = 0; c < n.cols(); ++c) {
            EXPECT_GE(n.at(r, c), 0.0);
            EXPECT_LE(n.at(r, c), 1.0);
        }
    }
    EXPECT_DOUBLE_EQ(n.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(n.at(2, 0), 0.0);
}

TEST(FeatureMatrix, ZScoreHasZeroMeanUnitVariance)
{
    const auto n = small().normalizedZScore();
    for (std::size_t c = 0; c < n.cols(); ++c) {
        const auto col = n.column(c);
        double mean = 0.0;
        for (double v : col)
            mean += v / double(col.size());
        EXPECT_NEAR(mean, 0.0, 1e-12);
        double var = 0.0;
        for (double v : col)
            var += (v - mean) * (v - mean) / double(col.size());
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(FeatureMatrix, WithoutColumnDropsExactlyOne)
{
    const auto m = small();
    const auto reduced = m.withoutColumn(0);
    EXPECT_EQ(reduced.cols(), 1u);
    EXPECT_EQ(reduced.colNames()[0], "y");
    EXPECT_DOUBLE_EQ(reduced.at(0, 0), 4.0);
}

TEST(FeatureMatrix, CannotDropOnlyColumn)
{
    FeatureMatrix m({"x"});
    m.addRow("a", {1.0});
    EXPECT_THROW(m.withoutColumn(0), FatalError);
}

TEST(FeatureMatrix, SelectRowsKeepsOrderGiven)
{
    const auto m = small();
    const auto sel = m.selectRows({2, 0});
    EXPECT_EQ(sel.rows(), 2u);
    EXPECT_EQ(sel.rowNames()[0], "r");
    EXPECT_EQ(sel.rowNames()[1], "p");
}

TEST(Distance, EuclideanKnownValues)
{
    EXPECT_DOUBLE_EQ(euclideanDistance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(squaredEuclideanDistance({0, 0}, {3, 4}), 25.0);
    EXPECT_DOUBLE_EQ(manhattanDistance({0, 0}, {3, -4}), 7.0);
}

TEST(Distance, IdenticalVectorsAreZero)
{
    const std::vector<double> v{1.5, -2.5, 3.5};
    EXPECT_DOUBLE_EQ(euclideanDistance(v, v), 0.0);
    EXPECT_DOUBLE_EQ(manhattanDistance(v, v), 0.0);
}

TEST(Distance, MismatchedLengthsAreFatal)
{
    EXPECT_THROW(euclideanDistance({1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(manhattanDistance({1.0}, {1.0, 2.0}), FatalError);
}

TEST(Distance, TriangleInequalityHolds)
{
    const std::vector<double> a{1, 2, 3};
    const std::vector<double> b{4, -1, 0};
    const std::vector<double> c{-2, 5, 2};
    EXPECT_LE(euclideanDistance(a, c),
              euclideanDistance(a, b) + euclideanDistance(b, c) + 1e-12);
}

} // namespace
} // namespace mbs
