/**
 * @file
 * Tests for Pearson correlation and correlation matrices.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "stats/correlation.hh"

namespace mbs {
namespace {

TEST(Pearson, PerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, TooFewSamplesGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
}

TEST(Pearson, MismatchedLengthsAreFatal)
{
    EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), FatalError);
}

TEST(Pearson, InvariantToAffineTransforms)
{
    const std::vector<double> x{1, 5, 2, 8, 3};
    const std::vector<double> y{2, 3, 9, 1, 4};
    const double r = pearson(x, y);
    std::vector<double> x2, y2;
    for (double v : x)
        x2.push_back(3.0 * v + 7.0);
    for (double v : y)
        y2.push_back(-2.0 * v + 1.0);
    EXPECT_NEAR(pearson(x2, y2), -r, 1e-12);
}

TEST(Pearson, IndependentStreamsAreUncorrelated)
{
    Xoshiro256StarStar rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Classify, MatchesPaperBands)
{
    EXPECT_EQ(classifyCorrelation(0.9), CorrelationStrength::Strong);
    EXPECT_EQ(classifyCorrelation(-0.845), CorrelationStrength::Strong);
    EXPECT_EQ(classifyCorrelation(0.588),
              CorrelationStrength::Moderate);
    EXPECT_EQ(classifyCorrelation(-0.672),
              CorrelationStrength::Moderate);
    EXPECT_EQ(classifyCorrelation(0.35), CorrelationStrength::None);
    EXPECT_EQ(classifyCorrelation(0.8), CorrelationStrength::Strong);
    EXPECT_EQ(classifyCorrelation(0.4), CorrelationStrength::Moderate);
}

TEST(Classify, Names)
{
    EXPECT_EQ(correlationStrengthName(CorrelationStrength::Strong),
              "strong");
    EXPECT_EQ(correlationStrengthName(CorrelationStrength::Moderate),
              "moderate");
    EXPECT_EQ(correlationStrengthName(CorrelationStrength::None),
              "none");
}

FeatureMatrix
exampleMatrix()
{
    FeatureMatrix m({"a", "b", "c"});
    m.addRow("r1", {1.0, 2.0, -1.0});
    m.addRow("r2", {2.0, 4.0, -2.0});
    m.addRow("r3", {3.0, 6.0, -3.0});
    m.addRow("r4", {4.0, 8.5, -4.0});
    return m;
}

TEST(CorrelationMatrix, DiagonalIsOne)
{
    const CorrelationMatrix corr(exampleMatrix());
    for (std::size_t i = 0; i < corr.size(); ++i)
        EXPECT_DOUBLE_EQ(corr.at(i, i), 1.0);
}

TEST(CorrelationMatrix, IsSymmetric)
{
    const CorrelationMatrix corr(exampleMatrix());
    for (std::size_t i = 0; i < corr.size(); ++i) {
        for (std::size_t j = 0; j < corr.size(); ++j)
            EXPECT_DOUBLE_EQ(corr.at(i, j), corr.at(j, i));
    }
}

TEST(CorrelationMatrix, NamedLookupMatchesIndexed)
{
    const CorrelationMatrix corr(exampleMatrix());
    EXPECT_DOUBLE_EQ(corr.at("a", "c"), corr.at(0, 2));
    EXPECT_NEAR(corr.at("a", "c"), -1.0, 1e-12);
    EXPECT_GT(corr.at("a", "b"), 0.99);
}

TEST(CorrelationMatrix, UnknownNameIsFatal)
{
    const CorrelationMatrix corr(exampleMatrix());
    EXPECT_THROW(corr.at("a", "nope"), FatalError);
}

TEST(CorrelationMatrix, RenderShowsLowerTriangle)
{
    const CorrelationMatrix corr(exampleMatrix());
    const std::string out = corr.renderLowerTriangle();
    EXPECT_NE(out.find("-1.000"), std::string::npos);
    EXPECT_NE(out.find("| 1"), std::string::npos);
}

} // namespace
} // namespace mbs
