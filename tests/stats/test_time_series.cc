/**
 * @file
 * Tests for the TimeSeries container.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/time_series.hh"

namespace mbs {
namespace {

TEST(TimeSeries, BasicAccessors)
{
    TimeSeries s(0.1, {1.0, 2.0, 3.0});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.interval(), 0.1);
    EXPECT_NEAR(s.duration(), 0.3, 1e-12);
    EXPECT_DOUBLE_EQ(s.at(1), 2.0);
    EXPECT_DOUBLE_EQ(s[2], 3.0);
    EXPECT_FALSE(s.empty());
}

TEST(TimeSeries, StatsOnKnownData)
{
    TimeSeries s(1.0, {2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(TimeSeries, EmptySeriesStatsAreZero)
{
    TimeSeries s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_TRUE(s.empty());
}

TEST(TimeSeries, RejectsNonPositiveInterval)
{
    EXPECT_THROW(TimeSeries(0.0, {1.0}), FatalError);
    EXPECT_THROW(TimeSeries(-1.0, {1.0}), FatalError);
}

TEST(TimeSeries, OutOfRangeAccessIsFatal)
{
    TimeSeries s(0.1, {1.0});
    EXPECT_THROW(s.at(1), FatalError);
}

TEST(TimeSeries, AtNormalizedTimeEndpoints)
{
    TimeSeries s(0.1, {10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(s.atNormalizedTime(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.atNormalizedTime(1.0), 30.0);
    EXPECT_DOUBLE_EQ(s.atNormalizedTime(0.5), 20.0);
    // Clamping.
    EXPECT_DOUBLE_EQ(s.atNormalizedTime(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(s.atNormalizedTime(2.0), 30.0);
}

TEST(TimeSeries, FractionAboveIsStrict)
{
    TimeSeries s(0.1, {0.4, 0.5, 0.6, 0.7});
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.5), 0.5);
}

TEST(TimeSeries, NormalizedByScalesValues)
{
    TimeSeries s(0.1, {1.0, 2.0});
    const TimeSeries n = s.normalizedBy(4.0);
    EXPECT_DOUBLE_EQ(n[0], 0.25);
    EXPECT_DOUBLE_EQ(n[1], 0.5);
}

TEST(TimeSeries, NormalizedByZeroIsIdentity)
{
    TimeSeries s(0.1, {1.0, 2.0});
    const TimeSeries n = s.normalizedBy(0.0);
    EXPECT_DOUBLE_EQ(n[1], 2.0);
}

TEST(TimeSeries, ResampledKeepsDuration)
{
    TimeSeries s(0.1, std::vector<double>(100, 1.0));
    const TimeSeries r = s.resampled(10);
    EXPECT_EQ(r.size(), 10u);
    EXPECT_NEAR(r.duration(), s.duration(), 1e-9);
    EXPECT_DOUBLE_EQ(r.mean(), 1.0);
}

TEST(TimeSeries, AverageOfIdenticalRunsIsIdentity)
{
    TimeSeries s(0.1, {1.0, 2.0, 3.0});
    const TimeSeries avg = TimeSeries::average({s, s, s});
    ASSERT_EQ(avg.size(), 3u);
    EXPECT_DOUBLE_EQ(avg[0], 1.0);
    EXPECT_DOUBLE_EQ(avg[2], 3.0);
}

TEST(TimeSeries, AverageHandlesLengthMismatch)
{
    TimeSeries a(0.1, {2.0, 2.0, 2.0, 2.0});
    TimeSeries b(0.1, {4.0, 4.0});
    const TimeSeries avg = TimeSeries::average({a, b});
    ASSERT_EQ(avg.size(), 2u);
    EXPECT_DOUBLE_EQ(avg[0], 3.0);
    EXPECT_DOUBLE_EQ(avg[1], 3.0);
}

TEST(TimeSeries, AverageOfZeroRunsIsFatal)
{
    EXPECT_THROW(TimeSeries::average({}), FatalError);
}

TEST(TimeSeries, MinusBaselineClampsAtZero)
{
    TimeSeries s(0.1, {5.0, 1.0});
    const TimeSeries adj = s.minusBaseline(2.0);
    EXPECT_DOUBLE_EQ(adj[0], 3.0);
    EXPECT_DOUBLE_EQ(adj[1], 0.0);
}

/** Property: resampling to any width preserves mean within 5%. */
class ResampleWidth : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ResampleWidth, PreservesMean)
{
    std::vector<double> values;
    for (int i = 0; i < 977; ++i)
        values.push_back(0.5 + 0.5 * ((i * 37) % 100) / 100.0);
    TimeSeries s(0.1, values);
    const TimeSeries r = s.resampled(GetParam());
    EXPECT_NEAR(r.mean(), s.mean(), 0.05 * s.mean());
}

INSTANTIATE_TEST_SUITE_P(Widths, ResampleWidth,
                         ::testing::Values(1, 2, 3, 10, 100, 500, 977,
                                           2000));

} // namespace
} // namespace mbs
