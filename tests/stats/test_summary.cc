/**
 * @file
 * Tests for SummaryStats.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/summary.hh"

namespace mbs {
namespace {

TEST(Summary, BasicMoments)
{
    SummaryStats s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsAllZero)
{
    SummaryStats s({});
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentileRank(5.0), 0.0);
}

TEST(Summary, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(SummaryStats({1.0, 2.0, 3.0}).median(), 2.0);
    EXPECT_DOUBLE_EQ(SummaryStats({1.0, 2.0, 3.0, 4.0}).median(), 2.5);
}

TEST(Summary, PercentileInterpolates)
{
    SummaryStats s({0.0, 10.0});
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.5);
}

TEST(Summary, PercentileOutOfRangeIsFatal)
{
    SummaryStats s({1.0});
    EXPECT_THROW(s.percentile(-1.0), FatalError);
    EXPECT_THROW(s.percentile(101.0), FatalError);
}

TEST(Summary, PercentileRankCountsInclusive)
{
    SummaryStats s({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.percentileRank(2.0), 50.0);
    EXPECT_DOUBLE_EQ(s.percentileRank(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.percentileRank(9.0), 100.0);
}

TEST(Summary, CvIsZeroForZeroMean)
{
    SummaryStats s({-1.0, 1.0});
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Summary, CvForConstantsIsZero)
{
    SummaryStats s({3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Summary, SingleSamplePercentile)
{
    SummaryStats s({42.0});
    EXPECT_DOUBLE_EQ(s.percentile(37.0), 42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

/** Property: percentile is monotonically non-decreasing in p. */
class PercentileMonotonic : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileMonotonic, NonDecreasing)
{
    std::vector<double> values;
    const int seed = GetParam();
    for (int i = 0; i < 57; ++i)
        values.push_back(double((i * seed * 2654435761u) % 1000));
    SummaryStats s(values);
    double prev = s.percentile(0.0);
    for (double p = 1.0; p <= 100.0; p += 1.0) {
        const double cur = s.percentile(p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotonic,
                         ::testing::Values(1, 3, 7, 11, 13));

} // namespace
} // namespace mbs
