/**
 * @file
 * Tests for histograms and load-level binning.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/histogram.hh"

namespace mbs {
namespace {

TEST(Histogram, BinsEvenly)
{
    Histogram h(0.0, 1.0, 4);
    h.addAll({0.1, 0.3, 0.6, 0.9});
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, SaturatesOutOfRange)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, UpperEdgeGoesToLastBin)
{
    Histogram h(0.0, 1.0, 4);
    h.add(1.0);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 5);
    for (int i = 0; i < 100; ++i)
        h.add(double(i) / 100.0);
    const auto f = h.fractions();
    double sum = 0.0;
    for (double v : f)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyFractionsAreZero)
{
    Histogram h(0.0, 1.0, 3);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(h.fraction(i), 0.0);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(Histogram(1.0, 1.0, 2), FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 2), FatalError);
}

TEST(Histogram, BinLabels)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.binLabel(0), "[0.00, 0.25)");
    EXPECT_EQ(h.binLabel(3), "[0.75, 1.00)");
}

TEST(LoadLevel, MapsPaperQuartiles)
{
    EXPECT_EQ(loadLevelOf(0.0), LoadLevel::Low);
    EXPECT_EQ(loadLevelOf(0.24), LoadLevel::Low);
    EXPECT_EQ(loadLevelOf(0.25), LoadLevel::MediumLow);
    EXPECT_EQ(loadLevelOf(0.49), LoadLevel::MediumLow);
    EXPECT_EQ(loadLevelOf(0.5), LoadLevel::MediumHigh);
    EXPECT_EQ(loadLevelOf(0.75), LoadLevel::High);
    EXPECT_EQ(loadLevelOf(1.0), LoadLevel::High);
}

TEST(LoadLevel, NamesMatchPaperColumns)
{
    EXPECT_EQ(loadLevelName(LoadLevel::Low), "0%-25%");
    EXPECT_EQ(loadLevelName(LoadLevel::MediumLow), "25%-50%");
    EXPECT_EQ(loadLevelName(LoadLevel::MediumHigh), "50%-75%");
    EXPECT_EQ(loadLevelName(LoadLevel::High), "75%-100%");
}

TEST(Histogram, AgreesWithLoadLevelOf)
{
    Histogram h(0.0, 1.0, 4);
    for (double v : {0.1, 0.3, 0.55, 0.8, 0.99}) {
        EXPECT_EQ(h.binOf(v),
                  static_cast<std::size_t>(loadLevelOf(v)));
    }
}

} // namespace
} // namespace mbs
