/**
 * @file
 * Tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <locale>
#include <sstream>

#include "common/csv.hh"

namespace mbs {
namespace {

TEST(Csv, WritesPlainRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, LeavesPlainFieldsAlone)
{
    EXPECT_EQ(CsvWriter::escape("plain_field"), "plain_field");
}

TEST(Csv, WritesNumericRowRoundTrippable)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<double>{1.5, -2.25, 1e9});
    EXPECT_EQ(out.str(), "1.5,-2.25,1000000000\n");
}

TEST(Csv, WritesLabeledRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow("bench,mark", std::vector<double>{0.5});
    EXPECT_EQ(out.str(), "\"bench,mark\",0.5\n");
}

/** A numpunct facet rendering 1234.5 as "1.234,5". */
class CommaPunct : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

TEST(Csv, NumbersIgnoreTheGlobalStreamLocale)
{
    // Streams created from here on inherit comma decimals and dot
    // thousands separators; the writer must still emit C-locale CSV.
    const std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new CommaPunct));
    std::string text;
    try {
        std::ostringstream out;
        CsvWriter csv(out);
        csv.writeRow(std::vector<double>{1.5, 1234567.25});
        text = out.str();
    } catch (...) {
        std::locale::global(saved);
        throw;
    }
    std::locale::global(saved);
    EXPECT_EQ(text, "1.5,1234567.25\n");
}

TEST(Csv, HighPrecisionRowsRoundTripDoublesExactly)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.setPrecision(17);
    const double value = 0.1234567890123456789;
    csv.writeRow(std::vector<double>{value});
    double parsed = 0.0;
    EXPECT_EQ(std::sscanf(out.str().c_str(), "%lf", &parsed), 1);
    EXPECT_EQ(parsed, value);
}

} // namespace
} // namespace mbs
