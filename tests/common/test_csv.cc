/**
 * @file
 * Tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"

namespace mbs {
namespace {

TEST(Csv, WritesPlainRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<std::string>{"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, LeavesPlainFieldsAlone)
{
    EXPECT_EQ(CsvWriter::escape("plain_field"), "plain_field");
}

TEST(Csv, WritesNumericRowRoundTrippable)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow(std::vector<double>{1.5, -2.25, 1e9});
    EXPECT_EQ(out.str(), "1.5,-2.25,1000000000\n");
}

TEST(Csv, WritesLabeledRow)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow("bench,mark", std::vector<double>{0.5});
    EXPECT_EQ(out.str(), "\"bench,mark\",0.5\n");
}

} // namespace
} // namespace mbs
