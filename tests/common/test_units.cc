/**
 * @file
 * Tests for unit formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace mbs {
namespace {

TEST(Units, FormatBytesPicksScale)
{
    EXPECT_EQ(units::formatBytes(512), "512 B");
    EXPECT_EQ(units::formatBytes(64ULL << 10), "64 KB");
    EXPECT_EQ(units::formatBytes(4ULL << 20), "4.0 MB");
    EXPECT_EQ(units::formatBytes(12ULL << 30), "12.0 GB");
}

TEST(Units, FormatSecondsSwitchesToMinutes)
{
    EXPECT_EQ(units::formatSeconds(61.5), "61.5 s");
    EXPECT_EQ(units::formatSeconds(240.0), "4.0 min");
}

TEST(Units, FormatHzPicksScale)
{
    EXPECT_EQ(units::formatHz(3.0e9), "3.00 GHz");
    EXPECT_EQ(units::formatHz(840e6), "840 MHz");
    EXPECT_EQ(units::formatHz(50.0), "50 Hz");
}

TEST(Units, FormatCountUsesEngineeringSuffix)
{
    EXPECT_EQ(units::formatCount(57e9), "57.0 B");
    EXPECT_EQ(units::formatCount(14e6), "14.0 M");
    EXPECT_EQ(units::formatCount(2e3), "2.0 K");
    EXPECT_EQ(units::formatCount(12), "12");
}

TEST(Units, FormatPercent)
{
    EXPECT_EQ(units::formatPercent(0.7498), "74.98%");
    EXPECT_EQ(units::formatPercent(0.9093), "90.93%");
    EXPECT_EQ(units::formatPercent(0.5, 0), "50%");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toGHz(2.42e9), 2.42);
    EXPECT_DOUBLE_EQ(units::fromGHz(1.8), 1.8e9);
    EXPECT_DOUBLE_EQ(units::toBillions(57e9), 57.0);
}

} // namespace
} // namespace mbs
