/**
 * @file
 * Tests for sparkline / strip renderers used in figure output.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/sparkline.hh"

namespace mbs {
namespace {

TEST(Resample, IdentityWhenSameWidth)
{
    const std::vector<double> v{0.1, 0.5, 0.9};
    EXPECT_EQ(resampleMean(v, 3), v);
}

TEST(Resample, DownsamplesByAveraging)
{
    const std::vector<double> v{0.0, 1.0, 0.0, 1.0};
    const auto out = resampleMean(v, 2);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 0.5);
    EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(Resample, EmptyInputGivesZeros)
{
    const auto out = resampleMean({}, 4);
    ASSERT_EQ(out.size(), 4u);
    for (double v : out)
        EXPECT_EQ(v, 0.0);
}

TEST(Resample, ZeroWidthIsFatal)
{
    EXPECT_THROW(resampleMean({1.0}, 0), FatalError);
}

TEST(Resample, PreservesMeanApproximately)
{
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i)
        v.push_back(double(i % 10) / 10.0);
    const auto out = resampleMean(v, 37);
    double mean_in = 0.0, mean_out = 0.0;
    for (double x : v)
        mean_in += x / double(v.size());
    for (double x : out)
        mean_out += x / double(out.size());
    EXPECT_NEAR(mean_in, mean_out, 0.02);
}

TEST(ThresholdStrip, MarksOnlyAboveThreshold)
{
    const std::vector<double> v{0.2, 0.9, 0.4, 0.8};
    EXPECT_EQ(thresholdStrip(v, 4, 0.5), ".#.#");
}

TEST(ThresholdStrip, ExactThresholdIsNotMarked)
{
    const std::vector<double> v{0.5};
    EXPECT_EQ(thresholdStrip(v, 1, 0.5), ".");
}

TEST(LoadLevelStrip, MapsQuartiles)
{
    const std::vector<double> v{0.1, 0.3, 0.6, 0.9};
    EXPECT_EQ(loadLevelStrip(v, 4), " -=#");
}

TEST(LoadLevelStrip, ClampsOutOfRange)
{
    const std::vector<double> v{-0.5, 1.5};
    EXPECT_EQ(loadLevelStrip(v, 2), " #");
}

TEST(Sparkline, OutputHasRequestedWidth)
{
    const std::vector<double> v{0.0, 0.25, 0.5, 0.75, 1.0};
    const std::string line = sparkline(v, 10);
    // Each glyph is multi-byte UTF-8 (or a single space); count code
    // points by counting non-continuation bytes.
    int glyphs = 0;
    for (unsigned char c : line) {
        if ((c & 0xC0) != 0x80)
            ++glyphs;
    }
    EXPECT_EQ(glyphs, 10);
}

TEST(Sparkline, ZeroMapsToSpaceAndOneToFullBlock)
{
    EXPECT_EQ(sparkline({0.0}, 1), " ");
    EXPECT_EQ(sparkline({1.0}, 1), "█");
}

} // namespace
} // namespace mbs
