/**
 * @file
 * Tests for string utilities.
 */

#include <clocale>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/strings.hh"

namespace mbs {
namespace {

TEST(Split, SplitsOnSeparator)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyStringIsOneEmptyField)
{
    const auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Join, InvertsSplit)
{
    const std::string text = "x;y;z";
    EXPECT_EQ(join(split(text, ';'), ";"), text);
}

TEST(Join, EmptyVectorIsEmptyString)
{
    EXPECT_EQ(join({}, ", "), "");
}

TEST(Trim, StripsBothEnds)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
}

TEST(Trim, KeepsInteriorWhitespace)
{
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Trim, AllWhitespaceBecomesEmpty)
{
    EXPECT_EQ(trim(" \t\r\n"), "");
}

TEST(ToLower, LowersAsciiOnly)
{
    EXPECT_EQ(toLower("GeekBench 5 CPU"), "geekbench 5 cpu");
}

TEST(StartsWith, MatchesPrefix)
{
    EXPECT_TRUE(startsWith("Antutu GPU", "Antutu"));
    EXPECT_FALSE(startsWith("Antutu", "Antutu GPU"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Slugify, ConvertsBenchmarkNames)
{
    EXPECT_EQ(slugify("Geekbench 5 CPU"), "geekbench_5_cpu");
    EXPECT_EQ(slugify("3DMark Wild Life Extreme"),
              "3dmark_wild_life_extreme");
}

TEST(Slugify, CollapsesSeparatorRuns)
{
    EXPECT_EQ(slugify("a -- b"), "a_b");
    EXPECT_EQ(slugify("trailing!! "), "trailing");
}

TEST(Strformat, FormatsLikePrintf)
{
    EXPECT_EQ(strformat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(Strformat, HandlesLongOutput)
{
    const std::string long_arg(500, 'y');
    const std::string out = strformat("[%s]", long_arg.c_str());
    EXPECT_EQ(out.size(), 502u);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

/**
 * Switch LC_NUMERIC to a comma-decimal locale, restoring on scope
 * exit. Reports whether any such locale is installed so tests can
 * skip on minimal containers that only ship the C locales.
 */
class CommaDecimalLocale
{
  public:
    CommaDecimalLocale()
    {
        const char *current = std::setlocale(LC_NUMERIC, nullptr);
        saved = current != nullptr ? current : "C";
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
              "fr_FR.utf8"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                installed = true;
                return;
            }
        }
    }

    ~CommaDecimalLocale() { std::setlocale(LC_NUMERIC, saved.c_str()); }

    bool available() const { return installed; }

  private:
    std::string saved;
    bool installed = false;
};

TEST(Strformat, IgnoresCommaDecimalGlobalLocale)
{
    const CommaDecimalLocale locale;
    if (!locale.available())
        GTEST_SKIP() << "no comma-decimal locale installed";
    // The pinned formatter must keep emitting '.' even though the
    // global C locale now renders 1.5 as "1,5".
    EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
    EXPECT_EQ(strformat("%g", 0.25), "0.25");
}

TEST(ScopedCLocale, PinsNumericFormattingWithinScope)
{
    const CommaDecimalLocale locale;
    if (!locale.available())
        GTEST_SKIP() << "no comma-decimal locale installed";
    char buf[32];
    {
        const ScopedCLocale pin;
        std::snprintf(buf, sizeof(buf), "%.1f", 2.5);
        EXPECT_STREQ(buf, "2.5");
    }
    // Outside the scope the comma locale is back in force.
    std::snprintf(buf, sizeof(buf), "%.1f", 2.5);
    EXPECT_STREQ(buf, "2,5");
}

TEST(ScopedCLocale, IsHarmlessUnderTheDefaultLocale)
{
    const ScopedCLocale pin;
    EXPECT_EQ(strformat("%.3f", 0.125), "0.125");
}

} // namespace
} // namespace mbs
