/**
 * @file
 * Tests for string utilities.
 */

#include <gtest/gtest.h>

#include "common/strings.hh"

namespace mbs {
namespace {

TEST(Split, SplitsOnSeparator)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyStringIsOneEmptyField)
{
    const auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Join, InvertsSplit)
{
    const std::string text = "x;y;z";
    EXPECT_EQ(join(split(text, ';'), ";"), text);
}

TEST(Join, EmptyVectorIsEmptyString)
{
    EXPECT_EQ(join({}, ", "), "");
}

TEST(Trim, StripsBothEnds)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
}

TEST(Trim, KeepsInteriorWhitespace)
{
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Trim, AllWhitespaceBecomesEmpty)
{
    EXPECT_EQ(trim(" \t\r\n"), "");
}

TEST(ToLower, LowersAsciiOnly)
{
    EXPECT_EQ(toLower("GeekBench 5 CPU"), "geekbench 5 cpu");
}

TEST(StartsWith, MatchesPrefix)
{
    EXPECT_TRUE(startsWith("Antutu GPU", "Antutu"));
    EXPECT_FALSE(startsWith("Antutu", "Antutu GPU"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(Slugify, ConvertsBenchmarkNames)
{
    EXPECT_EQ(slugify("Geekbench 5 CPU"), "geekbench_5_cpu");
    EXPECT_EQ(slugify("3DMark Wild Life Extreme"),
              "3dmark_wild_life_extreme");
}

TEST(Slugify, CollapsesSeparatorRuns)
{
    EXPECT_EQ(slugify("a -- b"), "a_b");
    EXPECT_EQ(slugify("trailing!! "), "trailing");
}

TEST(Strformat, FormatsLikePrintf)
{
    EXPECT_EQ(strformat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

TEST(Strformat, HandlesLongOutput)
{
    const std::string long_arg(500, 'y');
    const std::string out = strformat("[%s]", long_arg.c_str());
    EXPECT_EQ(out.size(), 502u);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

} // namespace
} // namespace mbs
