/**
 * @file
 * The SIMD shim's contract: the vector backend and the scalar twin
 * are bit-identical for every kernel, every tail length, and every
 * special value. Each check runs the same kernel under
 * forceBackendForTest(1) (vector) and forceBackendForTest(0)
 * (scalar) and compares results as raw bits — EXPECT_EQ on doubles
 * would call NaN != NaN a failure and -0.0 == 0.0 a pass, both
 * wrong for a byte-identity contract.
 */

#include "common/simd.hh"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

using namespace mbs;

namespace {

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

::testing::AssertionResult
sameBits(double a, double b)
{
    if (bitsOf(a) == bitsOf(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << a << " (0x" << std::hex << bitsOf(a) << ") != " << std::dec
        << b << " (0x" << std::hex << bitsOf(b) << ")";
}

/** Restores MBS_SIMD dispatch however a test exits. */
struct BackendGuard
{
    ~BackendGuard() { simd::forceBackendForTest(-1); }
};

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Deterministic awkward values: mixed signs, magnitudes, exact ties. */
std::vector<double>
awkwardSeries(std::size_t n, double salt)
{
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = double(i) + salt;
        v[i] = (i % 3 == 0 ? -1.0 : 1.0) *
               (x * 1e-3 + x * x * 7e-7 + 1.0 / (x + 1.0));
    }
    return v;
}

/** Run @p kernel under both backends and return {vector, scalar}. */
template <class F>
auto
bothBackends(F kernel)
{
    BackendGuard guard;
    simd::forceBackendForTest(1);
    const auto vec = kernel();
    simd::forceBackendForTest(0);
    const auto sca = kernel();
    return std::make_pair(vec, sca);
}

} // namespace

TEST(Simd, BackendPlumbing)
{
    BackendGuard guard;
    simd::forceBackendForTest(0);
    EXPECT_FALSE(simd::enabled());
    EXPECT_STREQ(simd::activeBackendName(), "scalar");
    simd::forceBackendForTest(1);
    EXPECT_EQ(simd::enabled(), simd::vectorCompiled());
    if (simd::vectorCompiled()) {
        EXPECT_STREQ(simd::activeBackendName(), simd::vectorIsa());
    }
}

TEST(Simd, SumMatchesAcrossLaneTails)
{
    // Every tail residue around the 4-lane width, plus 0 and 1.
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                          31u, 32u, 33u}) {
        const auto v = awkwardSeries(n, 0.25);
        const auto [vec, sca] = bothBackends(
            [&] { return simd::sum(v.data(), n); });
        EXPECT_TRUE(sameBits(vec, sca)) << "n=" << n;
    }
}

TEST(Simd, PairedKernelsMatchAcrossLaneTails)
{
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 64u, 65u}) {
        const auto a = awkwardSeries(n, 0.5);
        const auto b = awkwardSeries(n, 1.75);

        auto [vs, ss] = bothBackends([&] {
            double sx = 0.0, sy = 0.0;
            simd::sum2(a.data(), b.data(), n, sx, sy);
            return std::make_pair(sx, sy);
        });
        EXPECT_TRUE(sameBits(vs.first, ss.first)) << "n=" << n;
        EXPECT_TRUE(sameBits(vs.second, ss.second)) << "n=" << n;

        auto [vd, sd] = bothBackends(
            [&] { return simd::sumSqDiff(a.data(), b.data(), n); });
        EXPECT_TRUE(sameBits(vd, sd)) << "n=" << n;

        auto [vm, sm] = bothBackends(
            [&] { return simd::sumAbsDiff(a.data(), b.data(), n); });
        EXPECT_TRUE(sameBits(vm, sm)) << "n=" << n;
    }
}

TEST(Simd, PearsonMomentsMatch)
{
    for (std::size_t n : {2u, 3u, 4u, 5u, 9u, 40u, 41u, 42u, 43u}) {
        const auto x = awkwardSeries(n, 0.1);
        const auto y = awkwardSeries(n, 2.9);
        const double mx = simd::sum(x.data(), n) / double(n);
        const double my = simd::sum(y.data(), n) / double(n);
        auto [vec, sca] = bothBackends([&] {
            double sxy = 0.0, sxx = 0.0, syy = 0.0;
            simd::pearsonMoments(x.data(), y.data(), n, mx, my, sxy,
                                 sxx, syy);
            return std::array<double, 3>{sxy, sxx, syy};
        });
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(sameBits(vec[std::size_t(i)],
                                 sca[std::size_t(i)]))
                << "n=" << n << " moment " << i;
    }
}

TEST(Simd, MinMaxAndCountMatchAcrossLaneTails)
{
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 17u}) {
        auto v = awkwardSeries(n, 3.5);
        if (n > 2)
            v[n / 2] = v[0]; // an exact tie
        auto [vmin, smin] = bothBackends(
            [&] { return simd::minValue(v.data(), n); });
        EXPECT_TRUE(sameBits(vmin, smin)) << "n=" << n;
        auto [vmax, smax] = bothBackends(
            [&] { return simd::maxValue(v.data(), n); });
        EXPECT_TRUE(sameBits(vmax, smax)) << "n=" << n;
        auto [vc, sc] = bothBackends([&] {
            return simd::countGreater(v.data(), n, v[n - 1]);
        });
        EXPECT_EQ(vc, sc) << "n=" << n;
    }
}

TEST(Simd, MutatingKernelsMatchAcrossLaneTails)
{
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 11u}) {
        const auto src = awkwardSeries(n, 0.75);
        const auto base = awkwardSeries(n, 5.25);

        auto [va, sa] = bothBackends([&] {
            std::vector<double> dst = base;
            simd::addAssign(dst.data(), src.data(), n);
            return dst;
        });
        auto [vd, sd] = bothBackends([&] {
            std::vector<double> dst(n, 0.0);
            simd::divScalar(dst.data(), src.data(), n, 0.37);
            return dst;
        });
        auto [vb, sb] = bothBackends([&] {
            std::vector<double> dst(n, 0.0);
            simd::subBaselineClamp(dst.data(), src.data(), n, 0.02);
            return dst;
        });
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_TRUE(sameBits(va[i], sa[i])) << "n=" << n;
            EXPECT_TRUE(sameBits(vd[i], sd[i])) << "n=" << n;
            EXPECT_TRUE(sameBits(vb[i], sb[i])) << "n=" << n;
        }
    }
}

TEST(Simd, EmptyAndSingleElement)
{
    const double one = 42.5;
    auto [vs, ss] = bothBackends(
        [&] { return simd::sum(&one, 0); });
    EXPECT_TRUE(sameBits(vs, ss));
    EXPECT_TRUE(sameBits(vs, 0.0));

    auto [v1, s1] = bothBackends(
        [&] { return simd::sum(&one, 1); });
    EXPECT_TRUE(sameBits(v1, s1));
    EXPECT_TRUE(sameBits(v1, 42.5));

    auto [vmin, smin] = bothBackends(
        [&] { return simd::minValue(&one, 1); });
    EXPECT_TRUE(sameBits(vmin, smin));
    EXPECT_TRUE(sameBits(vmin, 42.5));
}

TEST(Simd, NanAndInfPropagateIdentically)
{
    // NaN/Inf planted in vector-body lanes AND in the scalar tail.
    std::vector<double> v = {1.0,  kNan, 2.0,  -kInf, 3.0,
                             kInf, 4.0,  -0.0, kNan};
    const std::size_t n = v.size();
    std::vector<double> w(n, 1.0);

    auto [vs, ss] = bothBackends(
        [&] { return simd::sum(v.data(), n); });
    EXPECT_TRUE(sameBits(vs, ss));
    EXPECT_TRUE(std::isnan(vs));

    auto [vd, sd] = bothBackends(
        [&] { return simd::sumSqDiff(v.data(), w.data(), n); });
    EXPECT_TRUE(sameBits(vd, sd));

    auto [va, sa] = bothBackends(
        [&] { return simd::sumAbsDiff(v.data(), w.data(), n); });
    EXPECT_TRUE(sameBits(va, sa));

    // min/max follow the (a<b)?a:b selection rule, so a NaN in the
    // accumulator is REPLACED by later comparisons that return the
    // other operand — whatever the rule yields, both backends must
    // yield the same bits.
    auto [vmin, smin] = bothBackends(
        [&] { return simd::minValue(v.data(), n); });
    EXPECT_TRUE(sameBits(vmin, smin));
    auto [vmax, smax] = bothBackends(
        [&] { return simd::maxValue(v.data(), n); });
    EXPECT_TRUE(sameBits(vmax, smax));

    auto [vc, sc] = bothBackends(
        [&] { return simd::countGreater(v.data(), n, 0.0); });
    EXPECT_EQ(vc, sc);

    auto [vb, sb] = bothBackends([&] {
        std::vector<double> dst(n, 0.0);
        simd::subBaselineClamp(dst.data(), v.data(), n, 1.0);
        return dst;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(sameBits(vb[i], sb[i])) << "lane " << i;
}

TEST(Simd, MonotonicityScanAcceptsNanLikeScalarCompare)
{
    // p[i] <= p[i-1] is false when either side is NaN, so a NaN
    // timestamp slips past the strictly-increasing check in BOTH
    // backends (matching the pre-SIMD scalar loop).
    std::vector<double> increasing = {0.0, 1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 7.0, 8.0};
    auto [vi, si] = bothBackends([&] {
        return simd::anyNonIncreasing(increasing.data(),
                                      increasing.size());
    });
    EXPECT_EQ(vi, si);
    EXPECT_FALSE(vi);

    for (std::size_t bad : {1u, 4u, 7u, 8u}) {
        auto broken = increasing;
        broken[bad] = broken[bad - 1]; // equal: non-increasing
        auto [vb, sb] = bothBackends([&] {
            return simd::anyNonIncreasing(broken.data(),
                                          broken.size());
        });
        EXPECT_EQ(vb, sb) << "bad=" << bad;
        EXPECT_TRUE(vb) << "bad=" << bad;

        auto nanned = increasing;
        nanned[bad] = kNan;
        auto [vn, sn] = bothBackends([&] {
            return simd::anyNonIncreasing(nanned.data(),
                                          nanned.size());
        });
        EXPECT_EQ(vn, sn) << "bad=" << bad;
        EXPECT_FALSE(vn) << "bad=" << bad;
    }
}

TEST(Simd, UniformGridDetectionMatches)
{
    const double tick = 0.25;
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 9u, 16u, 100u}) {
        std::vector<double> grid(n);
        for (std::size_t i = 0; i < n; ++i)
            grid[i] = double(i) * tick;
        auto [vg, sg] = bothBackends([&] {
            return simd::onUniformGrid(grid.data(), n, tick);
        });
        EXPECT_EQ(vg, sg) << "n=" << n;
        EXPECT_TRUE(vg) << "n=" << n;

        if (n > 0) {
            auto off = grid;
            off[n - 1] += 1e-12;
            auto [vo, so] = bothBackends([&] {
                return simd::onUniformGrid(off.data(), n, tick);
            });
            EXPECT_EQ(vo, so) << "n=" << n;
            EXPECT_FALSE(vo) << "n=" << n;
        }
    }
}

TEST(Simd, AlignmentAgnosticLoads)
{
    // Kernels must accept pointers at any 8-byte offset from a
    // 32-byte boundary: rows of a flat matrix whose stride is not a
    // multiple of the lane width land on all of them. Heap storage
    // keeps the optimizer from folding the offsets away against a
    // known array bound.
    std::vector<double> storage(64 + 3 + 4);
    double *buf = storage.data();
    while (reinterpret_cast<std::uintptr_t>(buf) % 32 != 0)
        ++buf;
    for (std::size_t i = 0; i < 64 + 3; ++i)
        buf[i] = double(i) * 0.711 - 20.0;
    for (std::size_t offset : {0u, 1u, 2u, 3u}) {
        const double *p = buf + offset;
        auto [vs, ss] = bothBackends(
            [&] { return simd::sum(p, 64); });
        EXPECT_TRUE(sameBits(vs, ss)) << "offset=" << offset;
        auto [vmin, smin] = bothBackends(
            [&] { return simd::minValue(p, 64); });
        EXPECT_TRUE(sameBits(vmin, smin)) << "offset=" << offset;
        auto [vd, sd] = bothBackends(
            [&] { return simd::sumSqDiff(p, buf, 64); });
        EXPECT_TRUE(sameBits(vd, sd)) << "offset=" << offset;
    }
}

TEST(Simd, DivScalarAliasesInPlace)
{
    for (std::size_t n : {4u, 7u}) {
        auto [vec, sca] = bothBackends([&] {
            auto v = awkwardSeries(n, 1.0);
            simd::divScalar(v.data(), v.data(), n, 3.0);
            return v;
        });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_TRUE(sameBits(vec[i], sca[i])) << "n=" << n;
    }
}
