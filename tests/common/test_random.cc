/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace mbs {
namespace {

TEST(SplitMix64, IsDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro, IsDeterministicForSeed)
{
    Xoshiro256StarStar a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, UniformStaysInUnitInterval)
{
    Xoshiro256StarStar rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro, UniformRangeRespectsBounds)
{
    Xoshiro256StarStar rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Xoshiro, UniformMeanIsCentered)
{
    Xoshiro256StarStar rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformIntCoversAllResidues)
{
    Xoshiro256StarStar rng(19);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(7));
    EXPECT_EQ(seen.size(), 7u);
    for (std::uint64_t v : seen)
        EXPECT_LT(v, 7u);
}

TEST(Xoshiro, UniformIntOfOneIsAlwaysZero)
{
    Xoshiro256StarStar rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Xoshiro, GaussianMatchesMoments)
{
    Xoshiro256StarStar rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(2.0, 3.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Xoshiro, ForkProducesIndependentStreams)
{
    Xoshiro256StarStar rng(31);
    auto s1 = rng.fork(1);
    auto s2 = rng.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (s1.next() == s2.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro, ForkIsDeterministic)
{
    Xoshiro256StarStar a(31), b(31);
    auto fa = a.fork(5);
    auto fb = b.fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Xoshiro, ForkDoesNotDependOnParentState)
{
    Xoshiro256StarStar a(31);
    a.next();
    a.next();
    Xoshiro256StarStar b(31);
    auto fa = a.fork(9);
    auto fb = b.fork(9);
    EXPECT_EQ(fa.next(), fb.next());
}

/** Property sweep: uniformInt(n) always lands in [0, n). */
class UniformIntRange : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UniformIntRange, StaysBelowBound)
{
    const std::uint64_t n = GetParam();
    Xoshiro256StarStar rng(n * 977 + 1);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.uniformInt(n), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIntRange,
                         ::testing::Values(1, 2, 3, 5, 16, 17, 100,
                                           1000, 1ULL << 32));

} // namespace
} // namespace mbs
