/**
 * @file
 * Tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/table.hh"

namespace mbs {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, PadsColumnsToWidestCell)
{
    TextTable t({"N", "V"});
    t.addRow({"a-very-long-name", "1"});
    const std::string out = t.render();
    // Header row must be as wide as the data row.
    const auto first_newline = out.find('\n');
    const auto second = out.find('\n', first_newline + 1);
    const auto third = out.find('\n', second + 1);
    const std::string header =
        out.substr(first_newline + 1, second - first_newline - 1);
    const std::string rule =
        out.substr(second + 1, third - second - 1);
    EXPECT_EQ(header.size(), rule.size());
}

TEST(TextTable, RightAlignmentPadsLeft)
{
    TextTable t({"V"});
    t.setAlign(0, Align::Right);
    t.addRow({"7"});
    const std::string out = t.render();
    // "| <pad>7 |" : the 7 sits right before the closing bar.
    EXPECT_NE(out.find("7 |"), std::string::npos);
}

TEST(TextTable, RejectsWrongCellCount)
{
    TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), FatalError);
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTable, RejectsAlignOutOfRange)
{
    TextTable t({"A"});
    EXPECT_THROW(t.setAlign(1, Align::Right), FatalError);
}

TEST(TextTable, SeparatorAddsRule)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.render();
    // 5 rules total: top, after header, separator, bottom... count '+'
    int rules = 0;
    for (std::size_t pos = 0; (pos = out.find("+-", pos)) !=
         std::string::npos; ++pos) {
        ++rules;
    }
    EXPECT_EQ(rules, 4);
}

} // namespace
} // namespace mbs
