/**
 * @file
 * Tests for the minimal JSON parser: scalar values, nesting, string
 * escapes (including \u and surrogate pairs), number grammar, object
 * helpers, and rejection of malformed documents.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json_parse.hh"
#include "common/logging.hh"

namespace mbs {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_EQ(parseJson("42").number, 42.0);
    EXPECT_EQ(parseJson("-1.5e3").number, -1500.0);
    EXPECT_EQ(parseJson("\"hi\"").str, "hi");
    EXPECT_EQ(parseJson("  \"ws\"  ").str, "ws");
}

TEST(JsonParse, NestedStructure)
{
    const JsonValue v = parseJson(
        R"({"benchmarks": [{"name": "BM_A", "cpu_time": 12.5},)"
        R"( {"name": "BM_B", "cpu_time": 7}], "n": 2})");
    ASSERT_TRUE(v.isObject());
    const JsonValue &benchmarks = v.at("benchmarks");
    ASSERT_TRUE(benchmarks.isArray());
    ASSERT_EQ(benchmarks.array.size(), 2u);
    EXPECT_EQ(benchmarks.array[0].at("name").str, "BM_A");
    EXPECT_EQ(benchmarks.array[0].at("cpu_time").number, 12.5);
    EXPECT_EQ(benchmarks.array[1].at("cpu_time").number, 7.0);
    EXPECT_EQ(v.at("n").number, 2.0);
}

TEST(JsonParse, EmptyContainers)
{
    EXPECT_TRUE(parseJson("{}").object.empty());
    EXPECT_TRUE(parseJson("[]").array.empty());
    EXPECT_TRUE(parseJson("[{}, []]").isArray());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parseJson(R"("a\"b\\c\/d")").str, "a\"b\\c/d");
    EXPECT_EQ(parseJson(R"("\b\f\n\r\t")").str, "\b\f\n\r\t");
    EXPECT_EQ(parseJson(R"("\u0041")").str, "A");
    // 2- and 3-byte UTF-8 from \u escapes.
    EXPECT_EQ(parseJson(R"("\u00e9")").str, "\xc3\xa9");
    EXPECT_EQ(parseJson(R"("\u6d4b")").str, "\xe6\xb5\x8b");
    // Surrogate pair -> 4-byte UTF-8 (U+1F4F1).
    EXPECT_EQ(parseJson(R"("\ud83d\udcf1")").str,
              "\xf0\x9f\x93\xb1");
    // Lone surrogate -> replacement character.
    EXPECT_EQ(parseJson(R"("\ud800")").str, "\xef\xbf\xbd");
}

TEST(JsonParse, RawUtf8PassesThrough)
{
    EXPECT_EQ(parseJson("\"\xe6\xb5\x8b\xe8\xaf\x95\"").str,
              "\xe6\xb5\x8b\xe8\xaf\x95");
}

TEST(JsonParse, FindAndAtHelpers)
{
    const JsonValue v = parseJson(R"({"a": 1, "b": "x"})");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->number, 1.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), FatalError);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "{",
        "}",
        "[1,]",
        "{\"a\": }",
        "{\"a\" 1}",
        "{'a': 1}",
        "\"unterminated",
        "\"bad \\x escape\"",
        "nul",
        "truefalse",
        "1 2",
        "{\"a\": 1} extra",
        "\"raw \n newline\"",
        "--5",
        "\"\\u12g4\"",
    };
    for (const char *doc : bad)
        EXPECT_THROW(parseJson(doc), FatalError) << doc;
}

TEST(JsonParse, ErrorsCarryPosition)
{
    try {
        parseJson("{\n  \"a\": nope\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2 column 8"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParse, ValuesCarryPosition)
{
    // Every parsed node records the 1-based line/column of its first
    // character; the spec compiler anchors its diagnostics there.
    const JsonValue v = parseJson(
        "{\n  \"a\": [1,\n    {\"b\": true}]\n}");
    EXPECT_EQ(v.line, 1u);
    EXPECT_EQ(v.column, 1u);
    const JsonValue &arr = v.at("a");
    EXPECT_EQ(arr.line, 2u);
    EXPECT_EQ(arr.column, 8u);
    EXPECT_EQ(arr.array[0].line, 2u);
    EXPECT_EQ(arr.array[0].column, 9u);
    EXPECT_EQ(arr.array[1].line, 3u);
    EXPECT_EQ(arr.array[1].column, 5u);
    const JsonValue &flag = arr.array[1].at("b");
    EXPECT_EQ(flag.line, 3u);
    EXPECT_EQ(flag.column, 11u);
}

} // namespace
} // namespace mbs
