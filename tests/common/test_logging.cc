/**
 * @file
 * Tests for status/error reporting helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace mbs {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("bad configuration: cores");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad configuration"),
                  std::string::npos);
    }
}

TEST(Logging, PanicMarksInternalError)
{
    try {
        panic("invariant violated");
        FAIL() << "panic() must throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("internal error"),
                  std::string::npos);
    }
}

TEST(Logging, FatalIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "nope"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "nope"), PanicError);
}

TEST(Logging, LogLevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(Logging, QuietSuppressesWithoutCrashing)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    inform("hidden");
    warn("hidden");
    debug("hidden");
    setLogLevel(before);
}

TEST(Logging, TimestampFlagRoundTrips)
{
    const bool before = logTimestamps();
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestamps());
    setLogTimestamps(false);
    EXPECT_FALSE(logTimestamps());
    setLogTimestamps(before);
}

TEST(Logging, TimestampedLinesCarryElapsedPrefix)
{
    const LogLevel levelBefore = logLevel();
    const bool tsBefore = logTimestamps();
    setLogLevel(LogLevel::Warn);
    setLogTimestamps(true);
    ::testing::internal::CaptureStderr();
    warn("timestamped message");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    setLogTimestamps(tsBefore);
    setLogLevel(levelBefore);
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("s] warn: timestamped message"),
              std::string::npos) << out;
}

TEST(Logging, ConcurrentWritersNeverInterleaveWithinALine)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    constexpr int threads = 4;
    constexpr int lines = 200;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([t] {
            const std::string msg =
                "thread-" + std::to_string(t) + "-payload";
            for (int i = 0; i < lines; ++i)
                warn(msg);
        });
    }
    for (auto &t : pool)
        t.join();
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    setLogLevel(before);

    // Every line is exactly "warn: thread-<t>-payload": the mutex
    // around the sink means no line is ever torn by another writer.
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t eol = out.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        const std::string line = out.substr(pos, eol - pos);
        EXPECT_EQ(line.rfind("warn: thread-", 0), 0u) << line;
        EXPECT_NE(line.find("-payload"), std::string::npos) << line;
        ++count;
        pos = eol + 1;
    }
    EXPECT_EQ(count, std::size_t(threads) * lines);
}

} // namespace
} // namespace mbs
