/**
 * @file
 * Tests for status/error reporting helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace mbs {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("bad configuration: cores");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad configuration"),
                  std::string::npos);
    }
}

TEST(Logging, PanicMarksInternalError)
{
    try {
        panic("invariant violated");
        FAIL() << "panic() must throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("internal error"),
                  std::string::npos);
    }
}

TEST(Logging, FatalIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "nope"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "nope"), PanicError);
}

TEST(Logging, LogLevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(Logging, QuietSuppressesWithoutCrashing)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    inform("hidden");
    warn("hidden");
    debug("hidden");
    setLogLevel(before);
}

} // namespace
} // namespace mbs
