/**
 * @file
 * ProfileStore tests: miss/save/hit flow, corrupt-entry eviction,
 * stats/clear bookkeeping and the store.* instruments.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on destruction. */
class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-store-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
    }

    void TearDown() override { fs::remove_all(root); }

    fs::path root;
};

ProfileKey
key(std::uint64_t seed)
{
    ProfileKey k;
    k.socDigest = 0xabcdef;
    k.benchDigest = 0x123456;
    k.seed = seed;
    k.runs = 2;
    k.tickSeconds = 0.1;
    return k;
}

BenchmarkProfile
profile(const std::string &name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "Store Suite";
    p.runtimeSeconds = 3.25;
    p.ipc = 1.125;
    p.series.cpuLoad = TimeSeries(0.1, {0.1, 0.2, 0.3});
    p.series.storageReadBw = TimeSeries(0.1, {1.5e9, 2.5e9});
    p.series.storageWriteBw = TimeSeries(0.1, {0.5e9, 0.25e9});
    return p;
}

std::uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

TEST_F(StoreTest, MissThenSaveThenHit)
{
    ProfileStore store(root);
    const auto k = key(1);

    const std::uint64_t misses = counterValue("store.misses");
    const std::uint64_t hits = counterValue("store.hits");

    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.misses"), misses + 1);

    store.save(k, {profile("cached unit")});

    const auto back = store.load(k);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(counterValue("store.hits"), hits + 1);
    ASSERT_EQ(back->size(), 1u);
    EXPECT_EQ(back->front().name, "cached unit");
    EXPECT_EQ(back->front().runtimeSeconds, 3.25);
    EXPECT_EQ(back->front().ipc, 1.125);
    EXPECT_EQ(back->front().series.cpuLoad.values(),
              std::vector<double>({0.1, 0.2, 0.3}));
    EXPECT_EQ(back->front().series.storageReadBw.values(),
              std::vector<double>({1.5e9, 2.5e9}));
}

TEST_F(StoreTest, DistinctKeysAreIndependentEntries)
{
    ProfileStore store(root);
    store.save(key(1), {profile("one")});
    store.save(key(2), {profile("two")});
    EXPECT_NE(ProfileStore::keyDigest(key(1)),
              ProfileStore::keyDigest(key(2)));

    const auto a = store.load(key(1));
    const auto b = store.load(key(2));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->front().name, "one");
    EXPECT_EQ(b->front().name, "two");
    EXPECT_EQ(store.stats().entries, 2u);
}

TEST_F(StoreTest, CorruptEntryIsEvicted)
{
    ProfileStore store(root);
    const auto k = key(3);
    store.save(k, {profile("will corrupt")});

    // Damage the stored entry in place.
    fs::path entry;
    for (const auto &e : fs::directory_iterator(root))
        entry = e.path();
    ASSERT_FALSE(entry.empty());
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        f.seekp(24);
        const char junk = 0x5a;
        f.write(&junk, 1);
    }

    const std::uint64_t evictions = counterValue("store.evictions");
    const std::uint64_t misses = counterValue("store.misses");
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.evictions"), evictions + 1);
    EXPECT_EQ(counterValue("store.misses"), misses + 1);
    // The bad file is gone, so the directory no longer lists it.
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_EQ(store.stats().entries, 0u);
}

/** Path of the single entry file under @p root. */
fs::path
onlyEntry(const fs::path &root)
{
    fs::path entry;
    for (const auto &e : fs::directory_iterator(root))
        if (e.path().extension() == ".profile")
            entry = e.path();
    return entry;
}

/**
 * Serialized offset of the first profile's first name byte: the
 * 48-byte header (magic, version, embedded key), the u32 profile
 * count and the u32 name length. Flipping a bit there leaves every
 * structural check green — only a checksum re-derivation can tell
 * the bytes changed.
 */
constexpr std::uint64_t nameByteOffset = 48 + 4 + 4;

/** Flip one payload byte of @p entry without disturbing its size or
 *  mtime, so the change is detectable by checksum alone. */
void
corruptKeepingMtime(const fs::path &entry)
{
    const auto stamp = fs::last_write_time(entry);
    ASSERT_GT(fs::file_size(entry), nameByteOffset);
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        f.seekg(std::streamoff(nameByteOffset));
        char byte = 0;
        f.read(&byte, 1);
        byte = char(byte ^ 0x01);
        f.seekp(std::streamoff(nameByteOffset));
        f.write(&byte, 1);
    }
    fs::last_write_time(entry, stamp);
}

TEST_F(StoreTest, WarmHitTrustsMemoizedChecksum)
{
    // After one verified load, an unchanged entry (same size, same
    // mtime) must not pay for checksum re-derivation on later hits.
    // Observable contract: a byte flip the checksum would catch goes
    // unnoticed as long as size and mtime are preserved — proof the
    // warm path really skips the re-derivation.
    ProfileStore store(root);
    const auto k = key(10);
    store.save(k, {profile("memoized")});
    ASSERT_TRUE(store.load(k).has_value()); // verifies + memoizes

    corruptKeepingMtime(onlyEntry(root));

    const std::uint64_t hits = counterValue("store.hits");
    EXPECT_TRUE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.hits"), hits + 1);
}

TEST_F(StoreTest, SaveInvalidatesChecksumMemo)
{
    // A save rewrites the slot, so the memo entry must die with it:
    // the next load re-verifies and catches corruption again.
    ProfileStore store(root);
    const auto k = key(11);
    store.save(k, {profile("first")});
    ASSERT_TRUE(store.load(k).has_value());
    store.save(k, {profile("second")}); // erases the memo entry

    corruptKeepingMtime(onlyEntry(root));

    const std::uint64_t evictions = counterValue("store.evictions");
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.evictions"), evictions + 1);
}

TEST_F(StoreTest, FreshStoreReverifiesEntries)
{
    // The memo is per process (per store instance), never persisted:
    // a new store over the same directory starts from zero trust.
    ProfileStore writer(root);
    const auto k = key(12);
    writer.save(k, {profile("handoff")});
    ASSERT_TRUE(writer.load(k).has_value());

    corruptKeepingMtime(onlyEntry(root));

    ProfileStore reader(root);
    const std::uint64_t evictions = counterValue("store.evictions");
    EXPECT_FALSE(reader.load(k).has_value());
    EXPECT_EQ(counterValue("store.evictions"), evictions + 1);
}

TEST_F(StoreTest, ClearDropsChecksumMemo)
{
    // clear() must forget verified entries along with the files; a
    // stale memo would mis-trust a future slot that reuses the same
    // digest with coincidentally matching size and mtime.
    ProfileStore store(root);
    const auto k = key(13);
    store.save(k, {profile("cleared")});
    ASSERT_TRUE(store.load(k).has_value());
    EXPECT_EQ(store.clear(), 1u);

    store.save(k, {profile("rebuilt")});
    corruptKeepingMtime(onlyEntry(root));
    EXPECT_FALSE(store.load(k).has_value());
}

TEST_F(StoreTest, ZeroByteEntryIsEvicted)
{
    // A zero-length file maps to an empty (but valid) view; the
    // decoder must reject it and the store must evict the slot.
    ProfileStore store(root);
    const auto k = key(14);
    store.save(k, {profile("truncated")});
    const fs::path entry = onlyEntry(root);
    { std::ofstream(entry, std::ios::trunc | std::ios::binary); }
    ASSERT_EQ(fs::file_size(entry), 0u);

    const std::uint64_t evictions = counterValue("store.evictions");
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.evictions"), evictions + 1);
    EXPECT_FALSE(fs::exists(entry));
}

TEST_F(StoreTest, TruncatedEntryIsEvictedOnZeroCopyPath)
{
    // Chop the mapped entry mid-payload: every length field inside
    // still parses, but the reader runs out of bytes. The zero-copy
    // decoder must fail closed and the slot must be evicted.
    ProfileStore store(root);
    const auto k = key(15);
    store.save(k, {profile("chopped")});
    const fs::path entry = onlyEntry(root);
    const auto size = fs::file_size(entry);
    fs::resize_file(entry, size / 2);

    const std::uint64_t evictions = counterValue("store.evictions");
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.evictions"), evictions + 1);
    EXPECT_FALSE(fs::exists(entry));
}

TEST_F(StoreTest, SaveOverwritesExistingEntry)
{
    ProfileStore store(root);
    const auto k = key(4);
    store.save(k, {profile("first")});
    store.save(k, {profile("second")});
    const auto back = store.load(k);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->front().name, "second");
    EXPECT_EQ(store.stats().entries, 1u);
}

TEST_F(StoreTest, StatsAndClear)
{
    ProfileStore store(root);
    EXPECT_EQ(store.stats().entries, 0u);
    EXPECT_EQ(store.stats().bytes, 0u);

    store.save(key(5), {profile("a")});
    store.save(key(6), {profile("b"), profile("c")});

    const auto s = store.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_GT(s.bytes, 0u);

    // Foreign files in the directory are not store entries and must
    // survive a clear.
    { std::ofstream(root / "notes.txt") << "keep me"; }
    EXPECT_EQ(store.stats().entries, 2u);

    EXPECT_EQ(store.clear(), 2u);
    EXPECT_EQ(store.stats().entries, 0u);
    EXPECT_TRUE(fs::exists(root / "notes.txt"));
    EXPECT_FALSE(store.load(key(5)).has_value());
}

TEST_F(StoreTest, CreatesDirectoryTree)
{
    const fs::path nested = root / "deep" / "nested" / "cache";
    ProfileStore store(nested);
    EXPECT_TRUE(fs::is_directory(nested));
    EXPECT_EQ(store.directory(), nested);
    store.save(key(7), {profile("nested")});
    EXPECT_TRUE(ProfileStore(nested).load(key(7)).has_value());
}

} // namespace
} // namespace mbs
