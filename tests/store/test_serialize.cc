/**
 * @file
 * Serializer tests: bit-exact round trips and rejection of every
 * corruption class (truncation, bit flips, wrong magic/version/key).
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "store/serialize.hh"

namespace mbs {
namespace {

BenchmarkProfile
syntheticProfile(const std::string &name, double scale)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "Synthetic Suite";
    p.runtimeSeconds = 12.5 * scale;
    p.instructions = 3.1e9 * scale;
    p.ipc = 1.7 * scale;
    p.cacheMpki = 9.25 * scale;
    p.branchMpki = 2.125 * scale;
    const auto series = [scale](double base) {
        std::vector<double> v;
        for (int i = 0; i < 17; ++i)
            v.push_back(base + double(i) * 0.103 * scale);
        return TimeSeries(0.1, std::move(v));
    };
    p.series.cpuLoad = series(0.5);
    p.series.gpuLoad = series(0.25);
    p.series.shadersBusy = series(0.33);
    p.series.gpuBusBusy = series(0.11);
    p.series.aieLoad = series(0.05);
    p.series.usedMemory = series(0.4);
    p.series.storageUtil = series(0.2);
    p.series.storageReadBw = series(1.25e9);
    p.series.storageWriteBw = series(0.75e9);
    p.series.gpuUtilization = series(0.6);
    p.series.gpuFrequency = series(0.7);
    p.series.aieUtilization = series(0.15);
    p.series.aieFrequency = series(0.55);
    p.series.textureResidency = series(0.08);
    for (std::size_t c = 0; c < numClusters; ++c)
        p.series.clusterLoad[c] = series(0.1 * double(c + 1));
    return p;
}

ProfileKey
testKey()
{
    ProfileKey key;
    key.socDigest = 0x1234567890abcdefULL;
    key.benchDigest = 0xfedcba0987654321ULL;
    key.seed = 20240501;
    key.runs = 3;
    key.tickSeconds = 0.1;
    return key;
}

void
expectProfilesEqual(const BenchmarkProfile &a, const BenchmarkProfile &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.suite, b.suite);
    EXPECT_EQ(a.runtimeSeconds, b.runtimeSeconds);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cacheMpki, b.cacheMpki);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    EXPECT_EQ(a.series.cpuLoad.interval(),
              b.series.cpuLoad.interval());
    EXPECT_EQ(a.series.cpuLoad.values(), b.series.cpuLoad.values());
    EXPECT_EQ(a.series.storageReadBw.values(),
              b.series.storageReadBw.values());
    EXPECT_EQ(a.series.storageWriteBw.values(),
              b.series.storageWriteBw.values());
    EXPECT_EQ(a.series.textureResidency.values(),
              b.series.textureResidency.values());
    for (std::size_t c = 0; c < numClusters; ++c) {
        EXPECT_EQ(a.series.clusterLoad[c].values(),
                  b.series.clusterLoad[c].values());
    }
}

TEST(Serialize, RoundTripIsBitExact)
{
    const std::vector<BenchmarkProfile> profiles = {
        syntheticProfile("Unit A", 1.0),
        syntheticProfile("Unit B", 0.37),
    };
    const auto key = testKey();
    const std::string bytes = serializeProfiles(key, profiles);
    const auto back = deserializeProfiles(key, bytes);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        expectProfilesEqual(profiles[i], (*back)[i]);
}

TEST(Serialize, EmptyProfileListRoundTrips)
{
    const auto key = testKey();
    const auto back =
        deserializeProfiles(key, serializeProfiles(key, {}));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(Serialize, EmptySeriesRoundTrips)
{
    BenchmarkProfile p;
    p.name = "empty";
    p.suite = "s";
    const auto key = testKey();
    const auto back =
        deserializeProfiles(key, serializeProfiles(key, {p}));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), 1u);
    EXPECT_TRUE(back->front().series.cpuLoad.empty());
    EXPECT_EQ(back->front().series.cpuLoad.interval(),
              p.series.cpuLoad.interval());
}

TEST(Serialize, RejectsDifferentKey)
{
    const auto key = testKey();
    const std::string bytes =
        serializeProfiles(key, {syntheticProfile("u", 1.0)});

    ProfileKey other = key;
    other.seed += 1;
    EXPECT_FALSE(deserializeProfiles(other, bytes).has_value());
    other = key;
    other.benchDigest ^= 1;
    EXPECT_FALSE(deserializeProfiles(other, bytes).has_value());
    other = key;
    other.runs += 1;
    EXPECT_FALSE(deserializeProfiles(other, bytes).has_value());
    other = key;
    other.tickSeconds *= 2.0;
    EXPECT_FALSE(deserializeProfiles(other, bytes).has_value());
}

TEST(Serialize, RejectsBitFlipsAnywhere)
{
    const auto key = testKey();
    const std::string bytes =
        serializeProfiles(key, {syntheticProfile("u", 1.0)});
    // Flip one bit at a spread of offsets, including inside the
    // trailing checksum itself.
    for (std::size_t pos = 0; pos < bytes.size();
         pos += bytes.size() / 13 + 1) {
        std::string corrupt = bytes;
        corrupt[pos] = char(corrupt[pos] ^ 0x40);
        EXPECT_FALSE(deserializeProfiles(key, corrupt).has_value())
            << "bit flip at offset " << pos << " was accepted";
    }
}

TEST(Serialize, RejectsTruncation)
{
    const auto key = testKey();
    const std::string bytes =
        serializeProfiles(key, {syntheticProfile("u", 1.0)});
    EXPECT_FALSE(deserializeProfiles(key, "").has_value());
    for (const double frac : {0.1, 0.5, 0.9}) {
        const std::string cut =
            bytes.substr(0, std::size_t(double(bytes.size()) * frac));
        EXPECT_FALSE(deserializeProfiles(key, cut).has_value());
    }
    EXPECT_FALSE(
        deserializeProfiles(key, bytes.substr(0, bytes.size() - 1))
            .has_value());
}

TEST(Serialize, RejectsTrailingGarbage)
{
    const auto key = testKey();
    std::string bytes =
        serializeProfiles(key, {syntheticProfile("u", 1.0)});
    bytes += "extra";
    EXPECT_FALSE(deserializeProfiles(key, bytes).has_value());
}

} // namespace
} // namespace mbs
