/**
 * @file
 * ProfileStore under fault injection: read retries recover, repeated
 * read failures quarantine-and-bypass the entry, and exhausted write
 * budgets degrade to an uncached run instead of dying.
 */

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

class StoreFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-store-fault-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
    }

    void TearDown() override
    {
        fault::Injector::instance().disarm();
        fs::remove_all(root);
    }

    fs::path root;
};

ProfileKey
key(std::uint64_t seed)
{
    ProfileKey k;
    k.socDigest = 0xfa017;
    k.benchDigest = 0x57083;
    k.seed = seed;
    k.runs = 2;
    k.tickSeconds = 0.1;
    return k;
}

BenchmarkProfile
profile(const std::string &name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "Fault Suite";
    p.runtimeSeconds = 1.5;
    p.ipc = 2.0;
    p.series.cpuLoad = TimeSeries(0.1, {0.4, 0.5});
    return p;
}

std::uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

TEST_F(StoreFaultTest, TransientReadErrorsRetryAndRecover)
{
    ProfileStore store(root);
    const auto k = key(1);
    store.save(k, {profile("retry me")});

    // Two injected errors leave one good attempt inside the budget.
    const std::uint64_t injected = counterValue("fault.injected");
    const std::uint64_t recovered = counterValue("fault.recovered");
    fault::ScopedPlan guard(
        fault::FaultPlan::parse("store.read:eio@2", 42));
    const auto back = store.load(k);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->front().name, "retry me");
    EXPECT_EQ(counterValue("fault.injected"), injected + 2);
    EXPECT_EQ(counterValue("fault.recovered"), recovered + 1);
    EXPECT_FALSE(store.quarantined(k));
}

TEST_F(StoreFaultTest, ExhaustedReadRetriesDegradeToMiss)
{
    ProfileStore store(root);
    const auto k = key(2);
    store.save(k, {profile("unreachable")});

    const std::uint64_t degraded = counterValue("fault.degraded");
    const std::uint64_t misses = counterValue("store.misses");
    fault::ScopedPlan guard(
        fault::FaultPlan::parse("store.read:eio@1.0", 42));
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("fault.degraded"), degraded + 1);
    EXPECT_EQ(counterValue("store.misses"), misses + 1);
}

TEST_F(StoreFaultTest, RepeatedReadFailuresQuarantineTheEntry)
{
    ProfileStore store(root);
    const auto k = key(3);
    store.save(k, {profile("flapper")});

    const std::uint64_t quarantines =
        counterValue("store.quarantined");
    {
        // Every read corrupts the payload, so every load evicts; at
        // the quarantine threshold the slot turns into a bypass.
        fault::ScopedPlan guard(
            fault::FaultPlan::parse("store.read:corrupt@1000", 42));
        for (int i = 0; i < ProfileStore::kQuarantineThreshold; ++i) {
            EXPECT_FALSE(store.load(k).has_value());
            // The recompute path re-saves; the corrupt plan only
            // targets reads, so the save lands.
            store.save(k, {profile("flapper")});
        }
    }
    EXPECT_TRUE(store.quarantined(k));
    EXPECT_EQ(counterValue("store.quarantined"), quarantines + 1);

    // Quarantine outlives the plan: even fault-free, the slot is
    // bypassed (a miss) and save is a no-op.
    const std::uint64_t misses = counterValue("store.misses");
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(counterValue("store.misses"), misses + 1);
    store.save(k, {profile("flapper")});
    EXPECT_FALSE(store.load(k).has_value());

    // Other keys in the same store are unaffected.
    store.save(key(4), {profile("healthy")});
    EXPECT_TRUE(store.load(key(4)).has_value());
}

TEST_F(StoreFaultTest, ExhaustedWriteRetriesDegradeWithoutDying)
{
    ProfileStore store(root);
    const auto k = key(5);

    const std::uint64_t writeFailures =
        counterValue("store.write_failures");
    const std::uint64_t degraded = counterValue("fault.degraded");
    {
        fault::ScopedPlan guard(
            fault::FaultPlan::parse("store.write:eio@1.0", 42));
        // Must not throw: a failed save costs a recomputation later,
        // never the current run.
        store.save(k, {profile("never lands")});
    }
    EXPECT_EQ(counterValue("store.write_failures"),
              writeFailures + 1);
    EXPECT_EQ(counterValue("fault.degraded"), degraded + 1);
    EXPECT_FALSE(store.load(k).has_value());
    EXPECT_EQ(store.stats().entries, 0u);

    // With faults gone the same save works.
    store.save(k, {profile("lands now")});
    ASSERT_TRUE(store.load(k).has_value());
}

TEST_F(StoreFaultTest, InjectedRenameErrorRetriesThenLands)
{
    ProfileStore store(root);
    const auto k = key(6);
    const std::uint64_t recovered = counterValue("fault.recovered");
    {
        fault::ScopedPlan guard(
            fault::FaultPlan::parse("store.rename:eio@1", 42));
        store.save(k, {profile("renamed late")});
    }
    EXPECT_EQ(counterValue("fault.recovered"), recovered + 1);
    const auto back = store.load(k);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->front().name, "renamed late");
    // No leftover .tmp file after the retry.
    for (const auto &e : fs::directory_iterator(root))
        EXPECT_NE(e.path().extension(), ".tmp");
}

} // namespace
} // namespace mbs
