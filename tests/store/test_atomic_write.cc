/**
 * @file
 * atomicWriteFile tests: publish-or-nothing semantics, retry
 * recovery under injected write/rename faults, exhausted budgets
 * reporting failure without leaving a temp file, and the no-fault
 * fast path for callers outside the store's site names.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "store/atomic_write.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

class AtomicWriteTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-awrite-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
        fs::create_directories(root);
    }

    void TearDown() override
    {
        fault::Injector::instance().disarm();
        fs::remove_all(root);
    }

    std::string read(const fs::path &path) const
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    fs::path root;
};

TEST_F(AtomicWriteTest, WritesBytesAndLeavesNoTempFile)
{
    const fs::path target = root / "out.bin";
    const AtomicWriteResult result =
        atomicWriteFile(target, "payload bytes");
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.attemptsUsed, 1);
    EXPECT_EQ(read(target), "payload bytes");
    EXPECT_FALSE(fs::exists(root / "out.bin.tmp"));
}

TEST_F(AtomicWriteTest, OverwriteReplacesWholeFile)
{
    const fs::path target = root / "out.bin";
    ASSERT_TRUE(atomicWriteFile(target, "first, longer bytes").ok);
    ASSERT_TRUE(atomicWriteFile(target, "second").ok);
    EXPECT_EQ(read(target), "second");
}

TEST_F(AtomicWriteTest, RetryRecoversFromOneInjectedWriteFault)
{
    fault::Injector::instance().arm(
        fault::FaultPlan::parse("store.write:eio@1", 1));
    AtomicWriteOptions options;
    options.writeFaultSite = "store.write";
    const fs::path target = root / "out.bin";
    const AtomicWriteResult result =
        atomicWriteFile(target, "recovered", options);
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.attemptsUsed, 1);
    EXPECT_EQ(read(target), "recovered");
}

TEST_F(AtomicWriteTest, ExhaustedBudgetReportsFailureCleanly)
{
    fault::Injector::instance().arm(
        fault::FaultPlan::parse("store.rename:eio@1.0", 1));
    AtomicWriteOptions options;
    options.renameFaultSite = "store.rename";
    options.attempts = 2;
    const fs::path target = root / "out.bin";
    const AtomicWriteResult result =
        atomicWriteFile(target, "never lands", options);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.attemptsUsed, 2);
    EXPECT_FALSE(result.error.empty());
    // Publish-or-nothing: neither the target nor the temp survives.
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(fs::exists(root / "out.bin.tmp"));
}

TEST_F(AtomicWriteTest, EmptySiteNamesIgnoreArmedPlans)
{
    fault::Injector::instance().arm(
        fault::FaultPlan::parse("store.write:eio@1.0", 1));
    const fs::path target = root / "out.bin";
    // Default options carry no site names, so the armed store plan
    // cannot touch this caller.
    EXPECT_TRUE(atomicWriteFile(target, "untouched").ok);
    EXPECT_EQ(read(target), "untouched");
}

TEST_F(AtomicWriteTest, MissingDirectoryFailsWithoutThrowing)
{
    const fs::path target = root / "no" / "such" / "dir" / "out.bin";
    AtomicWriteResult result;
    EXPECT_NO_THROW(result = atomicWriteFile(target, "bytes"));
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
}

} // namespace
} // namespace mbs
