/**
 * @file
 * Tests for the time-series sampler: clock domains, logical-clock
 * advancement, volatility filtering, ring eviction accounting, CSV
 * rendering, and the disabled-is-free contract.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/timeseries.hh"

namespace mbs {
namespace {

using obs::ClockDomain;
using obs::MetricsRegistry;
using obs::TimeSample;
using obs::TimeSeriesSampler;
using obs::Volatility;

class TimeSeriesTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        MetricsRegistry::instance().reset();
        auto &sampler = TimeSeriesSampler::instance();
        sampler.stopWallSampler();
        sampler.reset();
        sampler.setEnabled(true);
    }

    void TearDown() override
    {
        auto &sampler = TimeSeriesSampler::instance();
        sampler.stopWallSampler();
        sampler.setEnabled(false);
        sampler.reset();
        MetricsRegistry::instance().reset();
    }
};

TEST_F(TimeSeriesTest, DomainNames)
{
    EXPECT_STREQ(clockDomainName(ClockDomain::Logical), "logical");
    EXPECT_STREQ(clockDomainName(ClockDomain::Wall), "wall");
}

TEST_F(TimeSeriesTest, DisabledSamplerRecordsNothing)
{
    auto &sampler = TimeSeriesSampler::instance();
    sampler.setEnabled(false);
    MetricsRegistry::instance().counter("t.count").add(5);
    sampler.advance(100);
    sampler.sample(ClockDomain::Logical, "checkpoint");
    EXPECT_TRUE(sampler.samples(ClockDomain::Logical).empty());
    EXPECT_EQ(sampler.logicalTicks(), 0u);
}

TEST_F(TimeSeriesTest, LogicalClockAdvancesAndStampsSamples)
{
    auto &sampler = TimeSeriesSampler::instance();
    MetricsRegistry::instance().counter("t.count").add(1);

    sampler.advance(10);
    sampler.sample(ClockDomain::Logical, "unit-a");
    sampler.advance(32);
    sampler.sample(ClockDomain::Logical, "unit-b");

    const auto samples = sampler.samples(ClockDomain::Logical);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].index, 0u);
    EXPECT_EQ(samples[0].time, 10u);
    EXPECT_EQ(samples[0].checkpoint, "unit-a");
    EXPECT_EQ(samples[1].index, 1u);
    EXPECT_EQ(samples[1].time, 42u);
    EXPECT_EQ(samples[1].checkpoint, "unit-b");
    EXPECT_EQ(sampler.logicalTicks(), 42u);
}

TEST_F(TimeSeriesTest, SamplesCaptureInstrumentValuesSorted)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("b.count").add(2);
    registry.counter("a.count").add(1);
    registry.gauge("c.gauge").set(1.5);

    auto &sampler = TimeSeriesSampler::instance();
    sampler.sample(ClockDomain::Logical);
    const auto samples = sampler.samples(ClockDomain::Logical);
    ASSERT_EQ(samples.size(), 1u);
    const auto &values = samples[0].values;
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[0].first, "a.count");
    EXPECT_EQ(values[0].second, 1.0);
    EXPECT_EQ(values[1].first, "b.count");
    EXPECT_EQ(values[1].second, 2.0);
    EXPECT_EQ(values[2].first, "c.gauge");
    EXPECT_EQ(values[2].second, 1.5);
}

TEST_F(TimeSeriesTest, HistogramsAppearAsCountAndSum)
{
    auto &registry = MetricsRegistry::instance();
    auto &h = registry.histogram("t.hist", {1.0, 10.0});
    h.observe(0.5);
    h.observe(7.0);

    auto &sampler = TimeSeriesSampler::instance();
    sampler.sample(ClockDomain::Logical);
    const auto samples = sampler.samples(ClockDomain::Logical);
    ASSERT_EQ(samples.size(), 1u);
    double count = -1.0, sum = -1.0;
    for (const auto &[name, value] : samples[0].values) {
        if (name == "t.hist.count")
            count = value;
        if (name == "t.hist.sum")
            sum = value;
    }
    EXPECT_EQ(count, 2.0);
    EXPECT_EQ(sum, 7.5);
}

TEST_F(TimeSeriesTest, LogicalSamplesExcludeVolatileInstruments)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("stable.count").add(1);
    registry.gauge("wall.seconds", Volatility::Volatile).set(9.9);

    auto &sampler = TimeSeriesSampler::instance();
    sampler.sample(ClockDomain::Logical);
    sampler.sample(ClockDomain::Wall);

    const auto logical = sampler.samples(ClockDomain::Logical);
    ASSERT_EQ(logical.size(), 1u);
    for (const auto &[name, value] : logical[0].values)
        EXPECT_NE(name, "wall.seconds");

    const auto wall = sampler.samples(ClockDomain::Wall);
    ASSERT_EQ(wall.size(), 1u);
    bool sawVolatile = false;
    for (const auto &[name, value] : wall[0].values)
        sawVolatile |= name == "wall.seconds";
    EXPECT_TRUE(sawVolatile);
}

TEST_F(TimeSeriesTest, RingEvictsOldestAndCounts)
{
    auto &sampler = TimeSeriesSampler::instance();
    const std::size_t cap = sampler.capacity();
    MetricsRegistry::instance().counter("t.count");
    for (std::size_t i = 0; i < cap + 3; ++i)
        sampler.sample(ClockDomain::Logical);

    const auto samples = sampler.samples(ClockDomain::Logical);
    EXPECT_EQ(samples.size(), cap);
    EXPECT_EQ(sampler.evicted(ClockDomain::Logical), 3u);
    // Indices keep counting across eviction: the oldest retained
    // sample is number 3.
    EXPECT_EQ(samples.front().index, 3u);
    EXPECT_EQ(samples.back().index, cap + 2);
}

TEST_F(TimeSeriesTest, CsvRendersHeaderAndRows)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("t.count").add(7);
    auto &sampler = TimeSeriesSampler::instance();
    sampler.advance(5);
    sampler.sample(ClockDomain::Logical, "phase, one");

    const std::string csv = sampler.toCsv();
    EXPECT_NE(
        csv.find("domain,sample,time,checkpoint,metric,value\n"),
        std::string::npos)
        << csv;
    // The checkpoint contains a comma, so the CSV writer must quote.
    EXPECT_NE(csv.find("logical,0,5,\"phase, one\",t.count,7"),
              std::string::npos)
        << csv;
}

TEST_F(TimeSeriesTest, CsvPartialMarker)
{
    auto &sampler = TimeSeriesSampler::instance();
    const std::string csv = sampler.toCsv("it broke");
    EXPECT_EQ(csv.rfind("# partial: it broke\n", 0), 0u) << csv;
}

TEST_F(TimeSeriesTest, ResetClearsEverything)
{
    auto &sampler = TimeSeriesSampler::instance();
    MetricsRegistry::instance().counter("t.count");
    sampler.advance(12);
    sampler.sample(ClockDomain::Logical);
    sampler.reset();
    EXPECT_TRUE(sampler.samples(ClockDomain::Logical).empty());
    EXPECT_EQ(sampler.logicalTicks(), 0u);
    EXPECT_EQ(sampler.evicted(ClockDomain::Logical), 0u);
}

TEST_F(TimeSeriesTest, WallSamplerProducesSamples)
{
    auto &sampler = TimeSeriesSampler::instance();
    MetricsRegistry::instance().counter("t.count").add(1);
    sampler.startWallSampler(1);
    // The wall loop takes its first sample immediately; poll briefly
    // rather than sleeping a fixed amount.
    bool got = false;
    for (int i = 0; i < 200 && !got; ++i) {
        got = !sampler.samples(ClockDomain::Wall).empty();
        if (!got)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    sampler.stopWallSampler();
    EXPECT_TRUE(got);
}

} // namespace
} // namespace mbs
