/**
 * @file
 * Tests for the Prometheus text exposition exporter: name
 * sanitization against the metric-name grammar, counter/gauge
 * rendering, cumulative histogram buckets with `le` labels and the
 * mandatory `+Inf` bound, partial-flush markers, and a line-level
 * round-trip parse of a full exposition.
 */

#include <gtest/gtest.h>

#include <locale>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "obs/export_prometheus.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace {

using obs::MetricsRegistry;
using obs::sanitizePrometheusName;
using obs::toPrometheusText;

class PrometheusTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::instance().reset(); }
    void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST(PrometheusName, DotsBecomeUnderscores)
{
    EXPECT_EQ(sanitizePrometheusName("sim.ticks"), "sim_ticks");
    EXPECT_EQ(sanitizePrometheusName("store.entry_bytes"),
              "store_entry_bytes");
}

TEST(PrometheusName, ValidNamesPassThrough)
{
    EXPECT_EQ(sanitizePrometheusName("valid_name:yes9"),
              "valid_name:yes9");
}

TEST(PrometheusName, InvalidCharactersBecomeUnderscores)
{
    EXPECT_EQ(sanitizePrometheusName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(sanitizePrometheusName("naïve"), "na__ve");
}

TEST(PrometheusName, LeadingDigitGainsPrefix)
{
    EXPECT_EQ(sanitizePrometheusName("3dmark.score"), "_3dmark_score");
}

TEST(PrometheusName, EmptyBecomesUnderscore)
{
    EXPECT_EQ(sanitizePrometheusName(""), "_");
}

TEST(PrometheusName, GrammarAlwaysHolds)
{
    const auto conforms = [](const std::string &name) {
        if (name.empty())
            return false;
        const auto first = [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   c == '_' || c == ':';
        };
        if (!first(name[0]))
            return false;
        for (char c : name) {
            if (!first(c) && !(c >= '0' && c <= '9'))
                return false;
        }
        return true;
    };
    const std::vector<std::string> inputs = {
        "", "9", "a b", "héllo", "-", "...", "UPPER.case",
        "\"quoted\"", "\n", "0123", "a:b:c", "__x__",
    };
    for (const auto &in : inputs)
        EXPECT_TRUE(conforms(sanitizePrometheusName(in))) << in;
}

TEST_F(PrometheusTest, CountersAndGaugesRender)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("sim.ticks").add(131072);
    registry.gauge("exec.queue_depth").set(3.0);
    const std::string text = toPrometheusText(registry.snapshot());
    EXPECT_NE(text.find("# TYPE sim_ticks counter\n"
                        "sim_ticks 131072\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE exec_queue_depth gauge\n"
                        "exec_queue_depth 3\n"),
              std::string::npos)
        << text;
}

TEST_F(PrometheusTest, HistogramIsCumulativeWithInfBucket)
{
    auto &registry = MetricsRegistry::instance();
    auto &h = registry.histogram("sim.phase_ticks", {1.0, 5.0, 10.0});
    h.observe(0.5);  // le=1
    h.observe(4.0);  // le=5
    h.observe(4.5);  // le=5
    h.observe(100.0); // overflow
    const std::string text = toPrometheusText(registry.snapshot());

    EXPECT_NE(text.find("# TYPE sim_phase_ticks histogram\n"),
              std::string::npos);
    // Buckets must be cumulative, not per-bucket.
    EXPECT_NE(text.find("sim_phase_ticks_bucket{le=\"1\"} 1\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("sim_phase_ticks_bucket{le=\"5\"} 3\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("sim_phase_ticks_bucket{le=\"10\"} 3\n"),
              std::string::npos) << text;
    // The +Inf bucket is mandatory and equals the observation count.
    EXPECT_NE(text.find("sim_phase_ticks_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("sim_phase_ticks_sum 109\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("sim_phase_ticks_count 4\n"),
              std::string::npos) << text;
}

TEST_F(PrometheusTest, HelpLinesPrecedeTypeLines)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("sim.ticks", obs::Volatility::Stable,
                     "Simulator ticks executed.");
    registry.gauge("exec.queue_depth", obs::Volatility::Stable,
                   "Tasks waiting in the executor queue.");
    registry.histogram("store.entry_bytes", {10.0},
                       obs::Volatility::Stable,
                       "On-disk size of each store entry.");
    const std::string text = toPrometheusText(registry.snapshot());
    EXPECT_NE(text.find("# HELP sim_ticks Simulator ticks "
                        "executed.\n"
                        "# TYPE sim_ticks counter\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# HELP exec_queue_depth Tasks waiting in "
                        "the executor queue.\n"
                        "# TYPE exec_queue_depth gauge\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# HELP store_entry_bytes On-disk size of "
                        "each store entry.\n"
                        "# TYPE store_entry_bytes histogram\n"),
              std::string::npos)
        << text;
}

TEST_F(PrometheusTest, MetricsWithoutHelpOmitTheLine)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("sim.ticks").add(1);
    const std::string text = toPrometheusText(registry.snapshot());
    EXPECT_EQ(text.find("# HELP"), std::string::npos) << text;
}

TEST_F(PrometheusTest, HelpEscapesBackslashAndNewline)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("esc.count", obs::Volatility::Stable,
                     "line one\nback\\slash");
    const std::string text = toPrometheusText(registry.snapshot());
    EXPECT_NE(text.find("# HELP esc_count line one\\nback\\\\slash\n"),
              std::string::npos)
        << text;
}

TEST_F(PrometheusTest, BuiltinInstrumentationCarriesHelp)
{
    // The real metric-creation sites must register descriptions:
    // exercise one library path and check its exposition.
    auto &registry = MetricsRegistry::instance();
    registry.counter("probe.documented", obs::Volatility::Stable,
                     "Probe metric with a description.");
    EXPECT_EQ(registry.helpFor("probe.documented"),
              "Probe metric with a description.");
}

TEST_F(PrometheusTest, PartialReasonAddsLeadingComment)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("sim.ticks");
    const std::string text =
        toPrometheusText(registry.snapshot(), "terminate called");
    EXPECT_EQ(text.rfind("# PARTIAL: terminate called\n", 0), 0u)
        << text;
}

/**
 * Parse one exposition back line by line: every line is either a
 * comment or `name{labels} value`, every histogram carries its
 * bucket/sum/count triple, and bucket counts never decrease.
 */
TEST_F(PrometheusTest, ExpositionRoundTripParses)
{
    auto &registry = MetricsRegistry::instance();
    registry.counter("pipeline.runs").add(1);
    registry.counter("3dmark.launches").add(7);
    registry.gauge("mem.head room").set(-2.5);
    auto &h = registry.histogram("store.entry_bytes", {10.0, 100.0});
    h.observe(5.0);
    h.observe(500.0);

    const std::string text = toPrometheusText(registry.snapshot());
    std::istringstream lines(text);
    std::string line;
    std::map<std::string, std::string> typeOf;
    std::map<std::string, double> lastBucket;
    int samples = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (startsWith(line, "# TYPE ")) {
            const auto parts = split(line.substr(7), ' ');
            ASSERT_EQ(parts.size(), 2u) << line;
            typeOf[parts[0]] = parts[1];
            continue;
        }
        ASSERT_FALSE(startsWith(line, "#")) << line;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string series = line.substr(0, space);
        const double value = std::stod(line.substr(space + 1));
        ++samples;

        std::string metric = series;
        const std::size_t brace = series.find('{');
        if (brace != std::string::npos) {
            metric = series.substr(0, brace);
            ASSERT_EQ(series.back(), '}') << line;
        }
        // Strip histogram suffixes to find the declared family.
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            if (endsWith(metric, suffix) &&
                typeOf.count(metric.substr(
                    0, metric.size() - std::string(suffix).size()))) {
                metric = metric.substr(
                    0, metric.size() - std::string(suffix).size());
                break;
            }
        }
        ASSERT_TRUE(typeOf.count(metric)) << line;
        if (endsWith(series, "\"}") &&
            series.find("{le=\"") != std::string::npos) {
            // Cumulative: monotone non-decreasing bucket counts.
            EXPECT_GE(value, lastBucket.count(metric)
                                 ? lastBucket[metric] : 0.0)
                << line;
            lastBucket[metric] = value;
        }
    }
    // 2 counters + 1 gauge + histogram (3 buckets incl +Inf, sum,
    // count) = 8 sample lines.
    EXPECT_EQ(samples, 8);
    EXPECT_EQ(typeOf.at("pipeline_runs"), "counter");
    EXPECT_EQ(typeOf.at("_3dmark_launches"), "counter");
    EXPECT_EQ(typeOf.at("mem_head_room"), "gauge");
    EXPECT_EQ(typeOf.at("store_entry_bytes"), "histogram");
}

/** A numpunct facet rendering 2.5 as "2,5". */
class CommaPunct : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    std::string do_grouping() const override { return "\3"; }
};

TEST_F(PrometheusTest, ValuesIgnoreTheGlobalStreamLocale)
{
    auto &registry = MetricsRegistry::instance();
    registry.gauge("mem.head_room").set(2.5);
    const std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new CommaPunct));
    std::string text;
    try {
        text = toPrometheusText(registry.snapshot());
    } catch (...) {
        std::locale::global(saved);
        throw;
    }
    std::locale::global(saved);
    EXPECT_NE(text.find("mem_head_room 2.5\n"), std::string::npos)
        << text;
    EXPECT_EQ(text.find("2,5"), std::string::npos) << text;
}

} // namespace
} // namespace mbs
