/**
 * @file
 * Tests for the obs JSON emission helpers: escaping of control
 * characters, quotes and backslashes, UTF-8 passthrough, number
 * formatting, and a fuzz-ish table of hostile strings that must all
 * embed into valid JSON documents.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "obs/json.hh"

#include "json_check.hh"

namespace mbs {
namespace {

using obs::jsonEscape;
using obs::jsonNumber;

/** Embed an escaped string in a document and parse it back. */
std::string
roundTrip(const std::string &raw)
{
    const std::string doc = "{\"k\": \"" + jsonEscape(raw) + "\"}";
    EXPECT_TRUE(test::JsonChecker::valid(doc)) << doc;
    const JsonValue v = parseJson(doc);
    return v.at("k").str;
}

TEST(JsonEscape, PlainTextPassesThrough)
{
    EXPECT_EQ(jsonEscape("sim.ticks"), "sim.ticks");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(roundTrip("say \"hi\" \\ bye"), "say \"hi\" \\ bye");
}

TEST(JsonEscape, NamedControlCharacters)
{
    EXPECT_EQ(roundTrip("a\nb"), "a\nb");
    EXPECT_EQ(roundTrip("a\tb"), "a\tb");
    EXPECT_EQ(roundTrip("a\rb"), "a\rb");
    EXPECT_EQ(roundTrip("a\bb"), "a\bb");
    EXPECT_EQ(roundTrip("a\fb"), "a\fb");
}

TEST(JsonEscape, EveryControlCharacterIsEscaped)
{
    // All of U+0000..U+001F must come out as an escape sequence;
    // none may survive raw (raw control bytes are invalid JSON).
    for (int c = 0; c < 0x20; ++c) {
        const std::string raw(1, char(c));
        const std::string escaped = jsonEscape(raw);
        EXPECT_GE(escaped.size(), 2u) << "control char " << c;
        EXPECT_EQ(escaped[0], '\\') << "control char " << c;
        EXPECT_EQ(roundTrip(raw), raw) << "control char " << c;
    }
}

TEST(JsonEscape, NonAsciiUtf8PassesThroughUnmodified)
{
    // Multi-byte UTF-8 is legal raw inside JSON strings; escaping
    // it would bloat every benchmark name with non-ASCII glyphs.
    const std::string utf8 = "3DMark\xc2\xae \xe6\xb5\x8b\xe8\xaf\x95"
                             " \xf0\x9f\x93\xb1";
    EXPECT_EQ(jsonEscape(utf8), utf8);
    EXPECT_EQ(roundTrip(utf8), utf8);
}

TEST(JsonEscape, HostileStringsEmbedIntoValidJson)
{
    const std::vector<std::string> hostile = {
        "\"", "\\", "\"\"\"", "\\\\\\", "\"}\n{\"",
        "line1\nline2\r\nline3",
        std::string("embedded\0nul", 12),
        "\x01\x02\x03\x1f",
        "trailing backslash \\",
        "{\"fake\": \"json\"}",
        "</script><script>alert(1)</script>",
        "ünïcødé 漢字 🙂 mixed with \t tabs",
        std::string(1024, '"'),
        std::string(1024, '\\'),
    };
    for (const auto &raw : hostile)
        EXPECT_EQ(roundTrip(raw), raw);
}

TEST(JsonNumber, RoundTrippableFormatting)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-1.5), "-1.5");
    // %.17g keeps the full double: parsing the text recovers the
    // exact bits.
    const double tricky = 0.1 + 0.2;
    const JsonValue v = parseJson(jsonNumber(tricky));
    EXPECT_EQ(v.number, tricky);
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

} // namespace
} // namespace mbs
