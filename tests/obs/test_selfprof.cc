/**
 * @file
 * Self-profiler tests: sample attribution to live spans (the >= 90%
 * acceptance bar on real work), collapsed-stack and table exports,
 * lazy thread registration, and the disarmed zero-cost contract.
 */

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "obs/selfprof.hh"
#include "obs/trace.hh"

namespace mbs {
namespace {

using obs::ScopedSpan;
using obs::SelfProfile;
using obs::SelfProfiler;

class SelfProfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::Tracer::instance().setEnabled(true);
        SelfProfiler::instance().disarm();
        SelfProfiler::instance().resetForTest();
    }

    void TearDown() override
    {
        SelfProfiler::instance().disarm();
        SelfProfiler::instance().resetForTest();
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
    }
};

/** Busy-spin so the sampler has work to land on. */
void
spinFor(std::chrono::milliseconds duration)
{
    const auto until = std::chrono::steady_clock::now() + duration;
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until)
        sink = sink + 1;
}

TEST_F(SelfProfTest, AttributesSamplesToInnermostSpan)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(500.0);
    {
        ScopedSpan outer("outer", "stage");
        spinFor(std::chrono::milliseconds(40));
        {
            ScopedSpan inner("inner", "stage");
            spinFor(std::chrono::milliseconds(40));
        }
    }
    prof.disarm();

    const SelfProfile profile = prof.profile();
    ASSERT_GT(profile.totalSamples, 0u);
    // Every sample lands while this thread is inside a span: the
    // acceptance bar is >= 90%, lazy registration makes it 100%.
    EXPECT_GE(profile.attributionRatio(), 0.90);

    bool sawOuter = false, sawInner = false;
    for (const auto &s : profile.spans) {
        if (s.name == "outer") {
            sawOuter = true;
            // Cumulative counts samples under "inner" too.
            EXPECT_GE(s.cumulativeSamples, s.selfSamples);
        }
        if (s.name == "inner")
            sawInner = true;
    }
    EXPECT_TRUE(sawOuter);
    EXPECT_TRUE(sawInner);

    const std::string collapsed = profile.collapsedText();
    EXPECT_NE(collapsed.find("outer"), std::string::npos)
        << collapsed;
    EXPECT_NE(collapsed.find("outer;inner"), std::string::npos)
        << collapsed;
    const std::string table = profile.tableText();
    EXPECT_NE(table.find("outer"), std::string::npos) << table;
}

TEST_F(SelfProfTest, CollapsedLinesAreStackSpaceCount)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(500.0);
    {
        ScopedSpan span("lonely", "stage");
        spinFor(std::chrono::milliseconds(30));
    }
    prof.disarm();
    const std::string collapsed = prof.profile().collapsedText();
    ASSERT_FALSE(collapsed.empty());
    // "stack count\n" per line; the single-span stack is its name.
    for (std::size_t at = 0; at < collapsed.size();) {
        const std::size_t nl = collapsed.find('\n', at);
        ASSERT_NE(nl, std::string::npos);
        const std::string line = collapsed.substr(at, nl - at);
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        at = nl + 1;
    }
}

TEST_F(SelfProfTest, DisarmedSpansAreNeverRegistered)
{
    auto &prof = SelfProfiler::instance();
    ASSERT_FALSE(prof.armed());
    {
        ScopedSpan span("unprofiled", "stage");
        spinFor(std::chrono::milliseconds(5));
    }
    const SelfProfile profile = prof.profile();
    EXPECT_EQ(profile.totalSamples, 0u);
    EXPECT_TRUE(profile.spans.empty());
    EXPECT_TRUE(profile.collapsed.empty());
    // No samples at all counts as fully attributed.
    EXPECT_DOUBLE_EQ(profile.attributionRatio(), 1.0);
    EXPECT_EQ(profile.collapsedText(), "");
}

TEST_F(SelfProfTest, SpanFreeThreadsDoNotDiluteAttribution)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(500.0);
    // A worker that never opens a span must never be sampled.
    std::thread spanFree(
        [] { spinFor(std::chrono::milliseconds(60)); });
    {
        ScopedSpan span("worker", "stage");
        spinFor(std::chrono::milliseconds(60));
    }
    spanFree.join();
    prof.disarm();
    const SelfProfile profile = prof.profile();
    ASSERT_GT(profile.totalSamples, 0u);
    EXPECT_GE(profile.attributionRatio(), 0.90);
}

TEST_F(SelfProfTest, MultipleThreadsSampleIndependently)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(500.0);
    std::thread other([] {
        ScopedSpan span("thread-b", "stage");
        spinFor(std::chrono::milliseconds(50));
    });
    {
        ScopedSpan span("thread-a", "stage");
        spinFor(std::chrono::milliseconds(50));
    }
    other.join();
    prof.disarm();
    const SelfProfile profile = prof.profile();
    bool sawA = false, sawB = false;
    for (const auto &s : profile.spans) {
        sawA = sawA || s.name == "thread-a";
        sawB = sawB || s.name == "thread-b";
    }
    EXPECT_TRUE(sawA);
    EXPECT_TRUE(sawB);
}

TEST_F(SelfProfTest, RearmClearsThePreviousSession)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(500.0);
    {
        ScopedSpan span("first-session", "stage");
        spinFor(std::chrono::milliseconds(30));
    }
    prof.disarm();
    ASSERT_GT(prof.profile().totalSamples, 0u);

    prof.arm(500.0);
    {
        ScopedSpan span("second-session", "stage");
        spinFor(std::chrono::milliseconds(30));
    }
    prof.disarm();
    const SelfProfile profile = prof.profile();
    for (const auto &s : profile.spans)
        EXPECT_NE(s.name, "first-session");
}

TEST_F(SelfProfTest, HzIsClampedNotFatal)
{
    auto &prof = SelfProfiler::instance();
    prof.arm(1e9); // clamped to 1000 Hz
    {
        ScopedSpan span("clamped", "stage");
        spinFor(std::chrono::milliseconds(20));
    }
    prof.disarm();
    EXPECT_GT(prof.profile().totalSamples, 0u);
}

} // namespace
} // namespace mbs
