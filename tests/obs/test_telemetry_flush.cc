/**
 * @file
 * Abnormal-exit telemetry flush tests: a flush with a partial reason
 * marks every artifact PARTIAL, the first flush wins over later
 * ones, and a truncated events.jsonl still parses line-by-line under
 * the strict JSON parser (the JSONL contract that makes a mid-write
 * crash recoverable).
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/json_parse.hh"
#include "common/strings.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/timeseries.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

using obs::EventLog;
using obs::MetricsRegistry;
using obs::TelemetryConfig;
using obs::TelemetrySink;
using obs::TimeSeriesSampler;

class TelemetryFlushTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = fs::path(::testing::TempDir()) /
              ("mbs-flush-" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name()));
        fs::remove_all(dir);
        MetricsRegistry::instance().reset();
        EventLog::instance().clear();
        TelemetrySink::instance().resetForTest();
    }

    void TearDown() override
    {
        TelemetrySink::instance().resetForTest();
        auto &sampler = TimeSeriesSampler::instance();
        sampler.setEnabled(false);
        sampler.reset();
        EventLog::instance().setEnabled(false);
        EventLog::instance().clear();
        MetricsRegistry::instance().reset();
        fs::remove_all(dir);
    }

    /** Configure the sink on `dir` and produce some live state. */
    void configureWithActivity()
    {
        TelemetryConfig config;
        config.telemetryDir = dir.string();
        TelemetrySink::instance().configure(config);
        MetricsRegistry::instance().counter("flush.test").add(3);
        EventLog::instance().emit(
            "flush.event", {{"key", "value"}});
        EventLog::instance().emit("flush.event");
        TimeSeriesSampler::instance().sample(
            obs::ClockDomain::Logical, "mid");
    }

    std::string read(const char *name) const
    {
        std::ifstream in(dir / name);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    fs::path dir;
};

TEST_F(TelemetryFlushTest, PartialFlushMarksEveryArtifact)
{
    configureWithActivity();
    TelemetrySink::instance().flush("simulated crash");

    const std::string prom = read("metrics.prom");
    EXPECT_EQ(prom.rfind("# PARTIAL: simulated crash\n", 0), 0u)
        << prom;

    const std::string json = read("metrics.json");
    EXPECT_NE(json.find("simulated crash"), std::string::npos);
    // The partial marker must not break JSON validity.
    EXPECT_NO_THROW(parseJson(json));

    const std::string csv = read("timeseries.csv");
    EXPECT_NE(csv.find("# partial: simulated crash"),
              std::string::npos)
        << csv;

    const std::string events = read("events.jsonl");
    EXPECT_NE(events.find("log.partial"), std::string::npos);
    EXPECT_NE(events.find("simulated crash"), std::string::npos);

    const std::string trace = read("trace.json");
    EXPECT_NE(trace.find("partial"), std::string::npos);
    EXPECT_NO_THROW(parseJson(trace));
}

TEST_F(TelemetryFlushTest, FirstFlushWins)
{
    configureWithActivity();
    TelemetrySink::instance().flush("crash during run");
    // A later normal flush must not erase the partial record.
    TelemetrySink::instance().flush();
    EXPECT_NE(read("metrics.prom").find("crash during run"),
              std::string::npos);

    // And the other way around: a completed normal flush is never
    // downgraded to partial by a crash during cleanup.
    TelemetrySink::instance().resetForTest();
    configureWithActivity();
    TelemetrySink::instance().flush();
    TelemetrySink::instance().flush("late terminate");
    EXPECT_EQ(read("metrics.prom").find("late terminate"),
              std::string::npos);
}

TEST_F(TelemetryFlushTest, NormalFlushCarriesNoPartialMarker)
{
    configureWithActivity();
    TelemetrySink::instance().flush();
    EXPECT_EQ(read("metrics.prom").find("# PARTIAL"),
              std::string::npos);
    EXPECT_EQ(read("events.jsonl").find("log.partial"),
              std::string::npos);
    EXPECT_EQ(read("timeseries.csv").find("# partial"),
              std::string::npos);
}

/**
 * The JSONL contract: each event is one self-contained JSON line, so
 * any prefix of the file cut at a line boundary parses strictly, and
 * a cut mid-line loses exactly the final line and nothing else.
 */
TEST_F(TelemetryFlushTest, TruncatedEventsParseLineByLine)
{
    configureWithActivity();
    for (int i = 0; i < 20; ++i) {
        EventLog::instance().emit(
            "flush.bulk", {{"i", std::to_string(i)}});
    }
    TelemetrySink::instance().flush("killed mid-run");
    const std::string full = read("events.jsonl");
    ASSERT_GT(full.size(), 200u);

    // Simulate the kill landing at every prefix ending mid-line: the
    // complete lines before the cut must all strict-parse.
    for (const std::size_t cut :
         {full.size() / 4, full.size() / 2, full.size() - 3}) {
        const std::string truncated = full.substr(0, cut);
        const auto lines = split(truncated, '\n');
        // Everything but the final (possibly cut) fragment is intact.
        std::size_t parsed = 0;
        for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
            if (lines[i].empty())
                continue;
            JsonValue event;
            ASSERT_NO_THROW(event = parseJson(lines[i]))
                << "cut=" << cut << " line=" << lines[i];
            ASSERT_TRUE(event.isObject());
            const JsonValue *type = event.find("type");
            ASSERT_NE(type, nullptr);
            EXPECT_TRUE(type->isString());
            ++parsed;
        }
        EXPECT_GT(parsed, 0u) << "cut=" << cut;
    }
}

TEST_F(TelemetryFlushTest, UnconfiguredFlushWritesNothing)
{
    TelemetrySink::instance().flush("crash with no config");
    EXPECT_FALSE(fs::exists(dir));
}

} // namespace
} // namespace mbs
