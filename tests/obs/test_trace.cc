/**
 * @file
 * Tests for the span tracer: disabled no-op, span nesting, instant
 * and metadata events, summaries, Chrome trace-event JSON export,
 * and thread safety.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"

#include "json_check.hh"

namespace mbs {
namespace {

using obs::ScopedSpan;
using obs::TraceEvent;
using obs::Tracer;

/** Reset the tracer around each test so state never leaks. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Tracer::instance().clear();
        Tracer::instance().setEnabled(true);
    }
    void TearDown() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing)
{
    Tracer::instance().setEnabled(false);
    {
        ScopedSpan outer("outer", "test");
        ScopedSpan inner("inner", "test");
        Tracer::instance().instant("tick", "test");
    }
    EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, SpansRecordBeginEndPairsInNestingOrder)
{
    {
        ScopedSpan outer("outer", "test");
        {
            ScopedSpan inner("inner", "test");
        }
    }
    const auto events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].phase, 'B');
    EXPECT_EQ(events[2].name, "inner");
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_EQ(events[3].name, "outer");
    EXPECT_EQ(events[3].phase, 'E');
    // Timestamps never run backwards.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].tsMicros, events[i - 1].tsMicros);
}

TEST_F(TraceTest, InstantEventsCarryArgs)
{
    Tracer::instance().instant("overload", "sim",
                               {{"backlog", "12345"}});
    const auto events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, 'i');
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].first, "backlog");
    EXPECT_EQ(events[0].args[0].second, "12345");
}

TEST_F(TraceTest, EnableToggleStopsRecording)
{
    {
        ScopedSpan s("kept", "test");
    }
    Tracer::instance().setEnabled(false);
    {
        ScopedSpan s("dropped", "test");
    }
    const auto events = Tracer::instance().events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "kept");
}

TEST_F(TraceTest, ExportIsValidJson)
{
    Tracer::instance().metadata("seed", "42");
    {
        ScopedSpan stage("stage \"quoted\"\n", "stage");
        ScopedSpan bench("bench\\path", "benchmark",
                         {{"suite", "3DMark"}});
    }
    const std::string json = Tracer::instance().exportJson();
    EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
}

TEST_F(TraceTest, MetadataExportedAsMetadataEvents)
{
    Tracer::instance().metadata("seed", "20240501");
    Tracer::instance().metadata("soc", "Snapdragon 888");
    const std::string json = Tracer::instance().exportJson();
    EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    EXPECT_NE(json.find("20240501"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    const auto md = Tracer::instance().metadataEntries();
    EXPECT_EQ(md.at("seed"), "20240501");
}

TEST_F(TraceTest, MetadataRecordedEvenWhileDisabled)
{
    Tracer::instance().setEnabled(false);
    Tracer::instance().metadata("seed", "7");
    EXPECT_EQ(Tracer::instance().metadataEntries().at("seed"), "7");
}

TEST_F(TraceTest, SpanSummariesAggregateByName)
{
    for (int i = 0; i < 3; ++i) {
        ScopedSpan s("profile", "stage");
    }
    {
        ScopedSpan s("clustering", "stage");
    }
    {
        ScopedSpan s("other", "different-category");
    }
    const auto summaries =
        Tracer::instance().spanSummaries("stage");
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_EQ(summaries[0].name, "profile");
    EXPECT_EQ(summaries[0].count, 3u);
    EXPECT_EQ(summaries[1].name, "clustering");
    EXPECT_EQ(summaries[1].count, 1u);
    EXPECT_GE(summaries[0].totalSeconds, 0.0);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllRecorded)
{
    constexpr int threads = 4;
    constexpr int spansPerThread = 50;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([] {
            for (int i = 0; i < spansPerThread; ++i) {
                ScopedSpan outer("outer", "mt");
                ScopedSpan inner("inner", "mt");
            }
        });
    }
    for (auto &t : pool)
        t.join();
    const auto events = Tracer::instance().events();
    EXPECT_EQ(events.size(),
              std::size_t(threads) * spansPerThread * 4);
    EXPECT_TRUE(test::JsonChecker::valid(
        Tracer::instance().exportJson()));
    // Every thread's events must carry that thread's own tid, so
    // summaries still pair up per thread.
    const auto summaries = Tracer::instance().spanSummaries("mt");
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_EQ(summaries[0].count + summaries[1].count,
              std::uint64_t(threads) * spansPerThread * 2);
}

TEST_F(TraceTest, ClearDropsEverything)
{
    Tracer::instance().metadata("k", "v");
    {
        ScopedSpan s("span", "test");
    }
    Tracer::instance().clear();
    EXPECT_TRUE(Tracer::instance().events().empty());
    EXPECT_TRUE(Tracer::instance().metadataEntries().empty());
}

} // namespace
} // namespace mbs
