/**
 * @file
 * Progress meter tests: TTY detection via the injected sink, the
 * line-per-update degradation for pipes/CI logs, in-place `\r`
 * redraws with blank-out padding in Tty mode, and the disabled
 * default writing nothing.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/progress.hh"

namespace mbs {
namespace {

using obs::Progress;

/** A tmpfile() sink whose contents the test can read back. */
class ProgressTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sink = std::tmpfile();
        ASSERT_NE(sink, nullptr);
        auto &p = Progress::instance();
        p.setSinkForTest(sink);
        p.setMode(Progress::Mode::Auto);
        p.setEnabled(true);
    }

    void TearDown() override
    {
        auto &p = Progress::instance();
        p.setEnabled(false);
        p.setMode(Progress::Mode::Auto);
        p.setSinkForTest(nullptr);
        std::fclose(sink);
    }

    std::string captured()
    {
        std::fflush(sink);
        std::string out;
        std::rewind(sink);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, sink)) > 0)
            out.append(buf, n);
        return out;
    }

    std::FILE *sink = nullptr;
};

TEST_F(ProgressTest, AutoResolvesToLinesOnNonTty)
{
    auto &p = Progress::instance();
    p.begin(2, "profiling");
    // A tmpfile is not a terminal: Auto must degrade to Lines.
    EXPECT_EQ(p.activeMode(), Progress::Mode::Lines);
    p.step("one");
    p.step("two");
    p.finish();

    const std::string out = captured();
    // One grep-able line per update, no carriage returns.
    EXPECT_EQ(out.find('\r'), std::string::npos) << out;
    EXPECT_NE(out.find("profiling: 2 steps\n"), std::string::npos)
        << out;
    EXPECT_NE(out.find("[  1/2] one\n"), std::string::npos) << out;
    EXPECT_NE(out.find("[  2/2] two\n"), std::string::npos) << out;
}

TEST_F(ProgressTest, ForcedTtyRedrawsInPlace)
{
    auto &p = Progress::instance();
    p.setMode(Progress::Mode::Tty);
    p.begin(2, "profiling");
    EXPECT_EQ(p.activeMode(), Progress::Mode::Tty);
    p.step("a-much-longer-label");
    p.step("short");
    p.finish();

    const std::string out = captured();
    // Every update starts with a carriage return, and the final
    // frame ends the phase with a newline (the "done" frame is
    // padded, so only the padded line guarantees the terminator).
    EXPECT_NE(out.find("\r[  1/2] a-much-longer-label"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\r[  2/2] short"), std::string::npos) << out;
    EXPECT_NE(out.find("\r[  2/2] done"), std::string::npos) << out;
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), '\n') << out;
    // The shorter redraw is padded to blank out the longer one.
    const std::size_t shortAt = out.find("\r[  2/2] short");
    ASSERT_NE(shortAt, std::string::npos);
    const std::size_t nextCr = out.find('\r', shortAt + 1);
    const std::string frame = out.substr(
        shortAt, (nextCr == std::string::npos ? out.size()
                                              : nextCr) -
            shortAt);
    EXPECT_GE(frame.size(),
              std::string("\r[  1/2] a-much-longer-label").size())
        << '"' << frame << '"';
}

TEST_F(ProgressTest, ForcedLinesModeIgnoresTtyness)
{
    auto &p = Progress::instance();
    p.setMode(Progress::Mode::Lines);
    p.begin(1, "export");
    EXPECT_EQ(p.activeMode(), Progress::Mode::Lines);
    p.step("bundle");
    p.finish();
    const std::string out = captured();
    EXPECT_EQ(out.find('\r'), std::string::npos) << out;
    EXPECT_NE(out.find("[  1/1] bundle\n"), std::string::npos)
        << out;
}

TEST_F(ProgressTest, UnknownTotalOmitsDenominator)
{
    auto &p = Progress::instance();
    p.begin(0, "scanning");
    p.step("first");
    p.finish();
    const std::string out = captured();
    EXPECT_NE(out.find("scanning\n"), std::string::npos) << out;
    EXPECT_NE(out.find("[  1] first\n"), std::string::npos) << out;
}

TEST_F(ProgressTest, DisabledWritesNothing)
{
    auto &p = Progress::instance();
    p.setEnabled(false);
    p.begin(3, "silent");
    p.step("invisible");
    p.finish();
    EXPECT_EQ(captured(), "");
}

} // namespace
} // namespace mbs
