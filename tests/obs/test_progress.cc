/**
 * @file
 * Progress meter tests: TTY detection via the injected sink, the
 * line-per-update degradation for pipes/CI logs, in-place `\r`
 * redraws with blank-out padding in Tty mode, and the disabled
 * default writing nothing.
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/progress.hh"

namespace mbs {
namespace {

using obs::Progress;

/** A tmpfile() sink whose contents the test can read back. */
class ProgressTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sink = std::tmpfile();
        ASSERT_NE(sink, nullptr);
        auto &p = Progress::instance();
        p.setSinkForTest(sink);
        p.setMode(Progress::Mode::Auto);
        p.setEnabled(true);
    }

    void TearDown() override
    {
        auto &p = Progress::instance();
        p.setEnabled(false);
        p.setMode(Progress::Mode::Auto);
        p.setSinkForTest(nullptr);
        std::fclose(sink);
    }

    std::string captured()
    {
        std::fflush(sink);
        std::string out;
        std::rewind(sink);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, sink)) > 0)
            out.append(buf, n);
        return out;
    }

    std::FILE *sink = nullptr;
};

TEST_F(ProgressTest, AutoResolvesToLinesOnNonTty)
{
    auto &p = Progress::instance();
    p.begin(2, "profiling");
    // A tmpfile is not a terminal: Auto must degrade to Lines.
    EXPECT_EQ(p.activeMode(), Progress::Mode::Lines);
    p.step("one");
    p.step("two");
    p.finish();

    const std::string out = captured();
    // One grep-able line per update, no carriage returns.
    EXPECT_EQ(out.find('\r'), std::string::npos) << out;
    EXPECT_NE(out.find("profiling: 2 steps\n"), std::string::npos)
        << out;
    EXPECT_NE(out.find("[  1/2] one\n"), std::string::npos) << out;
    EXPECT_NE(out.find("[  2/2] two\n"), std::string::npos) << out;
}

TEST_F(ProgressTest, ForcedTtyRedrawsInPlace)
{
    auto &p = Progress::instance();
    p.setMode(Progress::Mode::Tty);
    p.begin(2, "profiling");
    EXPECT_EQ(p.activeMode(), Progress::Mode::Tty);
    p.step("a-much-longer-label");
    p.step("short");
    p.finish();

    const std::string out = captured();
    // Every update starts with a carriage return, and the final
    // frame ends the phase with a newline (the "done" frame is
    // padded, so only the padded line guarantees the terminator).
    EXPECT_NE(out.find("\r[  1/2] a-much-longer-label"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\r[  2/2] short"), std::string::npos) << out;
    EXPECT_NE(out.find("\r[  2/2] done"), std::string::npos) << out;
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.back(), '\n') << out;
    // The shorter redraw is padded to blank out the longer one.
    const std::size_t shortAt = out.find("\r[  2/2] short");
    ASSERT_NE(shortAt, std::string::npos);
    const std::size_t nextCr = out.find('\r', shortAt + 1);
    const std::string frame = out.substr(
        shortAt, (nextCr == std::string::npos ? out.size()
                                              : nextCr) -
            shortAt);
    EXPECT_GE(frame.size(),
              std::string("\r[  1/2] a-much-longer-label").size())
        << '"' << frame << '"';
}

TEST_F(ProgressTest, ForcedLinesModeIgnoresTtyness)
{
    auto &p = Progress::instance();
    p.setMode(Progress::Mode::Lines);
    p.begin(1, "export");
    EXPECT_EQ(p.activeMode(), Progress::Mode::Lines);
    p.step("bundle");
    p.finish();
    const std::string out = captured();
    EXPECT_EQ(out.find('\r'), std::string::npos) << out;
    EXPECT_NE(out.find("[  1/1] bundle\n"), std::string::npos)
        << out;
}

TEST_F(ProgressTest, UnknownTotalOmitsDenominator)
{
    auto &p = Progress::instance();
    p.begin(0, "scanning");
    p.step("first");
    p.finish();
    const std::string out = captured();
    EXPECT_NE(out.find("scanning\n"), std::string::npos) << out;
    EXPECT_NE(out.find("[  1] first\n"), std::string::npos) << out;
}

TEST_F(ProgressTest, DisabledWritesNothing)
{
    auto &p = Progress::instance();
    p.setEnabled(false);
    p.begin(3, "silent");
    p.step("invisible");
    p.finish();
    EXPECT_EQ(captured(), "");
}

/** One observed (done, total, label) listener callback. */
struct Update
{
    std::size_t done;
    std::size_t total;
    std::string label;

    bool operator==(const Update &other) const
    {
        return done == other.done && total == other.total &&
               label == other.label;
    }
};

TEST_F(ProgressTest, ListenerReceivesUpdatesAndSilencesTheMeter)
{
    auto &p = Progress::instance();
    std::vector<Update> updates;
    p.setListener([&updates](std::size_t done, std::size_t total,
                             const std::string &label) {
        updates.push_back({done, total, label});
    });
    p.begin(2, "profiling");
    p.step("one");
    p.step("two");
    p.finish();
    p.setListener(nullptr);

    const std::vector<Update> expected = {
        {0, 2, "profiling"}, {1, 2, "one"}, {2, 2, "two"}};
    EXPECT_EQ(updates, expected);
    // A serve job's progress travels as frames; while a listener is
    // installed nothing may leak into the daemon's terminal sink.
    EXPECT_EQ(captured(), "");
}

TEST_F(ProgressTest, ListenerCountsEvenWhenDisabled)
{
    // The daemon never passes --progress, but a submitting client
    // still wants progress frames: the listener bypasses the enabled
    // flag.
    auto &p = Progress::instance();
    p.setEnabled(false);
    std::vector<Update> updates;
    p.setListener([&updates](std::size_t done, std::size_t total,
                             const std::string &label) {
        updates.push_back({done, total, label});
    });
    p.begin(1, "job");
    p.step("only");
    p.finish();
    p.setListener(nullptr);
    const std::vector<Update> expected = {{0, 1, "job"},
                                          {1, 1, "only"}};
    EXPECT_EQ(updates, expected);
    EXPECT_EQ(captured(), "");
}

TEST_F(ProgressTest, ClearingTheListenerRestoresStderrRendering)
{
    auto &p = Progress::instance();
    p.setListener([](std::size_t, std::size_t, const std::string &) {
    });
    p.begin(1, "silent");
    p.step("frame");
    p.finish();
    p.setListener(nullptr);

    p.begin(1, "loud");
    p.step("line");
    p.finish();
    const std::string out = captured();
    EXPECT_EQ(out.find("frame"), std::string::npos) << out;
    EXPECT_NE(out.find("[  1/1] line\n"), std::string::npos) << out;
}

} // namespace
} // namespace mbs
