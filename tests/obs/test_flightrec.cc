/**
 * @file
 * Tests for the always-on flight recorder: ring wraparound keeps the
 * newest entries in order, drop accounting is exact, concurrent
 * writers stay on their own rings (exercised under the sanitizer
 * lanes), every dump line is valid JSON, and the fatal-signal path
 * writes a parseable dump from a forked child that crashes.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.hh"
#include "obs/flightrec.hh"
#include "obs/signals.hh"
#include "obs/trace.hh"

#include "json_check.hh"

namespace mbs {
namespace {

using obs::FlightRecorder;

class FlightRecTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FlightRecorder::instance().resetForTest();
        FlightRecorder::instance().arm();
    }

    void TearDown() override
    {
        FlightRecorder::instance().resetForTest();
    }
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

/** Entry lines of @p dump parsed to (seq, name), this thread only. */
std::vector<std::pair<std::uint64_t, std::string>>
entriesOf(const std::string &dump)
{
    std::vector<std::pair<std::uint64_t, std::string>> out;
    for (const auto &line : lines(dump)) {
        const JsonValue doc = parseJson(line);
        if (doc.find("seq") == nullptr)
            continue;
        out.emplace_back(std::uint64_t(doc.at("seq").number),
                         doc.at("name").str);
    }
    return out;
}

TEST_F(FlightRecTest, RecordsEntriesWithSequentialSeq)
{
    auto &rec = FlightRecorder::instance();
    rec.note('B', "alpha");
    rec.note('e', "beta");
    rec.note('E', "alpha");
    const auto entries = entriesOf(rec.dumpJsonl());
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 0u);
    EXPECT_EQ(entries[0].second, "alpha");
    EXPECT_EQ(entries[1].first, 1u);
    EXPECT_EQ(entries[1].second, "beta");
    EXPECT_EQ(entries[2].first, 2u);
}

TEST_F(FlightRecTest, EveryDumpLineIsValidJson)
{
    auto &rec = FlightRecorder::instance();
    rec.note('B', "name with \"quotes\" and \\slashes\\");
    rec.note('e', std::string(200, 'x')); // truncated to kNameBytes
    for (const auto &line : lines(rec.dumpJsonl()))
        EXPECT_TRUE(test::JsonChecker::valid(line)) << line;
}

TEST_F(FlightRecTest, WraparoundKeepsNewestEntriesInOrder)
{
    auto &rec = FlightRecorder::instance();
    const std::size_t total = FlightRecorder::kRingEntries + 100;
    for (std::size_t i = 0; i < total; ++i)
        rec.note('e', "evt-" + std::to_string(i));
    const auto entries = entriesOf(rec.dumpJsonl());
    ASSERT_EQ(entries.size(), FlightRecorder::kRingEntries);
    // The surviving window is exactly the newest kRingEntries, in
    // sequence order.
    const std::uint64_t first = total - FlightRecorder::kRingEntries;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].first, first + i);
        EXPECT_EQ(entries[i].second,
                  "evt-" + std::to_string(first + i));
    }
}

TEST_F(FlightRecTest, DropAccountingIsExact)
{
    auto &rec = FlightRecorder::instance();
    const std::uint64_t total = FlightRecorder::kRingEntries + 37;
    for (std::uint64_t i = 0; i < total; ++i)
        rec.note('e', "x");
    const auto stats = rec.threadStats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].written, total);
    EXPECT_EQ(stats[0].dropped, total - FlightRecorder::kRingEntries);

    // The same numbers appear on the dump's per-thread stat line.
    bool found = false;
    for (const auto &line : lines(rec.dumpJsonl())) {
        const JsonValue doc = parseJson(line);
        if (doc.find("dropped") == nullptr)
            continue;
        found = true;
        EXPECT_EQ(std::uint64_t(doc.at("written").number), total);
        EXPECT_EQ(std::uint64_t(doc.at("dropped").number),
                  total - FlightRecorder::kRingEntries);
    }
    EXPECT_TRUE(found);
}

TEST_F(FlightRecTest, DisarmedNotesRecordNothing)
{
    auto &rec = FlightRecorder::instance();
    rec.disarm();
    rec.note('B', "ignored");
    EXPECT_TRUE(entriesOf(rec.dumpJsonl()).empty());
}

TEST_F(FlightRecTest, ScopedSpanFeedsTheRecorderEvenWhenTracerOff)
{
    obs::Tracer::instance().setEnabled(false);
    {
        obs::ScopedSpan span("recorded.span", "test");
    }
    const auto entries =
        entriesOf(FlightRecorder::instance().dumpJsonl());
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].second, "recorded.span");
    EXPECT_EQ(entries[1].second, "recorded.span");
}

TEST_F(FlightRecTest, ConcurrentWritersEachGetTheirOwnRing)
{
    auto &rec = FlightRecorder::instance();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000; // > kRingEntries: forces wrap
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&rec, t] {
            // Built in two steps: GCC 12 mis-fires -Wrestrict on the
            // one-line literal + temporary concatenation here.
            std::string name = "w";
            name += std::to_string(t);
            for (int i = 0; i < kPerThread; ++i)
                rec.note('e', name);
        });
    }
    // Dump concurrently with the writers: torn entries must be
    // skipped, never emitted garbled (sanitizer lanes watch the
    // memory accesses themselves).
    for (int i = 0; i < 10; ++i) {
        for (const auto &line : lines(rec.dumpJsonl()))
            EXPECT_TRUE(test::JsonChecker::valid(line)) << line;
    }
    for (auto &w : writers)
        w.join();

    std::uint64_t written = 0;
    for (const auto &s : rec.threadStats())
        written += s.written;
    // This thread may have noted nothing; the writers account for
    // exactly kThreads * kPerThread entries.
    EXPECT_EQ(written, std::uint64_t(kThreads) * kPerThread);
    const auto entries = entriesOf(rec.dumpJsonl());
    EXPECT_EQ(entries.size(),
              std::size_t(kThreads) * FlightRecorder::kRingEntries);
}

TEST_F(FlightRecTest, FatalSignalInForkedChildWritesParseableDump)
{
    const std::string path =
        ::testing::TempDir() + "flightrec_signal_dump.jsonl";
    std::remove(path.c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm, install the dump hook, record some history,
        // then die on a real fatal signal. _exit codes mark setup
        // failures; the parent asserts on the signal death.
        auto &rec = FlightRecorder::instance();
        rec.arm();
        obs::installFatalSignalDump(path);
        for (int i = 0; i < 100; ++i)
            rec.note('e', "pre-crash-" + std::to_string(i));
        std::raise(SIGSEGV);
        _exit(97); // unreachable
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no dump at " << path;
    std::ostringstream content;
    content << in.rdbuf();
    const std::string dump = content.str();
    ASSERT_FALSE(dump.empty());
    for (const auto &line : lines(dump))
        EXPECT_TRUE(test::JsonChecker::valid(line)) << line;
    // The child's pre-crash history survived into the dump.
    EXPECT_NE(dump.find("pre-crash-99"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace mbs
