/**
 * @file
 * Tests for the metrics registry: counter/gauge/histogram semantics,
 * deterministic snapshot ordering, volatility filtering, and JSON
 * export validity.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hh"

#include "json_check.hh"

namespace mbs {
namespace {

using obs::MetricSample;
using obs::MetricsRegistry;
using obs::Volatility;

class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::instance().reset(); }
    void TearDown() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates)
{
    auto &c = MetricsRegistry::instance().counter("test.count");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, SameNameReturnsSameInstrument)
{
    auto &a = MetricsRegistry::instance().counter("test.same");
    auto &b = MetricsRegistry::instance().counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue)
{
    auto &g = MetricsRegistry::instance().gauge("test.gauge");
    EXPECT_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(-2.25);
    EXPECT_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramBucketsByUpperBound)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.hist", {1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // <= 1 (bounds are inclusive)
    h.observe(5.0);   // <= 10
    h.observe(1000.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
    const auto counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
}

TEST_F(MetricsTest, HistogramRejectsBadBounds)
{
    EXPECT_ANY_THROW(MetricsRegistry::instance().histogram(
        "test.bad_empty", {}));
    EXPECT_ANY_THROW(MetricsRegistry::instance().histogram(
        "test.bad_order", {10.0, 1.0}));
}

TEST_F(MetricsTest, SnapshotSortsByNameAcrossKinds)
{
    auto &reg = MetricsRegistry::instance();
    reg.gauge("zebra").set(1.0);
    reg.counter("alpha").add(2);
    reg.histogram("middle", {1.0}).observe(0.5);
    reg.counter("beta").add(3);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 4u);
    EXPECT_EQ(snap.samples[0].name, "alpha");
    EXPECT_EQ(snap.samples[1].name, "beta");
    EXPECT_EQ(snap.samples[2].name, "middle");
    EXPECT_EQ(snap.samples[3].name, "zebra");
}

TEST_F(MetricsTest, SnapshotIsDeterministicAcrossCaptures)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("a.ticks").add(100);
    reg.gauge("b.level").set(0.75);
    reg.histogram("c.sizes", {1.0, 2.0}).observe(1.5);
    const std::string first = reg.snapshot().toJson();
    const std::string second = reg.snapshot().toJson();
    EXPECT_EQ(first, second);
}

TEST_F(MetricsTest, VolatileInstrumentsExcludedByDefault)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("stable.count").add();
    reg.gauge("volatile.wall_seconds", Volatility::Volatile).set(1.23);
    const auto stable = reg.snapshot();
    ASSERT_EQ(stable.samples.size(), 1u);
    EXPECT_EQ(stable.samples[0].name, "stable.count");
    const auto all = reg.snapshot(true);
    EXPECT_EQ(all.samples.size(), 2u);
}

TEST_F(MetricsTest, JsonExportIsValid)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("json.\"quoted\".count").add(7);
    reg.gauge("json.gauge").set(-0.125);
    reg.histogram("json.hist", {1.0, 10.0}).observe(3.0);
    const std::string json = reg.snapshot().toJson();
    EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
}

TEST_F(MetricsTest, TextExportListsEveryMetric)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("text.count").add(3);
    reg.gauge("text.gauge").set(2.5);
    reg.histogram("text.hist", {1.0}).observe(0.5);
    const std::string text = reg.snapshot().toText();
    EXPECT_NE(text.find("text.count"), std::string::npos);
    EXPECT_NE(text.find("text.gauge"), std::string::npos);
    EXPECT_NE(text.find("text.hist"), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentCounterUpdatesAreLossless)
{
    auto &c = MetricsRegistry::instance().counter("mt.count");
    auto &h = MetricsRegistry::instance().histogram(
        "mt.hist", {0.5});
    constexpr int threads = 4;
    constexpr int adds = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < adds; ++i) {
                c.add();
                h.observe(double(i % 2));
            }
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(c.value(), std::uint64_t(threads) * adds);
    EXPECT_EQ(h.count(), std::uint64_t(threads) * adds);
}

TEST_F(MetricsTest, PercentileInterpolatesWithinBuckets)
{
    // Bounds equal to the observed values make the interpolation
    // exact at every observed rank (the stage table relies on this).
    auto &h = MetricsRegistry::instance().histogram(
        "test.pct", {10.0, 20.0, 30.0, 40.0});
    h.observe(10.0);
    h.observe(20.0);
    h.observe(30.0);
    h.observe(40.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 20.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.00), 40.0);
}

TEST_F(MetricsTest, PercentileInterpolatesMidBucket)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.pct_mid", {10.0});
    for (int i = 0; i < 4; ++i)
        h.observe(5.0);
    // Rank 2 of 4 in the [0, 10] bucket: linear interpolation
    // (Prometheus histogram_quantile semantics) gives 5.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
}

TEST_F(MetricsTest, PercentileClampsOverflowToLastBound)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.pct_over", {10.0});
    h.observe(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
}

TEST_F(MetricsTest, PercentileOfEmptyHistogramIsZero)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.pct_empty", {10.0});
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    // Out-of-range p is clamped, not fatal.
    h.observe(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST_F(MetricsTest, HelpBindsAtCreationOnly)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("help.count", Volatility::Stable,
                "Things counted.");
    EXPECT_EQ(reg.helpFor("help.count"), "Things counted.");
    // Later calls return the existing instrument; their help (or
    // lack of it) never rebinds the description.
    reg.counter("help.count");
    reg.counter("help.count", Volatility::Stable, "Rewritten.");
    EXPECT_EQ(reg.helpFor("help.count"), "Things counted.");
    EXPECT_EQ(reg.helpFor("no.such.metric"), "");
}

TEST_F(MetricsTest, SnapshotCarriesHelpForEveryKind)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("help.a", Volatility::Stable, "A counter.");
    reg.gauge("help.b", Volatility::Stable, "A gauge.");
    reg.histogram("help.c", {1.0}, Volatility::Stable,
                  "A histogram.");
    reg.counter("help.none");
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 4u);
    EXPECT_EQ(snap.samples[0].help, "A counter.");
    EXPECT_EQ(snap.samples[1].help, "A gauge.");
    EXPECT_EQ(snap.samples[2].help, "A histogram.");
    EXPECT_EQ(snap.samples[3].help, "");
}

TEST_F(MetricsTest, ResetDropsInstruments)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("gone.count").add(9);
    reg.reset();
    EXPECT_TRUE(reg.snapshot(true).samples.empty());
    EXPECT_EQ(reg.counter("gone.count").value(), 0u);
}

} // namespace
} // namespace mbs
