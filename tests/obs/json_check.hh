/**
 * @file
 * A minimal recursive-descent JSON parser used by the observability
 * tests to assert that exported documents are well-formed. Parses the
 * full JSON grammar but builds no DOM: it only validates.
 */

#ifndef MBS_TESTS_OBS_JSON_CHECK_HH
#define MBS_TESTS_OBS_JSON_CHECK_HH

#include <cctype>
#include <cstring>
#include <string>

namespace mbs {
namespace test {

class JsonChecker
{
  public:
    /** @return true when @p text is exactly one valid JSON value. */
    static bool valid(const std::string &text)
    {
        JsonChecker c(text);
        return c.value() && (c.skipWs(), c.pos == text.size());
    }

  private:
    explicit JsonChecker(const std::string &t) : text(t) {}

    const std::string &text;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool string()
    {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    return false;
                const char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
                return false; // raw control character
            }
            ++pos;
        }
        if (pos >= text.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return false;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return false;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return false;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        return pos > start;
    }

    bool object()
    {
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return false;
            ++pos;
            if (!value())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= text.size() || text[pos] != '}')
            return false;
        ++pos;
        return true;
    }

    bool array()
    {
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= text.size() || text[pos] != ']')
            return false;
        ++pos;
        return true;
    }

    bool value()
    {
        skipWs();
        if (pos >= text.size())
            return false;
        switch (text[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }
};

} // namespace test
} // namespace mbs

#endif // MBS_TESTS_OBS_JSON_CHECK_HH
