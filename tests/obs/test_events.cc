/**
 * @file
 * Tests for the structured event log: envelope fields, common-field
 * injection, JSONL validity of every exported line, partial and
 * overflow markers, and the disabled-is-free contract.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "obs/events.hh"

#include "json_check.hh"

namespace mbs {
namespace {

using obs::EventLog;

class EventLogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        EventLog::instance().clear();
        EventLog::instance().setEnabled(true);
    }

    void TearDown() override
    {
        EventLog::instance().setEnabled(false);
        EventLog::instance().clear();
    }
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST_F(EventLogTest, DisabledEmitsNothing)
{
    auto &log = EventLog::instance();
    log.setEnabled(false);
    log.emit("x.y");
    EXPECT_TRUE(log.events().empty());
}

TEST_F(EventLogTest, EventsCarryEnvelopeAndFields)
{
    auto &log = EventLog::instance();
    log.emit("store.hit", {{"entry", "abc.profile"}});
    const auto events = log.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, "store.hit");
    EXPECT_GT(events[0].tsMicros, 0u);
    EXPECT_GT(events[0].tid, 0);
    ASSERT_EQ(events[0].fields.size(), 1u);
    EXPECT_EQ(events[0].fields[0].first, "entry");
    EXPECT_EQ(events[0].fields[0].second, "abc.profile");
}

TEST_F(EventLogTest, EveryExportedLineIsValidJson)
{
    auto &log = EventLog::instance();
    log.setCommonField("run_id", "deadbeef");
    log.emit("sim.run.start", {{"phases", "6"}});
    log.emit("hostile \"type\"\n",
             {{"key with \\", "value with \"quotes\"\n and newline"}});
    log.emit("sim.run.end");

    const auto all = lines(log.exportJsonl());
    ASSERT_EQ(all.size(), 3u);
    for (const auto &line : all) {
        EXPECT_TRUE(test::JsonChecker::valid(line)) << line;
        const JsonValue v = parseJson(line);
        EXPECT_TRUE(v.at("ts_us").isNumber());
        EXPECT_TRUE(v.at("tid").isNumber());
        EXPECT_TRUE(v.at("type").isString());
        EXPECT_EQ(v.at("run_id").str, "deadbeef");
    }
    EXPECT_EQ(parseJson(all[1]).at("type").str, "hostile \"type\"\n");
}

TEST_F(EventLogTest, CommonFieldsRecordedWhileDisabled)
{
    auto &log = EventLog::instance();
    log.setEnabled(false);
    log.setCommonField("soc", "snapdragon888");
    log.setEnabled(true);
    log.emit("sim.run.start");
    const JsonValue v = parseJson(lines(log.exportJsonl())[0]);
    EXPECT_EQ(v.at("soc").str, "snapdragon888");
}

TEST_F(EventLogTest, PartialReasonPrependsMarkerEvent)
{
    auto &log = EventLog::instance();
    log.emit("sim.run.start");
    const auto all = lines(log.exportJsonl("terminate called"));
    ASSERT_EQ(all.size(), 2u);
    const JsonValue first = parseJson(all[0]);
    EXPECT_EQ(first.at("type").str, "log.partial");
    EXPECT_EQ(first.at("reason").str, "terminate called");
    EXPECT_EQ(parseJson(all[1]).at("type").str, "sim.run.start");
}

TEST_F(EventLogTest, ClearDropsEventsAndCommonFields)
{
    auto &log = EventLog::instance();
    log.setCommonField("k", "v");
    log.emit("x");
    log.clear();
    EXPECT_TRUE(log.events().empty());
    EXPECT_TRUE(log.commonFields().empty());
    EXPECT_EQ(log.dropped(), 0u);
}

TEST_F(EventLogTest, WriteJsonlMatchesExport)
{
    auto &log = EventLog::instance();
    log.emit("a.b", {{"k", "v"}});
    std::ostringstream out;
    log.writeJsonl(out);
    EXPECT_EQ(out.str(), log.exportJsonl());
}

} // namespace
} // namespace mbs
