/**
 * @file
 * Executor unit tests: job resolution, inline serial mode, the
 * deterministic merge contract of parallelFor, future-based
 * submission, exception propagation, injected-fault task
 * resubmission and the exec.* instruments.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exec/executor.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace {

TEST(Executor, ResolvesJobCounts)
{
    EXPECT_EQ(Executor::resolveJobs(1), 1);
    EXPECT_EQ(Executor::resolveJobs(7), 7);
    EXPECT_GE(Executor::resolveJobs(0), 1); // all cores, at least one
    EXPECT_THROW(Executor::resolveJobs(-2), FatalError);
}

TEST(Executor, SingleJobRunsInline)
{
    Executor exec(1);
    EXPECT_EQ(exec.jobs(), 1);
    // With one job the task executes during submit, so side effects
    // are visible before get().
    int ran = 0;
    auto future = exec.submit([&ran]() { ran = 42; });
    EXPECT_EQ(ran, 42);
    future.get();
}

TEST(Executor, SubmitReturnsValues)
{
    Executor exec(4);
    auto a = exec.submit([]() { return 7; });
    auto b = exec.submit([]() { return std::string("hi"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "hi");
}

TEST(Executor, ParallelForCoversEveryIndexOnce)
{
    for (int jobs : {1, 4}) {
        Executor exec(jobs);
        std::vector<std::atomic<int>> hits(100);
        exec.parallelFor(hits.size(), [&hits](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Executor, MergeBySubmissionIndexIsDeterministic)
{
    // The same index-keyed computation must produce the same slot
    // vector for any job count.
    const auto compute = [](int jobs) {
        Executor exec(jobs);
        std::vector<double> slots(64, 0.0);
        exec.parallelFor(slots.size(), [&slots](std::size_t i) {
            slots[i] = double(i) * 1.5 + 1.0;
        });
        return slots;
    };
    const auto serial = compute(1);
    EXPECT_EQ(serial, compute(4));
    EXPECT_EQ(serial, compute(13));
}

TEST(Executor, ParallelForPropagatesExceptions)
{
    Executor exec(4);
    std::atomic<int> completed{0};
    try {
        exec.parallelFor(32, [&completed](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            completed.fetch_add(1);
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 7 failed");
    }
    // Every non-throwing task still ran to completion.
    EXPECT_EQ(completed.load(), 31);
}

TEST(Executor, SubmitFutureCarriesException)
{
    Executor exec(2);
    auto future = exec.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Executor, CountsTasksAndDrainsQueueDepth)
{
    auto &registry = obs::MetricsRegistry::instance();
    const std::uint64_t before =
        registry.counter("exec.tasks").value();
    {
        Executor exec(4);
        exec.parallelFor(25, [](std::size_t) {});
    }
    EXPECT_EQ(registry.counter("exec.tasks").value(), before + 25);
    // After the pool drains, the queue-depth gauge always reads 0 —
    // this is what keeps metrics snapshots independent of scheduling.
    EXPECT_EQ(registry.gauge("exec.queue_depth").value(), 0.0);
}

TEST(Executor, ManyMoreTasksThanWorkers)
{
    Executor exec(3);
    std::atomic<long> sum{0};
    exec.parallelFor(1000, [&sum](std::size_t i) {
        sum.fetch_add(long(i));
    });
    EXPECT_EQ(sum.load(), 999L * 1000L / 2L);
}

std::uint64_t
faultCounter(const std::string &name)
{
    return obs::MetricsRegistry::instance().counter(name).value();
}

TEST(Executor, ResubmitsInjectedTaskDeathsWithIdenticalResults)
{
    // The first three submissions are killed; resubmission must
    // restore every slot, so the merged result stays bit-identical
    // to a fault-free run for any job count.
    for (int jobs : {1, 4}) {
        const std::uint64_t injected = faultCounter("fault.injected");
        const std::uint64_t recovered =
            faultCounter("fault.recovered");
        fault::ScopedPlan guard(
            fault::FaultPlan::parse("exec.task:eio@3", 17));
        Executor exec(jobs);
        std::vector<double> slots(32, 0.0);
        exec.parallelFor(slots.size(), [&slots](std::size_t i) {
            slots[i] = double(i) * 2.0 + 0.5;
        });
        for (std::size_t i = 0; i < slots.size(); ++i)
            EXPECT_EQ(slots[i], double(i) * 2.0 + 0.5)
                << "jobs=" << jobs << " slot " << i;
        EXPECT_EQ(faultCounter("fault.injected"), injected + 3)
            << "jobs=" << jobs;
        EXPECT_EQ(faultCounter("fault.recovered"), recovered + 3)
            << "jobs=" << jobs;
    }
}

TEST(Executor, ExhaustedResubmissionBudgetDegradesToFatal)
{
    // Rate 1.0 kills every submission and every resubmission: the
    // budget runs out and parallelFor reports the task as lost.
    const std::uint64_t degraded = faultCounter("fault.degraded");
    fault::ScopedPlan guard(
        fault::FaultPlan::parse("exec.task:eio@1.0", 17));
    Executor exec(2);
    std::atomic<int> completed{0};
    try {
        exec.parallelFor(8, [&completed](std::size_t) {
            completed.fetch_add(1);
        });
        FAIL() << "expected the exhausted budget to propagate";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("resubmission budget exhausted"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_GE(faultCounter("fault.degraded"), degraded + 1);
    EXPECT_EQ(completed.load(), 0);
}

TEST(Executor, RealTaskExceptionsAreNotRetried)
{
    // A genuine failure inside a task must propagate as-is even with
    // a plan armed — resubmission is for injected deaths only.
    fault::ScopedPlan guard(
        fault::FaultPlan::parse("store.read:eio@1", 17));
    Executor exec(2);
    std::atomic<int> attempts{0};
    try {
        exec.parallelFor(4, [&attempts](std::size_t i) {
            if (i == 2) {
                attempts.fetch_add(1);
                throw std::runtime_error("task 2 failed for real");
            }
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 2 failed for real");
    }
    EXPECT_EQ(attempts.load(), 1);
}

} // namespace
} // namespace mbs
