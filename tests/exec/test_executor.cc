/**
 * @file
 * Executor unit tests: job resolution, inline serial mode, the
 * deterministic merge contract of parallelFor, future-based
 * submission, exception propagation and the exec.* instruments.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exec/executor.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace {

TEST(Executor, ResolvesJobCounts)
{
    EXPECT_EQ(Executor::resolveJobs(1), 1);
    EXPECT_EQ(Executor::resolveJobs(7), 7);
    EXPECT_GE(Executor::resolveJobs(0), 1); // all cores, at least one
    EXPECT_THROW(Executor::resolveJobs(-2), FatalError);
}

TEST(Executor, SingleJobRunsInline)
{
    Executor exec(1);
    EXPECT_EQ(exec.jobs(), 1);
    // With one job the task executes during submit, so side effects
    // are visible before get().
    int ran = 0;
    auto future = exec.submit([&ran]() { ran = 42; });
    EXPECT_EQ(ran, 42);
    future.get();
}

TEST(Executor, SubmitReturnsValues)
{
    Executor exec(4);
    auto a = exec.submit([]() { return 7; });
    auto b = exec.submit([]() { return std::string("hi"); });
    EXPECT_EQ(a.get(), 7);
    EXPECT_EQ(b.get(), "hi");
}

TEST(Executor, ParallelForCoversEveryIndexOnce)
{
    for (int jobs : {1, 4}) {
        Executor exec(jobs);
        std::vector<std::atomic<int>> hits(100);
        exec.parallelFor(hits.size(), [&hits](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(Executor, MergeBySubmissionIndexIsDeterministic)
{
    // The same index-keyed computation must produce the same slot
    // vector for any job count.
    const auto compute = [](int jobs) {
        Executor exec(jobs);
        std::vector<double> slots(64, 0.0);
        exec.parallelFor(slots.size(), [&slots](std::size_t i) {
            slots[i] = double(i) * 1.5 + 1.0;
        });
        return slots;
    };
    const auto serial = compute(1);
    EXPECT_EQ(serial, compute(4));
    EXPECT_EQ(serial, compute(13));
}

TEST(Executor, ParallelForPropagatesExceptions)
{
    Executor exec(4);
    std::atomic<int> completed{0};
    try {
        exec.parallelFor(32, [&completed](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
            completed.fetch_add(1);
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 7 failed");
    }
    // Every non-throwing task still ran to completion.
    EXPECT_EQ(completed.load(), 31);
}

TEST(Executor, SubmitFutureCarriesException)
{
    Executor exec(2);
    auto future = exec.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Executor, CountsTasksAndDrainsQueueDepth)
{
    auto &registry = obs::MetricsRegistry::instance();
    const std::uint64_t before =
        registry.counter("exec.tasks").value();
    {
        Executor exec(4);
        exec.parallelFor(25, [](std::size_t) {});
    }
    EXPECT_EQ(registry.counter("exec.tasks").value(), before + 25);
    // After the pool drains, the queue-depth gauge always reads 0 —
    // this is what keeps metrics snapshots independent of scheduling.
    EXPECT_EQ(registry.gauge("exec.queue_depth").value(), 0.0);
}

TEST(Executor, ManyMoreTasksThanWorkers)
{
    Executor exec(3);
    std::atomic<long> sum{0};
    exec.parallelFor(1000, [&sum](std::size_t i) {
        sum.fetch_add(long(i));
    });
    EXPECT_EQ(sum.load(), 999L * 1000L / 2L);
}

} // namespace
} // namespace mbs
