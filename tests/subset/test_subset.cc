/**
 * @file
 * Tests for subset construction and the Yi-et-al. representativeness
 * metric.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "subset/subset.hh"

namespace mbs {
namespace {

std::vector<SubsetCandidate>
paperishCandidates()
{
    // A miniature version of the paper's situation: 3 clusters, one
    // whole-suite group, one AIE champion, one all-cluster stressor.
    std::vector<SubsetCandidate> out;
    auto add = [&out](const char *name, double rt, int cluster,
                      double aie, double gpu, bool all_cpu,
                      bool whole) {
        SubsetCandidate c;
        c.name = name;
        c.suite = "S";
        c.runtimeSeconds = rt;
        c.cluster = cluster;
        c.avgAieLoad = aie;
        c.avgGpuLoad = gpu;
        c.stressesAllCpuClusters = all_cpu;
        c.requiresWholeSuite = whole;
        out.push_back(c);
    };
    add("SegA", 100, 0, 0.1, 0.0, true, true);
    add("SegB", 150, 1, 0.0, 0.7, false, true);
    add("CpuShort", 120, 0, 0.0, 0.0, true, false);
    add("CpuLong", 400, 0, 0.0, 0.1, true, false);
    add("GpuQuick", 50, 1, 0.0, 0.9, false, false);
    add("GpuBig", 300, 1, 0.0, 0.95, false, false);
    add("AieChamp", 80, 2, 0.6, 0.3, false, false);
    add("Other", 60, 2, 0.2, 0.2, false, false);
    return out;
}

TEST(SubsetBuilder, FullRuntimeSums)
{
    const SubsetBuilder b(paperishCandidates());
    EXPECT_DOUBLE_EQ(b.fullRuntimeSeconds(), 1260.0);
}

TEST(SubsetBuilder, NaivePicksShortestExecutablePerCluster)
{
    const SubsetBuilder b(paperishCandidates());
    const auto result = b.naive();
    ASSERT_EQ(result.members.size(), 3u);
    // Cluster 0: SegA (100 s) is whole-suite-only -> CpuShort.
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "CpuShort"), result.members.end());
    // Cluster 1: SegB excluded -> GpuQuick.
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "GpuQuick"), result.members.end());
    // Cluster 2: Other (60 s) beats AieChamp (80 s).
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "Other"), result.members.end());
    EXPECT_DOUBLE_EQ(result.runtimeSeconds, 230.0);
    EXPECT_NEAR(result.runtimeReduction, 1.0 - 230.0 / 1260.0, 1e-12);
}

TEST(SubsetBuilder, SelectStartsWithWholeSuite)
{
    const SubsetBuilder b(paperishCandidates());
    const auto result = b.select();
    EXPECT_EQ(result.members[0], "SegA");
    EXPECT_EQ(result.members[1], "SegB");
}

TEST(SubsetBuilder, SelectAddsAieChampion)
{
    const SubsetBuilder b(paperishCandidates());
    const auto result = b.select();
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "AieChamp"), result.members.end());
}

TEST(SubsetBuilder, SelectAddsShortestAllClusterBenchmark)
{
    const SubsetBuilder b(paperishCandidates());
    const auto result = b.select();
    // CpuShort (120 s) beats CpuLong (400 s); SegA already included.
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "CpuShort"), result.members.end());
    EXPECT_EQ(std::find(result.members.begin(), result.members.end(),
                        "CpuLong"), result.members.end());
}

TEST(SubsetBuilder, SelectPlusGpuAddsHighestGpuLoad)
{
    const SubsetBuilder b(paperishCandidates());
    const auto result = b.selectPlusGpu();
    // GpuBig (0.95) is the highest-GPU-load benchmark not selected.
    EXPECT_NE(std::find(result.members.begin(), result.members.end(),
                        "GpuBig"), result.members.end());
    EXPECT_EQ(result.members.size(), b.select().members.size() + 1);
}

TEST(SubsetBuilder, RejectsBadInput)
{
    EXPECT_THROW(SubsetBuilder({}), FatalError);
    auto dup = paperishCandidates();
    dup.push_back(dup.front());
    EXPECT_THROW(SubsetBuilder{dup}, FatalError);
    auto zero = paperishCandidates();
    zero[0].runtimeSeconds = 0.0;
    EXPECT_THROW(SubsetBuilder{zero}, FatalError);
}

FeatureMatrix
lineMatrix()
{
    // Four points on a line: distances are easy to verify by hand.
    FeatureMatrix m({"x"});
    m.addRow("p0", {0.0});
    m.addRow("p1", {1.0});
    m.addRow("p2", {2.0});
    m.addRow("p3", {10.0});
    return m;
}

TEST(YiDistance, HandComputedExample)
{
    const auto m = lineMatrix();
    // Subset {p0}: distances 1 + 2 + 10 = 13.
    EXPECT_DOUBLE_EQ(totalMinEuclideanDistance(m, {"p0"}), 13.0);
    // Subset {p0, p3}: p1 -> 1, p2 -> 2 => 3.
    EXPECT_DOUBLE_EQ(totalMinEuclideanDistance(m, {"p0", "p3"}), 3.0);
}

TEST(YiDistance, FullSubsetIsZero)
{
    const auto m = lineMatrix();
    EXPECT_DOUBLE_EQ(
        totalMinEuclideanDistance(m, {"p0", "p1", "p2", "p3"}), 0.0);
}

TEST(YiDistance, EmptySubsetIsFatal)
{
    EXPECT_THROW(totalMinEuclideanDistance(lineMatrix(), {}),
                 FatalError);
}

TEST(YiDistance, UnknownMemberIsFatal)
{
    EXPECT_THROW(totalMinEuclideanDistance(lineMatrix(), {"nope"}),
                 FatalError);
}

TEST(YiDistance, AddingMembersNeverIncreasesDistance)
{
    const auto m = lineMatrix();
    const auto curve = incrementalDistanceCurve(m, {"p3", "p0"});
    ASSERT_EQ(curve.size(), 4u);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
    EXPECT_DOUBLE_EQ(curve.back(), 0.0);
}

TEST(YiDistance, CurveStartsWithFirstMemberOnly)
{
    const auto m = lineMatrix();
    const auto curve = incrementalDistanceCurve(m, {"p0", "p3"});
    EXPECT_DOUBLE_EQ(curve[0],
                     totalMinEuclideanDistance(m, {"p0"}));
    EXPECT_DOUBLE_EQ(curve[1],
                     totalMinEuclideanDistance(m, {"p0", "p3"}));
}

TEST(Percentile, GoodSubsetScoresLowPercentile)
{
    // p0 and p3 cover the line well; most random pairs do worse.
    const auto m = lineMatrix();
    const double pct =
        subsetDistancePercentile(m, {"p0", "p3"}, 500, 3);
    EXPECT_LT(pct, 50.0);
}

TEST(Percentile, FullSetIsZeroPercentile)
{
    const auto m = lineMatrix();
    const double pct = subsetDistancePercentile(
        m, {"p0", "p1", "p2", "p3"}, 100, 3);
    EXPECT_DOUBLE_EQ(pct, 0.0);
}

TEST(Percentile, InvalidArgumentsAreFatal)
{
    const auto m = lineMatrix();
    EXPECT_THROW(subsetDistancePercentile(m, {"p0"}, 0), FatalError);
    EXPECT_THROW(subsetDistancePercentile(
                     m, {"p0", "p1", "p2", "p3", "p0"}, 10),
                 FatalError);
}

} // namespace
} // namespace mbs
