/**
 * @file
 * Property tests for the spec compiler: a seeded generator emits
 * random valid documents that must compile, survive an export ->
 * re-parse -> compile round trip digest-identically, and whose
 * mutated (malformed) variants must fail with a positioned
 * diagnostic instead of crashing. Runs under the ASan/UBSan CI lane
 * like every other unit test, so out-of-bounds or UB in the parser
 * or compiler surfaces here first.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "spec/spec.hh"

namespace mbs {
namespace {

// Every kernel that compiles with no mandatory keywords (videoCodec
// needs 'codec', so it stays out of the random pool).
const char *const kKernels[] = {
    "gemm",         "fft",           "crypto",     "integerOps",
    "floatOps",     "imageDecode",   "compression", "memoryStream",
    "storageIo",    "database",      "webBrowse",  "photoEdit",
    "renderScene",  "gpuCompute",    "physics",
    "nnInference",  "uiScroll",      "vectorMath", "dataProcessing",
    "dataSecurity", "loadingBurst",  "menuIdle",
};
const char *const kTargets[] = {"cpu",     "gpu", "memory",
                                "storage", "ai",  "everyday"};

/** Deterministic generator of schema-valid spec documents. */
class SpecGenerator
{
  public:
    explicit SpecGenerator(std::uint64_t seed) : rng(seed) {}

    std::string
    document()
    {
        std::string out = "{\"spec_version\": 1";
        const bool withParams = chance(2);
        if (withParams) {
            out += ", \"params\": {\"hot\": {\"threads\": " +
                strformat("%d", 1 + int(pick(8))) +
                ", \"intensity\": 0.9}}";
        }
        const bool withTemplate = chance(2);
        if (withTemplate) {
            out += ", \"templates\": {\"warm\": {\"phases\": [" +
                phase(withParams) + "]}}";
        }
        out += ", \"suites\": [";
        const std::size_t suiteCount = 1 + pick(3);
        for (std::size_t s = 0; s < suiteCount; ++s) {
            if (s != 0)
                out += ", ";
            out += suite(s, withParams, withTemplate);
        }
        return out + "]}";
    }

  private:
    bool chance(std::uint64_t oneIn) { return pick(oneIn) == 0; }
    std::uint64_t pick(std::uint64_t n) { return rng.next() % n; }

    std::string
    phase(bool withParams)
    {
        std::string p = strformat(
            "{\"name\": \"ph%llu\", \"kernel\": \"%s\", "
            "\"duration\": %llu, \"instructions\": %llu",
            (unsigned long long)pick(1000),
            kKernels[pick(sizeof(kKernels) / sizeof(kKernels[0]))],
            (unsigned long long)(1 + pick(30)),
            (unsigned long long)pick(50));
        if (withParams && chance(3))
            p += ", \"params\": \"hot\"";
        if (chance(3)) {
            p += strformat(", \"args\": {\"intensity\": 0.%llu}",
                           (unsigned long long)(1 + pick(9)));
        }
        return p + "}";
    }

    std::string
    entry(bool withParams, bool withTemplate)
    {
        if (withTemplate && chance(4)) {
            return strformat(
                "{\"template\": \"warm\", \"repeat\": %llu}",
                (unsigned long long)(1 + pick(3)));
        }
        if (chance(5)) {
            std::string mix = strformat(
                "{\"mix\": {\"seed\": %llu, \"count\": %llu, "
                "\"choices\": [",
                (unsigned long long)pick(1u << 30),
                (unsigned long long)(1 + pick(8)));
            const std::size_t choices = 1 + pick(3);
            for (std::size_t c = 0; c < choices; ++c) {
                if (c != 0)
                    mix += ", ";
                mix += phase(withParams);
            }
            return mix + "]}}";
        }
        if (chance(6)) {
            return strformat(
                "{\"name\": \"raw%llu\", \"duration\": %llu, "
                "\"instructions\": %llu, \"demand\": {\"threads\": "
                "[{\"count\": %llu, \"intensity\": 0.8}], "
                "\"cpu\": {\"base_ipc\": 2.5}}}",
                (unsigned long long)pick(1000),
                (unsigned long long)(1 + pick(20)),
                (unsigned long long)pick(40),
                (unsigned long long)(1 + pick(6)));
        }
        return phase(withParams);
    }

    std::string
    suite(std::size_t index, bool withParams, bool withTemplate)
    {
        std::string out = strformat(
            "{\"name\": \"suite %llu\", \"publisher\": \"fuzz\", "
            "\"benchmarks\": [",
            (unsigned long long)index);
        const std::size_t benchCount = 1 + pick(4);
        for (std::size_t b = 0; b < benchCount; ++b) {
            if (b != 0)
                out += ", ";
            out += strformat(
                "{\"name\": \"s%llu b%llu\", \"target\": \"%s\", "
                "\"phases\": [",
                (unsigned long long)index, (unsigned long long)b,
                kTargets[pick(sizeof(kTargets) /
                              sizeof(kTargets[0]))]);
            const std::size_t phaseCount = 1 + pick(4);
            for (std::size_t p = 0; p < phaseCount; ++p) {
                if (p != 0)
                    out += ", ";
                out += entry(withParams, withTemplate);
            }
            out += "]}";
        }
        return out + "]}";
    }

    SplitMix64 rng;
};

TEST(SpecFuzz, GeneratedSpecsRoundTripDigestStable)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const std::string doc = SpecGenerator(seed).document();
        spec::WorkloadSpec first;
        ASSERT_NO_THROW(first = spec::compileSpecString(
                            doc, "fuzz.json"))
            << "seed " << seed << "\n" << doc;
        // Compilation is deterministic...
        EXPECT_EQ(spec::compileSpecString(doc, "fuzz.json").digest,
                  first.digest)
            << "seed " << seed;
        // ...and the export round trip preserves every digest.
        const spec::WorkloadSpec again = spec::compileSpecString(
            spec::exportSuitesJson(first.suites), "<export>");
        EXPECT_EQ(again.digest, first.digest) << "seed " << seed;
    }
}

/**
 * Break a valid document in a targeted way and check the compiler
 * rejects it with a positioned FatalError rather than crashing or
 * accepting it.
 */
TEST(SpecFuzz, MutatedSpecsFailWithPositionedErrors)
{
    struct Mutation
    {
        const char *find;
        const char *replace;
    };
    const Mutation mutations[] = {
        {"\"duration\": ", "\"duration\": -"},      // negative
        {"\"kernel\": \"", "\"kernel\": \"bogus-"}, // unknown kernel
        {"\"duration\": ", "\"durance\": "},        // missing + typo
        {"\"target\": \"", "\"target\": \"x"},      // unknown target
        {"\"spec_version\": 1", "\"spec_version\": 99"},
        {"\"instructions\": ", "\"instructions\": \"many"},
    };
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const std::string doc = SpecGenerator(seed).document();
        for (const Mutation &m : mutations) {
            std::string broken = doc;
            const std::size_t at = broken.find(m.find);
            ASSERT_NE(at, std::string::npos) << m.find;
            broken.replace(at, std::string(m.find).size(),
                           m.replace);
            try {
                spec::compileSpecString(broken, "mut.json");
                FAIL() << "mutation accepted: " << m.replace;
            } catch (const FatalError &e) {
                EXPECT_EQ(std::string(e.what()).rfind("mut.json:",
                                                      0),
                          0u)
                    << e.what();
            }
        }
    }
}

/** Truncations of a valid document must all fail cleanly too. */
TEST(SpecFuzz, TruncationsNeverCrash)
{
    const std::string doc = SpecGenerator(3).document();
    for (std::size_t len = 0; len < doc.size();
         len += 1 + len / 8) {
        try {
            spec::compileSpecString(doc.substr(0, len), "cut.json");
        } catch (const FatalError &) {
            // Expected: positioned parse or schema error.
        }
    }
}

} // namespace
} // namespace mbs
