/**
 * @file
 * Golden round-trip: exporting suites as a spec document and
 * compiling that document back must reproduce the exact digests.
 * This is the property `mobilebench spec export` relies on.
 */

#include <gtest/gtest.h>

#include "spec/spec.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

TEST(SpecExport, BuiltinRegistryRoundTripsDigestIdentical)
{
    const WorkloadRegistry builtin;
    const std::string text = spec::exportRegistryJson(builtin);
    const spec::WorkloadSpec ws =
        spec::compileSpecString(text, "<export>");

    ASSERT_EQ(ws.suites.size(), builtin.suites().size());
    EXPECT_EQ(ws.unitCount(), builtin.units().size());
    for (std::size_t i = 0; i < ws.suites.size(); ++i) {
        const Suite &got = ws.suites[i];
        const Suite &want = builtin.suites()[i];
        EXPECT_EQ(got.name, want.name);
        EXPECT_EQ(got.publisher, want.publisher);
        EXPECT_EQ(got.runsAsWhole, want.runsAsWhole);
        EXPECT_EQ(got.digest(), want.digest()) << want.name;
    }
}

TEST(SpecExport, ExportIsIdempotent)
{
    const WorkloadRegistry builtin;
    const std::string once = spec::exportRegistryJson(builtin);
    const spec::WorkloadSpec ws =
        spec::compileSpecString(once, "<export>");
    const std::string twice = spec::exportSuitesJson(ws.suites);
    EXPECT_EQ(once, twice);
}

TEST(SpecExport, CompiledSpecExportsAndRecompiles)
{
    const std::string doc =
        "{\"spec_version\": 1, \"suites\": [{\"name\": \"S\", "
        "\"whole_suite\": true, \"benchmarks\": [{\"name\": \"B\", "
        "\"target\": \"gpu\", \"executable\": false, \"phases\": ["
        "{\"name\": \"p\", \"kernel\": \"renderScene\", "
        "\"duration\": 7, \"instructions\": 3, "
        "\"args\": {\"gpu_rate\": 0.7, \"api\": \"vulkan\", "
        "\"offscreen\": true}}]}]}]}";
    const auto first = spec::compileSpecString(doc, "t.json");
    const auto second = spec::compileSpecString(
        spec::exportSuitesJson(first.suites), "<export>");
    ASSERT_EQ(second.suites.size(), 1u);
    EXPECT_EQ(second.digest, first.digest);
    // Flattening preserves the execution constraints too.
    EXPECT_TRUE(second.suites[0].runsAsWhole);
    EXPECT_FALSE(
        second.suites[0].benchmarks[0].individuallyExecutable());
}

} // namespace
} // namespace mbs
