/**
 * @file
 * Tests for the workload-spec compiler: schema validation, the
 * params/template/mix composition constructs, determinism, and
 * positioned diagnostics (`<file>:<line>:<col>: message`).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "common/strings.hh"
#include "spec/spec.hh"
#include "workload/loader.hh"

namespace mbs {
namespace {

/** Compile @p text and return the diagnostic ("" on success). */
std::string
diagnose(const std::string &text)
{
    try {
        spec::compileSpecString(text, "t.json");
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

/** A minimal valid document around one benchmark's phase list. */
std::string
wrapPhases(const std::string &phases,
           const std::string &extraTop = "")
{
    return std::string("{\"spec_version\": 1, ") + extraTop +
        "\"suites\": [{\"name\": \"S\", \"benchmarks\": "
        "[{\"name\": \"B\", \"target\": \"cpu\", \"phases\": [" +
        phases + "]}]}]}";
}

const char *kGemmPhase =
    "{\"name\": \"p\", \"kernel\": \"gemm\", \"duration\": 5, "
    "\"instructions\": 10}";

TEST(SpecCompile, MinimalKernelSpec)
{
    const auto ws =
        spec::compileSpecString(wrapPhases(kGemmPhase), "t.json");
    EXPECT_EQ(ws.version, spec::specSchemaVersion);
    EXPECT_EQ(ws.source, "t.json");
    ASSERT_EQ(ws.suites.size(), 1u);
    const Suite &s = ws.suites[0];
    EXPECT_EQ(s.name, "S");
    EXPECT_FALSE(s.runsAsWhole);
    ASSERT_EQ(s.benchmarks.size(), 1u);
    const Benchmark &b = s.benchmarks[0];
    EXPECT_EQ(b.name(), "B");
    EXPECT_EQ(b.target(), HardwareTarget::Cpu);
    EXPECT_TRUE(b.individuallyExecutable());
    ASSERT_EQ(b.phases().size(), 1u);
    const Phase &p = b.phases()[0];
    EXPECT_EQ(p.name, "p");
    EXPECT_EQ(p.kernel, "gemm");
    EXPECT_DOUBLE_EQ(p.durationSeconds, 5.0);
    EXPECT_DOUBLE_EQ(p.demand.cpu.instructionsBillions, 10.0);
    // The default-argument gemm demand, exactly as the text loader
    // builds it.
    const PhaseDemand direct = makeKernelDemand("gemm", {});
    EXPECT_DOUBLE_EQ(p.demand.cpu.baseIpc, direct.cpu.baseIpc);
    EXPECT_EQ(p.demand.threads.size(), direct.threads.size());
}

TEST(SpecCompile, KernelArgsOverrideParamSet)
{
    const std::string doc = wrapPhases(
        "{\"name\": \"p\", \"kernel\": \"memoryStream\", "
        "\"duration\": 2, \"instructions\": 1, "
        "\"params\": \"mem\", \"args\": {\"locality\": 0.5}}",
        "\"params\": {\"mem\": {\"working_set_mb\": 64, "
        "\"locality\": 0.1}}, ");
    const auto ws = spec::compileSpecString(doc, "t.json");
    const Phase &p = ws.suites[0].benchmarks[0].phases()[0];
    // working_set_mb comes from the set, locality from the override.
    EXPECT_EQ(p.demand.cpu.workingSetBytes, 64ULL << 20);
    EXPECT_DOUBLE_EQ(p.demand.cpu.locality, 0.5);
}

TEST(SpecCompile, TemplateRepeatSplicesPhases)
{
    const std::string doc = wrapPhases(
        std::string(kGemmPhase) + ", {\"template\": \"t\", "
        "\"repeat\": 3}",
        std::string("\"templates\": {\"t\": {\"phases\": [") +
            kGemmPhase + ", " + kGemmPhase + "]}}, ");
    const auto ws = spec::compileSpecString(doc, "t.json");
    EXPECT_EQ(ws.suites[0].benchmarks[0].phases().size(), 1u + 3 * 2);
}

TEST(SpecCompile, MixIsSeedDeterministic)
{
    const auto mixDoc = [](int seed) {
        return wrapPhases(strformat(
            "{\"mix\": {\"seed\": %d, \"count\": 16, \"choices\": ["
            "{\"name\": \"a\", \"kernel\": \"gemm\", "
            "\"duration\": 1, \"instructions\": 1}, "
            "{\"name\": \"b\", \"kernel\": \"crypto\", "
            "\"duration\": 2, \"instructions\": 1}, "
            "{\"name\": \"c\", \"kernel\": \"fft\", "
            "\"duration\": 3, \"instructions\": 1}]}}",
            seed));
    };
    const auto a1 = spec::compileSpecString(mixDoc(7), "t.json");
    const auto a2 = spec::compileSpecString(mixDoc(7), "t.json");
    const auto b = spec::compileSpecString(mixDoc(8), "t.json");
    EXPECT_EQ(a1.suites[0].benchmarks[0].phases().size(), 16u);
    EXPECT_EQ(a1.digest, a2.digest);
    EXPECT_NE(a1.digest, b.digest);
    // The pick really mixes: not all 16 phases are the same choice.
    const auto &phases = a1.suites[0].benchmarks[0].phases();
    bool varied = false;
    for (const Phase &p : phases)
        varied = varied || p.name != phases[0].name;
    EXPECT_TRUE(varied);
}

TEST(SpecCompile, DigestIgnoresFormatting)
{
    const std::string compact = wrapPhases(kGemmPhase);
    std::string spaced;
    for (char c : compact) {
        spaced += c;
        if (c == ',')
            spaced += "\n   ";
    }
    EXPECT_EQ(spec::compileSpecString(compact, "a.json").digest,
              spec::compileSpecString(spaced, "b.json").digest);
}

TEST(SpecCompile, RawDemandPhase)
{
    const auto ws = spec::compileSpecString(
        wrapPhases("{\"name\": \"p\", \"duration\": 4, "
                   "\"instructions\": 2, \"demand\": {"
                   "\"threads\": [{\"count\": 3, \"intensity\": "
                   "0.5}], "
                   "\"cpu\": {\"base_ipc\": 1.5, "
                   "\"working_set_bytes\": 1048576}, "
                   "\"gpu\": {\"work_rate\": 0.4, \"api\": "
                   "\"vulkan\"}, "
                   "\"storage\": {\"io_rate\": 0.2}}}"),
        "t.json");
    const Phase &p = ws.suites[0].benchmarks[0].phases()[0];
    EXPECT_EQ(p.kernel, "custom");
    ASSERT_EQ(p.demand.threads.size(), 1u);
    EXPECT_EQ(p.demand.threads[0].count, 3);
    EXPECT_DOUBLE_EQ(p.demand.cpu.baseIpc, 1.5);
    EXPECT_EQ(p.demand.cpu.workingSetBytes, 1ULL << 20);
    EXPECT_EQ(p.demand.gpu.api, GraphicsApi::Vulkan);
    EXPECT_DOUBLE_EQ(p.demand.gpu.workRate, 0.4);
    EXPECT_DOUBLE_EQ(p.demand.storage.ioRate, 0.2);
    EXPECT_DOUBLE_EQ(p.demand.cpu.instructionsBillions, 2.0);
}

TEST(SpecCompile, ToRegistryAndKMax)
{
    const auto ws =
        spec::compileSpecString(wrapPhases(kGemmPhase), "t.json");
    const WorkloadRegistry reg = ws.toRegistry();
    EXPECT_EQ(reg.units().size(), 1u);
    EXPECT_TRUE(reg.hasUnit("B"));
    EXPECT_EQ(spec::clampedKMax(1), 1);
    EXPECT_EQ(spec::clampedKMax(6), 6);
    EXPECT_EQ(spec::clampedKMax(18), 10);
    EXPECT_EQ(spec::clampedKMax(1000), 10);
}

TEST(SpecDiagnostics, ErrorsArePositioned)
{
    // The offending node is `-1` at line 1; every diagnostic must
    // lead with "<file>:<line>:<col>:".
    const std::string msg = diagnose(wrapPhases(
        "{\"name\": \"p\", \"kernel\": \"gemm\", \"duration\": -1, "
        "\"instructions\": 1}"));
    EXPECT_EQ(msg.rfind("t.json:1:", 0), 0u) << msg;
    EXPECT_NE(msg.find("duration must be positive"),
              std::string::npos)
        << msg;
}

TEST(SpecDiagnostics, MultiLinePositionsPointAtTheNode)
{
    const std::string doc =
        "{\"spec_version\": 1,\n"
        " \"suites\": [{\"name\": \"S\", \"benchmarks\":\n"
        "  [{\"name\": \"B\", \"target\":\n"
        "    \"warp-drive\",\n"
        "    \"phases\": [" + std::string(kGemmPhase) + "]}]}]}";
    const std::string msg = diagnose(doc);
    EXPECT_EQ(msg.rfind("t.json:4:5:", 0), 0u) << msg;
    EXPECT_NE(msg.find("unknown target 'warp-drive'"),
              std::string::npos)
        << msg;
}

TEST(SpecDiagnostics, RejectionCatalogue)
{
    const struct
    {
        std::string doc;
        const char *needle;
    } cases[] = {
        {"[1]", "must be an object"},
        {"{\"suites\": []}", "missing required key 'spec_version'"},
        {"{\"spec_version\": 2, \"suites\": []}",
         "unsupported spec_version 2"},
        {"{\"spec_version\": 1}", "missing required key 'suites'"},
        {"{\"spec_version\": 1, \"suites\": []}",
         "'suites' must not be empty"},
        {"{\"spec_version\": 1, \"extra\": 1, \"suites\": [1]}",
         "unknown key 'extra'"},
        {wrapPhases(kGemmPhase, "\"params\": [], "),
         "'params' must be an object"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"gemm\", "
                    "\"duration\": 1}"),
         "missing required key 'instructions'"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"gemm\", "
                    "\"duration\": \"long\", \"instructions\": 1}"),
         "'duration' must be a number"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"gemm\", "
                    "\"duration\": 1, \"instructions\": -2}"),
         "instruction budget must be non-negative"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"warpDrive\", "
                    "\"duration\": 1, \"instructions\": 1}"),
         "unknown kernel archetype 'warpDrive'"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"gemm\", "
                    "\"duration\": 1, \"instructions\": 1, "
                    "\"params\": \"nope\"}"),
         "unknown parameter set 'nope'"},
        {wrapPhases("{\"name\": \"p\", \"kernel\": \"gemm\", "
                    "\"duration\": 1, \"instructions\": 1, "
                    "\"frobnicate\": 1}"),
         "unknown key 'frobnicate'"},
        {wrapPhases("{\"template\": \"nope\"}"),
         "unknown template 'nope'"},
        {wrapPhases("{\"template\": \"t\", \"repeat\": 2}",
                    "\"templates\": {\"t\": {\"phases\": "
                    "[{\"template\": \"t\"}]}}, "),
         "template references cannot nest"},
        {wrapPhases("{\"mix\": {\"seed\": 1, \"count\": 2, "
                    "\"choices\": [{\"mix\": {\"seed\": 1, "
                    "\"count\": 1, \"choices\": []}}]}}"),
         "mix entries cannot nest"},
        {wrapPhases("{\"mix\": {\"seed\": -1, \"count\": 2, "
                    "\"choices\": [" + std::string(kGemmPhase) +
                    "]}}"),
         "mix 'seed' must be a non-negative integer"},
        {wrapPhases("{\"mix\": {\"seed\": 1, \"count\": 5000, "
                    "\"choices\": [" + std::string(kGemmPhase) +
                    "]}}"),
         "must be an integer in [1, 1000]"},
        {wrapPhases("{\"name\": \"p\", \"duration\": 1, "
                    "\"instructions\": 1}"),
         "needs one of 'kernel', 'demand', 'template' or 'mix'"},
        {wrapPhases("{\"name\": \"p\", \"duration\": 1, "
                    "\"instructions\": 1, \"demand\": "
                    "{\"gpu\": {\"api\": \"directx\"}}}"),
         "unknown graphics api 'directx'"},
        {wrapPhases("{\"name\": \"p\", \"duration\": 1, "
                    "\"instructions\": 1, \"demand\": "
                    "{\"storage\": {\"read_fraction\": 1.5}}}"),
         "'read_fraction' must be in [0, 1]"},
        {wrapPhases("{\"name\": \"p\", \"duration\": 1, "
                    "\"instructions\": 1, \"demand\": "
                    "{\"memory\": {\"footprint_bytes\": 1.5}}}"),
         "must be a non-negative integer"},
        {wrapPhases(std::string(kGemmPhase) + ", " + kGemmPhase),
         ""}, // duplicate phase names are fine...
        {"{\"spec_version\": 1, \"suites\": ["
         "{\"name\": \"S\", \"benchmarks\": [{\"name\": \"B\", "
         "\"target\": \"cpu\", \"phases\": [" +
             std::string(kGemmPhase) +
             "]}, {\"name\": \"B\", \"target\": \"gpu\", "
             "\"phases\": [" +
             std::string(kGemmPhase) + "]}]}]}",
         "duplicate benchmark name 'B'"}, // ...duplicate units not.
    };
    for (const auto &c : cases) {
        const std::string msg = diagnose(c.doc);
        if (std::string(c.needle).empty()) {
            EXPECT_EQ(msg, "") << c.doc;
            continue;
        }
        EXPECT_NE(msg.find(c.needle), std::string::npos)
            << "doc: " << c.doc << "\ngot: " << msg;
        EXPECT_EQ(msg.rfind("t.json:", 0), 0u) << msg;
    }
}

TEST(SpecDiagnostics, ParseErrorsNameTheFile)
{
    const std::string msg = diagnose("{\"spec_version\": 1,,}");
    EXPECT_EQ(msg.rfind("t.json: ", 0), 0u) << msg;
    EXPECT_NE(msg.find("JSON parse error at line 1"),
              std::string::npos)
        << msg;
}

TEST(SpecDiagnostics, DuplicateUnitsAcrossSuites)
{
    const std::string doc =
        "{\"spec_version\": 1, \"suites\": ["
        "{\"name\": \"S1\", \"benchmarks\": [{\"name\": \"B\", "
        "\"target\": \"cpu\", \"phases\": [" +
        std::string(kGemmPhase) +
        "]}]}, "
        "{\"name\": \"S2\", \"benchmarks\": [{\"name\": \"B\", "
        "\"target\": \"cpu\", \"phases\": [" +
        std::string(kGemmPhase) + "]}]}]}";
    EXPECT_NE(diagnose(doc).find("duplicate benchmark name 'B'"),
              std::string::npos);
}

TEST(SpecFile, UnreadablePathIsFatal)
{
    EXPECT_THROW(spec::compileSpecFile("no/such/spec.json"),
                 FatalError);
}

} // namespace
} // namespace mbs
