/**
 * @file
 * Tests for the region-of-interest extraction extension.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "profiler/session.hh"
#include "roi/roi.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

/** Two-phase synthetic series: low then high. */
std::vector<std::vector<double>>
stepSeries(std::size_t n = 400, std::size_t boundary = 250)
{
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = i < boundary ? 0.1 : 0.9;
        b[i] = i < boundary ? 0.8 : 0.2;
    }
    return {a, b};
}

TEST(RoiSegmentation, FindsStepBoundary)
{
    RoiOptions opts;
    opts.maxSegments = 2;
    const RoiExtractor roi(opts);
    const auto segments = roi.segment(stepSeries());
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].begin, 0u);
    EXPECT_EQ(segments[1].end, 400u);
    // The boundary lands on the step (within block granularity).
    EXPECT_NEAR(double(segments[0].end), 250.0, 50.0);
}

TEST(RoiSegmentation, SegmentsTileTheSeries)
{
    const RoiExtractor roi;
    const auto segments = roi.segment(stepSeries());
    ASSERT_FALSE(segments.empty());
    EXPECT_EQ(segments.front().begin, 0u);
    EXPECT_EQ(segments.back().end, 400u);
    for (std::size_t i = 1; i < segments.size(); ++i)
        EXPECT_EQ(segments[i].begin, segments[i - 1].end);
}

TEST(RoiSegmentation, RespectsMaxSegments)
{
    RoiOptions opts;
    opts.maxSegments = 3;
    const RoiExtractor roi(opts);
    EXPECT_LE(roi.segment(stepSeries()).size(), 3u);
}

TEST(RoiSegmentation, MismatchedLengthsAreFatal)
{
    const RoiExtractor roi;
    EXPECT_THROW(roi.segment({{1.0, 2.0}, {1.0}}), FatalError);
    EXPECT_THROW(roi.segment({}), FatalError);
}

TEST(RoiWindowSelection, ConstantSeriesIsPerfectlyRepresentable)
{
    const RoiExtractor roi;
    const std::vector<std::vector<double>> series = {
        std::vector<double>(300, 0.5),
        std::vector<double>(300, 0.25)};
    const auto window = roi.extractFromSeries(series);
    EXPECT_NEAR(window.representativenessError, 0.0, 1e-12);
    EXPECT_NEAR(window.endFraction - window.startFraction, 0.10,
                0.02);
}

TEST(RoiWindowSelection, PrefersTheMixedRegionOfABimodalRun)
{
    // The overall mean of a half-low/half-high run is matched best
    // by a window straddling the transition.
    const RoiExtractor roi;
    const auto window = roi.extractFromSeries(stepSeries(400, 200));
    const double mid =
        0.5 * (window.startFraction + window.endFraction);
    EXPECT_NEAR(mid, 0.5, 0.1);
}

TEST(RoiWindowSelection, InvalidOptionsAreFatal)
{
    RoiOptions bad;
    bad.maxSegments = 0;
    EXPECT_THROW(RoiExtractor{bad}, FatalError);
    bad.maxSegments = 4;
    bad.targetFraction = 0.0;
    EXPECT_THROW(RoiExtractor{bad}, FatalError);
    bad.targetFraction = 1.5;
    EXPECT_THROW(RoiExtractor{bad}, FatalError);
}

TEST(RoiWindowSelection, FullFractionWindowIsWholeRun)
{
    RoiOptions opts;
    opts.targetFraction = 1.0;
    const RoiExtractor roi(opts);
    const auto window = roi.extractFromSeries(stepSeries());
    EXPECT_DOUBLE_EQ(window.startFraction, 0.0);
    EXPECT_DOUBLE_EQ(window.endFraction, 1.0);
    EXPECT_NEAR(window.representativenessError, 0.0, 1e-12);
}

TEST(RoiOnBenchmarks, TenPercentWindowRepresentsSteadyBenchmarks)
{
    const WorkloadRegistry registry;
    const ProfilerSession session(SocConfig::snapdragon888());
    const RoiExtractor roi;
    // Steady benchmarks are well represented by a 10% window.
    for (const char *name :
         {"Geekbench 6 Compute", "Aitutu", "GFXBench Low"}) {
        const auto p = session.profile(registry.unit(name));
        const auto window = roi.extract(p);
        EXPECT_LT(window.representativenessError, 0.25) << name;
        EXPECT_GE(window.startFraction, 0.0);
        EXPECT_LE(window.endFraction, 1.0);
        EXPECT_LT(window.startFraction, window.endFraction);
    }
}

TEST(RoiOnBenchmarks, BeatsTheWorstWindow)
{
    // The selected window must be no worse than naive choices
    // (start of run, end of run).
    const WorkloadRegistry registry;
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto p =
        session.profile(registry.unit("Geekbench 5 CPU"));
    const RoiExtractor roi;
    const auto best = roi.extract(p);

    // Error of the first-10% window, computed through the same
    // machinery by restricting the slide to position 0 only: just
    // verify monotonicity through a crude recomputation.
    const auto series = std::vector<std::vector<double>>{
        p.series.cpuLoad.values(), p.series.gpuLoad.values(),
        p.series.shadersBusy.values(), p.series.gpuBusBusy.values(),
        p.series.aieLoad.values(), p.series.usedMemory.values()};
    const std::size_t n = series[0].size();
    const std::size_t w = n / 10;
    auto mean_of = [&](std::size_t begin) {
        std::vector<double> mean(series.size(), 0.0);
        for (std::size_t m = 0; m < series.size(); ++m) {
            for (std::size_t i = begin; i < begin + w; ++i)
                mean[m] += series[m][i];
            mean[m] /= double(w);
        }
        return mean;
    };
    std::vector<double> whole(series.size(), 0.0);
    for (std::size_t m = 0; m < series.size(); ++m) {
        for (double v : series[m])
            whole[m] += v;
        whole[m] /= double(n);
    }
    auto err = [&](std::size_t begin) {
        const auto mean = mean_of(begin);
        double diff = 0.0, norm = 0.0;
        for (std::size_t m = 0; m < whole.size(); ++m) {
            diff += (mean[m] - whole[m]) * (mean[m] - whole[m]);
            norm += whole[m] * whole[m];
        }
        return std::sqrt(diff / norm);
    };
    EXPECT_LE(best.representativenessError, err(0) + 1e-9);
    EXPECT_LE(best.representativenessError, err(n - w - 1) + 1e-9);
}

} // namespace
} // namespace mbs
