/**
 * @file
 * Tests for CSV trace export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/strings.hh"
#include "profiler/trace.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

BenchmarkProfile
sampleProfile()
{
    static const WorkloadRegistry registry;
    ProfileOptions opts;
    opts.runs = 1;
    const ProfilerSession session(SocConfig::snapdragon888(), opts);
    return session.profile(registry.unit("3DMark Wild Life"));
}

TEST(TraceCsv, ProfileCsvHasHeaderAndAllRows)
{
    const auto profile = sampleProfile();
    std::ostringstream out;
    writeProfileCsv(out, profile);
    const auto lines = split(trim(out.str()), '\n');
    ASSERT_GT(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              "time_s,cpu_load,gpu_load,shaders_busy,gpu_bus_busy,"
              "aie_load,used_memory,little_load,mid_load,big_load");
    EXPECT_EQ(lines.size() - 1, profile.series.cpuLoad.size());
}

TEST(TraceCsv, ProfileCsvRowsHaveTenColumns)
{
    const auto profile = sampleProfile();
    std::ostringstream out;
    writeProfileCsv(out, profile);
    const auto lines = split(trim(out.str()), '\n');
    for (std::size_t i = 1; i < lines.size(); i += 50)
        EXPECT_EQ(split(lines[i], ',').size(), 10u) << i;
}

TEST(TraceCsv, TimeColumnIsMonotone)
{
    const auto profile = sampleProfile();
    std::ostringstream out;
    writeProfileCsv(out, profile);
    const auto lines = split(trim(out.str()), '\n');
    double prev = -1.0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const double t = std::stod(split(lines[i], ',')[0]);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(TraceCsv, SummaryCsvHasOneRowPerProfile)
{
    const auto profile = sampleProfile();
    std::ostringstream out;
    writeSummaryCsv(out, {profile, profile, profile});
    const auto lines = split(trim(out.str()), '\n');
    EXPECT_EQ(lines.size(), 4u);
    EXPECT_TRUE(startsWith(lines[0], "benchmark,suite,runtime_s"));
    EXPECT_TRUE(startsWith(lines[1], "3DMark Wild Life,3DMark v2,"));
}

TEST(TraceCsv, SummaryCsvValuesParse)
{
    const auto profile = sampleProfile();
    std::ostringstream out;
    writeSummaryCsv(out, {profile});
    const auto cells = split(split(trim(out.str()), '\n')[1], ',');
    ASSERT_EQ(cells.size(), 11u);
    EXPECT_NEAR(std::stod(cells[2]), profile.runtimeSeconds, 0.01);
    EXPECT_NEAR(std::stod(cells[4]), profile.ipc, 0.001);
}

} // namespace
} // namespace mbs
