/**
 * @file
 * Tests for profiling sessions: run averaging, Antutu segmentation,
 * baseline subtraction and counter sampling.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "profiler/session.hh"

namespace mbs {
namespace {

ProfileOptions
fastOptions(int runs = 3)
{
    ProfileOptions o;
    o.runs = runs;
    o.seed = 777;
    return o;
}

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

TEST(Session, RejectsBadOptions)
{
    ProfileOptions o;
    o.runs = 0;
    EXPECT_THROW(
        ProfilerSession(SocConfig::snapdragon888(), o), FatalError);
    o.runs = 1;
    o.tickSeconds = 0.0;
    EXPECT_THROW(
        ProfilerSession(SocConfig::snapdragon888(), o), FatalError);
}

TEST(Session, ProfilesOneBenchmark)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions());
    const auto p = sess.profile(registry().unit("3DMark Wild Life"));
    EXPECT_EQ(p.name, "3DMark Wild Life");
    EXPECT_EQ(p.suite, "3DMark v2");
    EXPECT_NEAR(p.runtimeSeconds, 61.5, 61.5 * 0.1);
    EXPECT_NEAR(p.instructions, 8e9, 8e9 * 0.1);
    EXPECT_GT(p.ipc, 0.0);
    EXPECT_GT(p.avgGpuLoad(), 0.5);
    EXPECT_EQ(p.series.cpuLoad.size(), p.series.gpuLoad.size());
    EXPECT_EQ(p.series.cpuLoad.size(),
              p.series.clusterLoad[0].size());
}

TEST(Session, IsDeterministic)
{
    const ProfilerSession a(SocConfig::snapdragon888(), fastOptions());
    const ProfilerSession b(SocConfig::snapdragon888(), fastOptions());
    const auto pa = a.profile(registry().unit("Antutu Mem"));
    const auto pb = b.profile(registry().unit("Antutu Mem"));
    EXPECT_DOUBLE_EQ(pa.instructions, pb.instructions);
    EXPECT_DOUBLE_EQ(pa.ipc, pb.ipc);
    EXPECT_DOUBLE_EQ(pa.cacheMpki, pb.cacheMpki);
}

TEST(Session, DifferentSeedsGiveDifferentRuns)
{
    ProfileOptions o1 = fastOptions();
    ProfileOptions o2 = fastOptions();
    o2.seed = o1.seed + 1;
    const ProfilerSession a(SocConfig::snapdragon888(), o1);
    const ProfilerSession b(SocConfig::snapdragon888(), o2);
    EXPECT_NE(a.profile(registry().unit("Aitutu")).instructions,
              b.profile(registry().unit("Aitutu")).instructions);
}

TEST(Session, AveragingReducesRunVariance)
{
    // The mean of 3 runs of the same benchmark differs from any
    // single run, and single runs differ among themselves.
    const ProfilerSession one(SocConfig::snapdragon888(),
                              fastOptions(1));
    const ProfilerSession three(SocConfig::snapdragon888(),
                                fastOptions(3));
    const auto &bench = registry().unit("Geekbench 5 CPU");
    const auto p1 = one.profile(bench);
    const auto p3 = three.profile(bench);
    EXPECT_NE(p1.runtimeSeconds, p3.runtimeSeconds);
    // Both stay near the nominal 140 s.
    EXPECT_NEAR(p1.runtimeSeconds, 140.0, 14.0);
    EXPECT_NEAR(p3.runtimeSeconds, 140.0, 14.0);
}

TEST(Session, ProfileSuiteSegmentsAntutu)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(2));
    const auto profiles =
        sess.profileSuite(registry().suite("Antutu v9"));
    ASSERT_EQ(profiles.size(), 4u);
    EXPECT_EQ(profiles[0].name, "Antutu CPU");
    EXPECT_EQ(profiles[1].name, "Antutu GPU");
    EXPECT_EQ(profiles[2].name, "Antutu Mem");
    EXPECT_EQ(profiles[3].name, "Antutu UX");
    // Segment runtimes match their nominal durations.
    EXPECT_NEAR(profiles[0].runtimeSeconds, 130.0, 13.0);
    EXPECT_NEAR(profiles[1].runtimeSeconds, 200.0, 20.0);
    // The GPU segment is the graphics-heavy one.
    EXPECT_GT(profiles[1].avgGpuLoad(), 0.5);
    EXPECT_LT(profiles[0].avgGpuLoad(), 0.1);
}

TEST(Session, SegmentedSuiteMatchesWholeRuntime)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(1));
    const auto profiles =
        sess.profileSuite(registry().suite("Antutu v9"));
    double total = 0.0;
    for (const auto &p : profiles)
        total += p.runtimeSeconds;
    EXPECT_NEAR(total, 645.0, 645.0 * 0.1);
}

TEST(Session, ProfileAllCoversEveryUnit)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(1));
    const auto profiles = sess.profileAll(registry());
    ASSERT_EQ(profiles.size(), registry().units().size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        EXPECT_EQ(profiles[i].name, registry().units()[i].name());
}

TEST(Session, UsedMemorySubtractsIdleBaseline)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(1));
    const auto p = sess.profile(registry().unit("PCMark Storage"));
    // Raw usage includes ~1.3 GB idle; the reported series must not.
    const double total =
        double(sess.config().memory.totalBytes);
    const double idle_fraction =
        double(sess.config().memory.idleBytes) / total;
    EXPECT_LT(p.avgUsedMemory() + idle_fraction, 1.0);
    EXPECT_GT(p.avgUsedMemory(), 0.0);
    EXPECT_LT(p.avgUsedMemory(), 0.3);
}

TEST(Session, SampleCountersReturnsRequestedSeries)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(1));
    const auto series = sess.sampleCounters(
        registry().unit("3DMark Wild Life"),
        {"cpu.load", "gpu.load", "gpu.shaders.busy"});
    ASSERT_EQ(series.size(), 3u);
    EXPECT_GT(series.at("gpu.load").mean(), 0.5);
    EXPECT_GT(series.at("cpu.load").size(), 100u);
}

TEST(Session, SampleUnknownCounterIsFatal)
{
    const ProfilerSession sess(SocConfig::snapdragon888(),
                               fastOptions(1));
    EXPECT_THROW(sess.sampleCounters(registry().unit("Aitutu"),
                                     {"bogus.counter"}),
                 FatalError);
}

} // namespace
} // namespace mbs
