/**
 * @file
 * Tests for the performance counter catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "profiler/catalog.hh"

namespace mbs {
namespace {

const CounterCatalog &
catalog()
{
    static const CounterCatalog cat(SocConfig::snapdragon888());
    return cat;
}

TEST(Catalog, ExposesAtLeast190Counters)
{
    // The paper captures "over 190 hardware performance metrics".
    EXPECT_GE(catalog().size(), 190u);
}

TEST(Catalog, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &c : catalog().counters())
        EXPECT_TRUE(names.insert(c.name).second) << c.name;
}

TEST(Catalog, CoversAllPaperCategories)
{
    // CPU (cores, cache, branch), GPU (cores, shaders, memory,
    // stalls), AIE, system memory, temperature.
    EXPECT_FALSE(catalog().inCategory(CounterCategory::Cpu).empty());
    EXPECT_FALSE(catalog().inCategory(CounterCategory::Gpu).empty());
    EXPECT_FALSE(catalog().inCategory(CounterCategory::Aie).empty());
    EXPECT_FALSE(
        catalog().inCategory(CounterCategory::Memory).empty());
    EXPECT_FALSE(
        catalog().inCategory(CounterCategory::Storage).empty());
    EXPECT_FALSE(
        catalog().inCategory(CounterCategory::Thermal).empty());
}

TEST(Catalog, HasPerCoreCounters)
{
    EXPECT_TRUE(catalog().has("cpu.core0.load"));
    EXPECT_TRUE(catalog().has("cpu.core7.load"));
    EXPECT_FALSE(catalog().has("cpu.core8.load")); // only 8 cores
}

TEST(Catalog, HasKeyMetricCounters)
{
    for (const char *name :
         {"cpu.load", "cpu.ipc", "cpu.cache.total.mpki",
          "cpu.branch.mpki", "gpu.load", "gpu.shaders.busy",
          "gpu.bus.busy", "aie.load", "mem.used.minus.idle.fraction",
          "storage.utilization"}) {
        EXPECT_TRUE(catalog().has(name)) << name;
    }
}

TEST(Catalog, FindUnknownIsFatal)
{
    EXPECT_THROW(catalog().find("no.such.counter"), FatalError);
}

TEST(Catalog, ExtractorsReadFrames)
{
    CounterFrame f;
    f.cpuLoad = 0.42;
    f.instructions = 1e6;
    f.cycles = 2e6;
    f.ipc = 0.5;
    f.cacheMisses = 5e3;
    f.gpu.load = 0.7;
    f.gpu.shadersBusy = 0.6;
    f.aie.load = 0.1;
    EXPECT_DOUBLE_EQ(catalog().find("cpu.load").extract(f), 0.42);
    EXPECT_DOUBLE_EQ(catalog().find("cpu.ipc").extract(f), 0.5);
    EXPECT_DOUBLE_EQ(catalog().find("cpu.cpi").extract(f), 2.0);
    EXPECT_DOUBLE_EQ(
        catalog().find("cpu.cache.total.mpki").extract(f), 5.0);
    EXPECT_DOUBLE_EQ(catalog().find("gpu.load").extract(f), 0.7);
    EXPECT_DOUBLE_EQ(catalog().find("aie.load").extract(f), 0.1);
}

TEST(Catalog, MemoryCountersSubtractIdle)
{
    const SocConfig cfg = SocConfig::snapdragon888();
    CounterFrame f;
    f.memory.usedBytes = cfg.memory.idleBytes + (1ULL << 30);
    EXPECT_NEAR(
        catalog().find("mem.used.minus.idle.bytes").extract(f),
        double(1ULL << 30), 1.0);
    // Never negative, even below the baseline.
    f.memory.usedBytes = cfg.memory.idleBytes / 2;
    EXPECT_DOUBLE_EQ(
        catalog().find("mem.used.minus.idle.bytes").extract(f), 0.0);
}

TEST(Catalog, ThermalProxiesTrackLoad)
{
    CounterFrame idle;
    CounterFrame busy;
    busy.cpuLoad = 1.0;
    const auto &t = catalog().find("thermal.cpu.degC");
    EXPECT_GT(t.extract(busy), t.extract(idle));
}

TEST(Catalog, CategoriesHaveNames)
{
    EXPECT_EQ(counterCategoryName(CounterCategory::Cpu), "CPU");
    EXPECT_EQ(counterCategoryName(CounterCategory::Gpu), "GPU");
    EXPECT_EQ(counterCategoryName(CounterCategory::Aie), "AIE");
    EXPECT_EQ(counterCategoryName(CounterCategory::Memory), "Memory");
    EXPECT_EQ(counterCategoryName(CounterCategory::Storage),
              "Storage");
    EXPECT_EQ(counterCategoryName(CounterCategory::Thermal),
              "Thermal");
}

TEST(Catalog, CpuCategoryIsLargest)
{
    // The real tool's coverage is dominated by per-core CPU metrics.
    EXPECT_GT(catalog().inCategory(CounterCategory::Cpu).size(),
              catalog().inCategory(CounterCategory::Gpu).size());
}

} // namespace
} // namespace mbs
