/**
 * @file
 * JobQueue tests: bounded admission, round-robin fairness across
 * tenants, FIFO within a tenant, and close/drain semantics.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/job_queue.hh"

namespace mbs {
namespace serve {
namespace {

Job
job(std::uint64_t id, const std::string &tenant)
{
    Job j;
    j.id = id;
    j.tenant = tenant;
    j.options.job = "noop";
    return j;
}

TEST(JobQueue, BoundedAdmission)
{
    JobQueue queue(2);
    EXPECT_EQ(queue.offer(job(1, "a")), JobQueue::Offer::Accepted);
    EXPECT_EQ(queue.offer(job(2, "a")), JobQueue::Offer::Accepted);
    EXPECT_EQ(queue.offer(job(3, "a")), JobQueue::Offer::Full);
    EXPECT_EQ(queue.depth(), 2u);

    // Draining one slot re-opens admission.
    ASSERT_TRUE(queue.take().has_value());
    EXPECT_EQ(queue.offer(job(4, "a")), JobQueue::Offer::Accepted);
    EXPECT_EQ(queue.depth(), 2u);
}

TEST(JobQueue, FifoWithinTenant)
{
    JobQueue queue(8);
    for (std::uint64_t id = 1; id <= 5; ++id)
        ASSERT_EQ(queue.offer(job(id, "solo")),
                  JobQueue::Offer::Accepted);
    for (std::uint64_t id = 1; id <= 5; ++id) {
        auto next = queue.take();
        ASSERT_TRUE(next.has_value());
        EXPECT_EQ(next->id, id);
    }
    EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueue, RoundRobinAcrossTenants)
{
    // Tenant "a" floods the queue before "b" and "c" submit one job
    // each; fairness still interleaves them instead of serving all
    // of "a" first.
    JobQueue queue(16);
    for (std::uint64_t id = 1; id <= 6; ++id)
        ASSERT_EQ(queue.offer(job(id, "a")),
                  JobQueue::Offer::Accepted);
    ASSERT_EQ(queue.offer(job(100, "b")), JobQueue::Offer::Accepted);
    ASSERT_EQ(queue.offer(job(200, "c")), JobQueue::Offer::Accepted);

    std::vector<std::string> order;
    std::vector<std::uint64_t> ids;
    while (queue.depth() > 0) {
        auto next = queue.take();
        ASSERT_TRUE(next.has_value());
        order.push_back(next->tenant);
        ids.push_back(next->id);
    }
    ASSERT_EQ(order.size(), 8u);
    // First rotation serves each tenant once.
    const std::vector<std::string> head(order.begin(),
                                        order.begin() + 3);
    EXPECT_EQ(head, (std::vector<std::string>{"a", "b", "c"}));
    // The stragglers are a's remaining backlog, still FIFO.
    const std::vector<std::uint64_t> tail(ids.begin() + 3, ids.end());
    EXPECT_EQ(tail, (std::vector<std::uint64_t>{2, 3, 4, 5, 6}));
}

TEST(JobQueue, CloseDrainsThenEnds)
{
    JobQueue queue(4);
    ASSERT_EQ(queue.offer(job(1, "a")), JobQueue::Offer::Accepted);
    ASSERT_EQ(queue.offer(job(2, "b")), JobQueue::Offer::Accepted);
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.offer(job(3, "a")), JobQueue::Offer::Closed);

    // Accepted work still drains after close...
    EXPECT_TRUE(queue.take().has_value());
    EXPECT_TRUE(queue.take().has_value());
    // ...then take() reports end-of-stream instead of blocking.
    EXPECT_FALSE(queue.take().has_value());
    EXPECT_FALSE(queue.take().has_value());
}

TEST(JobQueue, CloseWakesBlockedTaker)
{
    JobQueue queue(4);
    std::optional<Job> got = job(99, "sentinel");
    std::thread taker([&] { got = queue.take(); });
    // The taker blocks on the empty queue; close() must wake it with
    // end-of-stream rather than leaving it stuck.
    queue.close();
    taker.join();
    EXPECT_FALSE(got.has_value());
}

TEST(JobQueue, ReplyClosureSurvivesQueue)
{
    JobQueue queue(2);
    int sends = 0;
    Job j = job(7, "a");
    j.reply = [&sends](const std::string &) {
        ++sends;
        return true;
    };
    ASSERT_EQ(queue.offer(std::move(j)), JobQueue::Offer::Accepted);
    auto out = queue.take();
    ASSERT_TRUE(out.has_value());
    ASSERT_TRUE(out->reply);
    out->reply("frame");
    out->reply("frame");
    EXPECT_EQ(sends, 2);
}

} // namespace
} // namespace serve
} // namespace mbs
