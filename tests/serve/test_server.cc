/**
 * @file
 * End-to-end serve tests against an in-process daemon on an
 * ephemeral port: handshake, noop/pipeline/ingest jobs, the
 * ledger-stable-block identity guarantee across (faulted) jobs,
 * failure isolation, protocol-violation handling, admission
 * rejection, and the shutdown frame.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/trace.hh"
#include "serve/client.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/stitch.hh"

namespace mbs {
namespace serve {
namespace {

namespace fs = std::filesystem;

class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) / "mbs-serve-e2e";
        fs::remove_all(root);
        ServerConfig cfg;
        cfg.port = 0;
        cfg.queueCapacity = 8;
        cfg.runner.workDir = root / "work";
        cfg.runner.ledgerDir = root / "ledger";
        cfg.runner.jobs = 2;
        server = std::make_unique<Server>(cfg);
        server->start();
        accept = std::thread([this] { server->run(); });
    }

    void TearDown() override
    {
        server->requestStop();
        if (accept.joinable())
            accept.join();
        server.reset();
        fs::remove_all(root);
    }

    JobOptions pipelineJob() const
    {
        JobOptions options;
        options.job = "pipeline";
        // A coarse tick keeps the synthetic run short; identity only
        // requires that compared jobs use the same options.
        options.tick = 0.2;
        return options;
    }

    fs::path root;
    std::unique_ptr<Server> server;
    std::thread accept;
};

TEST_F(ServeTest, HandshakeAndPing)
{
    Client client(server->port());
    EXPECT_EQ(client.welcome().server, "mobilebench-serve");
    EXPECT_FALSE(client.welcome().build.empty());
    client.ping();
    client.ping();
}

TEST_F(ServeTest, NoopJobRoundTrips)
{
    Client client(server->port());
    JobOptions options;
    options.job = "noop";
    options.payload = "hello";
    const ResultInfo info = client.submit(options);
    EXPECT_EQ(info.status, "ok");
    EXPECT_EQ(info.report, "noop: hello");
    EXPECT_EQ(info.error, "");
    EXPECT_GE(info.wallSeconds, 0.0);
}

TEST_F(ServeTest, LedgerStableBlockIdenticalAcrossJobs)
{
    // The headline guarantee, exercised through the full socket
    // path: repeating a job with identical options appends a
    // byte-identical stable block — including under an injected
    // fault plan (recovered via retry/resubmit, deterministically),
    // and a faulted job in between must not contaminate the clean
    // job that follows it. Fault bookkeeping (fault.* counters,
    // retried exec.tasks) is itself deterministic state the per-job
    // registry reset must fully drop: a clean job after a faulted
    // one would otherwise still carry the fault.* instruments a
    // fresh one-shot process never registers.
    Client client(server->port());

    JobOptions faultedOptions = pipelineJob();
    faultedOptions.faultSpec = "exec.task:eio@2";
    faultedOptions.faultSeed = 7;

    const ResultInfo clean = client.submit(pipelineJob());
    ASSERT_EQ(clean.status, "ok") << clean.error;
    ASSERT_FALSE(clean.ledgerStable.empty());
    EXPECT_EQ(clean.ledgerSeq, 1u);

    const ResultInfo fault = client.submit(faultedOptions);
    ASSERT_EQ(fault.status, "ok") << fault.error;
    EXPECT_EQ(fault.ledgerSeq, 2u);

    const ResultInfo cleanAgain = client.submit(pipelineJob());
    ASSERT_EQ(cleanAgain.status, "ok") << cleanAgain.error;
    EXPECT_EQ(cleanAgain.ledgerSeq, 3u);

    const ResultInfo faultAgain = client.submit(faultedOptions);
    ASSERT_EQ(faultAgain.status, "ok") << faultAgain.error;
    EXPECT_EQ(faultAgain.ledgerSeq, 4u);

    // Same configuration digest throughout (the fault plan degrades
    // execution, not the characterized workload).
    EXPECT_EQ(clean.runId, fault.runId);
    EXPECT_EQ(clean.runId, cleanAgain.runId);

    EXPECT_EQ(clean.ledgerStable, cleanAgain.ledgerStable);
    EXPECT_EQ(clean.report, cleanAgain.report);
    EXPECT_EQ(fault.ledgerStable, faultAgain.ledgerStable);
    EXPECT_EQ(fault.report, faultAgain.report);
    // The faulted runs record their injections (fault.* counters are
    // Stable-class — deterministic under the plan's seed), which is
    // exactly why they must vanish from the next clean job.
    EXPECT_NE(fault.ledgerStable.find("fault.injected"),
              std::string::npos);
    EXPECT_EQ(clean.ledgerStable.find("fault."), std::string::npos);
    EXPECT_EQ(cleanAgain.ledgerStable.find("fault."),
              std::string::npos);

    // Each job also left its artifact bundle behind.
    EXPECT_TRUE(fs::exists(root / "work" / "job-000001" /
                           "metrics.json"));
    EXPECT_TRUE(fs::exists(root / "work" / "job-000002" /
                           "events.jsonl"));
}

TEST_F(ServeTest, FailedJobDoesNotKillTheDaemon)
{
    Client client(server->port());
    JobOptions options;
    options.job = "ingest";
    const std::vector<BundleFile> bogus = {
        {"manifest.json", "this is not json"},
    };
    const ResultInfo info = client.submit(options, bogus);
    EXPECT_EQ(info.status, "failed");
    EXPECT_FALSE(info.error.empty());

    // The daemon is still healthy for the next job.
    JobOptions noop;
    noop.job = "noop";
    noop.payload = "alive";
    const ResultInfo next = client.submit(noop);
    EXPECT_EQ(next.status, "ok");
    EXPECT_EQ(next.report, "noop: alive");
    EXPECT_EQ(server->stats().failed.load(), 1u);
    EXPECT_EQ(server->stats().completed.load(), 1u);
}

TEST_F(ServeTest, ProtocolViolationPoisonsOnlyThatConnection)
{
    // Speak the wire format by hand: greet, then send a frame type
    // the server does not know. It must answer with an error frame
    // and hang up — and keep serving other clients.
    Socket raw = connectTo(server->port());
    ASSERT_TRUE(sendFrame(raw, helloFrame("rawdog")));
    auto welcome = recvFrame(raw);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(Frame::parse(*welcome).type, "welcome");

    ASSERT_TRUE(sendFrame(raw, "{\"v\":1,\"type\":\"frobnicate\"}"));
    auto reply = recvFrame(raw);
    ASSERT_TRUE(reply.has_value());
    const Frame error = Frame::parse(*reply);
    EXPECT_EQ(error.type, "error");
    EXPECT_NE(error.str("message").find("frobnicate"),
              std::string::npos);
    raw.close();

    Client client(server->port());
    client.ping();
}

TEST_F(ServeTest, ShutdownFrameStopsTheDaemon)
{
    Client client(server->port());
    client.shutdownServer();
    // run() must unwind; a hang here is caught by the test timeout.
    accept.join();
    // The listener is gone: new connections are refused.
    EXPECT_THROW(connectTo(server->port()), FatalError);
}

TEST_F(ServeTest, EnrichedPongCarriesHealth)
{
    Client client(server->port());
    const PongInfo pong = client.ping();
    EXPECT_GE(pong.uptimeSeconds, 0.0);
    EXPECT_EQ(pong.build, client.welcome().build);
    EXPECT_EQ(pong.jobsInQueue, 0u);
}

TEST_F(ServeTest, StatsScrapeReconcilesWithServerCounters)
{
    Client client(server->port(), "team-a");
    JobOptions noop;
    noop.job = "noop";
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(client.submit(noop).status, "ok");

    const StatsInfo info = client.stats();
    EXPECT_EQ(info.build, client.welcome().build);
    EXPECT_GE(info.uptimeSeconds, 0.0);
    // The daemon domain survives the per-job registry reset: the
    // scrape agrees with the server's own counters.
    EXPECT_EQ(server->stats().completed.load(), 3u);
    EXPECT_NE(info.prometheus.find("serve_jobs_accepted 3\n"),
              std::string::npos) << info.prometheus;
    EXPECT_NE(info.prometheus.find("serve_jobs_completed 3\n"),
              std::string::npos) << info.prometheus;
    EXPECT_NE(info.prometheus.find(
                  "serve_jobs_completed{tenant=\"team-a\"} 3\n"),
              std::string::npos) << info.prometheus;
    // The volatile scrape carries the latency split.
    EXPECT_NE(info.prometheus.find("serve_queue_wait_seconds_count 3"),
              std::string::npos) << info.prometheus;
    EXPECT_NE(info.prometheus.find("serve_uptime_seconds"),
              std::string::npos) << info.prometheus;

    // Two idle stable-only scrapes are byte-identical and free of
    // wall-clock series.
    const StatsInfo a = client.stats(false);
    const StatsInfo b = client.stats(false);
    EXPECT_EQ(a.prometheus, b.prometheus);
    EXPECT_EQ(a.prometheus.find("uptime"), std::string::npos);
    EXPECT_EQ(a.prometheus.find("queue_wait"), std::string::npos);
}

TEST_F(ServeTest, WatchDeliversCountedTicksWithSequenceNumbers)
{
    Client client(server->port());
    WatchRequest request;
    request.intervalSeconds = 0.01;
    request.count = 3;
    std::vector<StatsInfo> events;
    client.watch(request, [&events](const StatsInfo &info) {
        events.push_back(info);
    });
    ASSERT_EQ(events.size(), 3u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, i);
        EXPECT_NE(events[i].prometheus.find("serve_jobs_accepted"),
                  std::string::npos);
    }
    // The session is still usable after a finite watch stream.
    client.ping();
}

TEST_F(ServeTest, FailedJobLeavesFlightRecorderDump)
{
    Client client(server->port());
    JobOptions options;
    options.job = "ingest";
    const std::vector<BundleFile> bogus = {
        {"manifest.json", "this is not json"},
    };
    const ResultInfo info = client.submit(options, bogus);
    ASSERT_EQ(info.status, "failed");

    const fs::path dump =
        root / "work" / "job-000001" / "flightrec.jsonl";
    ASSERT_TRUE(fs::exists(dump)) << dump;
    std::ifstream in(dump);
    std::string line;
    int parsed = 0;
    while (std::getline(in, line)) {
        EXPECT_NO_THROW(parseJson(line)) << line;
        ++parsed;
    }
    EXPECT_GT(parsed, 0);
}

TEST_F(ServeTest, PipelineJobExportsStitchableTrace)
{
    // The server side of the tentpole stitch: a submit carrying a
    // trace id yields a job trace.json whose flow anchors use the
    // ids both ends derive independently from that trace id.
    auto &tracer = obs::Tracer::instance();
    const bool wasEnabled = tracer.enabled();
    tracer.setEnabled(true);

    Client client(server->port());
    JobOptions options = pipelineJob();
    options.traceId = "00c0ffee00c0ffee";
    options.parentSpan = "serve.submit";
    const ResultInfo info = client.submit(options);
    tracer.setEnabled(wasEnabled);
    ASSERT_EQ(info.status, "ok") << info.error;
    ASSERT_FALSE(info.jobDir.empty());

    const fs::path tracePath = fs::path(info.jobDir) / "trace.json";
    ASSERT_TRUE(fs::exists(tracePath)) << tracePath;
    std::ifstream in(tracePath);
    std::ostringstream content;
    content << in.rdbuf();
    const std::string serverTrace = content.str();

    const std::string beginId = strformat(
        "0x%llx",
        (unsigned long long)traceFlowId(options.traceId));
    const std::string endId = strformat(
        "0x%llx",
        (unsigned long long)(traceFlowId(options.traceId) + 1));
    EXPECT_NE(serverTrace.find("serve.job"), std::string::npos);
    EXPECT_NE(serverTrace.find("\"id\": \"" + beginId + "\""),
              std::string::npos) << serverTrace.substr(0, 2000);
    EXPECT_NE(serverTrace.find("\"id\": \"" + endId + "\""),
              std::string::npos);
    EXPECT_NE(serverTrace.find("00c0ffee00c0ffee"),
              std::string::npos);

    // And it stitches against a client-side document into one
    // parseable timeline with the server lane on pid 2.
    const std::string clientTrace =
        "{\"epochMicros\": 0, \"otherData\": {},"
        " \"traceEvents\": ["
        "{\"name\": \"serve.submit\", \"cat\": \"serve\","
        " \"ph\": \"s\", \"ts\": 1, \"pid\": 1, \"tid\": 1,"
        " \"id\": \"" + beginId + "\"}]}";
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace, serverTrace));
    bool sawServerLane = false;
    for (const auto &event : doc.at("traceEvents").array) {
        const JsonValue *name = event.find("name");
        if (name && name->str == "serve.job" &&
            event.at("pid").number == 2.0)
            sawServerLane = true;
    }
    EXPECT_TRUE(sawServerLane);
}

TEST(ServeAdmission, FullQueueRejectsSubmit)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / "mbs-serve-admission";
    fs::remove_all(root);
    ServerConfig cfg;
    cfg.port = 0;
    cfg.queueCapacity = 0; // every offer is Full
    cfg.runner.workDir = root / "work";
    Server server(cfg);
    server.start();
    std::thread accept([&server] { server.run(); });

    Client client(server.port());
    JobOptions options;
    options.job = "noop";
    EXPECT_THROW(client.submit(options), FatalError);
    EXPECT_EQ(server.stats().rejected.load(), 1u);

    server.requestStop();
    accept.join();
    fs::remove_all(root);
}

} // namespace
} // namespace serve
} // namespace mbs
