/**
 * @file
 * End-to-end serve tests against an in-process daemon on an
 * ephemeral port: handshake, noop/pipeline/ingest jobs, the
 * ledger-stable-block identity guarantee across (faulted) jobs,
 * failure isolation, protocol-violation handling, admission
 * rejection, and the shutdown frame.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "serve/client.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace mbs {
namespace serve {
namespace {

namespace fs = std::filesystem;

class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) / "mbs-serve-e2e";
        fs::remove_all(root);
        ServerConfig cfg;
        cfg.port = 0;
        cfg.queueCapacity = 8;
        cfg.runner.workDir = root / "work";
        cfg.runner.ledgerDir = root / "ledger";
        cfg.runner.jobs = 2;
        server = std::make_unique<Server>(cfg);
        server->start();
        accept = std::thread([this] { server->run(); });
    }

    void TearDown() override
    {
        server->requestStop();
        if (accept.joinable())
            accept.join();
        server.reset();
        fs::remove_all(root);
    }

    JobOptions pipelineJob() const
    {
        JobOptions options;
        options.job = "pipeline";
        // A coarse tick keeps the synthetic run short; identity only
        // requires that compared jobs use the same options.
        options.tick = 0.2;
        return options;
    }

    fs::path root;
    std::unique_ptr<Server> server;
    std::thread accept;
};

TEST_F(ServeTest, HandshakeAndPing)
{
    Client client(server->port());
    EXPECT_EQ(client.welcome().server, "mobilebench-serve");
    EXPECT_FALSE(client.welcome().build.empty());
    client.ping();
    client.ping();
}

TEST_F(ServeTest, NoopJobRoundTrips)
{
    Client client(server->port());
    JobOptions options;
    options.job = "noop";
    options.payload = "hello";
    const ResultInfo info = client.submit(options);
    EXPECT_EQ(info.status, "ok");
    EXPECT_EQ(info.report, "noop: hello");
    EXPECT_EQ(info.error, "");
    EXPECT_GE(info.wallSeconds, 0.0);
}

TEST_F(ServeTest, LedgerStableBlockIdenticalAcrossJobs)
{
    // The headline guarantee, exercised through the full socket
    // path: repeating a job with identical options appends a
    // byte-identical stable block — including under an injected
    // fault plan (recovered via retry/resubmit, deterministically),
    // and a faulted job in between must not contaminate the clean
    // job that follows it. Fault bookkeeping (fault.* counters,
    // retried exec.tasks) is itself deterministic state the per-job
    // registry reset must fully drop: a clean job after a faulted
    // one would otherwise still carry the fault.* instruments a
    // fresh one-shot process never registers.
    Client client(server->port());

    JobOptions faultedOptions = pipelineJob();
    faultedOptions.faultSpec = "exec.task:eio@2";
    faultedOptions.faultSeed = 7;

    const ResultInfo clean = client.submit(pipelineJob());
    ASSERT_EQ(clean.status, "ok") << clean.error;
    ASSERT_FALSE(clean.ledgerStable.empty());
    EXPECT_EQ(clean.ledgerSeq, 1u);

    const ResultInfo fault = client.submit(faultedOptions);
    ASSERT_EQ(fault.status, "ok") << fault.error;
    EXPECT_EQ(fault.ledgerSeq, 2u);

    const ResultInfo cleanAgain = client.submit(pipelineJob());
    ASSERT_EQ(cleanAgain.status, "ok") << cleanAgain.error;
    EXPECT_EQ(cleanAgain.ledgerSeq, 3u);

    const ResultInfo faultAgain = client.submit(faultedOptions);
    ASSERT_EQ(faultAgain.status, "ok") << faultAgain.error;
    EXPECT_EQ(faultAgain.ledgerSeq, 4u);

    // Same configuration digest throughout (the fault plan degrades
    // execution, not the characterized workload).
    EXPECT_EQ(clean.runId, fault.runId);
    EXPECT_EQ(clean.runId, cleanAgain.runId);

    EXPECT_EQ(clean.ledgerStable, cleanAgain.ledgerStable);
    EXPECT_EQ(clean.report, cleanAgain.report);
    EXPECT_EQ(fault.ledgerStable, faultAgain.ledgerStable);
    EXPECT_EQ(fault.report, faultAgain.report);
    // The faulted runs record their injections (fault.* counters are
    // Stable-class — deterministic under the plan's seed), which is
    // exactly why they must vanish from the next clean job.
    EXPECT_NE(fault.ledgerStable.find("fault.injected"),
              std::string::npos);
    EXPECT_EQ(clean.ledgerStable.find("fault."), std::string::npos);
    EXPECT_EQ(cleanAgain.ledgerStable.find("fault."),
              std::string::npos);

    // Each job also left its artifact bundle behind.
    EXPECT_TRUE(fs::exists(root / "work" / "job-000001" /
                           "metrics.json"));
    EXPECT_TRUE(fs::exists(root / "work" / "job-000002" /
                           "events.jsonl"));
}

TEST_F(ServeTest, FailedJobDoesNotKillTheDaemon)
{
    Client client(server->port());
    JobOptions options;
    options.job = "ingest";
    const std::vector<BundleFile> bogus = {
        {"manifest.json", "this is not json"},
    };
    const ResultInfo info = client.submit(options, bogus);
    EXPECT_EQ(info.status, "failed");
    EXPECT_FALSE(info.error.empty());

    // The daemon is still healthy for the next job.
    JobOptions noop;
    noop.job = "noop";
    noop.payload = "alive";
    const ResultInfo next = client.submit(noop);
    EXPECT_EQ(next.status, "ok");
    EXPECT_EQ(next.report, "noop: alive");
    EXPECT_EQ(server->stats().failed.load(), 1u);
    EXPECT_EQ(server->stats().completed.load(), 1u);
}

TEST_F(ServeTest, ProtocolViolationPoisonsOnlyThatConnection)
{
    // Speak the wire format by hand: greet, then send a frame type
    // the server does not know. It must answer with an error frame
    // and hang up — and keep serving other clients.
    Socket raw = connectTo(server->port());
    ASSERT_TRUE(sendFrame(raw, helloFrame("rawdog")));
    auto welcome = recvFrame(raw);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(Frame::parse(*welcome).type, "welcome");

    ASSERT_TRUE(sendFrame(raw, "{\"v\":1,\"type\":\"frobnicate\"}"));
    auto reply = recvFrame(raw);
    ASSERT_TRUE(reply.has_value());
    const Frame error = Frame::parse(*reply);
    EXPECT_EQ(error.type, "error");
    EXPECT_NE(error.str("message").find("frobnicate"),
              std::string::npos);
    raw.close();

    Client client(server->port());
    client.ping();
}

TEST_F(ServeTest, ShutdownFrameStopsTheDaemon)
{
    Client client(server->port());
    client.shutdownServer();
    // run() must unwind; a hang here is caught by the test timeout.
    accept.join();
    // The listener is gone: new connections are refused.
    EXPECT_THROW(connectTo(server->port()), FatalError);
}

TEST(ServeAdmission, FullQueueRejectsSubmit)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / "mbs-serve-admission";
    fs::remove_all(root);
    ServerConfig cfg;
    cfg.port = 0;
    cfg.queueCapacity = 0; // every offer is Full
    cfg.runner.workDir = root / "work";
    Server server(cfg);
    server.start();
    std::thread accept([&server] { server.run(); });

    Client client(server.port());
    JobOptions options;
    options.job = "noop";
    EXPECT_THROW(client.submit(options), FatalError);
    EXPECT_EQ(server.stats().rejected.load(), 1u);

    server.requestStop();
    accept.join();
    fs::remove_all(root);
}

} // namespace
} // namespace serve
} // namespace mbs
