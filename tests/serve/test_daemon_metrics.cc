/**
 * @file
 * Exposition tests for the daemon-scoped metric domain: every family
 * carries `# HELP`, per-tenant variants render as labeled series with
 * the `le` label spliced into histogram buckets, the stable/volatile
 * split holds (idle stable scrapes byte-compare equal, wall-clock
 * series stay out of them), and the derived percentile gauges refresh
 * at render time.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "serve/daemon_metrics.hh"

namespace mbs {
namespace serve {
namespace {

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

/** Drive a small fixed workload through the domain. */
void
feed(DaemonMetrics &m)
{
    m.onAccepted("team-a");
    m.onAccepted("team-a");
    m.onAccepted("team-b");
    m.onRejected("team-b");
    m.onCompleted("team-a", 0.002, 0.030);
    m.onCompleted("team-a", 0.004, 0.050);
    m.onFailed("team-b", 0.200, 1.500);
    m.setQueueDepth(1);
}

TEST(DaemonMetrics, EveryFamilyHasHelp)
{
    DaemonMetrics m;
    feed(m);
    const auto all = lines(m.render(true, 12.5));
    // Every `# TYPE fam ...` line must be directly preceded by
    // `# HELP fam ...` — i.e. every metric-creation site passed a
    // description.
    int families = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (!startsWith(all[i], "# TYPE "))
            continue;
        ++families;
        ASSERT_GT(i, 0u);
        const std::string family = split(all[i].substr(7), ' ')[0];
        EXPECT_TRUE(startsWith(all[i - 1], "# HELP " + family + " "))
            << all[i] << " preceded by " << all[i - 1];
    }
    EXPECT_GE(families, 10);
}

TEST(DaemonMetrics, LabeledCountersRenderPerTenant)
{
    DaemonMetrics m;
    feed(m);
    const std::string text = m.render(true, 1.0);
    EXPECT_NE(text.find("serve_jobs_accepted 3\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_jobs_accepted{tenant=\"team-a\"} 2\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_jobs_accepted{tenant=\"team-b\"} 1\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_jobs_rejected{tenant=\"team-b\"} 1\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_jobs_completed 2\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_jobs_failed{tenant=\"team-b\"} 1\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_queue_depth 1\n"),
              std::string::npos) << text;
}

TEST(DaemonMetrics, TenantHistogramBucketsMergeLeLabel)
{
    DaemonMetrics m;
    feed(m);
    const std::string text = m.render(true, 1.0);
    // The tenant label block and the le label share one brace pair.
    EXPECT_NE(text.find("serve_queue_wait_seconds_bucket"
                        "{tenant=\"team-a\",le=\"0.005\"} 2\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_queue_wait_seconds_bucket"
                        "{tenant=\"team-a\",le=\"+Inf\"} 2\n"),
              std::string::npos) << text;
    EXPECT_NE(text.find("serve_exec_seconds_count"
                        "{tenant=\"team-b\"} 1\n"),
              std::string::npos) << text;
    // Aggregate series sees all three finished jobs.
    EXPECT_NE(text.find("serve_queue_wait_seconds_count 3\n"),
              std::string::npos) << text;
    // HELP/TYPE are emitted once per family even with the labeled
    // fan-out.
    const std::string type =
        "# TYPE serve_queue_wait_seconds histogram";
    const std::size_t first = text.find(type);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(type, first + 1), std::string::npos) << text;
}

TEST(DaemonMetrics, StableViewExcludesWallClockSeries)
{
    DaemonMetrics m;
    feed(m);
    const std::string stable = m.render(false, 99.0);
    EXPECT_EQ(stable.find("uptime"), std::string::npos) << stable;
    EXPECT_EQ(stable.find("queue_wait"), std::string::npos) << stable;
    EXPECT_EQ(stable.find("exec_seconds"), std::string::npos)
        << stable;
    EXPECT_NE(stable.find("serve_jobs_accepted 3\n"),
              std::string::npos) << stable;
    EXPECT_NE(stable.find("serve_build_info{build="),
              std::string::npos) << stable;
    // The volatile view carries everything the stable one does.
    const std::string full = m.render(true, 99.0);
    EXPECT_NE(full.find("serve_uptime_seconds 99\n"),
              std::string::npos) << full;
}

TEST(DaemonMetrics, IdleStableScrapesAreByteIdentical)
{
    DaemonMetrics m;
    feed(m);
    // Different uptimes, different wall clocks: the stable view must
    // not notice.
    const std::string a = m.render(false, 1.0);
    const std::string b = m.render(false, 3600.0);
    EXPECT_EQ(a, b);
    // And a second domain fed the identical sequence renders the
    // identical stable text.
    DaemonMetrics m2;
    feed(m2);
    EXPECT_EQ(m2.render(false, 7.0), a);
}

TEST(DaemonMetrics, PercentileGaugesRefreshAtRender)
{
    DaemonMetrics m;
    for (int i = 0; i < 100; ++i)
        m.onCompleted("t", 0.010, 0.100);
    const std::string text = m.render(true, 1.0);
    // All observations sit in one bucket, so every quantile
    // interpolates inside (0.005, 0.01] for queue wait and
    // (0.05, 0.1] for exec.
    for (const char *q : {"p50", "p95", "p99"}) {
        const std::string qw =
            "serve_queue_wait_seconds_" + std::string(q);
        // Anchor at a line start so the family's HELP line (which
        // also contains "name ") cannot match.
        const std::size_t at = text.find("\n" + qw + " ");
        ASSERT_NE(at, std::string::npos) << qw << "\n" << text;
        const double value =
            std::stod(text.substr(at + qw.size() + 2));
        EXPECT_GT(value, 0.005) << qw;
        EXPECT_LE(value, 0.010 + 1e-12) << qw;
    }
    EXPECT_NE(text.find("serve_exec_seconds_p99{tenant=\"t\"}"),
              std::string::npos) << text;
}

TEST(DaemonMetrics, FreshDomainStillExposesDocumentedFamilies)
{
    // Even before any job, the admission counters, depth gauge and
    // build info render (with HELP) so a scrape right after startup
    // is never empty.
    DaemonMetrics m;
    const std::string text = m.render(false, 0.0);
    for (const char *family :
         {"serve_jobs_accepted", "serve_jobs_rejected",
          "serve_jobs_completed", "serve_jobs_failed",
          "serve_queue_depth", "serve_build_info"}) {
        EXPECT_NE(text.find("# HELP " + std::string(family) + " "),
                  std::string::npos) << family << "\n" << text;
    }
}

} // namespace
} // namespace serve
} // namespace mbs
