/**
 * @file
 * Serve wire-protocol tests: framing, envelope validation, the
 * submit round trip (options + bundle), result round trip, and the
 * bundle-path safety gate.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/protocol.hh"

namespace mbs {
namespace serve {
namespace {

TEST(ServeProtocol, EncodeFramePrefixesBigEndianLength)
{
    const std::string wire = encodeFrame("{\"v\":1}");
    ASSERT_EQ(wire.size(), 4u + 7u);
    EXPECT_EQ(wire[0], '\0');
    EXPECT_EQ(wire[1], '\0');
    EXPECT_EQ(wire[2], '\0');
    EXPECT_EQ(wire[3], char(7));
    EXPECT_EQ(wire.substr(4), "{\"v\":1}");
}

TEST(ServeProtocol, DecodeFrameLengthRejectsOversize)
{
    const unsigned char big[4] = {0xff, 0xff, 0xff, 0xff};
    EXPECT_THROW(decodeFrameLength(big, kMaxFrameBytes), FatalError);
    const unsigned char ok[4] = {0, 0, 1, 0};
    EXPECT_EQ(decodeFrameLength(ok, kMaxFrameBytes), 256u);
}

TEST(ServeProtocol, ParseValidatesEnvelope)
{
    const Frame frame = Frame::parse(pingFrame());
    EXPECT_EQ(frame.type, "ping");

    EXPECT_THROW(Frame::parse("not json"), FatalError);
    EXPECT_THROW(Frame::parse("[1,2]"), FatalError);
    EXPECT_THROW(Frame::parse("{\"type\":\"ping\"}"), FatalError);
    EXPECT_THROW(Frame::parse("{\"v\":99,\"type\":\"ping\"}"),
                 FatalError);
    EXPECT_THROW(Frame::parse("{\"v\":1,\"type\":\"\"}"), FatalError);
    EXPECT_THROW(Frame::parse("{\"v\":1}"), FatalError);
}

TEST(ServeProtocol, HelloCarriesTenant)
{
    const Frame frame = Frame::parse(helloFrame("team-a"));
    EXPECT_EQ(frame.type, "hello");
    EXPECT_EQ(frame.strOr("tenant", "default"), "team-a");
}

TEST(ServeProtocol, SubmitRoundTripsOptions)
{
    JobOptions options;
    options.job = "ingest";
    options.faultSpec = "store.read:eio@1";
    options.faultRate = 0.25;
    options.faultSeed = 77;
    options.ingestPipeline = true;
    options.lax = true;
    options.tick = 0.5;
    options.payload = "with \"quotes\" and \n newline";

    const Frame frame = Frame::parse(submitFrame(options));
    const JobOptions parsed = jobOptionsFrom(frame);
    EXPECT_EQ(parsed.job, "ingest");
    EXPECT_EQ(parsed.faultSpec, options.faultSpec);
    EXPECT_DOUBLE_EQ(parsed.faultRate, options.faultRate);
    EXPECT_EQ(parsed.faultSeed, options.faultSeed);
    EXPECT_TRUE(parsed.ingestPipeline);
    EXPECT_TRUE(parsed.lax);
    EXPECT_DOUBLE_EQ(parsed.tick, options.tick);
    EXPECT_EQ(parsed.payload, options.payload);
    EXPECT_TRUE(bundleFilesFrom(frame).empty());
}

TEST(ServeProtocol, SubmitDefaultsWithoutOptionsObject)
{
    const Frame frame =
        Frame::parse("{\"v\":1,\"type\":\"submit\","
                     "\"job\":\"pipeline\"}");
    const JobOptions parsed = jobOptionsFrom(frame);
    EXPECT_EQ(parsed.job, "pipeline");
    EXPECT_EQ(parsed.faultSpec, "");
    EXPECT_EQ(parsed.faultSeed, 1u);
    EXPECT_FALSE(parsed.ingestPipeline);
}

TEST(ServeProtocol, SubmitRejectsUnknownJobKind)
{
    const Frame frame = Frame::parse(
        "{\"v\":1,\"type\":\"submit\",\"job\":\"rm-rf\"}");
    EXPECT_THROW(jobOptionsFrom(frame), FatalError);
}

TEST(ServeProtocol, BundleRoundTripsFiles)
{
    const std::vector<BundleFile> bundle = {
        {"manifest.json", "{\"x\": 1}"},
        {"traces/a.csv", "time_s,ipc\n0,1\n"},
    };
    const Frame frame =
        Frame::parse(submitFrame(JobOptions{}, bundle));
    const auto files = bundleFilesFrom(frame);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0].path, "manifest.json");
    EXPECT_EQ(files[0].content, "{\"x\": 1}");
    EXPECT_EQ(files[1].path, "traces/a.csv");
    EXPECT_EQ(files[1].content, "time_s,ipc\n0,1\n");
}

TEST(ServeProtocol, BundleRejectsHostilePaths)
{
    for (const char *hostile :
         {"../escape", "/etc/passwd", "a/../../b", "a//b", ".",
          "traces/..", "a\\b", ""}) {
        const std::vector<BundleFile> bundle = {{hostile, "x"}};
        const Frame frame =
            Frame::parse(submitFrame(JobOptions{}, bundle));
        EXPECT_THROW(bundleFilesFrom(frame), FatalError)
            << "path not rejected: " << hostile;
    }
}

TEST(ServeProtocol, SafeBundlePath)
{
    EXPECT_TRUE(safeBundlePath("manifest.json"));
    EXPECT_TRUE(safeBundlePath("traces/benchmark.csv"));
    EXPECT_TRUE(safeBundlePath("a.b/c-d_e/f"));
    EXPECT_FALSE(safeBundlePath(""));
    EXPECT_FALSE(safeBundlePath("/abs"));
    EXPECT_FALSE(safeBundlePath("../up"));
    EXPECT_FALSE(safeBundlePath("dir/./file"));
    EXPECT_FALSE(safeBundlePath("dir//file"));
    EXPECT_FALSE(safeBundlePath("trailing/"));
    EXPECT_FALSE(safeBundlePath("back\\slash"));
    EXPECT_FALSE(safeBundlePath(std::string(5000, 'a')));
}

TEST(ServeProtocol, ResultRoundTrips)
{
    ResultInfo info;
    info.jobId = 42;
    info.status = "failed";
    info.report = "line1\nline2\n";
    info.runId = "00c0ffee00c0ffee";
    info.ledgerSeq = 7;
    info.ledgerStable = "{\"command\": \"pipeline\"}";
    info.wallSeconds = 1.25;
    info.error = "store exploded";

    const ResultInfo back =
        resultInfoFrom(Frame::parse(resultFrame(info)));
    EXPECT_EQ(back.jobId, 42u);
    EXPECT_EQ(back.status, "failed");
    EXPECT_EQ(back.report, info.report);
    EXPECT_EQ(back.runId, info.runId);
    EXPECT_EQ(back.ledgerSeq, 7u);
    EXPECT_EQ(back.ledgerStable, info.ledgerStable);
    EXPECT_DOUBLE_EQ(back.wallSeconds, 1.25);
    EXPECT_EQ(back.error, "store exploded");
}

TEST(ServeProtocol, SubmitRoundTripsTraceContext)
{
    JobOptions options;
    options.job = "noop";
    options.traceId = "00c0ffee00c0ffee";
    options.parentSpan = "serve.submit";
    const JobOptions parsed =
        jobOptionsFrom(Frame::parse(submitFrame(options)));
    EXPECT_EQ(parsed.traceId, "00c0ffee00c0ffee");
    EXPECT_EQ(parsed.parentSpan, "serve.submit");

    // Absent trace context parses to empty (old clients).
    const JobOptions bare = jobOptionsFrom(
        Frame::parse(submitFrame(JobOptions{})));
    EXPECT_EQ(bare.traceId, "");
    EXPECT_EQ(bare.parentSpan, "");
}

TEST(ServeProtocol, TraceFlowIdIsDeterministicAndNonZero)
{
    const std::uint64_t id = traceFlowId("00c0ffee00c0ffee");
    EXPECT_EQ(id, traceFlowId("00c0ffee00c0ffee"));
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, traceFlowId("00c0ffee00c0ffef"));
    EXPECT_NE(traceFlowId(""), 0u);
}

TEST(ServeProtocol, PongRoundTripsHealth)
{
    PongInfo info;
    info.uptimeSeconds = 12.5;
    info.build = "abc1234";
    info.jobsInQueue = 3;
    const PongInfo back =
        pongInfoFrom(Frame::parse(pongFrame(info)));
    EXPECT_DOUBLE_EQ(back.uptimeSeconds, 12.5);
    EXPECT_EQ(back.build, "abc1234");
    EXPECT_EQ(back.jobsInQueue, 3u);

    // A bare pong from an older daemon parses to defaults.
    const PongInfo old = pongInfoFrom(
        Frame::parse("{\"v\":1,\"type\":\"pong\"}"));
    EXPECT_DOUBLE_EQ(old.uptimeSeconds, 0.0);
    EXPECT_EQ(old.build, "");
    EXPECT_EQ(old.jobsInQueue, 0u);
}

TEST(ServeProtocol, StatsRequestCarriesVolatileFlag)
{
    const Frame on = Frame::parse(statsFrame(true));
    EXPECT_EQ(on.type, "stats");
    EXPECT_TRUE(on.boolOr("volatile", false));
    const Frame off = Frame::parse(statsFrame(false));
    EXPECT_FALSE(off.boolOr("volatile", true));
}

TEST(ServeProtocol, WatchRoundTripsRequest)
{
    WatchRequest request;
    request.intervalSeconds = 0.25;
    request.count = 7;
    request.includeVolatile = false;
    const WatchRequest back =
        watchRequestFrom(Frame::parse(watchFrame(request)));
    EXPECT_DOUBLE_EQ(back.intervalSeconds, 0.25);
    EXPECT_EQ(back.count, 7u);
    EXPECT_FALSE(back.includeVolatile);

    // Defaults survive a minimal frame.
    const WatchRequest bare = watchRequestFrom(
        Frame::parse("{\"v\":1,\"type\":\"watch\"}"));
    EXPECT_DOUBLE_EQ(bare.intervalSeconds, 2.0);
    EXPECT_EQ(bare.count, 0u);
    EXPECT_TRUE(bare.includeVolatile);
}

TEST(ServeProtocol, StatsFramesRoundTripExposition)
{
    StatsInfo info;
    info.prometheus =
        "# HELP serve_jobs_accepted Jobs admitted.\n"
        "# TYPE serve_jobs_accepted counter\n"
        "serve_jobs_accepted 5\n";
    info.uptimeSeconds = 2.75;
    info.build = "deadbeef";
    info.jobsInQueue = 2;
    info.seq = 9;

    const Frame ok = Frame::parse(statsOkFrame(info));
    EXPECT_EQ(ok.type, "stats_ok");
    const StatsInfo backOk = statsInfoFrom(ok);
    EXPECT_EQ(backOk.prometheus, info.prometheus);
    EXPECT_DOUBLE_EQ(backOk.uptimeSeconds, 2.75);
    EXPECT_EQ(backOk.build, "deadbeef");
    EXPECT_EQ(backOk.jobsInQueue, 2u);

    const Frame event = Frame::parse(statsEventFrame(info));
    EXPECT_EQ(event.type, "stats_event");
    const StatsInfo backEvent = statsInfoFrom(event);
    EXPECT_EQ(backEvent.seq, 9u);
    EXPECT_EQ(backEvent.prometheus, info.prometheus);
}

TEST(ServeProtocol, ResultRoundTripsLatencySplitAndJobDir)
{
    ResultInfo info;
    info.jobId = 11;
    info.status = "ok";
    info.wallSeconds = 0.5;
    info.queueSeconds = 0.125;
    info.execSeconds = 0.375;
    info.jobDir = "/var/serve/jobs/job-000011";
    const ResultInfo back =
        resultInfoFrom(Frame::parse(resultFrame(info)));
    EXPECT_DOUBLE_EQ(back.queueSeconds, 0.125);
    EXPECT_DOUBLE_EQ(back.execSeconds, 0.375);
    EXPECT_EQ(back.jobDir, "/var/serve/jobs/job-000011");

    // Results from an older daemon lack the split: defaults hold.
    const ResultInfo old = resultInfoFrom(Frame::parse(
        "{\"v\":1,\"type\":\"result\",\"job_id\":1,"
        "\"status\":\"ok\",\"report\":\"\",\"run_id\":\"\","
        "\"ledger_seq\":0,\"ledger_stable\":\"\","
        "\"wall_seconds\":0.1,\"error\":\"\"}"));
    EXPECT_DOUBLE_EQ(old.queueSeconds, 0.0);
    EXPECT_DOUBLE_EQ(old.execSeconds, 0.0);
    EXPECT_EQ(old.jobDir, "");
}

TEST(ServeProtocol, ProgressFrameFields)
{
    const Frame frame =
        Frame::parse(progressFrame(3, 5, 24, "profile: Aitutu"));
    EXPECT_EQ(frame.type, "progress");
    EXPECT_EQ(frame.num("job_id"), 3.0);
    EXPECT_EQ(frame.num("done"), 5.0);
    EXPECT_EQ(frame.num("total"), 24.0);
    EXPECT_EQ(frame.str("label"), "profile: Aitutu");
}

} // namespace
} // namespace serve
} // namespace mbs
