/**
 * @file
 * Trace-stitching tests: two Chrome trace documents (client and
 * server) merge into one parseable timeline — server events land on
 * pid 2 with their timestamps re-anchored via the epochMicros delta,
 * flow arrows survive, process_name lanes label both sides, and run
 * metadata merges under a "serve." prefix.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/trace.hh"
#include "serve/stitch.hh"

namespace mbs {
namespace serve {
namespace {

/** A handcrafted client trace anchored at steady-clock 1000 us. */
std::string
clientTrace()
{
    return "{\n"
           "\"displayTimeUnit\": \"ms\",\n"
           "\"epochMicros\": 1000,\n"
           "\"otherData\": {\"run_id\": \"c0ffee\"},\n"
           "\"traceEvents\": [\n"
           "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1,"
           " \"tid\": 0, \"args\": {\"name\": \"old client lane\"}},\n"
           "  {\"name\": \"serve.submit\", \"cat\": \"serve\","
           " \"ph\": \"X\", \"ts\": 10, \"dur\": 500, \"pid\": 1,"
           " \"tid\": 7},\n"
           "  {\"name\": \"serve.submit\", \"cat\": \"serve\","
           " \"ph\": \"s\", \"ts\": 12, \"pid\": 1, \"tid\": 7,"
           " \"id\": \"0xdead\"}\n"
           "]\n}\n";
}

/** A server trace anchored 400 us after the client's epoch. */
std::string
serverTrace()
{
    return "{\n"
           "\"displayTimeUnit\": \"ms\",\n"
           "\"epochMicros\": 1400,\n"
           "\"otherData\": {\"run_id\": \"beef\"},\n"
           "\"traceEvents\": [\n"
           "  {\"name\": \"serve.job\", \"cat\": \"serve\","
           " \"ph\": \"X\", \"ts\": 100, \"dur\": 50, \"pid\": 1,"
           " \"tid\": 3},\n"
           "  {\"name\": \"serve.submit\", \"cat\": \"serve\","
           " \"ph\": \"f\", \"bp\": \"e\", \"ts\": 101, \"pid\": 1,"
           " \"tid\": 3, \"id\": \"0xdead\"}\n"
           "]\n}\n";
}

const JsonValue *
eventNamed(const JsonValue &doc, const std::string &name,
           const std::string &phase)
{
    for (const auto &event : doc.at("traceEvents").array) {
        const JsonValue *n = event.find("name");
        const JsonValue *ph = event.find("ph");
        if (n && ph && n->str == name && ph->str == phase)
            return &event;
    }
    return nullptr;
}

TEST(Stitch, MergesIntoOneParseableDocument)
{
    const std::string out =
        stitchTraces(clientTrace(), serverTrace());
    const JsonValue doc = parseJson(out);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
    // The stitched document keeps the client's steady-clock anchor.
    EXPECT_EQ(doc.at("epochMicros").number, 1000.0);
    ASSERT_TRUE(doc.at("traceEvents").isArray());
}

TEST(Stitch, ServerEventsMoveToPidTwoWithShiftedTimestamps)
{
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace(), serverTrace()));
    // Client slice: untouched.
    const JsonValue *submit = eventNamed(doc, "serve.submit", "X");
    ASSERT_NE(submit, nullptr);
    EXPECT_EQ(submit->at("pid").number, 1.0);
    EXPECT_EQ(submit->at("ts").number, 10.0);
    // Server slice: pid remapped, ts shifted by the 400 us epoch
    // delta onto the client timeline.
    const JsonValue *job = eventNamed(doc, "serve.job", "X");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->at("pid").number, 2.0);
    EXPECT_EQ(job->at("ts").number, 500.0);
    EXPECT_EQ(job->at("dur").number, 50.0);
}

TEST(Stitch, FlowArrowsSurviveWithMatchingIds)
{
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace(), serverTrace()));
    const JsonValue *start = eventNamed(doc, "serve.submit", "s");
    const JsonValue *finish = eventNamed(doc, "serve.submit", "f");
    ASSERT_NE(start, nullptr);
    ASSERT_NE(finish, nullptr);
    EXPECT_EQ(start->at("id").str, finish->at("id").str);
    EXPECT_EQ(finish->at("bp").str, "e");
    // The arrow crosses the process boundary.
    EXPECT_EQ(start->at("pid").number, 1.0);
    EXPECT_EQ(finish->at("pid").number, 2.0);
}

TEST(Stitch, ProcessLanesAreLabeledAndOldMetadataDropped)
{
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace(), serverTrace()));
    int lanes = 0;
    for (const auto &event : doc.at("traceEvents").array) {
        if (event.at("name").str != "process_name")
            continue;
        ++lanes;
        const std::string label = event.at("args").at("name").str;
        const double pid = event.at("pid").number;
        EXPECT_TRUE((pid == 1.0 && label == "mobilebench client") ||
                    (pid == 2.0 && label == "mobilebench serve"))
            << label;
    }
    // Exactly the two synthesized lanes; "old client lane" is gone.
    EXPECT_EQ(lanes, 2);
}

TEST(Stitch, OtherDataMergesUnderServePrefix)
{
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace(), serverTrace()));
    const JsonValue &data = doc.at("otherData");
    EXPECT_EQ(data.at("run_id").str, "c0ffee");
    EXPECT_EQ(data.at("serve.run_id").str, "beef");
}

TEST(Stitch, NegativeShiftedTimestampsClampToZero)
{
    // Server epoch *before* the client epoch (job raced ahead):
    // delta is negative and early server events clamp at 0.
    const std::string server =
        "{\"epochMicros\": 200, \"traceEvents\": ["
        "{\"name\": \"early\", \"ph\": \"X\", \"ts\": 100,"
        " \"dur\": 1, \"pid\": 1, \"tid\": 0}]}";
    const JsonValue doc =
        parseJson(stitchTraces(clientTrace(), server));
    const JsonValue *early = eventNamed(doc, "early", "X");
    ASSERT_NE(early, nullptr);
    EXPECT_EQ(early->at("ts").number, 0.0);
}

TEST(Stitch, MissingEpochIsFatal)
{
    const std::string noEpoch = "{\"traceEvents\": []}";
    EXPECT_THROW(stitchTraces(noEpoch, serverTrace()), FatalError);
    EXPECT_THROW(stitchTraces(clientTrace(), noEpoch), FatalError);
}

TEST(Stitch, RealTracerExportsStitch)
{
    // End to end against the actual exporter: record spans + flow
    // halves in two tracer generations and stitch the exports.
    auto &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    {
        obs::ScopedSpan span("serve.submit", "serve");
        tracer.flow('s', "serve.submit", "serve", 0xdeadull);
    }
    const std::string client = tracer.exportJson();

    tracer.clear();
    {
        obs::ScopedSpan span("serve.job", "serve");
        tracer.flow('f', "serve.submit", "serve", 0xdeadull);
    }
    const std::string server = tracer.exportJson();
    tracer.clear();
    tracer.setEnabled(false);

    const JsonValue doc = parseJson(stitchTraces(client, server));
    EXPECT_NE(eventNamed(doc, "serve.submit", "s"), nullptr);
    EXPECT_NE(eventNamed(doc, "serve.submit", "f"), nullptr);
    // The tracer exports spans as B/E pairs; both land on pid 2.
    const JsonValue *job = eventNamed(doc, "serve.job", "B");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->at("pid").number, 2.0);
    const JsonValue *end = eventNamed(doc, "serve.job", "E");
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end->at("pid").number, 2.0);
}

} // namespace
} // namespace serve
} // namespace mbs
