/**
 * @file
 * compareRecords tests: the perf_compare contract (threshold
 * verdicts, MISSING/NEW never fail, exit-driving regressions list),
 * the max(|base|, 1) delta denominator, worst-first ranking, bundle
 * artifact diffs, and JSON verdict validity.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/json_parse.hh"
#include "report/compare.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

using report::CompareResult;
using report::LedgerMetric;
using report::LedgerRecord;
using report::compareRecords;

LedgerRecord
base()
{
    LedgerRecord r;
    r.command = "pipeline";
    r.runId = "aaaa111122223333";
    r.seq = 1;
    r.logicalTicks = 1000;
    const auto add = [&](const std::string &name, double value) {
        LedgerMetric m;
        m.name = name;
        m.type = "counter";
        m.value = value;
        r.metrics.push_back(m);
    };
    add("exec.tasks", 72);
    add("sim.ticks", 132764);
    add("fault.injected", 0);
    return r;
}

const report::MetricDelta &
row(const CompareResult &result, const std::string &name)
{
    for (const auto &r : result.metrics) {
        if (r.name == name)
            return r;
    }
    ADD_FAILURE() << "no row for " << name;
    static report::MetricDelta none;
    return none;
}

TEST(CompareTest, IdenticalRecordsHaveNoRegressions)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.seq = 2;
    const CompareResult result = compareRecords(a, b, 0.0);
    EXPECT_FALSE(result.regression());
    EXPECT_TRUE(result.regressions.empty());
    for (const auto &r : result.metrics)
        EXPECT_EQ(r.verdict, "ok") << r.name;
    EXPECT_EQ(result.logicalTicks.verdict, "ok");
}

TEST(CompareTest, DeltaBeyondThresholdIsRegression)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[0].value = 100; // exec.tasks 72 -> 100 (+38.9%)
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_TRUE(result.regression());
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_EQ(result.regressions[0], "exec.tasks");
    EXPECT_EQ(row(result, "exec.tasks").verdict, "regression");
    EXPECT_NEAR(row(result, "exec.tasks").delta, 28.0 / 72.0, 1e-9);
    // Within threshold: the same diff at a looser gate passes.
    EXPECT_FALSE(compareRecords(a, b, 0.5).regression());
}

TEST(CompareTest, ZeroBaseUsesUnitDenominator)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[2].value = 5; // fault.injected 0 -> 5
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_TRUE(result.regression());
    EXPECT_DOUBLE_EQ(row(result, "fault.injected").delta, 5.0);
}

TEST(CompareTest, ImprovementIsNotARegression)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[1].value = 1000; // sim.ticks collapses
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_EQ(row(result, "sim.ticks").verdict, "improved");
    EXPECT_FALSE(result.regression());
}

TEST(CompareTest, MissingAndNewNeverFail)
{
    LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics.erase(b.metrics.begin()); // exec.tasks missing
    LedgerMetric fresh;
    fresh.name = "zz.new_counter";
    fresh.type = "counter";
    fresh.value = 1e9;
    b.metrics.push_back(fresh);
    const CompareResult result = compareRecords(a, b, 0.0);
    EXPECT_EQ(row(result, "exec.tasks").verdict, "missing");
    EXPECT_EQ(row(result, "zz.new_counter").verdict, "new");
    EXPECT_FALSE(result.regression());
}

TEST(CompareTest, RegressionsRankedWorstFirst)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[0].value = 720;     // exec.tasks +900%
    b.metrics[1].value = 200000;  // sim.ticks +50.6%
    const CompareResult result = compareRecords(a, b, 0.25);
    ASSERT_EQ(result.regressions.size(), 2u);
    EXPECT_EQ(result.regressions[0], "exec.tasks");
    EXPECT_EQ(result.regressions[1], "sim.ticks");
}

TEST(CompareTest, LogicalTicksGateTheVerdict)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.logicalTicks = 2000;
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_TRUE(result.regression());
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_EQ(result.regressions[0], "logical_ticks");
}

TEST(CompareTest, HistogramsCompareByObservationCount)
{
    LedgerRecord a = base();
    LedgerMetric h;
    h.name = "sim.phase_ticks";
    h.type = "histogram";
    h.observations = 100;
    h.sum = 5.0;
    a.metrics.push_back(h);
    LedgerRecord b = a;
    // Sum unchanged: the observation count drives the comparison.
    b.metrics.back().observations = 200;
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_EQ(row(result, "sim.phase_ticks").verdict, "regression");
}

TEST(CompareTest, JsonVerdictParsesAndNamesRegressions)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[0].value = 300;
    const CompareResult result = compareRecords(a, b, 0.25);
    const std::string json = result.toJson();
    const JsonValue doc = parseJson(json);
    ASSERT_TRUE(doc.isObject());
    const JsonValue *verdict = doc.find("verdict");
    ASSERT_NE(verdict, nullptr);
    EXPECT_EQ(verdict->str, "regression");
    const JsonValue *regressions = doc.find("regressions");
    ASSERT_NE(regressions, nullptr);
    ASSERT_TRUE(regressions->isArray());
    ASSERT_EQ(regressions->array.size(), 1u);
    EXPECT_EQ(regressions->array[0].str, "exec.tasks");
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->array.size(), result.metrics.size());
}

TEST(CompareTest, TextVerdictMarksRegressionRows)
{
    const LedgerRecord a = base();
    LedgerRecord b = base();
    b.metrics[0].value = 300;
    const CompareResult result = compareRecords(a, b, 0.25);
    const std::string text = result.toText();
    EXPECT_NE(text.find("REGRESSION exec.tasks"), std::string::npos)
        << text;
    EXPECT_NE(text.find("1 regression\n"), std::string::npos);
}

TEST(CompareTest, BundleArtifactsDiffWhenBothExist)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
        "mbs-compare-bundles";
    fs::remove_all(dir);
    fs::create_directories(dir / "a");
    fs::create_directories(dir / "b");
    std::ofstream(dir / "a" / "events.jsonl")
        << "{\"type\": \"sim.run.start\"}\n"
        << "{\"type\": \"sim.run.start\"}\n";
    std::ofstream(dir / "b" / "events.jsonl")
        << "{\"type\": \"sim.run.start\"}\n"
        << "{\"type\": \"exec.retry\"}\n";
    std::ofstream(dir / "a" / "timeseries.csv")
        << "domain,sample,time,checkpoint,metric,value\n"
        << "logical,0,0,start,sim.ticks,10\n"
        << "logical,1,1,end,sim.ticks,100\n";
    std::ofstream(dir / "b" / "timeseries.csv")
        << "domain,sample,time,checkpoint,metric,value\n"
        << "logical,1,1,end,sim.ticks,100\n";

    LedgerRecord a = base();
    a.telemetryDir = (dir / "a").string();
    LedgerRecord b = base();
    b.telemetryDir = (dir / "b").string();
    const CompareResult result = compareRecords(a, b, 0.25);
    EXPECT_TRUE(result.bundlesCompared);
    ASSERT_FALSE(result.events.empty());
    bool sawNew = false, sawImproved = false;
    for (const auto &r : result.events) {
        if (r.name == "exec.retry" && r.verdict == "new")
            sawNew = true;
        if (r.name == "sim.run.start" && r.verdict == "improved")
            sawImproved = true;
    }
    EXPECT_TRUE(sawNew);
    EXPECT_TRUE(sawImproved);
    // Final logical value is the last row per metric.
    ASSERT_EQ(result.timeseries.size(), 1u);
    EXPECT_EQ(result.timeseries[0].name, "sim.ticks");
    EXPECT_EQ(result.timeseries[0].verdict, "ok");
    // Advisory only: event/series diffs never gate the verdict.
    EXPECT_FALSE(result.regression());

    // A pruned bundle degrades to a metrics-only comparison.
    fs::remove_all(dir / "b");
    const CompareResult degraded = compareRecords(a, b, 0.25);
    EXPECT_FALSE(degraded.bundlesCompared);
    fs::remove_all(dir);
}

} // namespace
} // namespace mbs
