/**
 * @file
 * Multi-process ledger contention: several forked writers append to
 * the same ledger directory at once. The exclusive slot-marker claim
 * must hand every append a unique sequence number and publish every
 * record intact — no append silently replaced, none torn.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.hh"
#include "report/ledger.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

using report::LedgerMetric;
using report::LedgerRecord;
using report::RunLedger;

constexpr int kWriters = 4;
constexpr int kAppendsPerWriter = 8;

/** Run id encoding writer w, append i as "cc0000WW0000IIII". */
std::string
encodedRunId(int writer, int append)
{
    return strformat("cc0000%02d0000%04d", writer, append);
}

LedgerRecord
contendedRecord(int writer, int append)
{
    LedgerRecord r;
    r.command = "pipeline";
    r.runId = encodedRunId(writer, append);
    r.socName = "Snapdragon 888";
    r.socConfigDigest = "00000000deadbeef";
    r.suiteDigest = "0000000012345678";
    r.seed = 20240501;
    r.runs = 3;
    r.tickSeconds = 0.1;
    r.logicalTicks = std::uint64_t(writer) * 1000 + append;
    LedgerMetric counter;
    counter.name = "sim.ticks";
    counter.type = "counter";
    counter.value = double(append);
    r.metrics.push_back(counter);
    r.jobs = 1;
    r.buildStamp = "test-build";
    r.wallSeconds = 0.1;
    return r;
}

TEST(LedgerConcurrent, ForkedWritersGetUniqueSequences)
{
    const fs::path root =
        fs::path(::testing::TempDir()) / "mbs-ledger-concurrent";
    fs::remove_all(root);
    // Create the directory tree up front so the children only race
    // on appends, not on mkdir.
    { RunLedger warmup(root); }

    std::vector<pid_t> children;
    for (int writer = 0; writer < kWriters; ++writer) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            // Child: append its share, then leave without touching
            // gtest state. Any exception is a non-zero exit the
            // parent turns into a failure.
            int rc = 0;
            try {
                RunLedger ledger(root);
                for (int i = 0; i < kAppendsPerWriter; ++i) {
                    LedgerRecord r = contendedRecord(writer, i);
                    if (ledger.append(r) == 0)
                        rc = 2;
                }
            } catch (...) {
                rc = 1;
            }
            _exit(rc);
        }
        children.push_back(pid);
    }

    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << "writer " << pid << " failed";
    }

    // Every append landed: unique, gap-free sequence numbers (no
    // writer crashed, so every claimed slot published its record)
    // and all records load checksum-clean.
    RunLedger ledger(root);
    const auto entries = ledger.entries();
    constexpr std::size_t kTotal =
        std::size_t(kWriters) * kAppendsPerWriter;
    ASSERT_EQ(entries.size(), kTotal);

    std::set<std::uint64_t> seqs;
    std::set<std::string> runIds;
    std::array<int, kWriters> perWriter{};
    for (const auto &entry : entries) {
        seqs.insert(entry.seq);
        const LedgerRecord r = ledger.load(entry);
        runIds.insert(r.runId);
        ASSERT_EQ(r.runId.size(), 16u);
        const int writer = std::stoi(r.runId.substr(6, 2));
        ASSERT_GE(writer, 0);
        ASSERT_LT(writer, kWriters);
        ++perWriter[std::size_t(writer)];
    }
    EXPECT_EQ(seqs.size(), kTotal);
    EXPECT_EQ(*seqs.begin(), 1u);
    EXPECT_EQ(*seqs.rbegin(), kTotal);
    EXPECT_EQ(runIds.size(), kTotal);
    for (int writer = 0; writer < kWriters; ++writer)
        EXPECT_EQ(perWriter[std::size_t(writer)], kAppendsPerWriter)
            << "writer " << writer << " lost appends";

    fs::remove_all(root);
}

} // namespace
} // namespace mbs
