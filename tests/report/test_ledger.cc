/**
 * @file
 * RunLedger tests: append/load round trip, sequence assignment,
 * checksum and truncation detection, stable-block byte-identity
 * across volatile-only differences, selector resolution, and the
 * best-effort index.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "report/ledger.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

using report::LedgerMetric;
using report::LedgerRecord;
using report::RunLedger;

/** Fresh scratch directory per test, removed on destruction. */
class LedgerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root = fs::path(::testing::TempDir()) /
               ("mbs-ledger-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(root);
    }

    void TearDown() override { fs::remove_all(root); }

    fs::path root;
};

LedgerRecord
record(const std::string &runId, std::uint64_t ticks)
{
    LedgerRecord r;
    r.command = "pipeline";
    r.runId = runId;
    r.socName = "Snapdragon 888";
    r.socConfigDigest = "00000000deadbeef";
    r.suiteDigest = "0000000012345678";
    r.seed = 20240501;
    r.runs = 3;
    r.tickSeconds = 0.1;
    r.logicalTicks = ticks;
    LedgerMetric counter;
    counter.name = "sim.ticks";
    counter.type = "counter";
    counter.value = double(ticks);
    r.metrics.push_back(counter);
    LedgerMetric hist;
    hist.name = "sim.phase_ticks";
    hist.type = "histogram";
    hist.observations = 7;
    hist.sum = 42.5;
    r.metrics.push_back(hist);
    r.jobs = 1;
    r.buildStamp = "test-build";
    r.wallSeconds = 1.5;
    return r;
}

std::string
readAll(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST_F(LedgerTest, AppendAssignsSequenceAndRoundTrips)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    LedgerRecord b = record("bbbb444455556666", 200);
    EXPECT_EQ(ledger.append(a), 1u);
    EXPECT_EQ(ledger.append(b), 2u);
    EXPECT_EQ(a.seq, 1u);
    EXPECT_EQ(b.seq, 2u);

    const auto entries = ledger.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].seq, 1u);
    EXPECT_EQ(entries[0].runIdPrefix, "aaaa1111");
    EXPECT_EQ(entries[1].seq, 2u);

    const LedgerRecord loaded = ledger.load(entries[1]);
    EXPECT_EQ(loaded.runId, b.runId);
    EXPECT_EQ(loaded.seq, 2u);
    EXPECT_EQ(loaded.logicalTicks, 200u);
    EXPECT_EQ(loaded.command, "pipeline");
    EXPECT_EQ(loaded.seed, 20240501u);
    ASSERT_NE(loaded.findMetric("sim.phase_ticks"), nullptr);
    EXPECT_EQ(loaded.findMetric("sim.phase_ticks")->observations,
              7u);
    EXPECT_DOUBLE_EQ(loaded.findMetric("sim.phase_ticks")->sum,
                     42.5);
}

TEST_F(LedgerTest, SequenceResumesAfterReopen)
{
    {
        RunLedger ledger(root);
        LedgerRecord a = record("aaaa111122223333", 1);
        ledger.append(a);
    }
    RunLedger reopened(root);
    LedgerRecord b = record("aaaa111122223333", 2);
    EXPECT_EQ(reopened.append(b), 2u);
}

TEST_F(LedgerTest, StableJsonIgnoresVolatileFields)
{
    LedgerRecord a = record("aaaa111122223333", 100);
    LedgerRecord b = a;
    b.seq = 99;
    b.jobs = 16;
    b.buildStamp = "different-build";
    b.wallSeconds = 1234.5;
    b.telemetryDir = "/somewhere/else";
    EXPECT_EQ(a.stableJson(), b.stableJson());
    EXPECT_NE(a.toPayload(), b.toPayload());
}

TEST_F(LedgerTest, CorruptPayloadIsDetected)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    ledger.append(a);
    const auto entries = ledger.entries();
    ASSERT_EQ(entries.size(), 1u);

    // Flip one payload byte without changing the length.
    std::string bytes = readAll(entries[0].path);
    const std::size_t at = bytes.find("pipeline");
    ASSERT_NE(at, std::string::npos);
    bytes[at] = 'P';
    std::ofstream(entries[0].path, std::ios::binary) << bytes;

    EXPECT_THROW(ledger.load(entries[0]), FatalError);
}

TEST_F(LedgerTest, TruncatedPayloadIsDetected)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    ledger.append(a);
    const auto entries = ledger.entries();
    ASSERT_EQ(entries.size(), 1u);

    std::string bytes = readAll(entries[0].path);
    bytes.resize(bytes.size() - 10);
    std::ofstream(entries[0].path, std::ios::binary) << bytes;

    EXPECT_THROW(ledger.load(entries[0]), FatalError);
}

TEST_F(LedgerTest, FutureSchemaVersionIsRejected)
{
    LedgerRecord a = record("aaaa111122223333", 100);
    std::string payload = a.toPayload();
    const std::string needle = "\"schema_version\": 1";
    const std::size_t at = payload.find(needle);
    ASSERT_NE(at, std::string::npos);
    payload.replace(at, needle.size(), "\"schema_version\": 99");
    EXPECT_THROW(LedgerRecord::fromPayload(payload, "test"),
                 FatalError);
}

TEST_F(LedgerTest, ResolveSelectors)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    LedgerRecord b = record("bbbb444455556666", 200);
    LedgerRecord c = record("cccc777788889999", 300);
    ledger.append(a);
    ledger.append(b);
    ledger.append(c);

    EXPECT_EQ(ledger.resolve("last").logicalTicks, 300u);
    EXPECT_EQ(ledger.resolve("last~1").logicalTicks, 200u);
    EXPECT_EQ(ledger.resolve("last~2").logicalTicks, 100u);
    EXPECT_EQ(ledger.resolve("2").logicalTicks, 200u);
    EXPECT_EQ(ledger.resolve("bbbb").logicalTicks, 200u);
    // A record file path resolves from any ledger.
    EXPECT_EQ(ledger.resolve(ledger.entries()[0].path.string())
                  .logicalTicks,
              100u);

    EXPECT_THROW(ledger.resolve("last~3"), FatalError);
    EXPECT_THROW(ledger.resolve("7"), FatalError);
    EXPECT_THROW(ledger.resolve("dddd"), FatalError);
    EXPECT_THROW(ledger.resolve("not a selector"), FatalError);
}

TEST_F(LedgerTest, RepeatedRunIdPrefersNewestButMixedIsAmbiguous)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    LedgerRecord b = record("aaaa111122223333", 200);
    ledger.append(a);
    ledger.append(b);
    // Same run id twice: the newest record wins.
    EXPECT_EQ(ledger.resolve("aaaa1111").logicalTicks, 200u);

    LedgerRecord c = record("aaaa999900001111", 300);
    ledger.append(c);
    // "aaaa" now matches two different run ids.
    EXPECT_THROW(ledger.resolve("aaaa"), FatalError);
}

TEST_F(LedgerTest, EmptyLedgerResolveAndSummaryFail)
{
    RunLedger ledger(root);
    EXPECT_TRUE(ledger.entries().empty());
    EXPECT_THROW(ledger.resolve("last"), FatalError);
}

TEST_F(LedgerTest, IndexLineWrittenPerAppend)
{
    RunLedger ledger(root);
    LedgerRecord a = record("aaaa111122223333", 100);
    LedgerRecord b = record("bbbb444455556666", 200);
    ledger.append(a);
    ledger.append(b);
    std::ifstream in(root / "index.jsonl");
    ASSERT_TRUE(bool(in));
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"seq\": "), std::string::npos);
        EXPECT_NE(line.find("\"run_id\": "), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 2);
}

TEST_F(LedgerTest, ChecksumHeaderVerifies)
{
    const std::string payload = "{\"hello\": 1}\n";
    const std::string header = RunLedger::checksumHeader(payload);
    EXPECT_EQ(RunLedger::verifiedPayload(header + "\n" + payload,
                                         "test"),
              payload);
    EXPECT_THROW(
        RunLedger::verifiedPayload(header + "\n" + payload + "x",
                                   "test"),
        FatalError);
    EXPECT_THROW(RunLedger::verifiedPayload("no header", "test"),
                 FatalError);
}

} // namespace
} // namespace mbs
