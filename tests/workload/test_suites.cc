/**
 * @file
 * Deep-dive structural tests of the suite definitions, one section
 * per suite (Table I and Section III of the paper).
 */

#include <gtest/gtest.h>

#include "soc/config.hh"
#include "workload/registry.hh"

namespace mbs {
namespace {

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

// --- 3DMark -------------------------------------------------------

TEST(Suite3DMark, HasFourSubBenchmarks)
{
    const auto &suite = registry().suite("3DMark v2");
    ASSERT_EQ(suite.benchmarks.size(), 4u);
    EXPECT_EQ(suite.benchmarks[0].name(), "3DMark Slingshot");
    EXPECT_EQ(suite.benchmarks[3].name(),
              "3DMark Wild Life Extreme");
}

TEST(Suite3DMark, WildLifeUsesVulkanSlingshotUsesOpenGl)
{
    for (const auto &p :
         registry().unit("3DMark Wild Life").phases()) {
        if (p.demand.gpu.api != GraphicsApi::None &&
            p.kernel == "renderScene") {
            EXPECT_EQ(p.demand.gpu.api, GraphicsApi::Vulkan)
                << p.name;
        }
    }
    for (const auto &p :
         registry().unit("3DMark Slingshot").phases()) {
        if (p.kernel == "renderScene") {
            EXPECT_EQ(p.demand.gpu.api, GraphicsApi::OpenGlEs)
                << p.name;
        }
    }
}

TEST(Suite3DMark, SlingshotHasThreeEscalatingPhysicsLevels)
{
    int levels = 0;
    double prev = 0.0;
    for (const auto &p :
         registry().unit("3DMark Slingshot").phases()) {
        if (p.kernel != "physics")
            continue;
        ++levels;
        EXPECT_GT(p.demand.threads[0].intensity, prev);
        prev = p.demand.threads[0].intensity;
    }
    EXPECT_EQ(levels, 3);
}

TEST(Suite3DMark, ExtremeVariantsRenderMorePixels)
{
    const auto max_res = [](const Benchmark &b) {
        double res = 0.0;
        for (const auto &p : b.phases())
            res = std::max(res, p.demand.gpu.resolutionScale);
        return res;
    };
    EXPECT_GT(max_res(registry().unit("3DMark Slingshot Extreme")),
              max_res(registry().unit("3DMark Slingshot")));
    EXPECT_DOUBLE_EQ(
        max_res(registry().unit("3DMark Wild Life Extreme")), 4.0);
}

// --- Antutu -------------------------------------------------------

TEST(SuiteAntutu, GpuSegmentHasFiveMicroBenchmarks)
{
    // Swordsman, Refinery, Terracotta plus the two image-processing
    // tests (Fisheye + Blur are one short phase here), with loading
    // bursts between the scenes.
    const auto &gpu = registry().unit("Antutu GPU");
    int scenes = 0, loads = 0;
    for (const auto &p : gpu.phases()) {
        if (p.kernel == "renderScene")
            ++scenes;
        if (p.kernel == "loadingBurst")
            ++loads;
    }
    EXPECT_EQ(scenes, 3);
    EXPECT_EQ(loads, 2);
}

TEST(SuiteAntutu, CpuSegmentStartsWithGemmEndsWithMultiCore)
{
    const auto &cpu = registry().unit("Antutu CPU").phases();
    EXPECT_EQ(cpu.front().kernel, "gemm");
    EXPECT_EQ(cpu.back().kernel, "multicoreStress");
}

TEST(SuiteAntutu, MemSegmentMixesRamAndStorage)
{
    int ram = 0, storage = 0;
    for (const auto &p : registry().unit("Antutu Mem").phases()) {
        if (p.kernel == "memoryStream")
            ++ram;
        if (p.kernel == "storageIo")
            ++storage;
    }
    EXPECT_GE(ram, 2);
    EXPECT_GE(storage, 2);
}

TEST(SuiteAntutu, UxVideoTestsCoverAllFourCodecs)
{
    std::set<MediaCodec> codecs;
    for (const auto &p : registry().unit("Antutu UX").phases()) {
        if (p.demand.aie.codec != MediaCodec::None)
            codecs.insert(p.demand.aie.codec);
    }
    EXPECT_EQ(codecs, (std::set<MediaCodec>{
                          MediaCodec::H264, MediaCodec::H265,
                          MediaCodec::Vp9, MediaCodec::Av1}));
}

TEST(SuiteAntutu, Av1PhaseIsNearTheEnd)
{
    const auto &ux = registry().unit("Antutu UX");
    for (std::size_t i = 0; i < ux.phases().size(); ++i) {
        if (ux.phases()[i].demand.aie.codec == MediaCodec::Av1) {
            EXPECT_GT(ux.phaseStartFraction(i), 0.6);
        }
    }
}

// --- Geekbench ----------------------------------------------------

TEST(SuiteGeekbench, Gb5CpuSingleThenMultiCore)
{
    const auto &phases = registry().unit("Geekbench 5 CPU").phases();
    ASSERT_EQ(phases.size(), 6u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(phases[i].demand.threads[0].count, 1) << i;
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_EQ(phases[i].demand.threads[0].count, 8) << i;
}

TEST(SuiteGeekbench, Gb5CpuCoversIntFpCrypto)
{
    std::set<std::string> kernels;
    for (const auto &p : registry().unit("Geekbench 5 CPU").phases())
        kernels.insert(p.kernel);
    EXPECT_EQ(kernels, (std::set<std::string>{
                           "integerOps", "floatOps", "crypto"}));
}

TEST(SuiteGeekbench, Gb6CpuHasFiveSections)
{
    // productivity, developer, ML, image editing, image synthesis.
    std::set<std::string> kernels;
    for (const auto &p : registry().unit("Geekbench 6 CPU").phases())
        kernels.insert(p.kernel);
    EXPECT_TRUE(kernels.count("integerOps"));
    EXPECT_TRUE(kernels.count("compression"));
    EXPECT_TRUE(kernels.count("nnInference"));
    EXPECT_TRUE(kernels.count("photoEdit"));
    EXPECT_TRUE(kernels.count("floatOps"));
}

TEST(SuiteGeekbench, ComputeBenchmarksAreGpuComputeOnly)
{
    for (const char *name :
         {"Geekbench 5 Compute", "Geekbench 6 Compute"}) {
        for (const auto &p : registry().unit(name).phases()) {
            EXPECT_EQ(p.kernel, "gpuCompute") << name;
            EXPECT_TRUE(p.demand.gpu.offscreen) << name;
        }
    }
}

// --- GFXBench -----------------------------------------------------

TEST(SuiteGfxBench, HighLevelPairsOnAndOffScreen)
{
    int onscreen = 0, offscreen = 0;
    for (const auto &p : registry().unit("GFXBench High").phases()) {
        if (p.demand.gpu.offscreen)
            ++offscreen;
        else
            ++onscreen;
    }
    EXPECT_EQ(onscreen + offscreen, 19);
    EXPECT_GT(onscreen, 4);
    EXPECT_GT(offscreen, 4);
}

TEST(SuiteGfxBench, HighLevelMixesApis)
{
    int gl = 0, vk = 0;
    for (const auto &p : registry().unit("GFXBench High").phases()) {
        if (p.demand.gpu.api == GraphicsApi::OpenGlEs)
            ++gl;
        if (p.demand.gpu.api == GraphicsApi::Vulkan)
            ++vk;
    }
    EXPECT_GT(gl, 0);
    EXPECT_GT(vk, 0);
}

TEST(SuiteGfxBench, LowLevelOffscreenVariantsPushHarder)
{
    const auto &low = registry().unit("GFXBench Low").phases();
    ASSERT_EQ(low.size(), 8u);
    // Tests come in on/off-screen pairs.
    for (std::size_t i = 0; i + 1 < low.size(); i += 2) {
        EXPECT_FALSE(low[i].demand.gpu.offscreen);
        EXPECT_TRUE(low[i + 1].demand.gpu.offscreen);
        EXPECT_GT(low[i + 1].demand.gpu.workRate,
                  low[i].demand.gpu.workRate);
    }
}

TEST(SuiteGfxBench, SpecialAlternatesRenderAndPsnr)
{
    const auto &special =
        registry().unit("GFXBench Special").phases();
    ASSERT_EQ(special.size(), 4u);
    EXPECT_EQ(special[0].kernel, "renderScene");
    EXPECT_EQ(special[1].kernel, "psnrCompare");
    EXPECT_EQ(special[2].kernel, "renderScene");
    EXPECT_EQ(special[3].kernel, "psnrCompare");
    // Second PSNR section runs in higher precision (more AIE work).
    EXPECT_GT(special[3].demand.aie.workRate,
              special[1].demand.aie.workRate);
}

// --- PCMark -------------------------------------------------------

TEST(SuitePcMark, StorageIsIoAndDatabase)
{
    for (const auto &p : registry().unit("PCMark Storage").phases()) {
        EXPECT_TRUE(p.kernel == "storageIo" || p.kernel == "database")
            << p.kernel;
        EXPECT_GT(p.demand.storage.ioRate, 0.0);
    }
}

TEST(SuitePcMark, WorkCoversEverydayActivities)
{
    std::set<std::string> kernels;
    for (const auto &p : registry().unit("PCMark Work").phases())
        kernels.insert(p.kernel);
    EXPECT_TRUE(kernels.count("webBrowse"));
    EXPECT_TRUE(kernels.count("videoCodec"));
    EXPECT_TRUE(kernels.count("photoEdit"));
    EXPECT_TRUE(kernels.count("dataProcessing"));
}

// --- cross-suite sanity -------------------------------------------

TEST(SuiteSanity, MemoryDemandsStayWithinPhysicalRam)
{
    const auto total = SocConfig::snapdragon888().memory.totalBytes;
    const auto idle = SocConfig::snapdragon888().memory.idleBytes;
    for (const auto &b : registry().units()) {
        for (const auto &p : b.phases()) {
            EXPECT_LT(idle + p.demand.memory.footprintBytes +
                          p.demand.gpu.textureBytes,
                      total)
                << b.name() << " / " << p.name;
        }
    }
}

TEST(SuiteSanity, ThreadIntensitiesAreNormalized)
{
    for (const auto &b : registry().units()) {
        for (const auto &p : b.phases()) {
            for (const auto &group : p.demand.threads) {
                EXPECT_GT(group.count, 0)
                    << b.name() << " / " << p.name;
                EXPECT_GT(group.intensity, 0.0);
                EXPECT_LE(group.intensity, 1.0);
            }
        }
    }
}

TEST(SuiteSanity, GpuWorkAlwaysHasAnApi)
{
    for (const auto &b : registry().units()) {
        for (const auto &p : b.phases()) {
            if (p.demand.gpu.workRate > 0.0) {
                EXPECT_NE(p.demand.gpu.api, GraphicsApi::None)
                    << b.name() << " / " << p.name;
            }
        }
    }
}

} // namespace
} // namespace mbs
