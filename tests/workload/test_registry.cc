/**
 * @file
 * Tests for the suite registry: Table-I structure and the calibrated
 * runtime/instruction targets from DESIGN.md.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/kernels.hh"
#include "workload/registry.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace {

const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

TEST(Registry, HasSevenSuites)
{
    ASSERT_EQ(registry().suites().size(), 7u);
    EXPECT_EQ(registry().suites()[0].name, "3DMark v2");
    EXPECT_EQ(registry().suites()[1].name, "Antutu v9");
    EXPECT_EQ(registry().suites()[2].name, "Aitutu v2");
    EXPECT_EQ(registry().suites()[3].name, "Geekbench 5");
    EXPECT_EQ(registry().suites()[4].name, "Geekbench 6");
    EXPECT_EQ(registry().suites()[5].name, "GFXBench v5");
    EXPECT_EQ(registry().suites()[6].name, "PCMark");
}

TEST(Registry, HasEighteenUnits)
{
    EXPECT_EQ(registry().units().size(), 18u);
}

TEST(Registry, PublishersMatchTableI)
{
    EXPECT_EQ(registry().suite("3DMark v2").publisher, "UL");
    EXPECT_EQ(registry().suite("Antutu v9").publisher,
              "Cheetah Mobile");
    EXPECT_EQ(registry().suite("Geekbench 5").publisher,
              "Primate Labs");
    EXPECT_EQ(registry().suite("GFXBench v5").publisher, "Kishonti");
    EXPECT_EQ(registry().suite("PCMark").publisher, "UL");
}

TEST(Registry, OnlyAntutuRunsAsWhole)
{
    for (const auto &suite : registry().suites()) {
        EXPECT_EQ(suite.runsAsWhole, suite.name == "Antutu v9")
            << suite.name;
    }
}

TEST(Registry, AntutuSegmentsAreNotIndividuallyExecutable)
{
    for (const auto &bench :
         registry().suite("Antutu v9").benchmarks) {
        EXPECT_FALSE(bench.individuallyExecutable()) << bench.name();
    }
    EXPECT_TRUE(registry().unit("Aitutu").individuallyExecutable());
    EXPECT_TRUE(
        registry().unit("Geekbench 5 CPU").individuallyExecutable());
}

TEST(Registry, TotalRuntimeMatchesTableVI)
{
    // The paper's Table VI "Original Set": 4429.5 seconds.
    EXPECT_NEAR(registry().totalRuntimeSeconds(), 4429.5, 0.01);
}

TEST(Registry, WildLifeRunsAboutAMinute)
{
    const auto &wl = registry().unit("3DMark Wild Life");
    EXPECT_NEAR(wl.totalDurationSeconds(), 61.5, 0.01);
}

TEST(Registry, InstructionCountExtremesMatchFig1)
{
    // Smallest: GFXBench Special at ~1 B; largest: Geekbench 6 CPU
    // at ~57 B; mean ~14 B.
    double min_ic = 1e30, max_ic = 0.0, sum = 0.0;
    std::string min_name, max_name;
    for (const auto &b : registry().units()) {
        const double ic = b.totalInstructionsBillions();
        sum += ic;
        if (ic < min_ic) {
            min_ic = ic;
            min_name = b.name();
        }
        if (ic > max_ic) {
            max_ic = ic;
            max_name = b.name();
        }
    }
    EXPECT_EQ(min_name, "GFXBench Special");
    EXPECT_NEAR(min_ic, 1.0, 0.01);
    EXPECT_EQ(max_name, "Geekbench 6 CPU");
    EXPECT_NEAR(max_ic, 57.0, 0.01);
    EXPECT_NEAR(sum / 18.0, 14.0, 0.5);
}

TEST(Registry, NewerBenchmarksHaveHigherInstructionCounts)
{
    // Fig. 1 commentary: Geekbench 6 vs 5, Wild Life vs Slingshot.
    const auto ic = [&](const char *name) {
        return registry().unit(name).totalInstructionsBillions();
    };
    EXPECT_GT(ic("Geekbench 6 CPU"), ic("Geekbench 5 CPU"));
    EXPECT_GT(ic("Geekbench 6 Compute"), ic("Geekbench 5 Compute"));
    EXPECT_GT(ic("3DMark Wild Life"), ic("3DMark Slingshot"));
}

TEST(Registry, GfxBenchMicroBenchmarkCounts)
{
    // 19 High-Level + 8 Low-Level + 4 Special phases (2 sections x
    // render+PSNR) group the suite's 29 published micro-benchmarks.
    EXPECT_EQ(registry().unit("GFXBench High").phases().size(), 19u);
    EXPECT_EQ(registry().unit("GFXBench Low").phases().size(), 8u);
    EXPECT_EQ(registry().unit("GFXBench Special").phases().size(), 4u);
}

TEST(Registry, Geekbench5ComputeHasElevenWorkloads)
{
    EXPECT_EQ(registry().unit("Geekbench 5 Compute").phases().size(),
              11u);
    EXPECT_EQ(registry().unit("Geekbench 6 Compute").phases().size(),
              8u);
}

TEST(Registry, AntutuGpuTimelineMatchesObservation4)
{
    // Swordsman ~15%, Refinery ~30%, Terracotta ~49% of the segment;
    // loading bursts sit near 16% and 49% of execution.
    const auto &gpu = registry().unit("Antutu GPU");
    const auto &phases = gpu.phases();
    ASSERT_GE(phases.size(), 5u);
    const double total = gpu.totalDurationSeconds();
    EXPECT_EQ(phases[0].name, "Swordsman");
    EXPECT_NEAR(phases[0].durationSeconds / total, 0.15, 0.02);
    EXPECT_NEAR(phases[2].durationSeconds / total, 0.30, 0.02);
    EXPECT_NEAR(phases[4].durationSeconds / total, 0.49, 0.02);
    EXPECT_NEAR(gpu.phaseStartFraction(1), 0.16, 0.01);
    EXPECT_NEAR(gpu.phaseStartFraction(3), 0.49, 0.02);
}

TEST(Registry, AntutuUxCoversFourCodecs)
{
    const auto &ux = registry().unit("Antutu UX");
    int codecs = 0;
    bool has_av1 = false;
    for (const auto &p : ux.phases()) {
        if (p.demand.aie.codec != MediaCodec::None) {
            ++codecs;
            if (p.demand.aie.codec == MediaCodec::Av1)
                has_av1 = true;
        }
    }
    EXPECT_GE(codecs, 4);
    EXPECT_TRUE(has_av1);
}

TEST(Registry, UnknownLookupsAreFatal)
{
    EXPECT_THROW(registry().unit("No Such Bench"), FatalError);
    EXPECT_THROW(registry().suite("No Such Suite"), FatalError);
    EXPECT_FALSE(registry().hasUnit("No Such Bench"));
    EXPECT_TRUE(registry().hasUnit("Antutu Mem"));
}

TEST(Registry, UnitNamesAreUniqueAndOrdered)
{
    const auto names = registry().unitNames();
    ASSERT_EQ(names.size(), 18u);
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
    }
    EXPECT_EQ(names.front(), "3DMark Slingshot");
    EXPECT_EQ(names.back(), "PCMark Work");
}

TEST(Registry, EveryPhaseHasPositiveBudgetOrIsIdle)
{
    for (const auto &b : registry().units()) {
        for (const auto &p : b.phases()) {
            EXPECT_GE(p.demand.cpu.instructionsBillions, 0.0)
                << b.name() << " / " << p.name;
            EXPECT_GT(p.durationSeconds, 0.0);
            EXPECT_FALSE(p.kernel.empty());
        }
    }
}

TEST(Registry, BuildsFromExternalSuites)
{
    // The ctor the spec compiler and text loader use.
    Suite s = SuiteBuilder("Custom", "me")
                  .benchmark("Only", HardwareTarget::Cpu)
                  .phase("p", "gemm", kernels::gemm(4, 0.9), 5, 2)
                  .build();
    const WorkloadRegistry reg({s});
    EXPECT_EQ(reg.units().size(), 1u);
    EXPECT_TRUE(reg.hasSuite("Custom"));
    EXPECT_TRUE(reg.hasUnit("Only"));
    EXPECT_EQ(reg.unit("Only").suiteName(), "Custom");
}

TEST(Registry, RejectsBadExternalSuites)
{
    EXPECT_THROW(WorkloadRegistry(std::vector<Suite>{}), FatalError);

    Suite s = SuiteBuilder("S", "me")
                  .benchmark("B", HardwareTarget::Cpu)
                  .phase("p", "gemm", kernels::gemm(4, 0.9), 5, 2)
                  .build();
    // Two units sharing a display name break name-keyed lookups.
    EXPECT_THROW(WorkloadRegistry({s, s}), FatalError);
}

/** Parameterized check: per-unit calibrated runtimes (DESIGN.md). */
struct RuntimeTarget
{
    const char *name;
    double seconds;
};

class UnitRuntime : public ::testing::TestWithParam<RuntimeTarget>
{
};

TEST_P(UnitRuntime, MatchesCalibration)
{
    const auto target = GetParam();
    EXPECT_NEAR(registry().unit(target.name).totalDurationSeconds(),
                target.seconds, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Calibration, UnitRuntime,
    ::testing::Values(
        RuntimeTarget{"3DMark Slingshot", 280.0},
        RuntimeTarget{"3DMark Slingshot Extreme", 310.0},
        RuntimeTarget{"3DMark Wild Life", 61.5},
        RuntimeTarget{"3DMark Wild Life Extreme", 75.0},
        RuntimeTarget{"Antutu CPU", 130.0},
        RuntimeTarget{"Antutu GPU", 200.0},
        RuntimeTarget{"Antutu Mem", 145.0},
        RuntimeTarget{"Antutu UX", 170.0},
        RuntimeTarget{"Aitutu", 260.0},
        RuntimeTarget{"Geekbench 5 CPU", 140.0},
        RuntimeTarget{"Geekbench 5 Compute", 25.0},
        RuntimeTarget{"Geekbench 6 CPU", 450.0},
        RuntimeTarget{"Geekbench 6 Compute", 243.16},
        RuntimeTarget{"GFXBench High", 1100.0},
        RuntimeTarget{"GFXBench Low", 450.0},
        RuntimeTarget{"GFXBench Special", 80.2},
        RuntimeTarget{"PCMark Storage", 95.0},
        RuntimeTarget{"PCMark Work", 214.64}));

} // namespace
} // namespace mbs
