/**
 * @file
 * Tests for the shared suite-construction path (makePhase /
 * SuiteBuilder) used by both the hard-coded suite files and the spec
 * compiler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace {

TEST(MakePhase, StampsEveryField)
{
    const Phase p = makePhase("warm", "gemm",
                              kernels::gemm(4, 0.9), 12.5, 30.0);
    EXPECT_EQ(p.name, "warm");
    EXPECT_EQ(p.kernel, "gemm");
    EXPECT_DOUBLE_EQ(p.durationSeconds, 12.5);
    EXPECT_DOUBLE_EQ(p.demand.cpu.instructionsBillions, 30.0);
    // The demand bundle is the kernel's, budget aside.
    const PhaseDemand raw = kernels::gemm(4, 0.9);
    EXPECT_DOUBLE_EQ(p.demand.cpu.baseIpc, raw.cpu.baseIpc);
    EXPECT_EQ(p.demand.threads.size(), raw.threads.size());
}

TEST(SuiteBuilder, BuildsTheSameSuiteAsDirectConstruction)
{
    SuiteBuilder builder("S", "pub", /*runs_as_whole=*/true);
    builder.benchmark("A", HardwareTarget::Cpu)
        .phase("p1", "gemm", kernels::gemm(4, 0.9), 10, 20)
        .phase("p2", "crypto", kernels::crypto(2, 0.8), 5, 8)
        .benchmark("B", HardwareTarget::Gpu,
                   /*individually_executable=*/false)
        .rawPhase(makePhase(
            "p3", "renderScene",
            kernels::renderScene(GraphicsApi::Vulkan, 0.8), 30, 3));
    const Suite built = builder.build();

    Suite direct;
    direct.name = "S";
    direct.publisher = "pub";
    direct.runsAsWhole = true;
    Benchmark a("S", "A", HardwareTarget::Cpu);
    a.addPhase(makePhase("p1", "gemm", kernels::gemm(4, 0.9), 10, 20));
    a.addPhase(makePhase("p2", "crypto", kernels::crypto(2, 0.8), 5,
                         8));
    Benchmark b("S", "B", HardwareTarget::Gpu, false);
    b.addPhase(makePhase(
        "p3", "renderScene",
        kernels::renderScene(GraphicsApi::Vulkan, 0.8), 30, 3));
    direct.benchmarks = {a, b};

    EXPECT_EQ(built.digest(), direct.digest());
    ASSERT_EQ(built.benchmarks.size(), 2u);
    EXPECT_EQ(built.benchmarks[0].suiteName(), "S");
    EXPECT_FALSE(built.benchmarks[1].individuallyExecutable());
}

TEST(SuiteBuilder, PhaseBeforeBenchmarkIsFatal)
{
    SuiteBuilder builder("S", "pub");
    EXPECT_THROW(builder.phase("p", "gemm", kernels::gemm(4, 0.9),
                               1, 1),
                 FatalError);
}

TEST(SuiteBuilder, EmptySuiteIsFatal)
{
    SuiteBuilder builder("S", "pub");
    EXPECT_THROW(builder.build(), FatalError);
}

TEST(SuiteBuilder, EmptyBenchmarkIsFatal)
{
    // ...whether detected at build() or when the next benchmark
    // opens.
    SuiteBuilder atBuild("S", "pub");
    atBuild.benchmark("A", HardwareTarget::Cpu);
    EXPECT_THROW(atBuild.build(), FatalError);

    SuiteBuilder atNext("S", "pub");
    atNext.benchmark("A", HardwareTarget::Cpu);
    EXPECT_THROW(atNext.benchmark("B", HardwareTarget::Cpu),
                 FatalError);
}

} // namespace
} // namespace mbs
