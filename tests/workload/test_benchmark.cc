/**
 * @file
 * Tests for the workload description types.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/benchmark.hh"

namespace mbs {
namespace {

Benchmark
twoPhase()
{
    Benchmark b("SuiteX", "BenchY", HardwareTarget::Cpu);
    Phase p1;
    p1.name = "warm";
    p1.kernel = "gemm";
    p1.durationSeconds = 10.0;
    p1.demand.cpu.instructionsBillions = 2.0;
    b.addPhase(p1);
    Phase p2;
    p2.name = "main";
    p2.kernel = "fft";
    p2.durationSeconds = 30.0;
    p2.demand.cpu.instructionsBillions = 6.0;
    b.addPhase(p2);
    return b;
}

TEST(Benchmark, AccessorsAndTotals)
{
    const Benchmark b = twoPhase();
    EXPECT_EQ(b.suiteName(), "SuiteX");
    EXPECT_EQ(b.name(), "BenchY");
    EXPECT_EQ(b.target(), HardwareTarget::Cpu);
    EXPECT_TRUE(b.individuallyExecutable());
    EXPECT_EQ(b.phases().size(), 2u);
    EXPECT_DOUBLE_EQ(b.totalDurationSeconds(), 40.0);
    EXPECT_DOUBLE_EQ(b.totalInstructionsBillions(), 8.0);
}

TEST(Benchmark, RejectsNonPositiveDuration)
{
    Benchmark b("S", "B", HardwareTarget::Gpu);
    Phase p;
    p.durationSeconds = 0.0;
    EXPECT_THROW(b.addPhase(p), FatalError);
}

TEST(Benchmark, ToTimedPhasesPreservesOrderAndDemand)
{
    const Benchmark b = twoPhase();
    const auto timed = b.toTimedPhases();
    ASSERT_EQ(timed.size(), 2u);
    EXPECT_DOUBLE_EQ(timed[0].durationSeconds, 10.0);
    EXPECT_DOUBLE_EQ(timed[1].durationSeconds, 30.0);
    EXPECT_DOUBLE_EQ(timed[1].demand.cpu.instructionsBillions, 6.0);
}

TEST(Benchmark, PhaseStartFractions)
{
    const Benchmark b = twoPhase();
    EXPECT_DOUBLE_EQ(b.phaseStartFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(b.phaseStartFraction(1), 0.25);
    EXPECT_THROW(b.phaseStartFraction(2), FatalError);
}

TEST(Benchmark, NonExecutableFlag)
{
    Benchmark b("Antutu v9", "Antutu Mem",
                HardwareTarget::MemorySubsystem, false);
    EXPECT_FALSE(b.individuallyExecutable());
}

TEST(Suite, TotalDurationSumsBenchmarks)
{
    Suite s;
    s.name = "S";
    s.benchmarks.push_back(twoPhase());
    s.benchmarks.push_back(twoPhase());
    EXPECT_DOUBLE_EQ(s.totalDurationSeconds(), 80.0);
}

TEST(HardwareTarget, NamesMatchTableI)
{
    EXPECT_EQ(hardwareTargetName(HardwareTarget::Cpu), "CPU");
    EXPECT_EQ(hardwareTargetName(HardwareTarget::Gpu), "GPU");
    EXPECT_EQ(hardwareTargetName(HardwareTarget::MemorySubsystem),
              "Memory subsystem");
    EXPECT_EQ(hardwareTargetName(HardwareTarget::StorageSubsystem),
              "Storage subsystem");
    EXPECT_EQ(hardwareTargetName(HardwareTarget::Ai),
              "AI-related tasks");
    EXPECT_EQ(hardwareTargetName(HardwareTarget::EverydayTasks),
              "Everyday tasks");
}

} // namespace
} // namespace mbs
