/**
 * @file
 * Tests for the text-format workload loader.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "profiler/session.hh"
#include "workload/loader.hh"

namespace mbs {
namespace {

const char *exampleText = R"(
# A custom suite for loader tests.
suite "My Suite" publisher "Me"
benchmark "My Bench" target gpu
  phase "warmup" kernel menuIdle duration 5 instructions 0.05
  phase "scene" kernel renderScene duration 30 instructions 2.0 \
      gpu_rate 0.8 api vulkan resolution 1.78 offscreen true
  phase "decode" kernel videoCodec duration 10 instructions 0.5 \
      codec av1 aie_rate 0.5
benchmark "CPU Side" target cpu
  phase "crunch" kernel gemm duration 20 instructions 3.0 \
      threads 4 intensity 0.7
)";

TEST(Loader, ParsesTheDocumentedExample)
{
    const auto suites = loadSuitesFromString(exampleText);
    ASSERT_EQ(suites.size(), 1u);
    const Suite &s = suites[0];
    EXPECT_EQ(s.name, "My Suite");
    EXPECT_EQ(s.publisher, "Me");
    EXPECT_FALSE(s.runsAsWhole);
    ASSERT_EQ(s.benchmarks.size(), 2u);

    const Benchmark &b = s.benchmarks[0];
    EXPECT_EQ(b.name(), "My Bench");
    EXPECT_EQ(b.target(), HardwareTarget::Gpu);
    ASSERT_EQ(b.phases().size(), 3u);
    EXPECT_DOUBLE_EQ(b.totalDurationSeconds(), 45.0);
    EXPECT_NEAR(b.totalInstructionsBillions(), 2.55, 1e-12);

    const Phase &scene = b.phases()[1];
    EXPECT_EQ(scene.kernel, "renderScene");
    EXPECT_EQ(scene.demand.gpu.api, GraphicsApi::Vulkan);
    EXPECT_DOUBLE_EQ(scene.demand.gpu.workRate, 0.8);
    EXPECT_DOUBLE_EQ(scene.demand.gpu.resolutionScale, 1.78);
    EXPECT_TRUE(scene.demand.gpu.offscreen);

    const Phase &decode = b.phases()[2];
    EXPECT_EQ(decode.demand.aie.codec, MediaCodec::Av1);
    EXPECT_DOUBLE_EQ(decode.demand.aie.workRate, 0.5);

    const Phase &crunch = s.benchmarks[1].phases()[0];
    EXPECT_EQ(crunch.demand.threads[0].count, 4);
    EXPECT_DOUBLE_EQ(crunch.demand.threads[0].intensity, 0.7);
}

TEST(Loader, LoadedSuiteRunsOnTheSimulator)
{
    const auto suites = loadSuitesFromString(exampleText);
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto profiles = session.profileSuite(suites[0]);
    ASSERT_EQ(profiles.size(), 2u);
    EXPECT_NEAR(profiles[0].runtimeSeconds, 45.0, 5.0);
    EXPECT_GT(profiles[0].avgGpuLoad(), 0.3);
    EXPECT_GT(profiles[1].ipc, 0.5);
}

TEST(Loader, WholeSuiteFlag)
{
    const auto suites = loadSuitesFromString(R"(
suite "W" whole_suite true
benchmark "Seg" target memory executable false
  phase "p" kernel memoryStream duration 5 instructions 0.1 \
      working_set_mb 128 locality 0.5
)");
    EXPECT_TRUE(suites[0].runsAsWhole);
    EXPECT_FALSE(suites[0].benchmarks[0].individuallyExecutable());
    const auto &d = suites[0].benchmarks[0].phases()[0].demand;
    EXPECT_EQ(d.cpu.workingSetBytes, 128ULL << 20);
    EXPECT_DOUBLE_EQ(d.cpu.locality, 0.5);
}

TEST(Loader, MultipleSuites)
{
    const auto suites = loadSuitesFromString(R"(
suite "A"
benchmark "A1" target cpu
  phase "p" kernel crypto duration 1 instructions 0.01
suite "B"
benchmark "B1" target storage
  phase "p" kernel storageIo duration 1 instructions 0.01 io_rate 0.9
)");
    ASSERT_EQ(suites.size(), 2u);
    EXPECT_EQ(suites[0].benchmarks.size(), 1u);
    EXPECT_EQ(suites[1].benchmarks[0].target(),
              HardwareTarget::StorageSubsystem);
    EXPECT_DOUBLE_EQ(
        suites[1].benchmarks[0].phases()[0].demand.storage.ioRate,
        0.9);
}

TEST(Loader, ErrorsCarryLineNumbers)
{
    try {
        loadSuitesFromString(R"(
suite "S"
benchmark "B" target cpu
  phase "p" kernel nope duration 1 instructions 0.1
)");
        FAIL() << "must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("nope"),
                  std::string::npos);
    }
}

TEST(Loader, RejectsStructuralErrors)
{
    // Phase before benchmark.
    EXPECT_THROW(loadSuitesFromString(
                     "suite \"S\"\nphase \"p\" kernel gemm duration "
                     "1 instructions 0.1\n"),
                 FatalError);
    // Benchmark before suite.
    EXPECT_THROW(loadSuitesFromString(
                     "benchmark \"B\" target cpu\n"),
                 FatalError);
    // Empty input.
    EXPECT_THROW(loadSuitesFromString(""), FatalError);
    // Benchmark without phases.
    EXPECT_THROW(loadSuitesFromString(
                     "suite \"S\"\nbenchmark \"B\" target cpu\n"),
                 FatalError);
    // Unknown directive.
    EXPECT_THROW(loadSuitesFromString("bogus\n"), FatalError);
}

TEST(Loader, RejectsBadPhases)
{
    const auto wrap = [](const std::string &phase) {
        return "suite \"S\"\nbenchmark \"B\" target cpu\n" + phase +
            "\n";
    };
    // Missing kernel.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" duration 1 instructions 0.1")),
                 FatalError);
    // Missing duration.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" kernel gemm instructions 0.1")),
                 FatalError);
    // Missing instruction budget.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" kernel gemm duration 1")),
                 FatalError);
    // videoCodec without codec.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" kernel videoCodec duration 1 "
                     "instructions 0.1")),
                 FatalError);
    // Unknown keyword.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" kernel gemm duration 1 "
                     "instructions 0.1 wings 2")),
                 FatalError);
    // Non-numeric number.
    EXPECT_THROW(loadSuitesFromString(wrap(
                     "phase \"p\" kernel gemm duration abc "
                     "instructions 0.1")),
                 FatalError);
}

TEST(Loader, QuotedNamesKeepSpaces)
{
    const auto suites = loadSuitesFromString(R"(
suite "Suite With Spaces" publisher "Some Publisher Inc"
benchmark "Bench Name Here" target ai
  phase "a phase name" kernel nnInference duration 2 instructions 0.1
)");
    EXPECT_EQ(suites[0].name, "Suite With Spaces");
    EXPECT_EQ(suites[0].publisher, "Some Publisher Inc");
    EXPECT_EQ(suites[0].benchmarks[0].name(), "Bench Name Here");
    EXPECT_EQ(suites[0].benchmarks[0].phases()[0].name,
              "a phase name");
}

TEST(Loader, UnterminatedQuoteIsFatal)
{
    EXPECT_THROW(loadSuitesFromString("suite \"Oops\n"), FatalError);
}

TEST(MakeKernelDemand, EveryKernelIsConstructible)
{
    for (const char *kernel :
         {"gemm", "fft", "crypto", "integerOps", "floatOps",
          "imageDecode", "compression", "memoryStream", "storageIo",
          "database", "webBrowse", "photoEdit", "renderScene",
          "gpuCompute", "physics", "nnInference", "uiScroll",
          "psnrCompare", "multicoreStress", "dataProcessing",
          "dataSecurity", "loadingBurst", "menuIdle",
          "vectorMath"}) {
        EXPECT_NO_THROW(makeKernelDemand(kernel, {})) << kernel;
    }
    EXPECT_NO_THROW(
        makeKernelDemand("videoCodec", {{"codec", "h264"}}));
    EXPECT_THROW(makeKernelDemand("unknown", {}), FatalError);
}

TEST(MakeKernelDemand, VectorMathHonorsKeywords)
{
    const PhaseDemand d = makeKernelDemand(
        "vectorMath", {{"threads", "8"},
                       {"intensity", "0.95"},
                       {"working_set_mb", "32"}});
    ASSERT_FALSE(d.threads.empty());
    EXPECT_EQ(d.threads[0].count, 8);
    EXPECT_DOUBLE_EQ(d.threads[0].intensity, 0.95);
    EXPECT_EQ(d.cpu.workingSetBytes, 32ULL << 20);
    // Defaults when the keywords are absent.
    const PhaseDemand bare = makeKernelDemand("vectorMath", {});
    EXPECT_EQ(bare.cpu.workingSetBytes, 64ULL << 20);
}

} // namespace
} // namespace mbs
