/**
 * @file
 * Tests for the kernel archetype library: each archetype must encode
 * its distinguishing domain behaviour.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/kernels.hh"

namespace mbs {
namespace {

TEST(Kernels, GemmIsMultiThreadedAndCacheFriendly)
{
    const auto d = kernels::gemm();
    ASSERT_FALSE(d.threads.empty());
    EXPECT_GE(d.threads[0].count, 4);
    EXPECT_GT(d.cpu.locality, 0.97);
    EXPECT_GT(d.cpu.baseIpc, 3.0);
}

TEST(Kernels, FftOffloadsToAie)
{
    const auto d = kernels::fft(2, 0.3);
    EXPECT_DOUBLE_EQ(d.aie.workRate, 0.3);
}

TEST(Kernels, CryptoHasTinyWorkingSet)
{
    const auto d = kernels::crypto();
    EXPECT_LE(d.cpu.workingSetBytes, 1ULL << 20);
    EXPECT_GT(d.cpu.baseIpc, 2.8);
}

TEST(Kernels, MemoryStreamHasLowLocality)
{
    const auto d = kernels::memoryStream(256ULL << 20, 0.3);
    EXPECT_DOUBLE_EQ(d.cpu.locality, 0.3);
    EXPECT_EQ(d.cpu.workingSetBytes, 256ULL << 20);
    // RAM stress also defeats the branch predictor.
    EXPECT_LT(d.cpu.branchPredictability, 0.95);
}

TEST(Kernels, StorageIoSetsIoRate)
{
    const auto d = kernels::storageIo(0.8);
    EXPECT_DOUBLE_EQ(d.storage.ioRate, 0.8);
}

TEST(Kernels, RenderSceneRequiresApi)
{
    EXPECT_THROW(kernels::renderScene(GraphicsApi::None, 0.5),
                 FatalError);
}

TEST(Kernels, RenderSceneDriverThreadsFitLittleCores)
{
    // Observation #8: graphics CPU work stays on the little cluster.
    const auto d = kernels::renderScene(GraphicsApi::Vulkan, 0.9);
    for (const auto &group : d.threads)
        EXPECT_LE(group.intensity, 0.35 * 0.8 + 1e-9);
}

TEST(Kernels, RenderScenePassesParameters)
{
    const auto d = kernels::renderScene(GraphicsApi::OpenGlEs, 0.7,
                                        1.78, true, 2000.0);
    EXPECT_EQ(d.gpu.api, GraphicsApi::OpenGlEs);
    EXPECT_DOUBLE_EQ(d.gpu.workRate, 0.7);
    EXPECT_DOUBLE_EQ(d.gpu.resolutionScale, 1.78);
    EXPECT_TRUE(d.gpu.offscreen);
    EXPECT_EQ(d.gpu.textureBytes, 2000ULL << 20);
}

TEST(Kernels, GpuComputeIsOffscreenAluBound)
{
    const auto d = kernels::gpuCompute(0.95);
    EXPECT_TRUE(d.gpu.offscreen);
    EXPECT_LT(d.gpu.textureBandwidth, 0.3);
    EXPECT_EQ(d.gpu.api, GraphicsApi::Vulkan);
}

TEST(Kernels, PhysicsLevelsEscalate)
{
    const auto l1 = kernels::physics(1);
    const auto l3 = kernels::physics(3);
    EXPECT_LT(l1.threads[0].intensity, l3.threads[0].intensity);
    EXPECT_GE(l1.threads[0].count, 4); // highly multi-threaded
    // Physics minimizes the GPU workload.
    EXPECT_LT(l1.gpu.workRate, 0.2);
    EXPECT_THROW(kernels::physics(0), FatalError);
    EXPECT_THROW(kernels::physics(4), FatalError);
}

TEST(Kernels, VideoCodecCarriesCodec)
{
    const auto d = kernels::videoCodec(MediaCodec::Av1, 0.5);
    EXPECT_EQ(d.aie.codec, MediaCodec::Av1);
    EXPECT_DOUBLE_EQ(d.aie.workRate, 0.5);
}

TEST(Kernels, VideoEncodeCostsMoreCpuThanDecode)
{
    const auto dec = kernels::videoCodec(MediaCodec::H264, 0.4, false);
    const auto enc = kernels::videoCodec(MediaCodec::H264, 0.4, true);
    EXPECT_GT(enc.threads[0].intensity, dec.threads[0].intensity);
}

TEST(Kernels, NnInferenceSizesForMidCores)
{
    // Aitutu's Observation-#7 exception: inference workers target the
    // mid cluster (0.28 < intensity <= 0.56), plus one big feeder.
    const auto d = kernels::nnInference();
    ASSERT_GE(d.threads.size(), 2u);
    EXPECT_GT(d.threads[0].intensity, 0.28);
    EXPECT_LE(d.threads[0].intensity, 0.56);
    bool has_big_feeder = false;
    for (const auto &group : d.threads) {
        if (group.intensity > 0.56)
            has_big_feeder = true;
    }
    EXPECT_TRUE(has_big_feeder);
}

TEST(Kernels, PsnrCompareStressesAie)
{
    const auto lo = kernels::psnrCompare(false);
    const auto hi = kernels::psnrCompare(true);
    EXPECT_GT(lo.aie.workRate, 0.5);
    EXPECT_GT(hi.aie.workRate, lo.aie.workRate);
}

TEST(Kernels, MulticoreStressUsesAllCores)
{
    const auto d = kernels::multicoreStress();
    EXPECT_GE(d.threads[0].count, 8);
}

TEST(Kernels, LoadingBurstTouchesStorage)
{
    const auto d = kernels::loadingBurst();
    EXPECT_GT(d.storage.ioRate, 0.3);
}

TEST(Kernels, MenuIdleIsLight)
{
    const auto d = kernels::menuIdle();
    EXPECT_LE(d.threads[0].intensity, 0.15);
    EXPECT_LT(d.gpu.workRate, 0.1);
}

TEST(Kernels, EverydayKernelsUseLittleClassThreads)
{
    // The paper: little cores prove adequate for most usage; everyday
    // tasks fan out into threads light enough for them.
    for (const auto &d : {kernels::webBrowse(), kernels::uiScroll(),
                          kernels::videoCodec(MediaCodec::H264, 0.4),
                          kernels::dataProcessing()}) {
        ASSERT_FALSE(d.threads.empty());
        EXPECT_LE(d.threads[0].intensity, 0.30);
    }
}

TEST(Kernels, VectorMathStreamsWideUnits)
{
    const auto d = kernels::vectorMath(8, 0.95, 32ULL << 20);
    ASSERT_FALSE(d.threads.empty());
    EXPECT_EQ(d.threads[0].count, 8);
    EXPECT_DOUBLE_EQ(d.threads[0].intensity, 0.95);
    // SIMD streaming: near-peak ILP, big sequential working set,
    // almost no branches.
    EXPECT_GT(d.cpu.baseIpc, 3.0);
    EXPECT_EQ(d.cpu.workingSetBytes, 32ULL << 20);
    EXPECT_LE(d.cpu.branchFraction, 0.05);
    EXPECT_GT(d.cpu.branchPredictability, 0.99);
    EXPECT_GT(d.memory.footprintBytes, 32ULL << 20);
}

TEST(Kernels, AllKernelsHaveSaneCharacter)
{
    const PhaseDemand demands[] = {
        kernels::gemm(), kernels::fft(), kernels::crypto(),
        kernels::integerOps(), kernels::floatOps(),
        kernels::imageDecode(), kernels::compression(),
        kernels::memoryStream(), kernels::storageIo(0.5),
        kernels::database(), kernels::webBrowse(),
        kernels::photoEdit(),
        kernels::videoCodec(MediaCodec::H265, 0.4),
        kernels::renderScene(GraphicsApi::Vulkan, 0.8),
        kernels::gpuCompute(0.9), kernels::physics(2),
        kernels::nnInference(), kernels::uiScroll(),
        kernels::psnrCompare(true), kernels::multicoreStress(),
        kernels::dataProcessing(), kernels::dataSecurity(),
        kernels::loadingBurst(), kernels::menuIdle(),
        kernels::vectorMath(),
    };
    for (const auto &d : demands) {
        EXPECT_GT(d.cpu.baseIpc, 0.5);
        EXPECT_LE(d.cpu.baseIpc, 4.0);
        EXPECT_GE(d.cpu.memIntensity, 0.1);
        EXPECT_LE(d.cpu.memIntensity, 0.6);
        EXPECT_GE(d.cpu.locality, 0.0);
        EXPECT_LT(d.cpu.locality, 1.0);
        EXPECT_GE(d.cpu.branchFraction, 0.0);
        EXPECT_LE(d.cpu.branchFraction, 0.4);
        EXPECT_GT(d.cpu.branchPredictability, 0.8);
        EXPECT_LE(d.cpu.branchPredictability, 1.0);
        EXPECT_GT(d.memory.footprintBytes, 100ULL << 20);
    }
}

} // namespace
} // namespace mbs
