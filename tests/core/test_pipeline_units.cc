/**
 * @file
 * Unit tests for the pipeline's pure helpers on synthetic profiles
 * (the end-to-end behaviour lives in tests/integration).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace mbs {
namespace {

BenchmarkProfile
syntheticProfile(const std::string &name, double ipc, double cpu_load,
                 double little, double mid, double big)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = "S";
    p.runtimeSeconds = 100.0;
    p.instructions = 1e9;
    p.ipc = ipc;
    p.cacheMpki = 10.0;
    p.branchMpki = 5.0;
    const std::size_t n = 100;
    const auto flat = [n](double v) {
        return TimeSeries(0.1, std::vector<double>(n, v));
    };
    p.series.cpuLoad = flat(cpu_load);
    p.series.gpuLoad = flat(0.0);
    p.series.shadersBusy = flat(0.0);
    p.series.gpuBusBusy = flat(0.0);
    p.series.aieLoad = flat(0.0);
    p.series.usedMemory = flat(0.1);
    p.series.storageUtil = flat(0.0);
    p.series.gpuUtilization = flat(0.0);
    p.series.gpuFrequency = flat(0.2);
    p.series.aieUtilization = flat(0.0);
    p.series.aieFrequency = flat(0.3);
    p.series.textureResidency = flat(0.0);
    p.series.clusterLoad[0] = flat(little);
    p.series.clusterLoad[1] = flat(mid);
    p.series.clusterLoad[2] = flat(big);
    return p;
}

TEST(PipelineUnits, Fig1MetricsShape)
{
    const std::vector<BenchmarkProfile> profiles = {
        syntheticProfile("a", 1.0, 0.5, 0.5, 0.5, 0.5),
        syntheticProfile("b", 0.5, 0.2, 0.3, 0.0, 0.0),
    };
    const auto m =
        CharacterizationPipeline::buildFig1Metrics(profiles);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 5u);
    EXPECT_EQ(m.colNames()[0], "IC");
    EXPECT_DOUBLE_EQ(m.at(0, m.colIndex("IPC")), 1.0);
    EXPECT_DOUBLE_EQ(m.at(1, m.colIndex("Runtime")), 100.0);
}

TEST(PipelineUnits, ClusterFeaturesAreMaxNormalized)
{
    const std::vector<BenchmarkProfile> profiles = {
        syntheticProfile("a", 2.0, 0.8, 0.5, 0.5, 0.5),
        syntheticProfile("b", 1.0, 0.4, 0.3, 0.0, 0.0),
    };
    const auto m =
        CharacterizationPipeline::buildClusterFeatures(profiles);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, m.colIndex("IPC")), 1.0);
    EXPECT_DOUBLE_EQ(m.at(1, m.colIndex("IPC")), 0.5);
    EXPECT_DOUBLE_EQ(m.at(1, m.colIndex("CPU Load")), 0.5);
}

TEST(PipelineUnits, StressPredicateRequiresEveryCluster)
{
    // All clusters loaded 100% of the time -> stresses all.
    EXPECT_TRUE(CharacterizationPipeline::stressesAllCpuClusters(
        syntheticProfile("x", 1, 0.5, 0.6, 0.6, 0.6)));
    // Mid idle -> not.
    EXPECT_FALSE(CharacterizationPipeline::stressesAllCpuClusters(
        syntheticProfile("x", 1, 0.5, 0.6, 0.1, 0.6)));
    // Threshold boundary: loads of exactly 0.25 never exceed 0.25.
    EXPECT_FALSE(CharacterizationPipeline::stressesAllCpuClusters(
        syntheticProfile("x", 1, 0.5, 0.25, 0.25, 0.25)));
    // Just above the level with full coverage -> stresses all.
    EXPECT_TRUE(CharacterizationPipeline::stressesAllCpuClusters(
        syntheticProfile("x", 1, 0.5, 0.26, 0.26, 0.26)));
}

TEST(PipelineUnits, StressPredicateHonoursThreshold)
{
    // Cluster above 0.25 for the whole run but threshold demands
    // nothing -> passes trivially at threshold 0.
    const auto p = syntheticProfile("x", 1, 0.5, 0.3, 0.3, 0.3);
    EXPECT_TRUE(
        CharacterizationPipeline::stressesAllCpuClusters(p, 0.0));
    EXPECT_TRUE(
        CharacterizationPipeline::stressesAllCpuClusters(p, 0.99));
}

TEST(PipelineUnits, CandidatesRejectSizeMismatch)
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const WorkloadRegistry registry;
    const std::vector<BenchmarkProfile> profiles = {
        syntheticProfile("a", 1, 0.5, 0.5, 0.5, 0.5)};
    EXPECT_THROW(pipeline.buildCandidates(profiles, {0, 1}, registry),
                 FatalError);
}

TEST(PipelineUnits, SweepBoundsAreValidated)
{
    PipelineOptions opts;
    opts.kMin = 12;
    opts.kMax = 14; // more clusters than the 18 observations allow
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    const WorkloadRegistry registry;
    EXPECT_NO_THROW(pipeline.run(registry));
    opts.kMin = 30;
    opts.kMax = 30;
    const CharacterizationPipeline bad(SocConfig::snapdragon888(),
                                       opts);
    EXPECT_THROW(bad.run(registry), FatalError);
}

} // namespace
} // namespace mbs
