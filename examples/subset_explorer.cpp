/**
 * @file
 * Subset explorer: evaluate any benchmark subset against the paper's
 * criteria — runtime reduction and Yi-et-al. representativeness —
 * and compare it with the published Naive / Select / Select+GPU
 * subsets.
 *
 * Usage:
 *   subset_explorer                          # evaluate paper subsets
 *   subset_explorer "Antutu CPU" "Aitutu"    # evaluate your own
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "core/pipeline.hh"
#include "subset/subset.hh"

int
main(int argc, char **argv)
{
    using namespace mbs;

    const WorkloadRegistry registry;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const CharacterizationReport report = pipeline.run(registry);

    std::vector<std::string> custom;
    for (int i = 1; i < argc; ++i)
        custom.emplace_back(argv[i]);
    for (const auto &name : custom) {
        if (!registry.hasUnit(name)) {
            std::printf("unknown benchmark '%s'\n", name.c_str());
            return 1;
        }
    }

    TextTable t({"Subset", "Benchmarks", "Runtime", "Reduction",
                 "Yi distance", "Percentile"});
    const auto add = [&](const std::string &label,
                         const std::vector<std::string> &members) {
        double runtime = 0.0;
        for (const auto &m : members)
            runtime += registry.unit(m).totalDurationSeconds();
        const double reduction =
            1.0 - runtime / report.fullRuntimeSeconds;
        const double distance = totalMinEuclideanDistance(
            report.clusterFeatures, members);
        const double pct = subsetDistancePercentile(
            report.clusterFeatures, members, 1000, 41);
        t.addRow({label, strformat("%zu", members.size()),
                  units::formatSeconds(runtime),
                  units::formatPercent(reduction),
                  strformat("%.2f", distance),
                  strformat("%.1f%%", pct)});
    };

    add("Naive (paper)", report.naiveSubset.members);
    add("Select (paper)", report.selectSubset.members);
    add("Select+GPU (paper)", report.selectPlusGpuSubset.members);
    if (!custom.empty())
        add("custom", custom);

    std::printf("Subset evaluation (full set: %s; lower distance "
                "and percentile are better)\n%s\n",
                units::formatSeconds(report.fullRuntimeSeconds)
                    .c_str(),
                t.render().c_str());

    if (custom.empty()) {
        std::printf("Tip: pass benchmark names to evaluate your own "
                    "subset, e.g.\n"
                    "  subset_explorer \"Antutu CPU\" \"3DMark Wild "
                    "Life\" \"PCMark Storage\"\n");
    }
    return 0;
}
