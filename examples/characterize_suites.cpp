/**
 * @file
 * Full characterization run: executes the paper's entire analysis
 * pipeline (profiles, correlations, cluster validation, clustering,
 * subsets) and prints every table and figure, optionally writing the
 * per-benchmark summary and traces as CSV.
 *
 * Usage: characterize_suites [--csv <directory>]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/strings.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "profiler/trace.hh"

int
main(int argc, char **argv)
{
    using namespace mbs;

    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csv_dir = argv[++i];
    }

    const WorkloadRegistry registry;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const CharacterizationReport report = pipeline.run(registry);

    std::printf("%s\n", renderTableI(registry).c_str());
    std::printf("%s\n",
                renderTableII(SocConfig::snapdragon888()).c_str());
    std::printf("%s\n", renderFig1(report).c_str());
    std::printf("%s\n", renderTableIV().c_str());
    std::printf("%s\n", renderTableIII(report).c_str());
    std::printf("%s\n", renderTableV(report).c_str());
    std::printf("%s\n", renderFig4(report).c_str());
    std::printf("%s\n", renderFig5And6(report).c_str());
    std::printf("%s\n", renderTableVI(report).c_str());
    std::printf("%s\n", renderFig7(report).c_str());

    if (!csv_dir.empty()) {
        {
            std::ofstream out(csv_dir + "/summary.csv");
            writeSummaryCsv(out, report.profiles);
        }
        for (const auto &p : report.profiles) {
            std::ofstream out(csv_dir + "/" + slugify(p.name) +
                              "_trace.csv");
            writeProfileCsv(out, p);
        }
        std::printf("CSV written to %s (summary.csv + %zu traces)\n",
                    csv_dir.c_str(), report.profiles.size());
    }
    return 0;
}
