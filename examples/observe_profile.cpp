/**
 * @file
 * Observability walkthrough: profile one benchmark with tracing,
 * progress and metrics enabled, then write a Perfetto-loadable trace
 * and print the metrics snapshot.
 *
 * Usage: observe_profile [benchmark-name] [trace-file]
 * Default benchmark: "Geekbench 5 CPU"; default trace file:
 * "observe_profile.trace.json" in the working directory.
 */

#include <cstdio>
#include <string>

#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "profiler/session.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace mbs;

    const std::string name =
        argc > 1 ? argv[1] : "Geekbench 5 CPU";
    const std::string tracePath =
        argc > 2 ? argv[2] : "observe_profile.trace.json";

    const WorkloadRegistry registry;
    if (!registry.hasUnit(name)) {
        std::printf("unknown benchmark '%s'; see: mobilebench list\n",
                    name.c_str());
        return 1;
    }

    // 1. Opt into the observability layer. The tracer and progress
    //    meter are process-wide singletons, off by default; library
    //    code is instrumented but pays nothing until someone enables
    //    them.
    obs::Tracer::instance().setEnabled(true);
    obs::Progress::instance().setEnabled(true);

    // 2. Attach run metadata so the exported trace identifies the
    //    exact configuration that produced it.
    const SocConfig config = SocConfig::snapdragon888();
    const ProfilerSession session(config);
    obs::Tracer::instance().metadata(
        "seed", std::to_string(session.options().seed));
    obs::Tracer::instance().metadata(
        "soc_config_digest", std::to_string(config.digest()));

    // 3. Profile. The session opens benchmark/run spans and the
    //    simulator reports ticks, DVFS transitions and scheduler
    //    migrations to the metrics registry as it goes.
    const BenchmarkProfile profile =
        session.profile(registry.unit(name));
    std::printf("%s: %.0f s runtime, IPC %.2f\n\n",
                profile.name.c_str(), profile.runtimeSeconds,
                profile.ipc);

    // 4. Export: the trace opens in Perfetto (ui.perfetto.dev); the
    //    snapshot is deterministic for a fixed seed, so it can be
    //    diffed across code changes to catch behavioural drift.
    obs::Tracer::instance().writeJson(tracePath);
    std::printf("wrote %s; metrics snapshot:\n%s", tracePath.c_str(),
                obs::MetricsRegistry::instance()
                    .snapshot().toText().c_str());
    return 0;
}
