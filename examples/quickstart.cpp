/**
 * @file
 * Quickstart: profile one benchmark on the simulated Snapdragon-888
 * platform and print its key metrics and temporal behaviour.
 *
 * Usage: quickstart [benchmark-name]
 * Default benchmark: "3DMark Wild Life".
 */

#include <cstdio>
#include <string>

#include "common/sparkline.hh"
#include "common/strings.hh"
#include "common/units.hh"
#include "profiler/session.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace mbs;

    const std::string name =
        argc > 1 ? argv[1] : "3DMark Wild Life";

    // 1. The registry holds calibrated models of every commercial
    //    suite the paper characterizes.
    const WorkloadRegistry registry;
    if (!registry.hasUnit(name)) {
        std::printf("unknown benchmark '%s'; available units:\n",
                    name.c_str());
        for (const auto &n : registry.unitNames())
            std::printf("  %s\n", n.c_str());
        return 1;
    }

    // 2. A profiler session against the default SoC: 3 runs averaged
    //    at a 100 ms sampling cadence, like the paper's methodology.
    const ProfilerSession session(SocConfig::snapdragon888());
    const BenchmarkProfile profile =
        session.profile(registry.unit(name));

    // 3. Scalar metrics (the Fig.-1 set).
    std::printf("%s (%s)\n", profile.name.c_str(),
                profile.suite.c_str());
    std::printf("  runtime        %s\n",
                units::formatSeconds(profile.runtimeSeconds).c_str());
    std::printf("  instructions   %s\n",
                units::formatCount(profile.instructions).c_str());
    std::printf("  IPC            %.2f\n", profile.ipc);
    std::printf("  cache MPKI     %.1f\n", profile.cacheMpki);
    std::printf("  branch MPKI    %.2f\n", profile.branchMpki);
    std::printf("  avg CPU load   %s\n",
                units::formatPercent(profile.avgCpuLoad()).c_str());
    std::printf("  avg GPU load   %s\n",
                units::formatPercent(profile.avgGpuLoad()).c_str());
    std::printf("  avg AIE load   %s\n",
                units::formatPercent(profile.avgAieLoad()).c_str());
    std::printf("  avg app memory %s of system RAM\n\n",
                units::formatPercent(profile.avgUsedMemory()).c_str());

    // 4. Temporal behaviour as sparklines (the Fig.-2 view).
    const auto strip = [](const char *label, const TimeSeries &s) {
        std::printf("  %-12s %s\n", label,
                    sparkline(s.values(), 64).c_str());
    };
    std::printf("normalized time -->\n");
    strip("CPU load", profile.series.cpuLoad);
    strip("GPU load", profile.series.gpuLoad);
    strip("AIE load", profile.series.aieLoad);
    strip("memory", profile.series.usedMemory);
    strip("little", profile.series.clusterLoad[0]);
    strip("mid", profile.series.clusterLoad[1]);
    strip("big", profile.series.clusterLoad[2]);
    return 0;
}
