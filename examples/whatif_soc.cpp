/**
 * @file
 * What-if study: the library as a design-exploration tool. Compares
 * the default Snapdragon-888-like platform against a hypothetical
 * next-generation SoC (AV1 hardware decode, doubled L3, faster
 * little cores) and reports how the paper's workloads respond.
 *
 * This exercises the substitution the paper's limitations section
 * wishes for: evaluating benchmark behaviour on hardware you do not
 * have.
 */

#include <cstdio>

#include "common/strings.hh"
#include "common/table.hh"
#include "profiler/session.hh"
#include "workload/registry.hh"

int
main()
{
    using namespace mbs;

    const WorkloadRegistry registry;

    const SocConfig baseline = SocConfig::snapdragon888();

    SocConfig nextgen = SocConfig::snapdragon888();
    nextgen.name = "Hypothetical next-gen SoC";
    nextgen.aie.supportsAv1 = true;            // AV1 decode block
    nextgen.cache.l3Bytes = 8ULL << 20;        // doubled L3
    nextgen.clusters[std::size_t(ClusterId::Little)].maxFreqHz =
        2.0e9;                                 // faster little cores
    nextgen.validate();

    const ProfilerSession base_session(baseline);
    const ProfilerSession next_session(nextgen);

    TextTable t({"Benchmark", "Metric", "SD888-like", "Next-gen",
                 "Delta"});
    const auto compare = [&](const char *bench, const char *metric,
                             auto getter) {
        const double a =
            getter(base_session.profile(registry.unit(bench)));
        const double b =
            getter(next_session.profile(registry.unit(bench)));
        t.addRow({bench, metric, strformat("%.3f", a),
                  strformat("%.3f", b),
                  strformat("%+.1f%%", 100.0 * (b - a) / a)});
    };

    // AV1 software decode disappears on the next-gen part: Antutu
    // UX's end-of-run CPU spike drops and its AIE load grows.
    compare("Antutu UX", "avg CPU load",
            [](const BenchmarkProfile &p) { return p.avgCpuLoad(); });
    compare("Antutu UX", "avg AIE load",
            [](const BenchmarkProfile &p) { return p.avgAieLoad(); });

    // The doubled L3 helps cache-hungry workloads.
    compare("Antutu Mem", "cache MPKI",
            [](const BenchmarkProfile &p) { return p.cacheMpki; });
    compare("Antutu Mem", "IPC",
            [](const BenchmarkProfile &p) { return p.ipc; });
    compare("Geekbench 6 CPU", "IPC",
            [](const BenchmarkProfile &p) { return p.ipc; });

    // Faster little cores raise graphics-driver throughput headroom.
    compare("GFXBench High", "avg CPU load",
            [](const BenchmarkProfile &p) { return p.avgCpuLoad(); });

    std::printf("What-if: %s vs %s\n%s\n", baseline.name.c_str(),
                nextgen.name.c_str(), t.render().c_str());
    return 0;
}
