/**
 * @file
 * Energy-budget study: how much battery does one pass over the full
 * benchmark set cost, versus the paper's reduced subsets? Combines
 * the energy-model extension with the subsetting pipeline.
 *
 * A typical flagship battery is ~15 Wh (54 kJ); the output expresses
 * each evaluation strategy as a percentage of that.
 */

#include <cstdio>

#include "common/strings.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "soc/energy.hh"
#include "soc/simulator.hh"

int
main()
{
    using namespace mbs;

    const WorkloadRegistry registry;
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);

    // Energy per benchmark (single deterministic run each).
    std::map<std::string, double> joules;
    double total = 0.0;
    for (const auto &bench : registry.units()) {
        SimOptions opts;
        opts.seed = 777;
        const auto result = sim.run(bench.toTimedPhases(), opts);
        joules[bench.name()] = model.energyOf(result).total();
        total += joules[bench.name()];
    }

    // The paper's subsets from the full pipeline.
    const CharacterizationPipeline pipeline(config);
    const auto report = pipeline.run(registry);

    constexpr double battery_j = 15.0 * 3600.0; // 15 Wh
    TextTable t({"Evaluation strategy", "Energy (kJ)", "Battery",
                 "vs full set"});
    for (std::size_t c = 1; c < 4; ++c)
        t.setAlign(c, Align::Right);
    const auto add = [&](const std::string &label,
                         const std::vector<std::string> &members) {
        double j = 0.0;
        for (const auto &m : members)
            j += joules.at(m);
        t.addRow({label, strformat("%.1f", j / 1000.0),
                  strformat("%.1f%%", 100.0 * j / battery_j),
                  strformat("-%.1f%%", 100.0 * (1.0 - j / total))});
    };
    t.addRow({"full set (18 benchmarks)",
              strformat("%.1f", total / 1000.0),
              strformat("%.1f%%", 100.0 * total / battery_j), "-"});
    add("Naive subset", report.naiveSubset.members);
    add("Select subset", report.selectSubset.members);
    add("Select+GPU subset", report.selectPlusGpuSubset.members);

    std::printf("Energy cost of one evaluation pass (15 Wh battery "
                "reference)\n%s\n",
                t.render().c_str());
    return 0;
}
