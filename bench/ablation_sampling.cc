/**
 * @file
 * Ablation: profiler sampling-rate sensitivity. The paper's tool
 * samples in real time; this bench re-runs the whole pipeline at
 * several cadences and checks which conclusions survive coarser
 * sampling, then times the pipeline at each cadence.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    TextTable t({"Tick (s)", "Chosen k", "Same partition?",
                 "Same Naive subset?"});
    for (double tick : {0.05, 0.1, 0.2, 0.5, 1.0}) {
        PipelineOptions opts;
        opts.profile.tickSeconds = tick;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), opts);
        const auto r = pipeline.run(benchutil::registry());
        t.addRow({strformat("%.2f", tick),
                  strformat("%d", r.chosenK),
                  samePartition(r.hierarchicalLabels,
                                report().hierarchicalLabels)
                      ? "yes" : "no",
                  r.naiveSubset.members ==
                          report().naiveSubset.members
                      ? "yes" : "no"});
    }
    std::printf("Ablation: sampling-cadence sensitivity\n%s\n",
                t.render().c_str());
}

void
BM_PipelineAtTick(benchmark::State &state)
{
    PipelineOptions opts;
    opts.profile.tickSeconds = double(state.range(0)) / 100.0;
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888(), opts);
    for (auto _ : state) {
        auto r = pipeline.run(benchutil::registry());
        benchmark::DoNotOptimize(r.chosenK);
    }
}
BENCHMARK(BM_PipelineAtTick)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ablation_sampling", argc, argv);
}
