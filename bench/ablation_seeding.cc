/**
 * @file
 * Ablation: K-Means initialization sensitivity. The paper relies on
 * the three algorithms agreeing; this bench checks how many random
 * k-means++ seeds and restart budgets reproduce the published
 * partition, then times the solver at each restart budget.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "cluster/kmeans.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    const auto &m = report().clusterFeatures;

    TextTable t({"Restarts", "Seeds agreeing with baseline (of 20)",
                 "Best inertia spread"});
    for (int restarts : {1, 3, 10, 20}) {
        int agree = 0;
        double best = 1e18, worst = 0.0;
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            KMeansOptions opts;
            opts.restarts = restarts;
            opts.seed = seed * 7919;
            const auto result = KMeans(opts).fit(m, report().chosenK);
            if (samePartition(result.labels, report().kmeansLabels))
                ++agree;
            best = std::min(best, result.inertia);
            worst = std::max(worst, result.inertia);
        }
        t.addRow({strformat("%d", restarts),
                  strformat("%d / 20", agree),
                  strformat("%.4f .. %.4f", best, worst)});
    }
    std::printf("Ablation: K-Means seeding sensitivity (k = %d)\n%s\n",
                report().chosenK, t.render().c_str());
}

void
BM_KMeansRestarts(benchmark::State &state)
{
    KMeansOptions opts;
    opts.restarts = int(state.range(0));
    const KMeans kmeans(opts);
    const auto &m = benchutil::report().clusterFeatures;
    for (auto _ : state)
        benchmark::DoNotOptimize(kmeans.fit(m, 5).inertia);
}
BENCHMARK(BM_KMeansRestarts)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ablation_seeding", argc, argv);
}
