/**
 * @file
 * Macro-bench for the full cluster-validation sweep: every k in
 * [2, 10] under KMeans, PAM and average-linkage hierarchical
 * clustering, with all five validation measures per point. This is
 * the heaviest analysis-core path the pipeline exercises, so the CI
 * perf gate tracks it alongside the per-kernel micro benches.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "cluster/validation.hh"

namespace mbs {
namespace {

constexpr int kMin = 2;
constexpr int kMax = 10;

const KMeans &
kmeans()
{
    static const KMeans algo;
    return algo;
}

const Pam &
pam()
{
    static const Pam algo;
    return algo;
}

const HierarchicalClustering &
hierarchical()
{
    static const HierarchicalClustering algo(Linkage::Average);
    return algo;
}

void
printReproduction()
{
    const auto &m = benchutil::report().clusterFeatures;
    const ValidationSweep sweep({&kmeans(), &pam(), &hierarchical()},
                                kMin, kMax);
    const auto points = sweep.run(m);

    // Best k per algorithm by silhouette, the sweep's headline read.
    std::map<std::string, ValidationPoint> best;
    for (const auto &p : points) {
        const auto it = best.find(p.algorithm);
        if (it == best.end() || p.silhouette > it->second.silhouette)
            best[p.algorithm] = p;
    }
    TextTable t({"Algorithm", "best k", "silhouette", "dunn"});
    for (const auto &[algo, p] : best) {
        t.addRow({algo, strformat("%d", p.k),
                  strformat("%.3f", p.silhouette),
                  strformat("%.3f", p.dunn)});
    }
    std::printf("Full validation sweep, k in [%d, %d] (%zu points)\n%s\n",
                kMin, kMax, points.size(), t.render().c_str());
}

void
sweepOne(benchmark::State &state, const Clusterer &algorithm)
{
    const auto &m = benchutil::report().clusterFeatures;
    const ValidationSweep sweep({&algorithm}, kMin, kMax);
    for (auto _ : state) {
        auto points = sweep.run(m);
        benchmark::DoNotOptimize(points.size());
    }
}

void
BM_SweepKMeans(benchmark::State &state)
{
    sweepOne(state, kmeans());
}
BENCHMARK(BM_SweepKMeans)->Unit(benchmark::kMillisecond);

void
BM_SweepPam(benchmark::State &state)
{
    sweepOne(state, pam());
}
BENCHMARK(BM_SweepPam)->Unit(benchmark::kMillisecond);

void
BM_SweepHierarchical(benchmark::State &state)
{
    sweepOne(state, hierarchical());
}
BENCHMARK(BM_SweepHierarchical)->Unit(benchmark::kMillisecond);

void
BM_SweepAllAlgorithms(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const ValidationSweep sweep({&kmeans(), &pam(), &hierarchical()},
                                kMin, kMax);
    for (auto _ : state) {
        auto points = sweep.run(m);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_SweepAllAlgorithms)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("sweep_cluster_validation",
                                         argc, argv);
}
