/**
 * @file
 * Reproduces Fig. 7: incremental total-minimum-Euclidean-distance
 * curves for the three subsets, the Select+GPU percentile, and the
 * reductions against the Naive subset, then times the
 * representativeness computation.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "subset/subset.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    std::printf("%s\n", renderFig7(report()).c_str());

    const double naive5 = report().naiveCurve[4];
    const double naive7 = report().naiveCurve[6];
    const double plus7 = report().selectPlusGpuCurve[6];
    const double pct = subsetDistancePercentile(
        report().clusterFeatures,
        report().selectPlusGpuSubset.members, 2000, 99);

    std::printf("%s\n",
        benchutil::renderClaims(
            "Fig. 7 paper-vs-measured",
            {
                {"Select+GPU (7 benchmarks) distance",
                 "~11 (their feature scale)",
                 strformat("%.2f (our feature scale)", plus7)},
                {"reduction vs Naive with 5 benchmarks", "-22.96%",
                 strformat("%+.2f%%",
                           100.0 * (plus7 - naive5) / naive5)},
                {"reduction vs Naive with 7 benchmarks", "-9.78%",
                 strformat("%+.2f%%",
                           100.0 * (plus7 - naive7) / naive7)},
                {"Select+GPU percentile among same-size subsets",
                 "32.5% (lower end of the range)",
                 strformat("%.1f%%", pct)},
            })
            .c_str());
}

void
BM_TotalMinEuclideanDistance(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const auto &members =
        benchutil::report().selectPlusGpuSubset.members;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            totalMinEuclideanDistance(m, members));
    }
}
BENCHMARK(BM_TotalMinEuclideanDistance);

void
BM_IncrementalCurve(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const auto &members = benchutil::report().naiveSubset.members;
    for (auto _ : state) {
        auto curve = incrementalDistanceCurve(m, members);
        benchmark::DoNotOptimize(curve.back());
    }
}
BENCHMARK(BM_IncrementalCurve);

void
BM_PercentileMonteCarlo(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const auto &members =
        benchutil::report().selectPlusGpuSubset.members;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            subsetDistancePercentile(m, members, 200, 7));
    }
}
BENCHMARK(BM_PercentileMonteCarlo)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig07_euclidean", argc, argv);
}
