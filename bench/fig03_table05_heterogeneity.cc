/**
 * @file
 * Reproduces Fig. 3 (per-cluster load-level strips for every
 * benchmark) and Table V (average execution-time share per load
 * level), then times the heterogeneity analysis.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "stats/histogram.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;

    for (const auto &p : report().profiles)
        std::printf("%s\n", renderFig3(report(), p.name).c_str());

    std::printf("%s\n", renderTableV(report()).c_str());

    const auto shares = loadLevelShares(report());
    constexpr auto little = std::size_t(ClusterId::Little);
    constexpr auto mid = std::size_t(ClusterId::Mid);
    constexpr auto big = std::size_t(ClusterId::Big);
    auto row = [&shares](const char *name, std::size_t c,
                         const char *paper) {
        return benchutil::Claim{
            name, paper,
            strformat("%.0f%% / %.0f%% / %.0f%% / %.0f%%",
                      shares[c][0] * 100.0, shares[c][1] * 100.0,
                      shares[c][2] * 100.0, shares[c][3] * 100.0)};
    };
    std::printf("%s\n",
        benchutil::renderClaims(
            "Table V paper-vs-measured (levels 0-25/25-50/50-75/"
            "75-100)",
            {
                row("CPU Little", little, "21% / 32% / 25% / 22%"),
                row("CPU Mid", mid, "76% / 8% / 8% / 8%"),
                row("CPU Big", big, "69% / 7% / 6% / 18%"),
            })
            .c_str());

    // Observation #9 roster.
    std::string roster;
    for (const auto &p : report().profiles) {
        if (CharacterizationPipeline::stressesAllCpuClusters(p))
            roster += (roster.empty() ? "" : ", ") + p.name;
    }
    std::printf("Benchmarks loading all three CPU clusters "
                "(Observation #9): %s\n\n",
                roster.c_str());
}

void
BM_LoadLevelShares(benchmark::State &state)
{
    for (auto _ : state) {
        auto shares = loadLevelShares(benchutil::report());
        benchmark::DoNotOptimize(shares[0][0]);
    }
}
BENCHMARK(BM_LoadLevelShares);

void
BM_LoadLevelHistogram(benchmark::State &state)
{
    const auto &series =
        benchutil::profile("Geekbench 5 CPU")
            .series.clusterLoad[std::size_t(ClusterId::Mid)];
    for (auto _ : state) {
        Histogram h(0.0, 1.0, 4);
        h.addAll(series.values());
        benchmark::DoNotOptimize(h.fraction(3));
    }
}
BENCHMARK(BM_LoadLevelHistogram);

void
BM_StressesAllClustersPredicate(benchmark::State &state)
{
    const auto &profiles = benchutil::report().profiles;
    for (auto _ : state) {
        int n = 0;
        for (const auto &p : profiles) {
            if (CharacterizationPipeline::stressesAllCpuClusters(p))
                ++n;
        }
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_StressesAllClustersPredicate);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig03_table05_heterogeneity",
                                         argc, argv);
}
