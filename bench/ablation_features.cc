/**
 * @file
 * Ablation: feature-set sensitivity of the clustering. Mirrors the
 * paper's stability validation at the conclusion level: drop each
 * feature column, re-cluster at k=5 with all three algorithms, and
 * report whether the partition and the Naive subset survive.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    const auto &m = report().clusterFeatures;
    const KMeans kmeans;

    TextTable t({"Dropped feature", "Same partition?",
                 "Benchmarks moved"});
    const auto baseline = canonicalizeLabels(report().kmeansLabels);
    for (std::size_t col = 0; col < m.cols(); ++col) {
        const auto reduced = m.withoutColumn(col);
        const auto labels = canonicalizeLabels(
            kmeans.fit(reduced, report().chosenK).labels);
        int moved = 0;
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (labels[i] != baseline[i])
                ++moved;
        }
        t.addRow({m.colNames()[col],
                  samePartition(labels, baseline) ? "yes" : "no",
                  strformat("%d", moved)});
    }
    std::printf("Ablation: leave-one-feature-out clustering "
                "(K-Means, k = %d)\n%s\n",
                report().chosenK, t.render().c_str());
}

void
BM_LeaveOneFeatureOutRound(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const KMeans kmeans;
    for (auto _ : state) {
        int stable = 0;
        for (std::size_t col = 0; col < m.cols(); ++col) {
            const auto labels =
                kmeans.fit(m.withoutColumn(col), 5).labels;
            if (samePartition(labels,
                              benchutil::report().kmeansLabels)) {
                ++stable;
            }
        }
        benchmark::DoNotOptimize(stable);
    }
}
BENCHMARK(BM_LeaveOneFeatureOutRound)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ablation_features", argc, argv);
}
