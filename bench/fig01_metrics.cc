/**
 * @file
 * Reproduces Fig. 1: per-benchmark IC, IPC, cache MPKI, branch MPKI
 * and runtime, with the paper's headline aggregates compared, then
 * times the profiling layer with google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "common/units.hh"
#include "profiler/session.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::profile;
    using benchutil::report;

    std::printf("%s\n", renderFig1(report()).c_str());

    double ic_sum = 0.0, rt_sum = 0.0;
    for (const auto &p : report().profiles) {
        ic_sum += p.instructions;
        rt_sum += p.runtimeSeconds;
    }
    const double cpu_ipc = (profile("Antutu CPU").ipc +
                            profile("Geekbench 5 CPU").ipc +
                            profile("Geekbench 6 CPU").ipc) / 3.0;
    const double gfx_ipc = (profile("GFXBench High").ipc +
                            profile("GFXBench Low").ipc +
                            profile("3DMark Wild Life").ipc +
                            profile("3DMark Slingshot").ipc) / 4.0;

    std::printf("%s\n",
        benchutil::renderClaims(
            "Fig. 1 headline aggregates",
            {
                {"average dynamic IC", "14 B",
                 strformat("%.1f B", ic_sum / 18.0 / 1e9)},
                {"smallest IC (GFXBench Special)", "1 B",
                 strformat("%.2f B",
                           profile("GFXBench Special").instructions /
                           1e9)},
                {"largest IC (Geekbench 6 CPU)", "57 B",
                 strformat("%.1f B",
                           profile("Geekbench 6 CPU").instructions /
                           1e9)},
                {"CPU-benchmark mean IPC", "1.16",
                 strformat("%.2f", cpu_ipc)},
                {"graphics-benchmark mean IPC", "0.55",
                 strformat("%.2f", gfx_ipc)},
                {"Antutu Mem IPC (outlier)", "0.45",
                 strformat("%.2f", profile("Antutu Mem").ipc)},
                {"average runtime", "~200-250 s",
                 strformat("%.0f s", rt_sum / 18.0)},
            })
            .c_str());
}

void
BM_ProfileWildLife(benchmark::State &state)
{
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto &bench =
        benchutil::registry().unit("3DMark Wild Life");
    for (auto _ : state) {
        auto p = session.profile(bench);
        benchmark::DoNotOptimize(p.instructions);
    }
}
BENCHMARK(BM_ProfileWildLife)->Unit(benchmark::kMillisecond);

void
BM_ProfileAllBenchmarks(benchmark::State &state)
{
    const ProfilerSession session(SocConfig::snapdragon888());
    for (auto _ : state) {
        auto profiles = session.profileAll(benchutil::registry());
        benchmark::DoNotOptimize(profiles.size());
    }
}
BENCHMARK(BM_ProfileAllBenchmarks)->Unit(benchmark::kMillisecond);

void
BM_Fig1MetricExtraction(benchmark::State &state)
{
    const auto &profiles = benchutil::report().profiles;
    for (auto _ : state) {
        auto m = CharacterizationPipeline::buildFig1Metrics(profiles);
        benchmark::DoNotOptimize(m.rows());
    }
}
BENCHMARK(BM_Fig1MetricExtraction);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig01_metrics", argc, argv);
}
