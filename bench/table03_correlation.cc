/**
 * @file
 * Reproduces Table III: Pearson correlations between the Fig.-1
 * metrics, then times correlation computation.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "stats/correlation.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    std::printf("%s\n", renderTableIII(report()).c_str());

    const CorrelationMatrix corr(report().fig1Metrics);
    auto claim = [&corr](const char *a, const char *b,
                         const char *paper) {
        return benchutil::Claim{
            strformat("r(%s, %s)", a, b), paper,
            strformat("%.3f (%s)", corr.at(a, b),
                      correlationStrengthName(
                          classifyCorrelation(corr.at(a, b)))
                          .c_str())};
    };
    std::printf("%s\n",
        benchutil::renderClaims(
            "Table III paper-vs-measured",
            {
                claim("IC", "IPC", "0.400 (moderate)"),
                claim("IC", "Cache MPKI", "-0.228 (none)"),
                claim("IC", "Runtime", "0.588 (moderate)"),
                claim("IPC", "Cache MPKI", "-0.845 (strong)"),
                claim("IPC", "Branch MPKI", "-0.672 (moderate)"),
                claim("IPC", "Runtime", "-0.242 (none)"),
                claim("Cache MPKI", "Branch MPKI", "0.867 (strong)"),
                claim("Cache MPKI", "Runtime", "0.460 (moderate)"),
                claim("Branch MPKI", "Runtime", "0.350 (none)"),
            })
            .c_str());
}

void
BM_PearsonPair(benchmark::State &state)
{
    const auto x = benchutil::report().fig1Metrics.column(0);
    const auto y = benchutil::report().fig1Metrics.column(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(pearson(x, y));
}
BENCHMARK(BM_PearsonPair);

void
BM_FullCorrelationMatrix(benchmark::State &state)
{
    const auto &m = benchutil::report().fig1Metrics;
    for (auto _ : state) {
        CorrelationMatrix corr(m);
        benchmark::DoNotOptimize(corr.at(0, 1));
    }
}
BENCHMARK(BM_FullCorrelationMatrix);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("table03_correlation", argc, argv);
}
