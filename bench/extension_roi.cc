/**
 * @file
 * Extension: region-of-interest extraction for simulation.
 *
 * The paper motivates subsetting partly because picking a simulation
 * ROI inside closed-source, multi-workload benchmarks is hard. This
 * bench runs the measurement-driven ROI extractor over every
 * benchmark: the selected 10% window, its representativeness error,
 * and the combined saving of Select+GPU subsetting plus ROI
 * simulation, then times the extractor.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "roi/roi.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    const RoiExtractor roi;

    TextTable t({"Benchmark", "ROI window", "Phases",
                 "Representativeness error"});
    t.setAlign(3, Align::Right);
    double worst = 0.0;
    for (const auto &p : report().profiles) {
        const auto window = roi.extract(p);
        worst = std::max(worst, window.representativenessError);
        t.addRow({p.name,
                  strformat("%4.1f%% .. %4.1f%%",
                            100.0 * window.startFraction,
                            100.0 * window.endFraction),
                  strformat("%zu", window.segments.size()),
                  strformat("%.3f",
                            window.representativenessError)});
    }
    std::printf("Extension: 10%% simulation-ROI selection per "
                "benchmark (error = relative L2 distance of window "
                "means to whole-run means)\n%s\n",
                t.render().c_str());

    // Combined saving: Select+GPU subset at 10% ROI each.
    double roi_runtime = 0.0;
    for (const auto &name : report().selectPlusGpuSubset.members) {
        roi_runtime += 0.10 *
            benchutil::registry().unit(name).totalDurationSeconds();
    }
    std::printf(
        "Select+GPU subset + 10%% ROI: %.1f s of simulated "
        "execution vs %.1f s for the full set (%.1f%% reduction; "
        "worst per-benchmark ROI error %.3f)\n\n",
        roi_runtime, report().fullRuntimeSeconds,
        100.0 * (1.0 - roi_runtime / report().fullRuntimeSeconds),
        worst);
}

void
BM_RoiExtraction(benchmark::State &state)
{
    const RoiExtractor roi;
    const auto &p = benchutil::profile("GFXBench High");
    for (auto _ : state) {
        auto window = roi.extract(p);
        benchmark::DoNotOptimize(window.representativenessError);
    }
}
BENCHMARK(BM_RoiExtraction)->Unit(benchmark::kMillisecond);

void
BM_PhaseSegmentation(benchmark::State &state)
{
    const RoiExtractor roi;
    const auto &p = benchutil::profile("Antutu UX");
    const std::vector<std::vector<double>> series = {
        p.series.cpuLoad.values(), p.series.gpuLoad.values(),
        p.series.aieLoad.values()};
    for (auto _ : state) {
        auto segments = roi.segment(series);
        benchmark::DoNotOptimize(segments.size());
    }
}
BENCHMARK(BM_PhaseSegmentation);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("extension_roi", argc, argv);
}
