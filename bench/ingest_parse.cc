/**
 * @file
 * Ingestion benchmarks: trace-bundle parse/normalize/resample
 * throughput, the digest-then-cache-hit fast path, and off-grid
 * resampling — the costs a user pays when feeding externally captured
 * counter traces into the characterization pipeline.
 *
 * The bundle under test is synthetic and deterministic (seeded
 * Xoshiro values, fixed shape: 8 benchmarks x 600 samples x the full
 * canonical counter set), so timings are comparable across runs and
 * machines without shipping trace data in the repository.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "ingest/bundle_reader.hh"
#include "ingest/bundle_writer.hh"
#include "ingest/resample.hh"
#include "store/profile_store.hh"

namespace mbs {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t bundleBenchmarks = 8;
constexpr std::size_t bundleSamples = 600;
constexpr double bundleTick = 0.1;

BenchmarkProfile
syntheticProfile(std::uint64_t seed, std::size_t samples)
{
    BenchmarkProfile p;
    p.name = strformat("Synthetic %llu", (unsigned long long)seed);
    p.suite = "Ingest Bench";
    Xoshiro256StarStar rng(seed);
    p.runtimeSeconds = bundleTick * double(samples);
    p.instructions = 1e9 * rng.uniform();
    p.ipc = 3.0 * rng.uniform();
    p.cacheMpki = 40.0 * rng.uniform();
    p.branchMpki = 8.0 * rng.uniform();
    forEachMetricSeries(p.series, [&](const char *, TimeSeries &s) {
        std::vector<double> values;
        values.reserve(samples);
        for (std::size_t i = 0; i < samples; ++i)
            values.push_back(rng.uniform());
        s = TimeSeries(bundleTick, std::move(values));
    });
    return p;
}

/** Writes the synthetic bundle once; removed at program exit. */
class BundleFixture
{
  public:
    static const BundleFixture &instance()
    {
        static BundleFixture fixture;
        return fixture;
    }

    const fs::path &dir() const { return bundleDir; }

    std::uintmax_t bytes() const
    {
        std::uintmax_t total = 0;
        for (const auto &entry :
             fs::recursive_directory_iterator(bundleDir)) {
            if (entry.is_regular_file())
                total += entry.file_size();
        }
        return total;
    }

  private:
    BundleFixture()
        : bundleDir(fs::temp_directory_path() / "mbs-ingest-bench")
    {
        fs::remove_all(bundleDir);
        ingest::TraceBundleWriter writer(SocConfig::snapdragon888(),
                                         bundleTick);
        for (std::size_t i = 0; i < bundleBenchmarks; ++i)
            writer.add(syntheticProfile(i + 1, bundleSamples), 60.0,
                       true);
        writer.write(bundleDir);
    }

    ~BundleFixture()
    {
        std::error_code ec;
        fs::remove_all(bundleDir, ec);
    }

    fs::path bundleDir;
};

void
printReproduction()
{
    const BundleFixture &fixture = BundleFixture::instance();
    const ingest::IngestResult result =
        ingest::TraceBundleReader().read(fixture.dir());
    std::printf(
        "Ingest round trip: %zu benchmarks, %llu rows, %llu alias "
        "hits, %llu dropped samples, %.1f KiB of bundle bytes "
        "(digest %016llx)\n\n",
        result.profiles.size(),
        (unsigned long long)result.stats.rows,
        (unsigned long long)result.stats.aliasHits,
        (unsigned long long)result.stats.droppedSamples,
        double(fixture.bytes()) / 1024.0,
        (unsigned long long)result.bundleDigest);
}

/** Full strict parse + normalize + resample of the bundle. */
void
BM_IngestParse(benchmark::State &state)
{
    const BundleFixture &fixture = BundleFixture::instance();
    const ingest::TraceBundleReader reader;
    for (auto _ : state) {
        ingest::IngestResult result = reader.read(fixture.dir());
        benchmark::DoNotOptimize(result.profiles.size());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(fixture.bytes()));
}
BENCHMARK(BM_IngestParse)->Unit(benchmark::kMillisecond);

/** Digest + memoized load: the warm-cache ingest path. */
void
BM_IngestCachedLoad(benchmark::State &state)
{
    const BundleFixture &fixture = BundleFixture::instance();
    const fs::path cacheDir =
        fs::temp_directory_path() / "mbs-ingest-bench-cache";
    fs::remove_all(cacheDir);
    {
        ProfileStore store(cacheDir);
        ingest::IngestOptions options;
        options.cache = &store;
        ingest::TraceBundleReader(options).read(fixture.dir());

        for (auto _ : state) {
            ingest::IngestResult result =
                ingest::TraceBundleReader(options).read(fixture.dir());
            benchmark::DoNotOptimize(result.fromCache);
        }
    }
    fs::remove_all(cacheDir);
}
BENCHMARK(BM_IngestCachedLoad)->Unit(benchmark::kMillisecond);

/** Off-grid Level resampling of one long series. */
void
BM_ResampleLevelOffGrid(benchmark::State &state)
{
    Xoshiro256StarStar rng(7);
    std::vector<double> times, values;
    double t = 0.0;
    for (std::size_t i = 0; i < 100000; ++i) {
        t += 0.05 + 0.1 * rng.uniform(); // jittered cadence
        times.push_back(t);
        values.push_back(rng.uniform());
    }
    for (auto _ : state) {
        TimeSeries out = ingest::resampleLevel(times, values, 0.1);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_ResampleLevelOffGrid)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ingest_parse", argc, argv);
}
