/**
 * @file
 * Ablation: platform sensitivity. The paper measures one device; a
 * natural question is which conclusions are device-specific. This
 * bench re-runs the entire pipeline on a mid-range SoC (lower
 * clocks, half the shared cache, smaller GPU, 6 GB RAM) and reports
 * which structural conclusions survive, then times the pipeline on
 * both platforms.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "common/units.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    const CharacterizationPipeline pipeline(SocConfig::midrange());
    const auto mid = pipeline.run(benchutil::registry());

    TextTable t({"Conclusion", "Snapdragon-888-like", "Mid-range"});
    t.addRow({"optimal k", strformat("%d", report().chosenK),
              strformat("%d", mid.chosenK)});
    t.addRow({"algorithms agree",
              report().algorithmsAgree ? "yes" : "no",
              mid.algorithmsAgree ? "yes" : "no"});
    t.addRow({"same partition as flagship", "-",
              samePartition(mid.hierarchicalLabels,
                            report().hierarchicalLabels)
                  ? "yes" : "no"});
    t.addRow({"Naive subset", join(report().naiveSubset.members, ", "),
              join(mid.naiveSubset.members, ", ")});
    t.addRow({"Select+GPU reduction",
              units::formatPercent(
                  report().selectPlusGpuSubset.runtimeReduction),
              units::formatPercent(
                  mid.selectPlusGpuSubset.runtimeReduction)});

    // IPC ratio flagship/mid-range per group.
    const auto ipc_of = [](const CharacterizationReport &r,
                           const char *name) {
        for (const auto &p : r.profiles) {
            if (p.name == name)
                return p.ipc;
        }
        return 0.0;
    };
    t.addRow({"Geekbench 5 CPU IPC",
              strformat("%.2f", ipc_of(report(), "Geekbench 5 CPU")),
              strformat("%.2f", ipc_of(mid, "Geekbench 5 CPU"))});
    t.addRow({"Antutu Mem IPC (cache-sensitive)",
              strformat("%.2f", ipc_of(report(), "Antutu Mem")),
              strformat("%.2f", ipc_of(mid, "Antutu Mem"))});

    std::printf("Ablation: does the analysis transfer to a different "
                "device?\n%s\n",
                t.render().c_str());
    std::printf("%s\n", renderTableII(SocConfig::midrange()).c_str());
}

void
BM_PipelineFlagship(benchmark::State &state)
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    for (auto _ : state) {
        auto r = pipeline.run(benchutil::registry());
        benchmark::DoNotOptimize(r.chosenK);
    }
}
BENCHMARK(BM_PipelineFlagship)->Unit(benchmark::kMillisecond);

void
BM_PipelineMidrange(benchmark::State &state)
{
    const CharacterizationPipeline pipeline(SocConfig::midrange());
    for (auto _ : state) {
        auto r = pipeline.run(benchutil::registry());
        benchmark::DoNotOptimize(r.chosenK);
    }
}
BENCHMARK(BM_PipelineMidrange)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ablation_platform", argc, argv);
}
