/**
 * @file
 * Extension: per-benchmark energy accounting.
 *
 * The paper's limitation 1 excludes power analysis (no battery or
 * power instrumentation on the development board). The simulation
 * substrate has no such constraint: this bench ranks every benchmark
 * by total energy and average power and splits energy by component,
 * then times the energy model.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "soc/energy.hh"
#include "soc/simulator.hh"

namespace mbs {
namespace {

struct Row
{
    std::string name;
    double joules;
    double watts;
    EnergyBreakdown breakdown;
};

std::vector<Row>
measureAll()
{
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);
    std::vector<Row> rows;
    for (const auto &bench : benchutil::registry().units()) {
        SimOptions opts;
        opts.seed = 4242;
        const auto result = sim.run(bench.toTimedPhases(), opts);
        Row row;
        row.name = bench.name();
        row.breakdown = model.energyOf(result);
        row.joules = row.breakdown.total();
        row.watts = row.breakdown.averagePowerW(
            result.totals.runtimeSeconds);
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printReproduction()
{
    auto rows = measureAll();
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.watts > b.watts;
              });

    TextTable t({"Benchmark", "Energy (J)", "Avg power (W)",
                 "CPU %", "GPU %", "AIE %", "DRAM %"});
    for (std::size_t c = 1; c < 7; ++c)
        t.setAlign(c, Align::Right);
    for (const auto &row : rows) {
        double cpu = 0.0;
        for (double j : row.breakdown.cpuJ)
            cpu += j;
        t.addRow({row.name, strformat("%.0f", row.joules),
                  strformat("%.2f", row.watts),
                  strformat("%.0f%%", 100.0 * cpu / row.joules),
                  strformat("%.0f%%",
                            100.0 * row.breakdown.gpuJ / row.joules),
                  strformat("%.0f%%",
                            100.0 * row.breakdown.aieJ / row.joules),
                  strformat("%.0f%%",
                            100.0 * row.breakdown.dramJ /
                                row.joules)});
    }
    std::printf("Extension: simulated energy accounting (the power "
                "analysis the paper could not run)\n%s\n",
                t.render().c_str());

    // Sanity narrative: GPU benchmarks should be power-hungry; CPU
    // multi-core benchmarks CPU-dominated.
    std::printf("Highest average power: %s (%.2f W); "
                "lowest: %s (%.2f W)\n\n",
                rows.front().name.c_str(), rows.front().watts,
                rows.back().name.c_str(), rows.back().watts);
}

void
BM_EnergyAccounting(benchmark::State &state)
{
    const SocConfig config = SocConfig::snapdragon888();
    const SocSimulator sim(config);
    const EnergyModel model(config);
    const auto result = sim.run(
        benchutil::registry().unit("Antutu GPU").toTimedPhases());
    for (auto _ : state) {
        auto e = model.energyOf(result);
        benchmark::DoNotOptimize(e.total());
    }
}
BENCHMARK(BM_EnergyAccounting);

void
BM_FramePower(benchmark::State &state)
{
    const SocConfig config = SocConfig::snapdragon888();
    const EnergyModel model(config);
    CounterFrame frame;
    frame.clusterFrequencyHz = {1.8e9, 2.42e9, 3.0e9};
    frame.clusterUtilization = {0.8, 0.5, 0.9};
    frame.gpu.frequencyHz = 840e6;
    frame.gpu.utilization = 0.9;
    for (auto _ : state)
        benchmark::DoNotOptimize(model.framePowerW(frame));
}
BENCHMARK(BM_FramePower);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("extension_energy", argc, argv);
}
