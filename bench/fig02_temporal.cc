/**
 * @file
 * Reproduces Fig. 2: normalized temporal strips of the six key
 * metrics for every benchmark, plus the section's quantified
 * observations (Vulkan vs OpenGL GPU load, AIE average, memory
 * statistics, off-screen deltas).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "common/units.hh"
#include "profiler/session.hh"

namespace mbs {
namespace {

/** Mean GPU load over phases selected by a predicate. */
template <typename Pred>
double
meanLoadOverPhases(const Benchmark &bench, const BenchmarkProfile &p,
                   Pred pred)
{
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < bench.phases().size(); ++i) {
        if (!pred(bench.phases()[i]))
            continue;
        const double start = bench.phaseStartFraction(i);
        const double mid = start +
            0.5 * bench.phases()[i].durationSeconds /
                bench.totalDurationSeconds();
        sum += p.series.gpuLoad.atNormalizedTime(mid);
        ++n;
    }
    return n ? sum / n : 0.0;
}

void
printReproduction()
{
    using benchutil::profile;
    using benchutil::report;

    for (const auto &p : report().profiles)
        std::printf("%s\n", renderFig2(report(), p.name).c_str());

    // Observation #2: OpenGL vs Vulkan on matched GFXBench scenes.
    const auto &gfx = benchutil::registry().unit("GFXBench High");
    const auto &gfx_profile = profile("GFXBench High");
    const double gl = meanLoadOverPhases(
        gfx, gfx_profile, [](const Phase &ph) {
            return ph.demand.gpu.api == GraphicsApi::OpenGlEs &&
                ph.demand.gpu.workRate == 0.85;
        });
    const double vk = meanLoadOverPhases(
        gfx, gfx_profile, [](const Phase &ph) {
            return ph.demand.gpu.api == GraphicsApi::Vulkan &&
                ph.demand.gpu.workRate == 0.85;
        });

    // Off-screen deltas on GFXBench High and Low.
    const auto offscreen_delta = [](const char *name) {
        const auto &bench = benchutil::registry().unit(name);
        const auto &p = benchutil::profile(name);
        const double on = meanLoadOverPhases(
            bench, p,
            [](const Phase &ph) { return !ph.demand.gpu.offscreen; });
        const double off = meanLoadOverPhases(
            bench, p,
            [](const Phase &ph) { return ph.demand.gpu.offscreen; });
        return (off - on) / on;
    };

    double aie_sum = 0.0, mem_sum = 0.0;
    for (const auto &p : report().profiles) {
        aie_sum += p.avgAieLoad();
        mem_sum += p.avgUsedMemory();
    }
    const double total_gb =
        double(SocConfig::snapdragon888().memory.totalBytes) /
        double(1ULL << 30);

    std::printf("%s\n",
        benchutil::renderClaims(
            "Fig. 2 / Section V-B paper-vs-measured",
            {
                {"OpenGL GPU load vs Vulkan (matched scenes)",
                 "+9.26%",
                 strformat("%+.2f%%", 100.0 * (gl - vk) / vk)},
                {"average AIE load", "5%",
                 strformat("%.1f%%", 100.0 * aie_sum / 18.0)},
                {"highest AIE load benchmark", "GFXBench Special",
                 strformat("GFXBench Special (%.0f%%)",
                           100.0 * profile("GFXBench Special")
                               .avgAieLoad())},
                {"average memory used", "21.6% (2.55 GB)",
                 strformat("%.1f%% (%.2f GB)",
                           100.0 * mem_sum / 18.0,
                           mem_sum / 18.0 * total_gb)},
                {"highest avg memory (Wild Life Extreme)",
                 "3.8 GB",
                 strformat("%.1f GB",
                           profile("3DMark Wild Life Extreme")
                               .avgUsedMemory() * total_gb)},
                {"peak memory (Antutu GPU)", "4.3 GB",
                 strformat("%.1f GB",
                           profile("Antutu GPU")
                               .series.usedMemory.max() * total_gb)},
                {"GFXBench High off-screen GPU-load delta",
                 "+14.5%",
                 strformat("%+.1f%%",
                           100.0 * offscreen_delta("GFXBench High"))},
                {"GFXBench Low off-screen GPU-load delta",
                 "+62.85%",
                 strformat("%+.1f%%",
                           100.0 * offscreen_delta("GFXBench Low"))},
            })
            .c_str());
}

void
BM_TemporalSeriesExtraction(benchmark::State &state)
{
    const ProfilerSession session(SocConfig::snapdragon888());
    const auto &bench = benchutil::registry().unit("Antutu UX");
    for (auto _ : state) {
        auto p = session.profile(bench);
        benchmark::DoNotOptimize(p.series.aieLoad.mean());
    }
}
BENCHMARK(BM_TemporalSeriesExtraction)->Unit(benchmark::kMillisecond);

void
BM_Fig2Rendering(benchmark::State &state)
{
    for (auto _ : state) {
        auto out = renderFig2(benchutil::report(), "Antutu GPU");
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_Fig2Rendering);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig02_temporal", argc, argv);
}
