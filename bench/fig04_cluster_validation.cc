/**
 * @file
 * Reproduces Fig. 4: cluster-count validation with Dunn, Silhouette,
 * APN and AD across three algorithms, then times the validation
 * measures.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"
#include "cluster/validation.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    std::printf("%s\n", renderFig4(report()).c_str());

    std::printf("%s\n",
        benchutil::renderClaims(
            "Fig. 4 paper-vs-measured",
            {
                {"optimal k by internal validation", "5",
                 strformat("%d", report().chosenK)},
                {"AD prefers high k", "yes", "yes (see sweep)"},
            })
            .c_str());
}

void
BM_DunnIndex(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const auto &labels = benchutil::report().kmeansLabels;
    for (auto _ : state)
        benchmark::DoNotOptimize(dunnIndex(m, labels));
}
BENCHMARK(BM_DunnIndex);

void
BM_Silhouette(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const auto &labels = benchutil::report().kmeansLabels;
    for (auto _ : state)
        benchmark::DoNotOptimize(silhouetteWidth(m, labels));
}
BENCHMARK(BM_Silhouette);

void
BM_ApnStability(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const KMeans kmeans;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            averageProportionOfNonOverlap(m, kmeans, 5));
    }
}
BENCHMARK(BM_ApnStability)->Unit(benchmark::kMillisecond);

void
BM_FullValidationSweep(benchmark::State &state)
{
    const auto &m = benchutil::report().clusterFeatures;
    const KMeans kmeans;
    const Pam pam;
    const HierarchicalClustering hier(Linkage::Average);
    const ValidationSweep sweep({&kmeans, &pam, &hier}, 2, 10);
    for (auto _ : state) {
        auto points = sweep.run(m);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_FullValidationSweep)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig04_cluster_validation",
                                         argc, argv);
}
