/**
 * @file
 * Shared helpers for the reproduction bench binaries: a cached
 * pipeline report and a paper-vs-measured table renderer.
 *
 * Every bench binary prints its table/figure reproduction first and
 * then runs google-benchmark timings of the underlying computation.
 */

#ifndef MBS_BENCH_BENCH_UTIL_HH
#define MBS_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "core/report.hh"

namespace mbs {
namespace benchutil {

inline const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

inline const CharacterizationReport &
report()
{
    static const CharacterizationReport rep = [] {
        // The report is identical for any job count (deterministic
        // merge), so the bench binaries always use every core; set
        // MBS_CACHE_DIR to also memoize the profiles across the
        // eight figure binaries.
        PipelineOptions options;
        options.profile.jobs = 0;
        if (const char *dir = std::getenv("MBS_CACHE_DIR"))
            options.cacheDir = dir;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), options);
        return pipeline.run(registry());
    }();
    return rep;
}

inline const BenchmarkProfile &
profile(const std::string &name)
{
    for (const auto &p : report().profiles) {
        if (p.name == name)
            return p;
    }
    throw std::runtime_error("no profile named " + name);
}

/** One paper-vs-measured comparison row. */
struct Claim
{
    std::string description;
    std::string paper;
    std::string measured;
};

/** Render the standard paper-vs-measured comparison table. */
inline std::string
renderClaims(const std::string &title, const std::vector<Claim> &claims)
{
    TextTable t({"Claim", "Paper", "Measured"});
    for (const auto &c : claims)
        t.addRow({c.description, c.paper, c.measured});
    return title + "\n" + t.render();
}

/**
 * Initialize google-benchmark and run the registered benchmarks.
 *
 * When MBS_BENCH_OUT_DIR is set and the caller passed no
 * `--benchmark_out` of their own, the timings are also written to
 * `$MBS_BENCH_OUT_DIR/BENCH_<name>.json` in google-benchmark's JSON
 * format — the input tools/perf_compare diffs against
 * bench/baselines/ in the CI perf gate. Explicit flags always win
 * over the injected defaults.
 */
inline int
runBenchmarks(const std::string &name, int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    bool has_out = false;
    for (const auto &a : args) {
        if (startsWith(a, "--benchmark_out=") || a == "--benchmark_out")
            has_out = true;
    }
    if (!has_out) {
        if (const char *dir = std::getenv("MBS_BENCH_OUT_DIR")) {
            args.push_back(std::string("--benchmark_out=") + dir +
                           "/BENCH_" + name + ".json");
            args.push_back("--benchmark_out_format=json");
        }
    }
    std::vector<char *> raw;
    raw.reserve(args.size());
    for (auto &a : args)
        raw.push_back(a.data());
    int count = int(raw.size());
    benchmark::Initialize(&count, raw.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

} // namespace benchutil
} // namespace mbs

#endif // MBS_BENCH_BENCH_UTIL_HH
