/**
 * @file
 * Shared helpers for the reproduction bench binaries: a cached
 * pipeline report and a paper-vs-measured table renderer.
 *
 * Every bench binary prints its table/figure reproduction first and
 * then runs google-benchmark timings of the underlying computation.
 */

#ifndef MBS_BENCH_BENCH_UTIL_HH
#define MBS_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "core/report.hh"

namespace mbs {
namespace benchutil {

inline const WorkloadRegistry &
registry()
{
    static const WorkloadRegistry reg;
    return reg;
}

inline const CharacterizationReport &
report()
{
    static const CharacterizationReport rep = [] {
        // The report is identical for any job count (deterministic
        // merge), so the bench binaries always use every core; set
        // MBS_CACHE_DIR to also memoize the profiles across the
        // eight figure binaries.
        PipelineOptions options;
        options.profile.jobs = 0;
        if (const char *dir = std::getenv("MBS_CACHE_DIR"))
            options.cacheDir = dir;
        const CharacterizationPipeline pipeline(
            SocConfig::snapdragon888(), options);
        return pipeline.run(registry());
    }();
    return rep;
}

inline const BenchmarkProfile &
profile(const std::string &name)
{
    for (const auto &p : report().profiles) {
        if (p.name == name)
            return p;
    }
    throw std::runtime_error("no profile named " + name);
}

/** One paper-vs-measured comparison row. */
struct Claim
{
    std::string description;
    std::string paper;
    std::string measured;
};

/** Render the standard paper-vs-measured comparison table. */
inline std::string
renderClaims(const std::string &title, const std::vector<Claim> &claims)
{
    TextTable t({"Claim", "Paper", "Measured"});
    for (const auto &c : claims)
        t.addRow({c.description, c.paper, c.measured});
    return title + "\n" + t.render();
}

} // namespace benchutil
} // namespace mbs

#endif // MBS_BENCH_BENCH_UTIL_HH
