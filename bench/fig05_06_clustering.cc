/**
 * @file
 * Reproduces Figs. 5 and 6: the hierarchical dendrogram and the flat
 * cluster memberships from all three algorithms at the selected k,
 * then times the clustering algorithms.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "cluster/hierarchical.hh"
#include "cluster/kmeans.hh"
#include "cluster/pam.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;

    // Fig. 5: the dendrogram.
    const HierarchicalClustering hier(Linkage::Average);
    const auto tree =
        hier.buildDendrogram(report().clusterFeatures);
    std::printf("Fig. 5: hierarchical clustering dendrogram\n%s\n",
                tree.render(report().clusterFeatures.rowNames())
                    .c_str());

    // Figs. 5/6: flat memberships.
    std::printf("%s\n", renderFig5And6(report()).c_str());

    std::printf("%s\n",
        benchutil::renderClaims(
            "Figs. 5/6 paper-vs-measured",
            {
                {"all three algorithms group identically", "yes",
                 report().algorithmsAgree ? "yes" : "NO"},
                {"Antutu segments share a cluster except GPU", "yes",
                 "yes (asserted in tests)"},
            })
            .c_str());
}

void
BM_KMeansAtFive(benchmark::State &state)
{
    const KMeans kmeans;
    const auto &m = benchutil::report().clusterFeatures;
    for (auto _ : state)
        benchmark::DoNotOptimize(kmeans.fit(m, 5).inertia);
}
BENCHMARK(BM_KMeansAtFive);

void
BM_PamAtFive(benchmark::State &state)
{
    const Pam pam;
    const auto &m = benchutil::report().clusterFeatures;
    for (auto _ : state)
        benchmark::DoNotOptimize(pam.fit(m, 5).inertia);
}
BENCHMARK(BM_PamAtFive);

void
BM_HierarchicalDendrogram(benchmark::State &state)
{
    const HierarchicalClustering hier(Linkage::Average);
    const auto &m = benchutil::report().clusterFeatures;
    for (auto _ : state) {
        auto tree = hier.buildDendrogram(m);
        benchmark::DoNotOptimize(tree.merges().size());
    }
}
BENCHMARK(BM_HierarchicalDendrogram);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("fig05_06_clustering", argc, argv);
}
