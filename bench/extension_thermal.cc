/**
 * @file
 * Extension: thermal throttling and sustained-vs-burst performance.
 *
 * The paper describes 3DMark Wild Life as measuring "high levels of
 * performance for short periods of time" — burst benchmarks exist
 * because sustained load throttles, something the paper's casing-less
 * development board could not show. With the thermal extension
 * enabled, this bench compares each GPU benchmark's performance in
 * its first and last minute and reports the die temperature reached,
 * then times the thermal-enabled simulator.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "common/sparkline.hh"
#include "soc/simulator.hh"

namespace mbs {
namespace {

struct ThermalRow
{
    std::string name;
    double runtime;
    double peak_temp;
    double final_throttle;
    double early_load;
    double late_load;
    std::vector<double> temps;
};

ThermalRow
measure(const Benchmark &bench)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    SimOptions opts;
    opts.thermal.enabled = true;
    opts.seed = 99;
    const auto result = sim.run(bench.toTimedPhases(), opts);

    ThermalRow row;
    row.name = bench.name();
    row.runtime = result.totals.runtimeSeconds;
    row.peak_temp = 0.0;
    row.final_throttle = result.frames.back().throttleFactor;
    const std::size_t n = result.frames.size();
    const std::size_t window = std::min<std::size_t>(600, n / 4);
    double early = 0.0, late = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &f = result.frames[i];
        row.peak_temp = std::max(row.peak_temp, f.socTemperatureC);
        row.temps.push_back(f.socTemperatureC / 100.0);
        if (i < window)
            early += f.gpu.load / double(window);
        if (i >= n - window)
            late += f.gpu.load / double(window);
    }
    row.early_load = early;
    row.late_load = late;
    return row;
}

void
printReproduction()
{
    TextTable t({"Benchmark", "Runtime", "Peak temp", "Throttle",
                 "GPU load first/last min", "Sustained loss"});
    const char *gpu_benches[] = {
        "3DMark Wild Life", "3DMark Wild Life Extreme",
        "Antutu GPU", "GFXBench High", "GFXBench Low",
        "Geekbench 6 Compute",
    };
    std::printf("Extension: thermal throttling under sustained load "
                "(burst benchmarks stay cool, long ones throttle)\n");
    for (const char *name : gpu_benches) {
        const auto row =
            measure(benchutil::registry().unit(name));
        t.addRow({row.name,
                  strformat("%.0f s", row.runtime),
                  strformat("%.1f C", row.peak_temp),
                  strformat("%.2fx", row.final_throttle),
                  strformat("%.2f / %.2f", row.early_load,
                            row.late_load),
                  strformat("%+.1f%%",
                            100.0 * (row.late_load - row.early_load) /
                                std::max(row.early_load, 1e-9))});
        std::printf("  %-26s temp %s\n", row.name.c_str(),
                    sparkline(row.temps, 48).c_str());
    }
    std::printf("\n%s\n", t.render().c_str());
}

void
BM_ThermalSimulation(benchmark::State &state)
{
    const SocSimulator sim(SocConfig::snapdragon888());
    const auto phases = benchutil::registry()
                            .unit("3DMark Wild Life")
                            .toTimedPhases();
    SimOptions opts;
    opts.thermal.enabled = state.range(0) != 0;
    for (auto _ : state) {
        auto result = sim.run(phases, opts);
        benchmark::DoNotOptimize(result.frames.size());
    }
}
BENCHMARK(BM_ThermalSimulation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("extension_thermal", argc, argv);
}
