/**
 * @file
 * Ablation: does the benchmark grouping depend on the hierarchical
 * linkage choice? DESIGN.md commits to average linkage; this bench
 * re-clusters with single, complete and Ward linkage and reports
 * whether the k=5 partition survives.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "cluster/hierarchical.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    const auto &m = report().clusterFeatures;
    const auto &baseline = report().hierarchicalLabels;

    TextTable t({"Linkage", "Same partition as average-linkage?",
                 "Clusters touched"});
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        const HierarchicalClustering hc(linkage);
        const auto labels = hc.fit(m, report().chosenK).labels;
        int moved = 0;
        const auto canon_a = canonicalizeLabels(labels);
        const auto canon_b = canonicalizeLabels(baseline);
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (canon_a[i] != canon_b[i])
                ++moved;
        }
        t.addRow({linkageName(linkage),
                  samePartition(labels, baseline) ? "yes" : "no",
                  strformat("%d benchmarks differ", moved)});
    }
    std::printf("Ablation: hierarchical linkage sensitivity "
                "(k = %d)\n%s\n",
                report().chosenK, t.render().c_str());
}

void
BM_LinkageSingle(benchmark::State &state)
{
    const HierarchicalClustering hc(Linkage::Single);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hc.fit(benchutil::report().clusterFeatures, 5).labels);
    }
}
BENCHMARK(BM_LinkageSingle);

void
BM_LinkageWard(benchmark::State &state)
{
    const HierarchicalClustering hc(Linkage::Ward);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hc.fit(benchutil::report().clusterFeatures, 5).labels);
    }
}
BENCHMARK(BM_LinkageWard);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("ablation_linkage", argc, argv);
}
