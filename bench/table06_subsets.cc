/**
 * @file
 * Reproduces Table VI: the Naive, Select and Select+GPU subsets with
 * their running times and reductions, then times subset
 * construction.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "common/units.hh"
#include "subset/subset.hh"

namespace mbs {
namespace {

void
printReproduction()
{
    using benchutil::report;
    std::printf("%s\n", renderTableVI(report()).c_str());

    std::printf("%s\n",
        benchutil::renderClaims(
            "Table VI paper-vs-measured",
            {
                {"Original Set runtime", "4429.5 s",
                 strformat("%.1f s", report().fullRuntimeSeconds)},
                {"Naive runtime / reduction", "401.7 s / 90.93%",
                 strformat("%.1f s / %s",
                           report().naiveSubset.runtimeSeconds,
                           units::formatPercent(
                               report().naiveSubset.runtimeReduction)
                               .c_str())},
                {"Select runtime / reduction", "865.2 s / 80.47%",
                 strformat("%.1f s / %s",
                           report().selectSubset.runtimeSeconds,
                           units::formatPercent(
                               report().selectSubset.runtimeReduction)
                               .c_str())},
                {"Select+GPU runtime / reduction",
                 "1108.36 s / 74.98%",
                 strformat(
                     "%.2f s / %s",
                     report().selectPlusGpuSubset.runtimeSeconds,
                     units::formatPercent(
                         report().selectPlusGpuSubset
                             .runtimeReduction)
                         .c_str())},
                {"Naive members",
                 "Storage, GB5 CPU, GFX Special, Wild Life, GB5 "
                 "Compute",
                 strformat("%zu as listed above",
                           report().naiveSubset.members.size())},
            })
            .c_str());
}

void
BM_SubsetConstruction(benchmark::State &state)
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    const auto candidates = pipeline.buildCandidates(
        benchutil::report().profiles,
        benchutil::report().hierarchicalLabels,
        benchutil::registry());
    for (auto _ : state) {
        const SubsetBuilder builder(candidates);
        auto naive = builder.naive();
        auto select = builder.select();
        auto plus = builder.selectPlusGpu();
        benchmark::DoNotOptimize(naive.runtimeSeconds +
                                 select.runtimeSeconds +
                                 plus.runtimeSeconds);
    }
}
BENCHMARK(BM_SubsetConstruction);

void
BM_CandidateExtraction(benchmark::State &state)
{
    const CharacterizationPipeline pipeline(
        SocConfig::snapdragon888());
    for (auto _ : state) {
        auto candidates = pipeline.buildCandidates(
            benchutil::report().profiles,
            benchutil::report().hierarchicalLabels,
            benchutil::registry());
        benchmark::DoNotOptimize(candidates.size());
    }
}
BENCHMARK(BM_CandidateExtraction);

} // namespace
} // namespace mbs

int
main(int argc, char **argv)
{
    mbs::printReproduction();
    return mbs::benchutil::runBenchmarks("table06_subsets", argc, argv);
}
