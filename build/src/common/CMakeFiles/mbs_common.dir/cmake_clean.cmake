file(REMOVE_RECURSE
  "CMakeFiles/mbs_common.dir/csv.cc.o"
  "CMakeFiles/mbs_common.dir/csv.cc.o.d"
  "CMakeFiles/mbs_common.dir/logging.cc.o"
  "CMakeFiles/mbs_common.dir/logging.cc.o.d"
  "CMakeFiles/mbs_common.dir/random.cc.o"
  "CMakeFiles/mbs_common.dir/random.cc.o.d"
  "CMakeFiles/mbs_common.dir/sparkline.cc.o"
  "CMakeFiles/mbs_common.dir/sparkline.cc.o.d"
  "CMakeFiles/mbs_common.dir/strings.cc.o"
  "CMakeFiles/mbs_common.dir/strings.cc.o.d"
  "CMakeFiles/mbs_common.dir/table.cc.o"
  "CMakeFiles/mbs_common.dir/table.cc.o.d"
  "CMakeFiles/mbs_common.dir/units.cc.o"
  "CMakeFiles/mbs_common.dir/units.cc.o.d"
  "libmbs_common.a"
  "libmbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
