file(REMOVE_RECURSE
  "libmbs_common.a"
)
