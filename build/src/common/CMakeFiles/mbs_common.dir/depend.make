# Empty dependencies file for mbs_common.
# This may be replaced when dependencies are built.
