file(REMOVE_RECURSE
  "libmbs_soc.a"
)
