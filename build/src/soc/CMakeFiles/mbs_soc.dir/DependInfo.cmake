
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/aie.cc" "src/soc/CMakeFiles/mbs_soc.dir/aie.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/aie.cc.o.d"
  "/root/repo/src/soc/caches.cc" "src/soc/CMakeFiles/mbs_soc.dir/caches.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/caches.cc.o.d"
  "/root/repo/src/soc/config.cc" "src/soc/CMakeFiles/mbs_soc.dir/config.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/config.cc.o.d"
  "/root/repo/src/soc/dvfs.cc" "src/soc/CMakeFiles/mbs_soc.dir/dvfs.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/dvfs.cc.o.d"
  "/root/repo/src/soc/energy.cc" "src/soc/CMakeFiles/mbs_soc.dir/energy.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/energy.cc.o.d"
  "/root/repo/src/soc/gpu.cc" "src/soc/CMakeFiles/mbs_soc.dir/gpu.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/gpu.cc.o.d"
  "/root/repo/src/soc/memory.cc" "src/soc/CMakeFiles/mbs_soc.dir/memory.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/memory.cc.o.d"
  "/root/repo/src/soc/scheduler.cc" "src/soc/CMakeFiles/mbs_soc.dir/scheduler.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/scheduler.cc.o.d"
  "/root/repo/src/soc/simulator.cc" "src/soc/CMakeFiles/mbs_soc.dir/simulator.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/simulator.cc.o.d"
  "/root/repo/src/soc/thermal.cc" "src/soc/CMakeFiles/mbs_soc.dir/thermal.cc.o" "gcc" "src/soc/CMakeFiles/mbs_soc.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
