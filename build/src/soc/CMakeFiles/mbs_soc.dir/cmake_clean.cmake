file(REMOVE_RECURSE
  "CMakeFiles/mbs_soc.dir/aie.cc.o"
  "CMakeFiles/mbs_soc.dir/aie.cc.o.d"
  "CMakeFiles/mbs_soc.dir/caches.cc.o"
  "CMakeFiles/mbs_soc.dir/caches.cc.o.d"
  "CMakeFiles/mbs_soc.dir/config.cc.o"
  "CMakeFiles/mbs_soc.dir/config.cc.o.d"
  "CMakeFiles/mbs_soc.dir/dvfs.cc.o"
  "CMakeFiles/mbs_soc.dir/dvfs.cc.o.d"
  "CMakeFiles/mbs_soc.dir/energy.cc.o"
  "CMakeFiles/mbs_soc.dir/energy.cc.o.d"
  "CMakeFiles/mbs_soc.dir/gpu.cc.o"
  "CMakeFiles/mbs_soc.dir/gpu.cc.o.d"
  "CMakeFiles/mbs_soc.dir/memory.cc.o"
  "CMakeFiles/mbs_soc.dir/memory.cc.o.d"
  "CMakeFiles/mbs_soc.dir/scheduler.cc.o"
  "CMakeFiles/mbs_soc.dir/scheduler.cc.o.d"
  "CMakeFiles/mbs_soc.dir/simulator.cc.o"
  "CMakeFiles/mbs_soc.dir/simulator.cc.o.d"
  "CMakeFiles/mbs_soc.dir/thermal.cc.o"
  "CMakeFiles/mbs_soc.dir/thermal.cc.o.d"
  "libmbs_soc.a"
  "libmbs_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
