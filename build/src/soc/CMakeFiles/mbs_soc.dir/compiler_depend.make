# Empty compiler generated dependencies file for mbs_soc.
# This may be replaced when dependencies are built.
