# CMake generated Testfile for 
# Source directory: /root/repo/src/soc
# Build directory: /root/repo/build/src/soc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
