file(REMOVE_RECURSE
  "libmbs_subset.a"
)
