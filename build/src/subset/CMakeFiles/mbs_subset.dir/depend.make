# Empty dependencies file for mbs_subset.
# This may be replaced when dependencies are built.
