file(REMOVE_RECURSE
  "CMakeFiles/mbs_subset.dir/subset.cc.o"
  "CMakeFiles/mbs_subset.dir/subset.cc.o.d"
  "libmbs_subset.a"
  "libmbs_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
