# Empty compiler generated dependencies file for mbs_roi.
# This may be replaced when dependencies are built.
