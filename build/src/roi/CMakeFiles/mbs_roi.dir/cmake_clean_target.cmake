file(REMOVE_RECURSE
  "libmbs_roi.a"
)
