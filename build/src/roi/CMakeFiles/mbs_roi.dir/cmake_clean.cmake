file(REMOVE_RECURSE
  "CMakeFiles/mbs_roi.dir/roi.cc.o"
  "CMakeFiles/mbs_roi.dir/roi.cc.o.d"
  "libmbs_roi.a"
  "libmbs_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
