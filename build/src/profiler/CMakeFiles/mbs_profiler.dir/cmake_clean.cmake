file(REMOVE_RECURSE
  "CMakeFiles/mbs_profiler.dir/catalog.cc.o"
  "CMakeFiles/mbs_profiler.dir/catalog.cc.o.d"
  "CMakeFiles/mbs_profiler.dir/session.cc.o"
  "CMakeFiles/mbs_profiler.dir/session.cc.o.d"
  "CMakeFiles/mbs_profiler.dir/trace.cc.o"
  "CMakeFiles/mbs_profiler.dir/trace.cc.o.d"
  "libmbs_profiler.a"
  "libmbs_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
