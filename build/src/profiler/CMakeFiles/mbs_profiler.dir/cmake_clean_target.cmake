file(REMOVE_RECURSE
  "libmbs_profiler.a"
)
