# Empty dependencies file for mbs_profiler.
# This may be replaced when dependencies are built.
