
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/catalog.cc" "src/profiler/CMakeFiles/mbs_profiler.dir/catalog.cc.o" "gcc" "src/profiler/CMakeFiles/mbs_profiler.dir/catalog.cc.o.d"
  "/root/repo/src/profiler/session.cc" "src/profiler/CMakeFiles/mbs_profiler.dir/session.cc.o" "gcc" "src/profiler/CMakeFiles/mbs_profiler.dir/session.cc.o.d"
  "/root/repo/src/profiler/trace.cc" "src/profiler/CMakeFiles/mbs_profiler.dir/trace.cc.o" "gcc" "src/profiler/CMakeFiles/mbs_profiler.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mbs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mbs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
