
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark.cc" "src/workload/CMakeFiles/mbs_workload.dir/benchmark.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/benchmark.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/workload/CMakeFiles/mbs_workload.dir/kernels.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/kernels.cc.o.d"
  "/root/repo/src/workload/loader.cc" "src/workload/CMakeFiles/mbs_workload.dir/loader.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/loader.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/mbs_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/registry.cc.o.d"
  "/root/repo/src/workload/suites/antutu.cc" "src/workload/CMakeFiles/mbs_workload.dir/suites/antutu.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/suites/antutu.cc.o.d"
  "/root/repo/src/workload/suites/geekbench.cc" "src/workload/CMakeFiles/mbs_workload.dir/suites/geekbench.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/suites/geekbench.cc.o.d"
  "/root/repo/src/workload/suites/gfxbench.cc" "src/workload/CMakeFiles/mbs_workload.dir/suites/gfxbench.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/suites/gfxbench.cc.o.d"
  "/root/repo/src/workload/suites/pcmark.cc" "src/workload/CMakeFiles/mbs_workload.dir/suites/pcmark.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/suites/pcmark.cc.o.d"
  "/root/repo/src/workload/suites/threedmark.cc" "src/workload/CMakeFiles/mbs_workload.dir/suites/threedmark.cc.o" "gcc" "src/workload/CMakeFiles/mbs_workload.dir/suites/threedmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mbs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
