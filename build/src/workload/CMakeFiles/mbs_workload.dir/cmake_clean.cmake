file(REMOVE_RECURSE
  "CMakeFiles/mbs_workload.dir/benchmark.cc.o"
  "CMakeFiles/mbs_workload.dir/benchmark.cc.o.d"
  "CMakeFiles/mbs_workload.dir/kernels.cc.o"
  "CMakeFiles/mbs_workload.dir/kernels.cc.o.d"
  "CMakeFiles/mbs_workload.dir/loader.cc.o"
  "CMakeFiles/mbs_workload.dir/loader.cc.o.d"
  "CMakeFiles/mbs_workload.dir/registry.cc.o"
  "CMakeFiles/mbs_workload.dir/registry.cc.o.d"
  "CMakeFiles/mbs_workload.dir/suites/antutu.cc.o"
  "CMakeFiles/mbs_workload.dir/suites/antutu.cc.o.d"
  "CMakeFiles/mbs_workload.dir/suites/geekbench.cc.o"
  "CMakeFiles/mbs_workload.dir/suites/geekbench.cc.o.d"
  "CMakeFiles/mbs_workload.dir/suites/gfxbench.cc.o"
  "CMakeFiles/mbs_workload.dir/suites/gfxbench.cc.o.d"
  "CMakeFiles/mbs_workload.dir/suites/pcmark.cc.o"
  "CMakeFiles/mbs_workload.dir/suites/pcmark.cc.o.d"
  "CMakeFiles/mbs_workload.dir/suites/threedmark.cc.o"
  "CMakeFiles/mbs_workload.dir/suites/threedmark.cc.o.d"
  "libmbs_workload.a"
  "libmbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
