file(REMOVE_RECURSE
  "libmbs_workload.a"
)
