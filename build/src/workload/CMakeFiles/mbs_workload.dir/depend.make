# Empty dependencies file for mbs_workload.
# This may be replaced when dependencies are built.
