
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/clustering.cc" "src/cluster/CMakeFiles/mbs_cluster.dir/clustering.cc.o" "gcc" "src/cluster/CMakeFiles/mbs_cluster.dir/clustering.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/cluster/CMakeFiles/mbs_cluster.dir/hierarchical.cc.o" "gcc" "src/cluster/CMakeFiles/mbs_cluster.dir/hierarchical.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/mbs_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/mbs_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/pam.cc" "src/cluster/CMakeFiles/mbs_cluster.dir/pam.cc.o" "gcc" "src/cluster/CMakeFiles/mbs_cluster.dir/pam.cc.o.d"
  "/root/repo/src/cluster/validation.cc" "src/cluster/CMakeFiles/mbs_cluster.dir/validation.cc.o" "gcc" "src/cluster/CMakeFiles/mbs_cluster.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
