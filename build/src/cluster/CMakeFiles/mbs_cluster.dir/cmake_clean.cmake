file(REMOVE_RECURSE
  "CMakeFiles/mbs_cluster.dir/clustering.cc.o"
  "CMakeFiles/mbs_cluster.dir/clustering.cc.o.d"
  "CMakeFiles/mbs_cluster.dir/hierarchical.cc.o"
  "CMakeFiles/mbs_cluster.dir/hierarchical.cc.o.d"
  "CMakeFiles/mbs_cluster.dir/kmeans.cc.o"
  "CMakeFiles/mbs_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/mbs_cluster.dir/pam.cc.o"
  "CMakeFiles/mbs_cluster.dir/pam.cc.o.d"
  "CMakeFiles/mbs_cluster.dir/validation.cc.o"
  "CMakeFiles/mbs_cluster.dir/validation.cc.o.d"
  "libmbs_cluster.a"
  "libmbs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
