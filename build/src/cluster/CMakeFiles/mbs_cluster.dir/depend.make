# Empty dependencies file for mbs_cluster.
# This may be replaced when dependencies are built.
