file(REMOVE_RECURSE
  "libmbs_cluster.a"
)
