file(REMOVE_RECURSE
  "libmbs_core.a"
)
