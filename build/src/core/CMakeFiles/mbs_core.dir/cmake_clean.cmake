file(REMOVE_RECURSE
  "CMakeFiles/mbs_core.dir/pipeline.cc.o"
  "CMakeFiles/mbs_core.dir/pipeline.cc.o.d"
  "CMakeFiles/mbs_core.dir/report.cc.o"
  "CMakeFiles/mbs_core.dir/report.cc.o.d"
  "libmbs_core.a"
  "libmbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
