# Empty dependencies file for mbs_core.
# This may be replaced when dependencies are built.
