file(REMOVE_RECURSE
  "CMakeFiles/mbs_stats.dir/correlation.cc.o"
  "CMakeFiles/mbs_stats.dir/correlation.cc.o.d"
  "CMakeFiles/mbs_stats.dir/feature_matrix.cc.o"
  "CMakeFiles/mbs_stats.dir/feature_matrix.cc.o.d"
  "CMakeFiles/mbs_stats.dir/histogram.cc.o"
  "CMakeFiles/mbs_stats.dir/histogram.cc.o.d"
  "CMakeFiles/mbs_stats.dir/summary.cc.o"
  "CMakeFiles/mbs_stats.dir/summary.cc.o.d"
  "CMakeFiles/mbs_stats.dir/time_series.cc.o"
  "CMakeFiles/mbs_stats.dir/time_series.cc.o.d"
  "libmbs_stats.a"
  "libmbs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
