file(REMOVE_RECURSE
  "libmbs_stats.a"
)
