# Empty compiler generated dependencies file for mbs_stats.
# This may be replaced when dependencies are built.
