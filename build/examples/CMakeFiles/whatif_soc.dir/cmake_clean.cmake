file(REMOVE_RECURSE
  "CMakeFiles/whatif_soc.dir/whatif_soc.cpp.o"
  "CMakeFiles/whatif_soc.dir/whatif_soc.cpp.o.d"
  "whatif_soc"
  "whatif_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
