# Empty dependencies file for whatif_soc.
# This may be replaced when dependencies are built.
