# Empty dependencies file for subset_explorer.
# This may be replaced when dependencies are built.
