file(REMOVE_RECURSE
  "CMakeFiles/subset_explorer.dir/subset_explorer.cpp.o"
  "CMakeFiles/subset_explorer.dir/subset_explorer.cpp.o.d"
  "subset_explorer"
  "subset_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
