file(REMOVE_RECURSE
  "CMakeFiles/energy_budget.dir/energy_budget.cpp.o"
  "CMakeFiles/energy_budget.dir/energy_budget.cpp.o.d"
  "energy_budget"
  "energy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
