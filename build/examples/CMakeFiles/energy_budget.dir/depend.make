# Empty dependencies file for energy_budget.
# This may be replaced when dependencies are built.
