# Empty dependencies file for characterize_suites.
# This may be replaced when dependencies are built.
