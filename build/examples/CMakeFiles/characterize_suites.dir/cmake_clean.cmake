file(REMOVE_RECURSE
  "CMakeFiles/characterize_suites.dir/characterize_suites.cpp.o"
  "CMakeFiles/characterize_suites.dir/characterize_suites.cpp.o.d"
  "characterize_suites"
  "characterize_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
