file(REMOVE_RECURSE
  "CMakeFiles/fig03_table05_heterogeneity.dir/fig03_table05_heterogeneity.cc.o"
  "CMakeFiles/fig03_table05_heterogeneity.dir/fig03_table05_heterogeneity.cc.o.d"
  "fig03_table05_heterogeneity"
  "fig03_table05_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_table05_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
