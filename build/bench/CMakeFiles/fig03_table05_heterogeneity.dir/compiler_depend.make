# Empty compiler generated dependencies file for fig03_table05_heterogeneity.
# This may be replaced when dependencies are built.
