file(REMOVE_RECURSE
  "CMakeFiles/fig02_temporal.dir/fig02_temporal.cc.o"
  "CMakeFiles/fig02_temporal.dir/fig02_temporal.cc.o.d"
  "fig02_temporal"
  "fig02_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
