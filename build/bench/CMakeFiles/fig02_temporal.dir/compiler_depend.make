# Empty compiler generated dependencies file for fig02_temporal.
# This may be replaced when dependencies are built.
