# Empty compiler generated dependencies file for fig04_cluster_validation.
# This may be replaced when dependencies are built.
