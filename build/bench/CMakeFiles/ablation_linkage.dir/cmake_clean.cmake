file(REMOVE_RECURSE
  "CMakeFiles/ablation_linkage.dir/ablation_linkage.cc.o"
  "CMakeFiles/ablation_linkage.dir/ablation_linkage.cc.o.d"
  "ablation_linkage"
  "ablation_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
