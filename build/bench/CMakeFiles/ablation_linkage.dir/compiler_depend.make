# Empty compiler generated dependencies file for ablation_linkage.
# This may be replaced when dependencies are built.
