file(REMOVE_RECURSE
  "CMakeFiles/table03_correlation.dir/table03_correlation.cc.o"
  "CMakeFiles/table03_correlation.dir/table03_correlation.cc.o.d"
  "table03_correlation"
  "table03_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
