# Empty compiler generated dependencies file for table03_correlation.
# This may be replaced when dependencies are built.
