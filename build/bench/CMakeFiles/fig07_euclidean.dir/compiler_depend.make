# Empty compiler generated dependencies file for fig07_euclidean.
# This may be replaced when dependencies are built.
