file(REMOVE_RECURSE
  "CMakeFiles/fig07_euclidean.dir/fig07_euclidean.cc.o"
  "CMakeFiles/fig07_euclidean.dir/fig07_euclidean.cc.o.d"
  "fig07_euclidean"
  "fig07_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
