# Empty compiler generated dependencies file for ablation_sampling.
# This may be replaced when dependencies are built.
