file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o"
  "CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o.d"
  "ablation_sampling"
  "ablation_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
