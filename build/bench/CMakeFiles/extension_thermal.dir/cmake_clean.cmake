file(REMOVE_RECURSE
  "CMakeFiles/extension_thermal.dir/extension_thermal.cc.o"
  "CMakeFiles/extension_thermal.dir/extension_thermal.cc.o.d"
  "extension_thermal"
  "extension_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
