# Empty compiler generated dependencies file for extension_thermal.
# This may be replaced when dependencies are built.
