# Empty dependencies file for fig01_metrics.
# This may be replaced when dependencies are built.
