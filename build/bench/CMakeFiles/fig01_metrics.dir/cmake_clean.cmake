file(REMOVE_RECURSE
  "CMakeFiles/fig01_metrics.dir/fig01_metrics.cc.o"
  "CMakeFiles/fig01_metrics.dir/fig01_metrics.cc.o.d"
  "fig01_metrics"
  "fig01_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
