# Empty dependencies file for extension_energy.
# This may be replaced when dependencies are built.
