file(REMOVE_RECURSE
  "CMakeFiles/extension_energy.dir/extension_energy.cc.o"
  "CMakeFiles/extension_energy.dir/extension_energy.cc.o.d"
  "extension_energy"
  "extension_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
