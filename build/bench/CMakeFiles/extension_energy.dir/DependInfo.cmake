
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extension_energy.cc" "bench/CMakeFiles/extension_energy.dir/extension_energy.cc.o" "gcc" "bench/CMakeFiles/extension_energy.dir/extension_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/roi/CMakeFiles/mbs_roi.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/mbs_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mbs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/subset/CMakeFiles/mbs_subset.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
