# Empty dependencies file for extension_roi.
# This may be replaced when dependencies are built.
