file(REMOVE_RECURSE
  "CMakeFiles/extension_roi.dir/extension_roi.cc.o"
  "CMakeFiles/extension_roi.dir/extension_roi.cc.o.d"
  "extension_roi"
  "extension_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
