# Empty compiler generated dependencies file for ablation_seeding.
# This may be replaced when dependencies are built.
