file(REMOVE_RECURSE
  "CMakeFiles/ablation_seeding.dir/ablation_seeding.cc.o"
  "CMakeFiles/ablation_seeding.dir/ablation_seeding.cc.o.d"
  "ablation_seeding"
  "ablation_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
