# Empty compiler generated dependencies file for fig05_06_clustering.
# This may be replaced when dependencies are built.
