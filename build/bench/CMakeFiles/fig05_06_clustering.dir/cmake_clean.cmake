file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_clustering.dir/fig05_06_clustering.cc.o"
  "CMakeFiles/fig05_06_clustering.dir/fig05_06_clustering.cc.o.d"
  "fig05_06_clustering"
  "fig05_06_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
