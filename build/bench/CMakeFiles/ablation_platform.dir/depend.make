# Empty dependencies file for ablation_platform.
# This may be replaced when dependencies are built.
