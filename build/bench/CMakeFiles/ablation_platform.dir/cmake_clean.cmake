file(REMOVE_RECURSE
  "CMakeFiles/ablation_platform.dir/ablation_platform.cc.o"
  "CMakeFiles/ablation_platform.dir/ablation_platform.cc.o.d"
  "ablation_platform"
  "ablation_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
