# Empty compiler generated dependencies file for table06_subsets.
# This may be replaced when dependencies are built.
