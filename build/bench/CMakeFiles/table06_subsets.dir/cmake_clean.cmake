file(REMOVE_RECURSE
  "CMakeFiles/table06_subsets.dir/table06_subsets.cc.o"
  "CMakeFiles/table06_subsets.dir/table06_subsets.cc.o.d"
  "table06_subsets"
  "table06_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
