# Empty compiler generated dependencies file for mbs_test_workload.
# This may be replaced when dependencies are built.
