file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_workload.dir/workload/test_benchmark.cc.o"
  "CMakeFiles/mbs_test_workload.dir/workload/test_benchmark.cc.o.d"
  "CMakeFiles/mbs_test_workload.dir/workload/test_kernels.cc.o"
  "CMakeFiles/mbs_test_workload.dir/workload/test_kernels.cc.o.d"
  "CMakeFiles/mbs_test_workload.dir/workload/test_loader.cc.o"
  "CMakeFiles/mbs_test_workload.dir/workload/test_loader.cc.o.d"
  "CMakeFiles/mbs_test_workload.dir/workload/test_registry.cc.o"
  "CMakeFiles/mbs_test_workload.dir/workload/test_registry.cc.o.d"
  "CMakeFiles/mbs_test_workload.dir/workload/test_suites.cc.o"
  "CMakeFiles/mbs_test_workload.dir/workload/test_suites.cc.o.d"
  "mbs_test_workload"
  "mbs_test_workload.pdb"
  "mbs_test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
