file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_clustering.cc.o"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_clustering.cc.o.d"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_hierarchical.cc.o"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_hierarchical.cc.o.d"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_kmeans.cc.o"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_kmeans.cc.o.d"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_pam.cc.o"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_pam.cc.o.d"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_validation.cc.o"
  "CMakeFiles/mbs_test_cluster.dir/cluster/test_validation.cc.o.d"
  "mbs_test_cluster"
  "mbs_test_cluster.pdb"
  "mbs_test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
