# Empty compiler generated dependencies file for mbs_test_cluster.
# This may be replaced when dependencies are built.
