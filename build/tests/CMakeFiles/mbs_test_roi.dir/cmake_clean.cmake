file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_roi.dir/roi/test_roi.cc.o"
  "CMakeFiles/mbs_test_roi.dir/roi/test_roi.cc.o.d"
  "mbs_test_roi"
  "mbs_test_roi.pdb"
  "mbs_test_roi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
