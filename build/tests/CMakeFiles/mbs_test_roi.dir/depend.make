# Empty dependencies file for mbs_test_roi.
# This may be replaced when dependencies are built.
