file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_soc.dir/soc/test_aie.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_aie.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_caches.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_caches.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_config.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_config.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_dvfs.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_dvfs.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_energy.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_energy.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_gpu.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_gpu.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_memory.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_memory.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_scheduler.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_scheduler.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_simulator.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_simulator.cc.o.d"
  "CMakeFiles/mbs_test_soc.dir/soc/test_thermal.cc.o"
  "CMakeFiles/mbs_test_soc.dir/soc/test_thermal.cc.o.d"
  "mbs_test_soc"
  "mbs_test_soc.pdb"
  "mbs_test_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
