# Empty dependencies file for mbs_test_soc.
# This may be replaced when dependencies are built.
