
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/test_aie.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_aie.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_aie.cc.o.d"
  "/root/repo/tests/soc/test_caches.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_caches.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_caches.cc.o.d"
  "/root/repo/tests/soc/test_config.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_config.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_config.cc.o.d"
  "/root/repo/tests/soc/test_dvfs.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_dvfs.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_dvfs.cc.o.d"
  "/root/repo/tests/soc/test_energy.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_energy.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_energy.cc.o.d"
  "/root/repo/tests/soc/test_gpu.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_gpu.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_gpu.cc.o.d"
  "/root/repo/tests/soc/test_memory.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_memory.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_memory.cc.o.d"
  "/root/repo/tests/soc/test_scheduler.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_scheduler.cc.o.d"
  "/root/repo/tests/soc/test_simulator.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_simulator.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_simulator.cc.o.d"
  "/root/repo/tests/soc/test_thermal.cc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_thermal.cc.o" "gcc" "tests/CMakeFiles/mbs_test_soc.dir/soc/test_thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/roi/CMakeFiles/mbs_roi.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/mbs_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/mbs_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/subset/CMakeFiles/mbs_subset.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mbs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
