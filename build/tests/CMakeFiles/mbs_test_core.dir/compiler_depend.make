# Empty compiler generated dependencies file for mbs_test_core.
# This may be replaced when dependencies are built.
