file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_core.dir/core/test_pipeline_units.cc.o"
  "CMakeFiles/mbs_test_core.dir/core/test_pipeline_units.cc.o.d"
  "mbs_test_core"
  "mbs_test_core.pdb"
  "mbs_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
