file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_integration.dir/integration/test_calibration.cc.o"
  "CMakeFiles/mbs_test_integration.dir/integration/test_calibration.cc.o.d"
  "CMakeFiles/mbs_test_integration.dir/integration/test_determinism.cc.o"
  "CMakeFiles/mbs_test_integration.dir/integration/test_determinism.cc.o.d"
  "CMakeFiles/mbs_test_integration.dir/integration/test_observations.cc.o"
  "CMakeFiles/mbs_test_integration.dir/integration/test_observations.cc.o.d"
  "CMakeFiles/mbs_test_integration.dir/integration/test_per_benchmark.cc.o"
  "CMakeFiles/mbs_test_integration.dir/integration/test_per_benchmark.cc.o.d"
  "CMakeFiles/mbs_test_integration.dir/integration/test_pipeline.cc.o"
  "CMakeFiles/mbs_test_integration.dir/integration/test_pipeline.cc.o.d"
  "mbs_test_integration"
  "mbs_test_integration.pdb"
  "mbs_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
