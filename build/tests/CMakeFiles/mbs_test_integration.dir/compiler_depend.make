# Empty compiler generated dependencies file for mbs_test_integration.
# This may be replaced when dependencies are built.
