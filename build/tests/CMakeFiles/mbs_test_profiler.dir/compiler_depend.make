# Empty compiler generated dependencies file for mbs_test_profiler.
# This may be replaced when dependencies are built.
