file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_catalog.cc.o"
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_catalog.cc.o.d"
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_session.cc.o"
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_session.cc.o.d"
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_trace.cc.o"
  "CMakeFiles/mbs_test_profiler.dir/profiler/test_trace.cc.o.d"
  "mbs_test_profiler"
  "mbs_test_profiler.pdb"
  "mbs_test_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
