file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_subset.dir/subset/test_subset.cc.o"
  "CMakeFiles/mbs_test_subset.dir/subset/test_subset.cc.o.d"
  "mbs_test_subset"
  "mbs_test_subset.pdb"
  "mbs_test_subset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
