# Empty compiler generated dependencies file for mbs_test_subset.
# This may be replaced when dependencies are built.
