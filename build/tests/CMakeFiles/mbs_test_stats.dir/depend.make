# Empty dependencies file for mbs_test_stats.
# This may be replaced when dependencies are built.
