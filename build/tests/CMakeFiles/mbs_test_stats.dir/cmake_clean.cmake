file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_stats.dir/stats/test_correlation.cc.o"
  "CMakeFiles/mbs_test_stats.dir/stats/test_correlation.cc.o.d"
  "CMakeFiles/mbs_test_stats.dir/stats/test_feature_matrix.cc.o"
  "CMakeFiles/mbs_test_stats.dir/stats/test_feature_matrix.cc.o.d"
  "CMakeFiles/mbs_test_stats.dir/stats/test_histogram.cc.o"
  "CMakeFiles/mbs_test_stats.dir/stats/test_histogram.cc.o.d"
  "CMakeFiles/mbs_test_stats.dir/stats/test_summary.cc.o"
  "CMakeFiles/mbs_test_stats.dir/stats/test_summary.cc.o.d"
  "CMakeFiles/mbs_test_stats.dir/stats/test_time_series.cc.o"
  "CMakeFiles/mbs_test_stats.dir/stats/test_time_series.cc.o.d"
  "mbs_test_stats"
  "mbs_test_stats.pdb"
  "mbs_test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
