# Empty compiler generated dependencies file for mbs_test_common.
# This may be replaced when dependencies are built.
