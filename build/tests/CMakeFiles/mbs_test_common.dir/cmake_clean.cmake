file(REMOVE_RECURSE
  "CMakeFiles/mbs_test_common.dir/common/test_csv.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_csv.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_logging.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_logging.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_random.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_random.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_sparkline.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_sparkline.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_strings.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_strings.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_table.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_table.cc.o.d"
  "CMakeFiles/mbs_test_common.dir/common/test_units.cc.o"
  "CMakeFiles/mbs_test_common.dir/common/test_units.cc.o.d"
  "mbs_test_common"
  "mbs_test_common.pdb"
  "mbs_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbs_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
