# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mbs_test_common[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_stats[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_soc[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_roi[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_workload[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_core[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_profiler[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_cluster[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_subset[1]_include.cmake")
include("/root/repo/build/tests/mbs_test_integration[1]_include.cmake")
