# Empty dependencies file for mobilebench.
# This may be replaced when dependencies are built.
