file(REMOVE_RECURSE
  "CMakeFiles/mobilebench.dir/mobilebench.cc.o"
  "CMakeFiles/mobilebench.dir/mobilebench.cc.o.d"
  "mobilebench"
  "mobilebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobilebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
