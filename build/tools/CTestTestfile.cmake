# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.usage "/root/repo/build/tools/mobilebench")
set_tests_properties(cli.usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.list "/root/repo/build/tools/mobilebench" "list")
set_tests_properties(cli.list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.profile "/root/repo/build/tools/mobilebench" "profile" "3DMark Wild Life")
set_tests_properties(cli.profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.counters "/root/repo/build/tools/mobilebench" "counters" "Aitutu" "cpu.load" "aie.load")
set_tests_properties(cli.counters PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.roi "/root/repo/build/tools/mobilebench" "roi" "Geekbench 5 CPU" "0.2")
set_tests_properties(cli.roi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.energy "/root/repo/build/tools/mobilebench" "energy" "Antutu GPU")
set_tests_properties(cli.energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.catalog "/root/repo/build/tools/mobilebench" "catalog" "GPU")
set_tests_properties(cli.catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.load "/root/repo/build/tools/mobilebench" "load" "/root/repo/tools/../examples/custom_suite.mbs")
set_tests_properties(cli.load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.unknown_benchmark "/root/repo/build/tools/mobilebench" "profile" "No Such Benchmark")
set_tests_properties(cli.unknown_benchmark PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
