#include "benchmark.hh"

#include "common/logging.hh"

namespace mbs {

std::string
hardwareTargetName(HardwareTarget target)
{
    switch (target) {
      case HardwareTarget::Cpu:
        return "CPU";
      case HardwareTarget::Gpu:
        return "GPU";
      case HardwareTarget::MemorySubsystem:
        return "Memory subsystem";
      case HardwareTarget::StorageSubsystem:
        return "Storage subsystem";
      case HardwareTarget::Ai:
        return "AI-related tasks";
      case HardwareTarget::EverydayTasks:
        return "Everyday tasks";
    }
    panic("unknown hardware target");
}

Benchmark::Benchmark(std::string suite_, std::string name_,
                     HardwareTarget target, bool individually_executable)
    : suite(std::move(suite_)), benchName(std::move(name_)),
      hwTarget(target), executable(individually_executable)
{
}

void
Benchmark::addPhase(Phase phase)
{
    fatalIf(phase.durationSeconds <= 0.0,
            "phase '" + phase.name + "' of benchmark '" + benchName +
            "' must have a positive duration");
    phaseList.push_back(std::move(phase));
}

double
Benchmark::totalDurationSeconds() const
{
    double total = 0.0;
    for (const auto &p : phaseList)
        total += p.durationSeconds;
    return total;
}

double
Benchmark::totalInstructionsBillions() const
{
    double total = 0.0;
    for (const auto &p : phaseList)
        total += p.demand.cpu.instructionsBillions;
    return total;
}

std::vector<TimedPhase>
Benchmark::toTimedPhases() const
{
    std::vector<TimedPhase> out;
    out.reserve(phaseList.size());
    for (const auto &p : phaseList)
        out.push_back(TimedPhase{p.durationSeconds, p.demand});
    return out;
}

double
Benchmark::phaseStartFraction(std::size_t i) const
{
    fatalIf(i >= phaseList.size(), "phase index out of range");
    const double total = totalDurationSeconds();
    if (total <= 0.0)
        return 0.0;
    double before = 0.0;
    for (std::size_t k = 0; k < i; ++k)
        before += phaseList[k].durationSeconds;
    return before / total;
}

double
Suite::totalDurationSeconds() const
{
    double total = 0.0;
    for (const auto &b : benchmarks)
        total += b.totalDurationSeconds();
    return total;
}

} // namespace mbs
