#include "benchmark.hh"

#include "common/digest.hh"
#include "common/logging.hh"

namespace mbs {

std::string
hardwareTargetName(HardwareTarget target)
{
    switch (target) {
      case HardwareTarget::Cpu:
        return "CPU";
      case HardwareTarget::Gpu:
        return "GPU";
      case HardwareTarget::MemorySubsystem:
        return "Memory subsystem";
      case HardwareTarget::StorageSubsystem:
        return "Storage subsystem";
      case HardwareTarget::Ai:
        return "AI-related tasks";
      case HardwareTarget::EverydayTasks:
        return "Everyday tasks";
    }
    panic("unknown hardware target");
}

Benchmark::Benchmark(std::string suite_, std::string name_,
                     HardwareTarget target, bool individually_executable)
    : suite(std::move(suite_)), benchName(std::move(name_)),
      hwTarget(target), executable(individually_executable)
{
}

void
Benchmark::addPhase(Phase phase)
{
    fatalIf(phase.durationSeconds <= 0.0,
            "phase '" + phase.name + "' of benchmark '" + benchName +
            "' must have a positive duration");
    phaseList.push_back(std::move(phase));
}

double
Benchmark::totalDurationSeconds() const
{
    double total = 0.0;
    for (const auto &p : phaseList)
        total += p.durationSeconds;
    return total;
}

double
Benchmark::totalInstructionsBillions() const
{
    double total = 0.0;
    for (const auto &p : phaseList)
        total += p.demand.cpu.instructionsBillions;
    return total;
}

std::vector<TimedPhase>
Benchmark::toTimedPhases() const
{
    std::vector<TimedPhase> out;
    out.reserve(phaseList.size());
    for (const auto &p : phaseList)
        out.push_back(TimedPhase{p.durationSeconds, p.demand});
    return out;
}

double
Benchmark::phaseStartFraction(std::size_t i) const
{
    fatalIf(i >= phaseList.size(), "phase index out of range");
    const double total = totalDurationSeconds();
    if (total <= 0.0)
        return 0.0;
    double before = 0.0;
    for (std::size_t k = 0; k < i; ++k)
        before += phaseList[k].durationSeconds;
    return before / total;
}

std::uint64_t
Benchmark::digest() const
{
    Fnv1a d;
    d.mix(suite);
    d.mix(benchName);
    d.mix(int(hwTarget));
    d.mix(executable);
    d.mix(std::uint64_t(phaseList.size()));
    for (const auto &p : phaseList) {
        d.mix(p.name);
        d.mix(p.kernel);
        d.mix(p.durationSeconds);
        d.mix(std::uint64_t(p.demand.threads.size()));
        for (const auto &t : p.demand.threads) {
            d.mix(t.count);
            d.mix(t.intensity);
        }
        d.mix(p.demand.cpu.instructionsBillions);
        d.mix(p.demand.cpu.baseIpc);
        d.mix(p.demand.cpu.memIntensity);
        d.mix(p.demand.cpu.workingSetBytes);
        d.mix(p.demand.cpu.locality);
        d.mix(p.demand.cpu.branchFraction);
        d.mix(p.demand.cpu.branchPredictability);
        d.mix(p.demand.gpu.workRate);
        d.mix(int(p.demand.gpu.api));
        d.mix(p.demand.gpu.offscreen);
        d.mix(p.demand.gpu.resolutionScale);
        d.mix(p.demand.gpu.textureBandwidth);
        d.mix(p.demand.gpu.textureBytes);
        d.mix(p.demand.aie.workRate);
        d.mix(int(p.demand.aie.codec));
        d.mix(p.demand.memory.footprintBytes);
        d.mix(p.demand.storage.ioRate);
        d.mix(p.demand.storage.readFraction);
    }
    return d.value();
}

double
Suite::totalDurationSeconds() const
{
    double total = 0.0;
    for (const auto &b : benchmarks)
        total += b.totalDurationSeconds();
    return total;
}

std::uint64_t
Suite::digest() const
{
    Fnv1a d;
    d.mix(name);
    d.mix(publisher);
    d.mix(runsAsWhole);
    d.mix(std::uint64_t(benchmarks.size()));
    for (const auto &b : benchmarks)
        d.mix(b.digest());
    return d.value();
}

} // namespace mbs
