/**
 * @file
 * Text-format workload definitions.
 *
 * Suites in this repository are compiled-in data, but downstream
 * users studying a new benchmark should not need to recompile. The
 * loader parses a small line-based format into Suite objects built
 * from the same kernel archetypes:
 *
 * @code
 * suite "My Suite" publisher "Me"
 * benchmark "My Bench" target gpu
 *   phase "warmup" kernel menuIdle duration 5 instructions 0.05
 *   phase "scene" kernel renderScene duration 30 instructions 2.0 \
 *       gpu_rate 0.8 api vulkan resolution 1.78 offscreen true
 *   phase "decode" kernel videoCodec duration 10 instructions 0.5 \
 *       codec av1 aie_rate 0.5
 * @endcode
 *
 * Lines starting with '#' are comments; a trailing backslash
 * continues a line. One file may contain several suites.
 */

#ifndef MBS_WORKLOAD_LOADER_HH
#define MBS_WORKLOAD_LOADER_HH

#include <istream>
#include <string>
#include <vector>

#include "workload/benchmark.hh"

namespace mbs {

/**
 * Build a phase demand from a kernel archetype name and keyword
 * arguments. Supported kernels are the archetype library's
 * (gemm, fft, crypto, integerOps, floatOps, imageDecode,
 * compression, memoryStream, storageIo, database, webBrowse,
 * photoEdit, videoCodec, renderScene, gpuCompute, physics,
 * nnInference, uiScroll, psnrCompare, multicoreStress,
 * dataProcessing, dataSecurity, loadingBurst, menuIdle,
 * vectorMath).
 *
 * Common keywords: threads, intensity, gpu_rate, api
 * (opengl|vulkan), resolution, offscreen, texture_mb, aie_rate,
 * codec (h264|h265|vp9|av1), io_rate, level, working_set_mb,
 * locality, encode.
 *
 * @throws FatalError on unknown kernels or keywords.
 */
PhaseDemand makeKernelDemand(
    const std::string &kernel,
    const std::vector<std::pair<std::string, std::string>> &kwargs);

/**
 * Parse suites from a stream of the format described above.
 *
 * @throws FatalError with a line number on malformed input.
 */
std::vector<Suite> loadSuites(std::istream &in);

/** Convenience: parse suites from a string. */
std::vector<Suite> loadSuitesFromString(const std::string &text);

} // namespace mbs

#endif // MBS_WORKLOAD_LOADER_HH
