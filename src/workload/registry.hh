/**
 * @file
 * Registry of all commercial suites and the 18 individually
 * characterized benchmark units the paper analyzes.
 */

#ifndef MBS_WORKLOAD_REGISTRY_HH
#define MBS_WORKLOAD_REGISTRY_HH

#include <string>
#include <vector>

#include "workload/benchmark.hh"

namespace mbs {

/**
 * Immutable registry of every suite in the paper's Table I.
 *
 * Build once (cheap, pure data) and query: suites, flattened
 * characterization units, name lookups.
 */
class WorkloadRegistry
{
  public:
    /** Build the full calibrated registry. */
    WorkloadRegistry();

    /**
     * Build a registry from externally supplied suites (spec files,
     * text-format loads); fatal() when @p suites is empty or two
     * units share a display name (lookups are by unit name).
     */
    explicit WorkloadRegistry(std::vector<Suite> suites);

    /** All suites in Table I order. */
    const std::vector<Suite> &suites() const { return suiteList; }

    /**
     * The 18 characterized benchmark units (one per bar of Fig. 1),
     * in suite order. Antutu's four segments appear individually
     * even though they execute as one suite run.
     */
    const std::vector<Benchmark> &units() const { return unitList; }

    /** @return display names of all units, in order. */
    std::vector<std::string> unitNames() const;

    /** @return the unit named @p name; fatal() if absent. */
    const Benchmark &unit(const std::string &name) const;

    /** @return true if a unit named @p name exists. */
    bool hasUnit(const std::string &name) const;

    /** @return true if a suite named @p name exists. */
    bool hasSuite(const std::string &name) const;

    /** @return the suite named @p name; fatal() if absent. */
    const Suite &suite(const std::string &name) const;

    /**
     * Total runtime of the original full benchmark set in seconds
     * (the paper's Table VI "Original Set": 4429.5 s).
     */
    double totalRuntimeSeconds() const;

  private:
    std::vector<Suite> suiteList;
    std::vector<Benchmark> unitList;
};

} // namespace mbs

#endif // MBS_WORKLOAD_REGISTRY_HH
