/**
 * @file
 * Geekbench 5 and 6 (Primate Labs) workload definitions.
 *
 * Both CPU benchmarks have single-core sections (~30% mean CPU load)
 * followed by multi-core sections that spike CPU load across all
 * clusters (Observation #1 / #9). Geekbench 5 CPU is the benchmark
 * that sustains high mid-cluster load for more than half of its
 * execution. Geekbench 6 CPU is the largest benchmark by dynamic
 * instruction count (~57 B). Geekbench 6 Compute sustains the highest
 * average GPU load of any benchmark, which is why the paper's
 * Select+GPU subset adds it.
 */

#include "workload/suites/suites.hh"

#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace suites {

namespace {

Benchmark
gb5Cpu()
{
    Benchmark b("Geekbench 5", "Geekbench 5 CPU", HardwareTarget::Cpu);
    // Single-core section.
    b.addPhase(phase("single-core integer", "integerOps",
                     kernels::integerOps(1, 0.90), 20.0, 3.0));
    b.addPhase(phase("single-core floating point", "floatOps",
                     kernels::floatOps(1, 0.90), 20.0, 3.0));
    b.addPhase(phase("single-core cryptography", "crypto",
                     kernels::crypto(1, 0.90), 15.0, 2.5));
    // Multi-core section (85 s of 140 s: > half the runtime keeps
    // the mid cluster at sustained high load).
    b.addPhase(phase("multi-core integer", "integerOps",
                     kernels::integerOps(8, 0.72), 30.0, 6.5));
    b.addPhase(phase("multi-core floating point", "floatOps",
                     kernels::floatOps(8, 0.72), 30.0, 6.5));
    b.addPhase(phase("multi-core cryptography", "crypto",
                     kernels::crypto(8, 0.72), 25.0, 4.5));
    return b;
}

Benchmark
gb5Compute()
{
    Benchmark b("Geekbench 5", "Geekbench 5 Compute",
                HardwareTarget::Gpu);
    // 11 OpenCL/Vulkan compute workloads, each a short burst.
    struct Item { const char *name; double rate; double dur; };
    const Item items[] = {
        {"Sobel", 0.80, 2.3},
        {"Canny", 0.82, 2.3},
        {"Stereo Matching", 0.88, 2.3},
        {"Histogram Equalization", 0.75, 2.3},
        {"Gaussian Blur", 0.85, 2.3},
        {"Depth of Field", 0.90, 2.3},
        {"Face Detection", 0.84, 2.3},
        {"Horizon Detection", 0.78, 2.3},
        {"Feature Matching", 0.82, 2.3},
        {"Particle Physics", 0.86, 2.3},
        {"SFFT", 0.80, 2.0},
    };
    for (const auto &item : items) {
        b.addPhase(phase(item.name, "gpuCompute",
                         kernels::gpuCompute(item.rate, 300.0),
                         item.dur, 2.5 / 11.0));
    }
    return b;
}

Benchmark
gb6Cpu()
{
    Benchmark b("Geekbench 6", "Geekbench 6 CPU", HardwareTarget::Cpu);
    // Five sections: productivity, developer, machine learning,
    // image editing, image synthesis; single-core parts first,
    // multi-core parts after, per the published workload order.
    b.addPhase(phase("productivity single-core", "integerOps",
                     kernels::integerOps(1, 0.90), 50.0, 4.5));
    b.addPhase(phase("productivity multi-core", "integerOps",
                     kernels::integerOps(8, 0.80), 40.0, 7.0));
    b.addPhase(phase("developer single-core", "compression",
                     kernels::compression(1, 0.85), 50.0, 4.0));
    b.addPhase(phase("developer multi-core", "compression",
                     kernels::compression(8, 0.80), 40.0, 7.0));
    b.addPhase(phase("machine learning", "nnInference",
                     kernels::nnInference(0.35, 3, 0.55), 70.0, 5.5));
    b.addPhase(phase("image editing", "photoEdit",
                     kernels::photoEdit(0.35), 60.0, 5.0));
    b.addPhase(phase("image synthesis single-core", "floatOps",
                     kernels::floatOps(1, 0.95), 45.0, 5.0));
    b.addPhase(phase("image synthesis multi-core", "floatOps",
                     kernels::floatOps(8, 0.85), 45.0, 9.0));
    b.addPhase(phase("multi-core finale", "multicoreStress",
                     kernels::multicoreStress(8, 0.90), 50.0, 10.0));
    return b;
}

Benchmark
gb6Compute()
{
    Benchmark b("Geekbench 6", "Geekbench 6 Compute",
                HardwareTarget::Gpu);
    // Eight workloads in four categories (Machine Learning, Image
    // Editing, Image Synthesis, Simulation); sustained near-peak GPU
    // compute demand gives this benchmark the highest average GPU
    // load in the whole set.
    const char *names[] = {
        "background blur (ML)",
        "face detection (ML)",
        "horizon detection (Image Editing)",
        "edge detection (Image Editing)",
        "Gaussian blur (Image Synthesis)",
        "feature matching (Image Synthesis)",
        "stereo matching (Simulation)",
        "particle physics (Simulation)",
    };
    for (const char *name : names) {
        b.addPhase(phase(name, "gpuCompute",
                         kernels::gpuCompute(0.97, 380.0),
                         243.16 / 8.0, 5.0 / 8.0));
    }
    return b;
}

} // namespace

Suite
buildGeekbench5()
{
    Suite s;
    s.name = "Geekbench 5";
    s.publisher = "Primate Labs";
    s.benchmarks.push_back(gb5Cpu());
    s.benchmarks.push_back(gb5Compute());
    return s;
}

Suite
buildGeekbench6()
{
    Suite s;
    s.name = "Geekbench 6";
    s.publisher = "Primate Labs";
    s.benchmarks.push_back(gb6Cpu());
    s.benchmarks.push_back(gb6Compute());
    return s;
}

} // namespace suites
} // namespace mbs
