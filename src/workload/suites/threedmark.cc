/**
 * @file
 * 3DMark v2 (UL) workload definitions.
 *
 * Slingshot targets OpenGL ES 3.1-era features (volumetric lighting,
 * instanced rendering) and embeds a three-level, heavily multi-
 * threaded physics test that spikes CPU load (Observation #1). Wild
 * Life is a short Vulkan burst test (~1 minute) with FFT-based post-
 * processing that touches the AIE (Observation #5). Extreme variants
 * render at higher resolution.
 */

#include "workload/suites/suites.hh"

#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace suites {

namespace {

Benchmark
slingshot(bool extreme)
{
    const double res = extreme ? 1.78 : 1.0; // 2K QHD vs Full HD
    const char *name = extreme ? "3DMark Slingshot Extreme"
                               : "3DMark Slingshot";
    Benchmark b("3DMark v2", name, HardwareTarget::Gpu);

    // Two graphics tests exercising API features.
    auto gt1 = kernels::renderScene(GraphicsApi::OpenGlEs,
                                    extreme ? 0.78 : 0.72, res, false,
                                    extreme ? 1900.0 : 1700.0);
    b.addPhase(phase("graphics test 1 (volumetric lighting)",
                     "renderScene", gt1, extreme ? 110.0 : 100.0,
                     extreme ? 1.8 : 1.6));
    auto gt2 = kernels::renderScene(GraphicsApi::OpenGlEs,
                                    extreme ? 0.84 : 0.78, res, false,
                                    extreme ? 2000.0 : 1800.0);
    b.addPhase(phase("graphics test 2 (instanced rendering)",
                     "renderScene", gt2, extreme ? 90.0 : 80.0,
                     extreme ? 1.6 : 1.4));

    // Physics test: three successively more intensive levels, CPU-
    // bound and highly multi-threaded with minimal GPU work.
    b.addPhase(phase("physics test level 1", "physics",
                     kernels::physics(1), 20.0, extreme ? 0.9 : 0.8));
    b.addPhase(phase("physics test level 2", "physics",
                     kernels::physics(2), 20.0, extreme ? 1.0 : 0.9));
    b.addPhase(phase("physics test level 3", "physics",
                     kernels::physics(3), 20.0, extreme ? 1.1 : 1.0));

    // Combined test: graphics and physics together.
    auto combined = kernels::renderScene(GraphicsApi::OpenGlEs,
                                         extreme ? 0.76 : 0.70, res,
                                         false, 1800.0);
    combined.threads.push_back(ThreadDemand{3, 0.26});
    b.addPhase(phase("combined test", "renderScene", combined,
                     extreme ? 50.0 : 40.0, extreme ? 0.6 : 0.3));
    return b;
}

Benchmark
wildLife(bool extreme)
{
    const double res = extreme ? 4.0 : 1.0; // 4K for Extreme
    const char *name = extreme ? "3DMark Wild Life Extreme"
                               : "3DMark Wild Life";
    Benchmark b("3DMark v2", name, HardwareTarget::Gpu);

    // Short burst of intense Vulkan rendering mirroring mobile games
    // with short periods of heavy activity; brief scene-loading gaps
    // keep the *average* GPU load below a sustained compute test's.
    b.addPhase(phase("scene loading", "loadingBurst",
                     kernels::loadingBurst(3, 0.45),
                     extreme ? 4.0 : 3.5, extreme ? 0.3 : 0.25));

    auto s1 = kernels::renderScene(GraphicsApi::Vulkan,
                                   extreme ? 0.95 : 0.88, res, false,
                                   extreme ? 2750.0 : 1900.0);
    b.addPhase(phase("scene 1 (burst)", "renderScene", s1,
                     extreme ? 23.0 : 18.5, extreme ? 3.1 : 2.5));

    auto s2 = kernels::renderScene(GraphicsApi::Vulkan,
                                   extreme ? 0.97 : 0.92, res, false,
                                   extreme ? 2700.0 : 2000.0);
    b.addPhase(phase("scene 2 (peak)", "renderScene", s2,
                     extreme ? 24.0 : 19.5, extreme ? 3.3 : 2.75));

    // Final scene applies FFT-based post-processing on the DSP.
    auto s3 = kernels::renderScene(GraphicsApi::Vulkan,
                                   extreme ? 0.92 : 0.87, res, false,
                                   extreme ? 2650.0 : 1900.0);
    s3.aie.workRate = 0.25;
    b.addPhase(phase("scene 3 (FFT post-processing)", "renderScene",
                     s3, extreme ? 24.0 : 20.0, extreme ? 3.3 : 2.5));
    return b;
}

} // namespace

Suite
build3DMark()
{
    Suite s;
    s.name = "3DMark v2";
    s.publisher = "UL";
    s.benchmarks.push_back(slingshot(false));
    s.benchmarks.push_back(slingshot(true));
    s.benchmarks.push_back(wildLife(false));
    s.benchmarks.push_back(wildLife(true));
    return s;
}

} // namespace suites
} // namespace mbs
