/**
 * @file
 * GFXBench v5 (Kishonti) workload definitions.
 *
 * 29 micro-benchmarks grouped, as the paper does, into three
 * characterized units: High-Level (19 game-like scenes across
 * resolution/API/on-off-screen variants), Low-Level (8 specific
 * performance tests, on/off-screen) and Special (render-quality tests
 * that compare a rendered frame against a reference with PSNR on the
 * DSP; the highest AIE load of any benchmark).
 *
 * Off-screen variants render without display pacing: High-Level
 * off-screen raises GPU load by ~15%; Low-Level off-screen tests
 * push ALU/texturing flat out for a ~60% increase (the paper's
 * +14.5% / +62.85% observations).
 */

#include "workload/suites/suites.hh"

#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace suites {

namespace {

constexpr const char *suiteName = "GFXBench v5";

Benchmark
gfxHigh()
{
    Benchmark b(suiteName, "GFXBench High", HardwareTarget::Gpu);
    struct Scene
    {
        const char *name;
        GraphicsApi api;
        double rate;
        double res;
        bool offscreen;
    };
    // 19 High-Level micro-benchmarks: 4 scenes x settings variants.
    const Scene scenes[] = {
        {"Aztec Ruins High Tier GL on-screen",
         GraphicsApi::OpenGlEs, 0.95, 1.0, false},
        {"Aztec Ruins High Tier GL off-screen 1440p",
         GraphicsApi::OpenGlEs, 0.95, 1.78, true},
        {"Aztec Ruins High Tier Vulkan on-screen",
         GraphicsApi::Vulkan, 0.95, 1.0, false},
        {"Aztec Ruins High Tier Vulkan off-screen 1440p",
         GraphicsApi::Vulkan, 0.95, 1.78, true},
        {"Aztec Ruins Normal Tier GL on-screen",
         GraphicsApi::OpenGlEs, 0.85, 1.0, false},
        {"Aztec Ruins Normal Tier GL off-screen",
         GraphicsApi::OpenGlEs, 0.85, 1.0, true},
        {"Aztec Ruins Normal Tier Vulkan on-screen",
         GraphicsApi::Vulkan, 0.85, 1.0, false},
        {"Aztec Ruins Normal Tier Vulkan off-screen",
         GraphicsApi::Vulkan, 0.85, 1.0, true},
        {"Aztec Ruins Vulkan off-screen 4K",
         GraphicsApi::Vulkan, 0.95, 4.0, true},
        {"Car Chase on-screen", GraphicsApi::OpenGlEs, 0.88, 1.0,
         false},
        {"Car Chase off-screen", GraphicsApi::OpenGlEs, 0.88, 1.0,
         true},
        {"Car Chase off-screen 1440p", GraphicsApi::OpenGlEs, 0.88,
         1.78, true},
        {"Manhattan 3.1 on-screen", GraphicsApi::OpenGlEs, 0.75, 1.0,
         false},
        {"Manhattan 3.1 off-screen", GraphicsApi::OpenGlEs, 0.75, 1.0,
         true},
        {"Manhattan 3.1 off-screen 1440p", GraphicsApi::OpenGlEs,
         0.75, 1.78, true},
        {"Manhattan 3.0 on-screen", GraphicsApi::OpenGlEs, 0.70, 1.0,
         false},
        {"Manhattan 3.0 off-screen", GraphicsApi::OpenGlEs, 0.70, 1.0,
         true},
        {"T-Rex on-screen", GraphicsApi::OpenGlEs, 0.60, 1.0, false},
        {"T-Rex off-screen", GraphicsApi::OpenGlEs, 0.60, 1.0, true},
    };
    static_assert(sizeof(scenes) / sizeof(scenes[0]) == 19,
                  "GFXBench High-Level groups 19 micro-benchmarks");
    int i = 0;
    for (const auto &sc : scenes) {
        const bool last = ++i == 19;
        b.addPhase(phase(sc.name, "renderScene",
                         kernels::renderScene(sc.api, sc.rate, sc.res,
                                              sc.offscreen, 2100.0),
                         last ? 56.0 : 58.0, last ? 1.8 : 1.9));
    }
    return b;
}

Benchmark
gfxLow()
{
    Benchmark b(suiteName, "GFXBench Low", HardwareTarget::Gpu);
    struct Test
    {
        const char *name;
        double rate;
        bool offscreen;
        double texture_bw;
    };
    // 8 Low-Level micro-benchmarks; off-screen variants drive the
    // tested unit flat out instead of pacing to the display.
    const Test tests[] = {
        {"ALU 2 on-screen", 0.55, false, 0.25},
        {"ALU 2 off-screen", 0.85, true, 0.30},
        {"Driver Overhead 2 on-screen", 0.45, false, 0.20},
        {"Driver Overhead 2 off-screen", 0.72, true, 0.25},
        {"Texturing on-screen", 0.50, false, 0.70},
        {"Texturing off-screen", 0.80, true, 0.85},
        {"Tessellation on-screen", 0.50, false, 0.35},
        {"Tessellation off-screen", 0.80, true, 0.40},
    };
    for (const auto &t : tests) {
        auto d = kernels::renderScene(GraphicsApi::OpenGlEs, t.rate,
                                      1.0, t.offscreen, 1900.0);
        d.gpu.textureBandwidth = t.texture_bw;
        b.addPhase(phase(t.name, "renderScene", d, 56.25, 1.5));
    }
    return b;
}

Benchmark
gfxSpecial()
{
    Benchmark b(suiteName, "GFXBench Special", HardwareTarget::Gpu);
    // Render-quality tests: render a reference frame, then compute a
    // PSNR (MSE-based) comparison on the DSP; the second section
    // repeats in higher precision.
    auto frame1 = kernels::renderScene(GraphicsApi::OpenGlEs, 0.35,
                                       1.0, false, 700.0);
    frame1.aie.workRate = 0.38; // running reference comparison
    b.addPhase(phase("render quality frame", "renderScene", frame1,
                     25.0, 0.25));
    b.addPhase(phase("PSNR comparison", "psnrCompare",
                     kernels::psnrCompare(false), 15.0, 0.25));
    auto frame2 = kernels::renderScene(GraphicsApi::OpenGlEs, 0.35,
                                       1.0, false, 700.0);
    frame2.aie.workRate = 0.42;
    b.addPhase(phase("render quality frame (high precision)",
                     "renderScene", frame2, 25.2, 0.25));
    b.addPhase(phase("PSNR comparison (high precision)", "psnrCompare",
                     kernels::psnrCompare(true), 15.0, 0.25));
    return b;
}

} // namespace

Suite
buildGfxBench()
{
    Suite s;
    s.name = suiteName;
    s.publisher = "Kishonti";
    s.benchmarks.push_back(gfxHigh());
    s.benchmarks.push_back(gfxLow());
    s.benchmarks.push_back(gfxSpecial());
    return s;
}

} // namespace suites
} // namespace mbs
