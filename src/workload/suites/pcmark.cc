/**
 * @file
 * PCMark Android (UL) workload definitions.
 *
 * Work 3.0 models everyday activities (browsing, video/photo editing,
 * data manipulation, writing); its photo- and video-editing parts
 * keep the GPU shader cores busy for sustained periods even though
 * the benchmark is not graphics-oriented (Observation #3), and the
 * video-editing part raises AIE load (Observation #5). Storage 2.0
 * measures internal/external IO and database performance.
 */

#include "workload/suites/suites.hh"

#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace suites {

namespace {

constexpr const char *suiteName = "PCMark";
constexpr std::uint64_t MB = 1ULL << 20;

Benchmark
pcmarkStorage()
{
    Benchmark b(suiteName, "PCMark Storage",
                HardwareTarget::StorageSubsystem);
    b.addPhase(phase("internal sequential write", "storageIo",
                     kernels::storageIo(0.95, 0.25), 15.0, 0.6));
    b.addPhase(phase("internal sequential read", "storageIo",
                     kernels::storageIo(1.00, 0.25), 15.0, 0.6));
    b.addPhase(phase("internal random write", "storageIo",
                     kernels::storageIo(0.55, 0.30), 15.0, 0.7));
    b.addPhase(phase("internal random read", "storageIo",
                     kernels::storageIo(0.60, 0.30), 15.0, 0.7));
    b.addPhase(phase("external storage", "storageIo",
                     kernels::storageIo(0.50, 0.20), 15.0, 0.6));
    b.addPhase(phase("SQLite database", "database",
                     kernels::database(0.40), 20.0, 0.8));
    return b;
}

Benchmark
pcmarkWork()
{
    Benchmark b(suiteName, "PCMark Work",
                HardwareTarget::EverydayTasks);
    b.addPhase(phase("web browsing", "webBrowse", kernels::webBrowse(),
                     40.0, 3.4));

    // Video editing: hardware encode plus shader-based effects.
    auto video = kernels::videoCodec(MediaCodec::H265, 0.50, true);
    video.gpu.workRate = 0.45;
    video.gpu.api = GraphicsApi::OpenGlEs;
    video.gpu.textureBandwidth = 0.30;
    video.gpu.textureBytes = 600 * MB;
    video.aie.workRate = 0.38; // effects pipeline assists on the DSP
    b.addPhase(phase("video editing", "videoCodec", video, 45.0, 4.2));

    b.addPhase(phase("photo editing", "photoEdit",
                     kernels::photoEdit(0.45), 45.0, 4.4));
    b.addPhase(phase("data manipulation", "dataProcessing",
                     kernels::dataProcessing(3, 0.65), 40.0, 4.0));
    b.addPhase(phase("writing / document editing", "dataProcessing",
                     kernels::dataProcessing(2, 0.50), 44.64, 4.0));
    return b;
}

} // namespace

Suite
buildPcMark()
{
    Suite s;
    s.name = suiteName;
    s.publisher = "UL";
    s.benchmarks.push_back(pcmarkStorage());
    s.benchmarks.push_back(pcmarkWork());
    return s;
}

} // namespace suites
} // namespace mbs
