/**
 * @file
 * Antutu v9 (Cheetah Mobile) workload definitions.
 *
 * The suite bundles four segments (CPU, GPU, Mem, UX) that cannot be
 * launched individually; the profiler layer splits one whole-suite
 * run back into segments, mirroring the paper's methodology.
 *
 * Timeline details encoded here and verified by integration tests:
 * - Antutu CPU opens with a multi-threaded GEMM uptick and closes
 *   with a multi-core stress test (Observation #1).
 * - Antutu GPU runs Swordsman (newest, ~15% of the segment), Refinery
 *   (~30%) and Terracotta Warriors (~49%) plus two short image-
 *   processing tests; the CPU-load spikes at ~16% and ~49% of the
 *   segment are inter-test loading bursts, not the newest test
 *   (Observation #4). Terracotta's texture residency produces the
 *   4.3 GB peak memory usage.
 * - Antutu UX video tests cover H264/H265/VP9/AV1; AV1 has no AIE
 *   decode support and lands on the CPU (software decode), causing
 *   the high CPU load near the end of the segment.
 */

#include "workload/suites/suites.hh"

#include "workload/kernels.hh"
#include "workload/suite_builder.hh"

namespace mbs {
namespace suites {

namespace {

constexpr const char *suiteName = "Antutu v9";
constexpr std::uint64_t MB = 1ULL << 20;

Benchmark
antutuCpu()
{
    Benchmark b(suiteName, "Antutu CPU", HardwareTarget::Cpu,
                /*individually_executable=*/false);
    b.addPhase(phase("GEMM", "gemm", kernels::gemm(6, 0.80),
                     15.0, 3.0));
    b.addPhase(phase("mathematical functions (FFT, MAP)", "fft",
                     kernels::fft(2, 0.30), 20.0, 2.5));
    b.addPhase(phase("PNG decoding", "imageDecode",
                     kernels::imageDecode(0.85), 20.0, 2.5));
    b.addPhase(phase("compression", "compression",
                     kernels::compression(1, 0.80), 15.0, 1.8));
    b.addPhase(phase("common algorithms (integer)", "integerOps",
                     kernels::integerOps(1, 0.90), 20.0, 2.7));
    b.addPhase(phase("floating point", "floatOps",
                     kernels::floatOps(1, 0.90), 15.0, 1.5));
    b.addPhase(phase("multi-core / multi-tasking", "multicoreStress",
                     kernels::multicoreStress(8, 0.90), 25.0, 4.0));
    return b;
}

Benchmark
antutuGpu()
{
    Benchmark b(suiteName, "Antutu GPU", HardwareTarget::Gpu,
                /*individually_executable=*/false);

    // Swordsman: newest micro-benchmark, Vulkan, ~15% of the segment.
    auto swordsman = kernels::renderScene(GraphicsApi::Vulkan, 0.72,
                                          1.0, false, 1800.0);
    swordsman.threads = {ThreadDemand{3, 0.24}};
    b.addPhase(phase("Swordsman", "renderScene", swordsman,
                     32.0, 1.1));

    b.addPhase(phase("loading (Refinery assets)", "loadingBurst",
                     kernels::loadingBurst(6, 0.70), 4.0, 0.35));

    auto refinery = kernels::renderScene(GraphicsApi::OpenGlEs, 0.70,
                                         1.0, false, 2200.0);
    refinery.threads = {ThreadDemand{3, 0.26}, ThreadDemand{1, 0.20}};
    b.addPhase(phase("Refinery", "renderScene", refinery, 60.0, 2.2));

    b.addPhase(phase("loading (Terracotta assets)", "loadingBurst",
                     kernels::loadingBurst(6, 0.70), 4.0, 0.35));

    auto terracotta = kernels::renderScene(GraphicsApi::OpenGlEs, 0.66,
                                           1.0, false, 3650.0);
    terracotta.threads = {ThreadDemand{4, 0.22}};
    terracotta.memory.footprintBytes = 900 * MB;
    b.addPhase(phase("Terracotta Warriors", "renderScene", terracotta,
                     96.0, 3.3));

    // Fisheye and Blur: simple image-processing tests.
    auto fisheye = kernels::imageDecode(0.75);
    fisheye.gpu.workRate = 0.35;
    fisheye.gpu.api = GraphicsApi::OpenGlEs;
    fisheye.gpu.textureBytes = 600 * MB;
    b.addPhase(phase("Fisheye + Blur", "imageDecode", fisheye,
                     4.0, 0.7));
    return b;
}

Benchmark
antutuMem()
{
    Benchmark b(suiteName, "Antutu Mem", HardwareTarget::MemorySubsystem,
                /*individually_executable=*/false);
    b.addPhase(phase("RAM bandwidth", "memoryStream",
                     kernels::memoryStream(256 * MB, 0.95), 40.0, 2.0));
    b.addPhase(phase("RAM latency", "memoryStream",
                     kernels::memoryStream(512 * MB, 0.935), 30.0, 1.0));
    b.addPhase(phase("storage sequential", "storageIo",
                     kernels::storageIo(0.25, 0.25), 30.0, 1.2));
    b.addPhase(phase("storage random", "storageIo",
                     kernels::storageIo(0.20, 0.30), 30.0, 1.0));
    b.addPhase(phase("RAM copy", "memoryStream",
                     kernels::memoryStream(384 * MB, 0.942), 15.0, 0.8));
    return b;
}

Benchmark
antutuUx()
{
    Benchmark b(suiteName, "Antutu UX", HardwareTarget::EverydayTasks,
                /*individually_executable=*/false);
    b.addPhase(phase("data security", "dataSecurity",
                     kernels::dataSecurity(5, 0.24), 25.0, 2.0));
    b.addPhase(phase("data processing", "dataProcessing",
                     kernels::dataProcessing(3, 0.55), 25.0, 1.8));

    auto image = kernels::imageDecode(0.70);
    image.aie.workRate = 0.15;
    b.addPhase(phase("image processing", "imageDecode", image,
                     20.0, 1.5));

    b.addPhase(phase("scroll delay test", "uiScroll",
                     kernels::uiScroll(0.50), 15.0, 0.8));
    b.addPhase(phase("webview rendering", "uiScroll",
                     kernels::uiScroll(0.48), 15.0, 0.9));

    b.addPhase(phase("video decode H264", "videoCodec",
                     kernels::videoCodec(MediaCodec::H264, 0.35),
                     15.0, 0.8));
    b.addPhase(phase("video decode H265", "videoCodec",
                     kernels::videoCodec(MediaCodec::H265, 0.40),
                     15.0, 0.8));
    b.addPhase(phase("video decode VP9", "videoCodec",
                     kernels::videoCodec(MediaCodec::Vp9, 0.40),
                     10.0, 0.6));
    // AV1 decode is not supported by the AIE; the work bounces to the
    // CPU as expensive software decode.
    b.addPhase(phase("video decode AV1 (software)", "videoCodec",
                     kernels::videoCodec(MediaCodec::Av1, 0.50),
                     15.0, 1.6));
    b.addPhase(phase("video encode H264", "videoCodec",
                     kernels::videoCodec(MediaCodec::H264, 0.45, true),
                     15.0, 1.2));
    return b;
}

} // namespace

Suite
buildAntutu()
{
    Suite s;
    s.name = suiteName;
    s.publisher = "Cheetah Mobile";
    s.runsAsWhole = true; // segments cannot be launched individually
    s.benchmarks.push_back(antutuCpu());
    s.benchmarks.push_back(antutuGpu());
    s.benchmarks.push_back(antutuMem());
    s.benchmarks.push_back(antutuUx());
    return s;
}

Suite
buildAitutu()
{
    Suite s;
    s.name = "Aitutu v2";
    s.publisher = "Cheetah Mobile";

    Benchmark b("Aitutu v2", "Aitutu", HardwareTarget::Ai);
    // Inference threads size themselves for the mid cores: Aitutu is
    // the one benchmark whose mid cluster sustains high load longer
    // than the big cluster (Observation #7's exception).
    b.addPhase(phase("image classification", "nnInference",
                     kernels::nnInference(0.26, 3, 0.55), 90.0, 5.0));
    b.addPhase(phase("object detection", "nnInference",
                     kernels::nnInference(0.27, 3, 0.55), 90.0, 5.0));
    b.addPhase(phase("super resolution", "nnInference",
                     kernels::nnInference(0.29, 3, 0.55), 80.0, 4.0));
    s.benchmarks.push_back(std::move(b));
    return s;
}

} // namespace suites
} // namespace mbs
