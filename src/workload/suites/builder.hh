/**
 * @file
 * Shared helper for composing benchmark phases in suite definition
 * files. Internal to src/workload/suites.
 */

#ifndef MBS_WORKLOAD_SUITES_BUILDER_HH
#define MBS_WORKLOAD_SUITES_BUILDER_HH

#include <string>

#include "workload/benchmark.hh"

namespace mbs {
namespace suites {

/**
 * Build a phase from a kernel-archetype demand bundle.
 *
 * @param name Phase display name.
 * @param kernel Kernel archetype tag.
 * @param demand Demand bundle from the kernels library.
 * @param duration_s Phase duration in seconds.
 * @param instructions_b Instruction budget in billions; the per-
 *        benchmark budgets are calibrated so the suite totals match
 *        the paper's published aggregates (see DESIGN.md §4).
 */
inline Phase
phase(std::string name, std::string kernel, PhaseDemand demand,
      double duration_s, double instructions_b)
{
    demand.cpu.instructionsBillions = instructions_b;
    return Phase{std::move(name), std::move(kernel), duration_s,
                 std::move(demand)};
}

} // namespace suites
} // namespace mbs

#endif // MBS_WORKLOAD_SUITES_BUILDER_HH
