/**
 * @file
 * Builders for every commercial suite the paper characterizes
 * (Table I). Each function returns a fully calibrated Suite; the
 * registry (workload/registry.hh) assembles them.
 */

#ifndef MBS_WORKLOAD_SUITES_SUITES_HH
#define MBS_WORKLOAD_SUITES_SUITES_HH

#include "workload/benchmark.hh"

namespace mbs {
namespace suites {

/** 3DMark v2 (UL): Slingshot / Slingshot Extreme / Wild Life /
 *  Wild Life Extreme. */
Suite build3DMark();

/** Antutu v9 (Cheetah Mobile): CPU / GPU / Mem / UX segments; the
 *  suite only runs as a whole. */
Suite buildAntutu();

/** Aitutu v2 (Cheetah Mobile): standalone AI benchmark. */
Suite buildAitutu();

/** Geekbench 5 (Primate Labs): CPU and Compute. */
Suite buildGeekbench5();

/** Geekbench 6 (Primate Labs): CPU and Compute. */
Suite buildGeekbench6();

/** GFXBench v5 (Kishonti): High-Level / Low-Level / Special tests. */
Suite buildGfxBench();

/** PCMark (UL): Work 3.0 and Storage 2.0. */
Suite buildPcMark();

} // namespace suites
} // namespace mbs

#endif // MBS_WORKLOAD_SUITES_SUITES_HH
