#include "workload/suite_builder.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {

Phase
makePhase(std::string name, std::string kernel, PhaseDemand demand,
          double duration_s, double instructions_b)
{
    demand.cpu.instructionsBillions = instructions_b;
    return Phase{std::move(name), std::move(kernel), duration_s,
                 std::move(demand)};
}

SuiteBuilder::SuiteBuilder(std::string name, std::string publisher,
                           bool runs_as_whole)
{
    suite.name = std::move(name);
    suite.publisher = std::move(publisher);
    suite.runsAsWhole = runs_as_whole;
}

SuiteBuilder &
SuiteBuilder::benchmark(std::string name, HardwareTarget target,
                        bool individually_executable)
{
    if (open) {
        fatalIf(suite.benchmarks.back().phases().empty(),
                strformat("suite '%s': benchmark '%s' has no phases",
                          suite.name.c_str(),
                          suite.benchmarks.back().name().c_str()));
    }
    suite.benchmarks.emplace_back(suite.name, std::move(name), target,
                                  individually_executable);
    open = true;
    return *this;
}

SuiteBuilder &
SuiteBuilder::phase(std::string name, std::string kernel,
                    PhaseDemand demand, double duration_s,
                    double instructions_b)
{
    return rawPhase(makePhase(std::move(name), std::move(kernel),
                              std::move(demand), duration_s,
                              instructions_b));
}

SuiteBuilder &
SuiteBuilder::rawPhase(Phase p)
{
    fatalIf(!open, strformat("suite '%s': phase '%s' before any "
                             "benchmark",
                             suite.name.c_str(), p.name.c_str()));
    suite.benchmarks.back().addPhase(std::move(p));
    return *this;
}

Suite
SuiteBuilder::build()
{
    fatalIf(suite.benchmarks.empty(),
            strformat("suite '%s' has no benchmarks",
                      suite.name.c_str()));
    fatalIf(suite.benchmarks.back().phases().empty(),
            strformat("suite '%s': benchmark '%s' has no phases",
                      suite.name.c_str(),
                      suite.benchmarks.back().name().c_str()));
    open = false;
    return std::move(suite);
}

} // namespace mbs
