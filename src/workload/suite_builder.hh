/**
 * @file
 * Public suite-construction helpers shared by the hard-coded suite
 * definition files (src/workload/suites) and the spec compiler
 * (src/spec): one phase-assembly path instead of two.
 *
 * makePhase() is the single place a kernel demand bundle and an
 * instruction budget become a Phase; SuiteBuilder is a small fluent
 * wrapper for assembling whole suites benchmark by benchmark, used
 * where suites are built from data (spec files) rather than code.
 */

#ifndef MBS_WORKLOAD_SUITE_BUILDER_HH
#define MBS_WORKLOAD_SUITE_BUILDER_HH

#include <string>
#include <utility>

#include "workload/benchmark.hh"

namespace mbs {

/**
 * Build a phase from a kernel-archetype demand bundle.
 *
 * @param name Phase display name.
 * @param kernel Kernel archetype tag.
 * @param demand Demand bundle from the kernels library.
 * @param duration_s Phase duration in seconds.
 * @param instructions_b Instruction budget in billions; the per-
 *        benchmark budgets are calibrated so the suite totals match
 *        the paper's published aggregates (see DESIGN.md §4).
 */
Phase makePhase(std::string name, std::string kernel,
                PhaseDemand demand, double duration_s,
                double instructions_b);

/**
 * Fluent assembly of one Suite: open a benchmark, append phases,
 * repeat, build. Phase durations are validated by
 * Benchmark::addPhase exactly as in the hard-coded suites.
 */
class SuiteBuilder
{
  public:
    SuiteBuilder(std::string name, std::string publisher,
                 bool runs_as_whole = false);

    /** Open a new benchmark; later phases append to it. */
    SuiteBuilder &benchmark(std::string name, HardwareTarget target,
                            bool individually_executable = true);

    /** Append a kernel phase to the open benchmark. */
    SuiteBuilder &phase(std::string name, std::string kernel,
                        PhaseDemand demand, double duration_s,
                        double instructions_b);

    /** Append an already-assembled phase to the open benchmark. */
    SuiteBuilder &rawPhase(Phase p);

    /**
     * Finish and return the suite. fatal() when the suite has no
     * benchmarks or any benchmark has no phases.
     */
    Suite build();

  private:
    Suite suite;
    bool open = false;
};

namespace suites {

/** Compat alias used by the suite definition files. */
inline Phase
phase(std::string name, std::string kernel, PhaseDemand demand,
      double duration_s, double instructions_b)
{
    return makePhase(std::move(name), std::move(kernel),
                     std::move(demand), duration_s, instructions_b);
}

} // namespace suites
} // namespace mbs

#endif // MBS_WORKLOAD_SUITE_BUILDER_HH
