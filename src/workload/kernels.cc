#include "kernels.hh"

#include "common/logging.hh"

namespace mbs {
namespace kernels {

namespace {

/** Convenience: one thread group. */
std::vector<ThreadDemand>
group(int count, double intensity)
{
    return {ThreadDemand{count, intensity}};
}

constexpr std::uint64_t MB = 1ULL << 20;

} // namespace

PhaseDemand
gemm(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 3.2;
    d.cpu.memIntensity = 0.32;
    d.cpu.workingSetBytes = 8 * MB;
    d.cpu.locality = 0.985; // blocked GEMM reuses tiles heavily
    d.cpu.branchFraction = 0.05;
    d.cpu.branchPredictability = 0.995;
    d.memory.footprintBytes = 1500 * MB;
    return d;
}

PhaseDemand
fft(int threads, double aie_rate)
{
    PhaseDemand d;
    d.threads = group(threads, 0.70);
    d.cpu.baseIpc = 2.6;
    d.cpu.memIntensity = 0.35;
    d.cpu.workingSetBytes = 16 * MB;
    d.cpu.locality = 0.97;
    d.cpu.branchFraction = 0.08;
    d.cpu.branchPredictability = 0.99;
    d.aie.workRate = aie_rate; // butterfly stages map well to the DSP
    d.memory.footprintBytes = 1300 * MB;
    return d;
}

PhaseDemand
crypto(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 3.1;
    d.cpu.memIntensity = 0.20;
    d.cpu.workingSetBytes = 512ULL << 10;
    d.cpu.locality = 0.985;
    d.cpu.branchFraction = 0.08;
    d.cpu.branchPredictability = 0.99;
    d.memory.footprintBytes = 1100 * MB;
    return d;
}

PhaseDemand
integerOps(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 3.0;
    d.cpu.memIntensity = 0.28;
    d.cpu.workingSetBytes = 4 * MB;
    d.cpu.locality = 0.98;
    d.cpu.branchFraction = 0.20;
    d.cpu.branchPredictability = 0.96;
    d.memory.footprintBytes = 1300 * MB;
    return d;
}

PhaseDemand
floatOps(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 3.2;
    d.cpu.memIntensity = 0.31;
    d.cpu.workingSetBytes = 12 * MB;
    d.cpu.locality = 0.975;
    d.cpu.branchFraction = 0.10;
    d.cpu.branchPredictability = 0.985;
    d.memory.footprintBytes = 1400 * MB;
    return d;
}

PhaseDemand
imageDecode(double intensity)
{
    PhaseDemand d;
    d.threads = group(1, intensity);
    d.cpu.baseIpc = 2.7;
    d.cpu.memIntensity = 0.28;
    d.cpu.workingSetBytes = 2 * MB;
    d.cpu.locality = 0.968;
    d.cpu.branchFraction = 0.22;
    d.cpu.branchPredictability = 0.955; // entropy decode is data-driven
    d.aie.workRate = 0.20; // filter stages assist on the DSP
    d.memory.footprintBytes = 1200 * MB;
    return d;
}

PhaseDemand
compression(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 2.8;
    d.cpu.memIntensity = 0.33;
    d.cpu.workingSetBytes = 32 * MB;
    d.cpu.locality = 0.97;
    d.cpu.branchFraction = 0.24;
    d.cpu.branchPredictability = 0.945;
    d.memory.footprintBytes = 1400 * MB;
    return d;
}

PhaseDemand
memoryStream(std::uint64_t working_set_bytes, double locality)
{
    PhaseDemand d;
    d.threads = group(4, 0.28);
    d.cpu.baseIpc = 3.0;
    d.cpu.memIntensity = 0.32;
    d.cpu.workingSetBytes = working_set_bytes;
    d.cpu.locality = locality;
    // Pointer chasing defeats the branch predictor as well as the
    // caches, so RAM stress tests are outliers on both MPKI axes.
    d.cpu.branchFraction = 0.15;
    d.cpu.branchPredictability = 0.93;
    d.memory.footprintBytes = working_set_bytes + 1100 * MB;
    return d;
}

PhaseDemand
storageIo(double io_rate, double cpu_intensity)
{
    PhaseDemand d;
    d.threads = group(3, cpu_intensity);
    d.cpu.baseIpc = 2.2;
    d.cpu.memIntensity = 0.28;
    d.cpu.workingSetBytes = 8 * MB;
    d.cpu.locality = 0.975;
    d.cpu.branchFraction = 0.15;
    d.cpu.branchPredictability = 0.96;
    d.storage.ioRate = io_rate;
    // Storage benchmarks interleave sequential-read and random-write
    // stages; slightly read-dominated overall.
    d.storage.readFraction = 0.55;
    d.memory.footprintBytes = 1000 * MB;
    return d;
}

PhaseDemand
database(double io_rate)
{
    PhaseDemand d;
    d.threads = group(2, 0.35);
    d.cpu.baseIpc = 2.4;
    d.cpu.memIntensity = 0.35;
    d.cpu.workingSetBytes = 64 * MB;
    d.cpu.locality = 0.955; // B-tree walks
    d.cpu.branchFraction = 0.24;
    d.cpu.branchPredictability = 0.945;
    d.storage.ioRate = io_rate;
    d.storage.readFraction = 0.70; // query-dominated with commit writes
    d.memory.footprintBytes = 1200 * MB;
    return d;
}

PhaseDemand
webBrowse()
{
    PhaseDemand d;
    d.threads = {ThreadDemand{3, 0.24}, ThreadDemand{1, 0.30}};
    d.cpu.baseIpc = 2.5;
    d.cpu.memIntensity = 0.32;
    d.cpu.workingSetBytes = 48 * MB;
    d.cpu.locality = 0.967;
    d.cpu.branchFraction = 0.22;
    d.cpu.branchPredictability = 0.955;
    d.gpu.workRate = 0.12; // compositor
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.gpu.textureBytes = 200 * MB;
    d.memory.footprintBytes = 1700 * MB;
    return d;
}

PhaseDemand
photoEdit(double gpu_rate)
{
    PhaseDemand d;
    d.threads = group(2, 0.50);
    d.cpu.baseIpc = 2.8;
    d.cpu.memIntensity = 0.34;
    d.cpu.workingSetBytes = 64 * MB;
    d.cpu.locality = 0.972;
    d.cpu.branchFraction = 0.12;
    d.cpu.branchPredictability = 0.97;
    d.gpu.workRate = gpu_rate; // shader-based filters
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.gpu.textureBandwidth = 0.35;
    d.gpu.textureBytes = 500 * MB;
    d.aie.workRate = 0.25;
    d.memory.footprintBytes = 1900 * MB;
    return d;
}

PhaseDemand
videoCodec(MediaCodec codec, double rate, bool encode)
{
    PhaseDemand d;
    d.threads = group(4, encode ? 0.26 : 0.21);
    d.cpu.baseIpc = 2.5;
    d.cpu.memIntensity = 0.34;
    d.cpu.workingSetBytes = 32 * MB;
    d.cpu.locality = 0.97;
    d.cpu.branchFraction = 0.18;
    d.cpu.branchPredictability = 0.955;
    d.aie.workRate = rate;
    d.aie.codec = codec;
    d.memory.footprintBytes = 1800 * MB;
    return d;
}

PhaseDemand
renderScene(GraphicsApi api, double work_rate, double resolution_scale,
            bool offscreen, double texture_mb)
{
    fatalIf(api == GraphicsApi::None,
            "renderScene needs a graphics API");
    PhaseDemand d;
    // Driver + game-logic threads are light and stay on the little
    // cluster (the paper's Observation #8).
    d.threads = {ThreadDemand{3, 0.17}, ThreadDemand{1, 0.12}};
    d.cpu.baseIpc = 2.3;
    d.cpu.memIntensity = 0.30;
    d.cpu.workingSetBytes = 24 * MB;
    d.cpu.locality = 0.97;
    d.cpu.branchFraction = 0.16;
    d.cpu.branchPredictability = 0.96;
    d.gpu.api = api;
    d.gpu.workRate = work_rate;
    d.gpu.resolutionScale = resolution_scale;
    d.gpu.offscreen = offscreen;
    d.gpu.textureBandwidth = 0.45 + 0.35 * work_rate;
    d.gpu.textureBytes =
        static_cast<std::uint64_t>(texture_mb) * MB;
    d.memory.footprintBytes = 1500 * MB;
    return d;
}

PhaseDemand
gpuCompute(double work_rate, double texture_mb)
{
    PhaseDemand d;
    d.threads = group(1, 0.45); // enqueue/readback thread
    d.cpu.baseIpc = 2.3;
    d.cpu.memIntensity = 0.32;
    d.cpu.workingSetBytes = 16 * MB;
    d.cpu.locality = 0.975;
    d.cpu.branchFraction = 0.12;
    d.cpu.branchPredictability = 0.97;
    d.gpu.api = GraphicsApi::Vulkan;
    d.gpu.workRate = work_rate;
    d.gpu.offscreen = true; // compute never touches the display
    d.gpu.textureBandwidth = 0.12; // ALU-bound, light streaming
    d.gpu.textureBytes =
        static_cast<std::uint64_t>(texture_mb) * MB;
    d.memory.footprintBytes = 1400 * MB;
    return d;
}

PhaseDemand
physics(int level)
{
    fatalIf(level < 1 || level > 3, "physics levels are 1..3");
    PhaseDemand d;
    d.threads = group(6, 0.54 + 0.14 * double(level));
    d.cpu.baseIpc = 2.7;
    d.cpu.memIntensity = 0.33;
    d.cpu.workingSetBytes = 6 * MB;
    d.cpu.locality = 0.98;
    d.cpu.branchFraction = 0.14;
    d.cpu.branchPredictability = 0.96;
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.gpu.workRate = 0.10; // "minimizing the GPU workload"
    d.gpu.textureBytes = 300 * MB;
    d.memory.footprintBytes = 1400 * MB;
    return d;
}

PhaseDemand
nnInference(double aie_rate, int threads, double intensity)
{
    PhaseDemand d;
    // Inference worker threads size themselves for the mid cores;
    // Aitutu is the paper's one benchmark where the mid cluster
    // sustains high load longer than the big cluster. A single
    // heavier feeder thread keeps the big core warm (Observation #9:
    // consistent load on all clusters).
    d.threads = group(threads, intensity * 0.94);
    d.threads.push_back(ThreadDemand{1, 0.62});
    // Pre/post-processing (decode, resize, NMS) runs on the little
    // cores, so AI benchmarks keep every cluster busy.
    d.threads.push_back(ThreadDemand{2, 0.24});
    d.cpu.baseIpc = 2.7;
    d.cpu.memIntensity = 0.34;
    d.cpu.workingSetBytes = 32 * MB;
    d.cpu.locality = 0.975;
    d.cpu.branchFraction = 0.14;
    d.cpu.branchPredictability = 0.965;
    d.aie.workRate = aie_rate;
    d.memory.footprintBytes = 1900 * MB;
    return d;
}

PhaseDemand
uiScroll(double aie_rate)
{
    PhaseDemand d;
    d.threads = {ThreadDemand{4, 0.26}};
    d.cpu.baseIpc = 2.3;
    d.cpu.memIntensity = 0.31;
    d.cpu.workingSetBytes = 16 * MB;
    d.cpu.locality = 0.975;
    d.cpu.branchFraction = 0.20;
    d.cpu.branchPredictability = 0.955;
    d.gpu.workRate = 0.18;
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.gpu.textureBytes = 250 * MB;
    d.aie.workRate = aie_rate; // compositor/webview DSP assists
    d.memory.footprintBytes = 1500 * MB;
    return d;
}

PhaseDemand
psnrCompare(bool high_precision)
{
    PhaseDemand d;
    d.threads = group(1, 0.40);
    d.cpu.baseIpc = 2.3;
    d.cpu.memIntensity = 0.34;
    d.cpu.workingSetBytes = 24 * MB;
    d.cpu.locality = 0.963;
    d.cpu.branchFraction = 0.10;
    d.cpu.branchPredictability = 0.98;
    // MSE/PSNR over full frames is a textbook DSP task; the high-
    // precision section costs more.
    d.aie.workRate = high_precision ? 1.0 : 0.90;
    d.gpu.workRate = 0.25;
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.gpu.textureBytes = 400 * MB;
    d.memory.footprintBytes = 1300 * MB;
    return d;
}

PhaseDemand
multicoreStress(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity * 0.92);
    d.cpu.baseIpc = 3.1;
    d.cpu.memIntensity = 0.28;
    d.cpu.workingSetBytes = 8 * MB;
    d.cpu.locality = 0.978;
    d.cpu.branchFraction = 0.15;
    d.cpu.branchPredictability = 0.96;
    d.memory.footprintBytes = 1400 * MB;
    return d;
}

PhaseDemand
dataProcessing(int threads, double intensity)
{
    PhaseDemand d;
    // Everyday data tasks fan out into threads light enough for the
    // energy-efficient cores (the paper: the little cluster proves
    // adequate in most cases).
    d.threads = group(threads * 2, intensity * 0.4);
    d.cpu.baseIpc = 2.7;
    d.cpu.memIntensity = 0.32;
    d.cpu.workingSetBytes = 24 * MB;
    d.cpu.locality = 0.97;
    d.cpu.branchFraction = 0.20;
    d.cpu.branchPredictability = 0.95;
    d.memory.footprintBytes = 1300 * MB;
    return d;
}

PhaseDemand
dataSecurity(int threads, double intensity)
{
    PhaseDemand d = crypto(threads, intensity);
    d.cpu.branchFraction = 0.12;
    d.storage.ioRate = 0.08; // encrypt-at-rest touches flash
    d.storage.readFraction = 0.35; // re-encryption is write-heavy
    return d;
}

PhaseDemand
loadingBurst(int threads, double intensity)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    d.cpu.baseIpc = 2.3;
    d.cpu.memIntensity = 0.36;
    d.cpu.workingSetBytes = 48 * MB;
    d.cpu.locality = 0.95;
    d.cpu.branchFraction = 0.20;
    d.cpu.branchPredictability = 0.93;
    d.storage.ioRate = 0.55; // asset streaming
    d.storage.readFraction = 0.92; // almost pure reads off flash
    d.memory.footprintBytes = 1600 * MB;
    return d;
}

PhaseDemand
menuIdle()
{
    PhaseDemand d;
    d.threads = {ThreadDemand{1, 0.10}};
    d.cpu.baseIpc = 1.8;
    d.cpu.memIntensity = 0.30;
    d.cpu.workingSetBytes = 4 * MB;
    d.cpu.locality = 0.96;
    d.cpu.branchFraction = 0.18;
    d.cpu.branchPredictability = 0.95;
    d.gpu.workRate = 0.05;
    d.gpu.api = GraphicsApi::OpenGlEs;
    d.memory.footprintBytes = 1000 * MB;
    return d;
}

PhaseDemand
vectorMath(int threads, double intensity,
           std::uint64_t working_set_bytes)
{
    PhaseDemand d;
    d.threads = group(threads, intensity);
    // Wide SIMD units retire several lanes per instruction; the
    // sequential stream prefetches perfectly but still keeps the
    // memory pipes busy.
    d.cpu.baseIpc = 3.4;
    d.cpu.memIntensity = 0.38;
    d.cpu.workingSetBytes = working_set_bytes;
    d.cpu.locality = 0.94; // streaming: hardware prefetch, no reuse
    d.cpu.branchFraction = 0.04;
    d.cpu.branchPredictability = 0.995; // loop-closing branches only
    d.memory.footprintBytes = working_set_bytes + 1200 * MB;
    return d;
}

} // namespace kernels
} // namespace mbs
