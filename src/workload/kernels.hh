/**
 * @file
 * Kernel archetype library.
 *
 * Each function builds the hardware demand bundle of one recurring
 * mobile-workload kernel (GEMM, FFT, PNG decode, scene rendering,
 * video decode, ...). Suite definition files compose these archetypes
 * into benchmark phase sequences, so domain behaviour lives here in
 * one place: GEMM is multi-threaded and cache-friendly, memory stress
 * tests have low locality, video decode offloads to the AIE unless the
 * codec is unsupported, and so on.
 *
 * Thread intensities are in big-core-equivalent units; the EAS-like
 * scheduler decides placement. Rough placement intuition for the
 * Snapdragon-888-like default (fit margin 0.8): intensity <= 0.28
 * fits a little core, <= 0.56 fits a mid core, above that runs big.
 */

#ifndef MBS_WORKLOAD_KERNELS_HH
#define MBS_WORKLOAD_KERNELS_HH

#include <cstdint>

#include "soc/demand.hh"

namespace mbs {
namespace kernels {

/** Multi-threaded general matrix multiplication (LINPACK-style). */
PhaseDemand gemm(int threads = 6, double intensity = 0.80);

/** Fast Fourier transform with partial DSP offload. */
PhaseDemand fft(int threads = 2, double aie_rate = 0.30);

/** Cryptography workloads (AES/SHA): high ILP, tiny working set. */
PhaseDemand crypto(int threads = 1, double intensity = 0.90);

/** Integer workloads: compilers, compression, parsing. */
PhaseDemand integerOps(int threads = 1, double intensity = 0.90);

/** Floating-point workloads: simulation, ray tracing. */
PhaseDemand floatOps(int threads = 1, double intensity = 0.90);

/** PNG/JPEG decode: single-threaded and branchy. */
PhaseDemand imageDecode(double intensity = 0.85);

/** Dictionary compression (zstd-like): branchy, moderate memory. */
PhaseDemand compression(int threads = 1, double intensity = 0.80);

/**
 * RAM stress (Antutu Mem style): streaming and pointer chasing with
 * very low locality over a large working set.
 */
PhaseDemand memoryStream(std::uint64_t working_set_bytes = 256ULL << 20,
                         double locality = 0.25);

/** Flash IO (sequential or random) at @p io_rate of peak bandwidth. */
PhaseDemand storageIo(double io_rate, double cpu_intensity = 0.20);

/** SQLite-style database transactions: branchy CPU + moderate IO. */
PhaseDemand database(double io_rate = 0.35);

/** Interactive web browsing: bursty little-core work. */
PhaseDemand webBrowse();

/** Photo editing: GPU-assisted filters plus mid-class CPU threads. */
PhaseDemand photoEdit(double gpu_rate = 0.45);

/**
 * Hardware video decode/encode. Offloads to the AIE/DSP when the
 * codec is supported; otherwise the simulator bounces the work back
 * to the CPU as expensive software decode (the AV1 case).
 */
PhaseDemand videoCodec(MediaCodec codec, double rate = 0.45,
                       bool encode = false);

/**
 * 3D scene rendering (game-like). Driver threads are light and stay
 * on the little cluster; graphics data streaming contends with CPU
 * lines in the shared caches, which is what depresses graphics
 * benchmarks' IPC in the model.
 *
 * @param api Graphics API used by the scene.
 * @param work_rate Raw GPU demand in [0, 1] at 1080p.
 * @param resolution_scale Pixel count relative to 1080p.
 * @param offscreen True for off-screen (no display) variants.
 * @param texture_mb Resident texture megabytes.
 */
PhaseDemand renderScene(GraphicsApi api, double work_rate,
                        double resolution_scale = 1.0,
                        bool offscreen = false,
                        double texture_mb = 900.0);

/** GPU compute (OpenCL/Vulkan compute): no display pipeline. */
PhaseDemand gpuCompute(double work_rate, double texture_mb = 500.0);

/**
 * Multi-threaded rigid-body physics (3DMark Slingshot physics test);
 * successive levels raise the per-thread demand.
 */
PhaseDemand physics(int level);

/**
 * Neural-network inference (image classification, detection, super
 * resolution): AIE offload plus mid-class worker threads.
 */
PhaseDemand nnInference(double aie_rate = 0.45, int threads = 3,
                        double intensity = 0.55);

/** UI scroll / webview rendering with compositor DSP assists. */
PhaseDemand uiScroll(double aie_rate = 0.50);

/** PSNR frame comparison (GFXBench Special) on the DSP. */
PhaseDemand psnrCompare(bool high_precision);

/** Multi-core/multi-tasking stress (Antutu CPU finale). */
PhaseDemand multicoreStress(int threads = 8, double intensity = 0.90);

/** Generic data processing (parsing, sorting, hashing). */
PhaseDemand dataProcessing(int threads = 2, double intensity = 0.50);

/** Data security (encryption at rest, integrity checks). */
PhaseDemand dataSecurity(int threads = 2, double intensity = 0.55);

/**
 * Inter-test loading/asset-decompression burst; these transitions are
 * the CPU-load spikes visible between Antutu GPU micro-benchmarks.
 */
PhaseDemand loadingBurst(int threads = 5, double intensity = 0.65);

/** Near-idle menu/result screen. */
PhaseDemand menuIdle();

/**
 * SIMD vector math (NEON/SVE-style streaming compute): very high ILP
 * on wide units, sequential streaming access over a large working
 * set, almost no branches. The archetype behind vector-extension
 * stress suites ("Vector-Processing for Mobile Devices").
 */
PhaseDemand vectorMath(int threads = 4, double intensity = 0.85,
                       std::uint64_t working_set_bytes = 64ULL << 20);

} // namespace kernels
} // namespace mbs

#endif // MBS_WORKLOAD_KERNELS_HH
