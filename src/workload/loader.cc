#include "loader.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "workload/kernels.hh"

namespace mbs {

namespace {

using Kwargs = std::vector<std::pair<std::string, std::string>>;

double
toDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double out = std::stod(value, &used);
        fatalIf(used != value.size(), "");
        return out;
    } catch (...) {
        fatal("keyword '" + key + "' needs a number, got '" + value +
              "'");
    }
}

int
toInt(const std::string &key, const std::string &value)
{
    const double d = toDouble(key, value);
    const int i = int(d);
    fatalIf(double(i) != d,
            "keyword '" + key + "' needs an integer, got '" + value +
            "'");
    return i;
}

GraphicsApi
toApi(const std::string &value)
{
    const std::string v = toLower(value);
    if (v == "opengl" || v == "opengles" || v == "gl")
        return GraphicsApi::OpenGlEs;
    if (v == "vulkan" || v == "vk")
        return GraphicsApi::Vulkan;
    fatal("unknown graphics API '" + value + "'");
}

MediaCodec
toCodec(const std::string &value)
{
    const std::string v = toLower(value);
    if (v == "h264")
        return MediaCodec::H264;
    if (v == "h265" || v == "hevc")
        return MediaCodec::H265;
    if (v == "vp9")
        return MediaCodec::Vp9;
    if (v == "av1")
        return MediaCodec::Av1;
    fatal("unknown codec '" + value + "'");
}

bool
toBool(const std::string &key, const std::string &value)
{
    const std::string v = toLower(value);
    if (v == "true" || v == "yes" || v == "1" || v.empty())
        return true;
    if (v == "false" || v == "no" || v == "0")
        return false;
    fatal("keyword '" + key + "' needs a boolean, got '" + value +
          "'");
}

/** Kwargs consumed before kernel construction. */
struct KernelArgs
{
    int threads = -1;
    double intensity = -1.0;
    double gpuRate = -1.0;
    double aieRate = -1.0;
    double ioRate = -1.0;
    double readFraction = -1.0;
    double resolution = 1.0;
    bool offscreen = false;
    bool encode = false;
    double textureMb = -1.0;
    GraphicsApi api = GraphicsApi::OpenGlEs;
    MediaCodec codec = MediaCodec::None;
    int level = 2;
    double workingSetMb = -1.0;
    double locality = -1.0;
};

KernelArgs
parseArgs(const Kwargs &kwargs)
{
    KernelArgs a;
    for (const auto &[key, value] : kwargs) {
        if (key == "threads")
            a.threads = toInt(key, value);
        else if (key == "intensity")
            a.intensity = toDouble(key, value);
        else if (key == "gpu_rate")
            a.gpuRate = toDouble(key, value);
        else if (key == "aie_rate")
            a.aieRate = toDouble(key, value);
        else if (key == "io_rate")
            a.ioRate = toDouble(key, value);
        else if (key == "read_fraction")
            a.readFraction = toDouble(key, value);
        else if (key == "resolution")
            a.resolution = toDouble(key, value);
        else if (key == "offscreen")
            a.offscreen = toBool(key, value);
        else if (key == "encode")
            a.encode = toBool(key, value);
        else if (key == "texture_mb")
            a.textureMb = toDouble(key, value);
        else if (key == "api")
            a.api = toApi(value);
        else if (key == "codec")
            a.codec = toCodec(value);
        else if (key == "level")
            a.level = toInt(key, value);
        else if (key == "working_set_mb")
            a.workingSetMb = toDouble(key, value);
        else if (key == "locality")
            a.locality = toDouble(key, value);
        else
            fatal("unknown phase keyword '" + key + "'");
    }
    return a;
}

} // namespace

PhaseDemand
makeKernelDemand(const std::string &kernel, const Kwargs &kwargs)
{
    const KernelArgs a = parseArgs(kwargs);
    const auto threads_or = [&a](int fallback) {
        return a.threads >= 0 ? a.threads : fallback;
    };
    const auto intensity_or = [&a](double fallback) {
        return a.intensity >= 0.0 ? a.intensity : fallback;
    };

    PhaseDemand d;
    if (kernel == "gemm") {
        d = kernels::gemm(threads_or(6), intensity_or(0.80));
    } else if (kernel == "fft") {
        d = kernels::fft(threads_or(2),
                         a.aieRate >= 0.0 ? a.aieRate : 0.30);
    } else if (kernel == "crypto") {
        d = kernels::crypto(threads_or(1), intensity_or(0.90));
    } else if (kernel == "integerOps") {
        d = kernels::integerOps(threads_or(1), intensity_or(0.90));
    } else if (kernel == "floatOps") {
        d = kernels::floatOps(threads_or(1), intensity_or(0.90));
    } else if (kernel == "imageDecode") {
        d = kernels::imageDecode(intensity_or(0.85));
    } else if (kernel == "compression") {
        d = kernels::compression(threads_or(1), intensity_or(0.80));
    } else if (kernel == "memoryStream") {
        d = kernels::memoryStream(
            a.workingSetMb > 0.0
                ? std::uint64_t(a.workingSetMb) << 20
                : 256ULL << 20,
            a.locality >= 0.0 ? a.locality : 0.25);
    } else if (kernel == "storageIo") {
        d = kernels::storageIo(a.ioRate >= 0.0 ? a.ioRate : 0.5,
                               intensity_or(0.20));
    } else if (kernel == "database") {
        d = kernels::database(a.ioRate >= 0.0 ? a.ioRate : 0.35);
    } else if (kernel == "webBrowse") {
        d = kernels::webBrowse();
    } else if (kernel == "photoEdit") {
        d = kernels::photoEdit(a.gpuRate >= 0.0 ? a.gpuRate : 0.45);
    } else if (kernel == "videoCodec") {
        fatalIf(a.codec == MediaCodec::None,
                "videoCodec needs a 'codec' keyword");
        d = kernels::videoCodec(a.codec,
                                a.aieRate >= 0.0 ? a.aieRate : 0.45,
                                a.encode);
    } else if (kernel == "renderScene") {
        d = kernels::renderScene(
            a.api, a.gpuRate >= 0.0 ? a.gpuRate : 0.7, a.resolution,
            a.offscreen, a.textureMb > 0.0 ? a.textureMb : 900.0);
    } else if (kernel == "gpuCompute") {
        d = kernels::gpuCompute(a.gpuRate >= 0.0 ? a.gpuRate : 0.9,
                                a.textureMb > 0.0 ? a.textureMb
                                                  : 500.0);
    } else if (kernel == "physics") {
        d = kernels::physics(a.level);
    } else if (kernel == "nnInference") {
        d = kernels::nnInference(a.aieRate >= 0.0 ? a.aieRate : 0.45,
                                 threads_or(3), intensity_or(0.55));
    } else if (kernel == "uiScroll") {
        d = kernels::uiScroll(a.aieRate >= 0.0 ? a.aieRate : 0.50);
    } else if (kernel == "psnrCompare") {
        d = kernels::psnrCompare(a.level >= 2);
    } else if (kernel == "multicoreStress") {
        d = kernels::multicoreStress(threads_or(8),
                                     intensity_or(0.90));
    } else if (kernel == "dataProcessing") {
        d = kernels::dataProcessing(threads_or(2),
                                    intensity_or(0.50));
    } else if (kernel == "dataSecurity") {
        d = kernels::dataSecurity(threads_or(2), intensity_or(0.55));
    } else if (kernel == "loadingBurst") {
        d = kernels::loadingBurst(threads_or(5), intensity_or(0.65));
    } else if (kernel == "menuIdle") {
        d = kernels::menuIdle();
    } else if (kernel == "vectorMath") {
        d = kernels::vectorMath(threads_or(4), intensity_or(0.85),
                                a.workingSetMb > 0.0
                                    ? std::uint64_t(a.workingSetMb)
                                          << 20
                                    : 64ULL << 20);
    } else {
        fatal("unknown kernel archetype '" + kernel + "'");
    }
    if (a.readFraction >= 0.0) {
        fatalIf(a.readFraction > 1.0,
                "read_fraction must be in [0, 1]");
        d.storage.readFraction = a.readFraction;
    }
    return d;
}

namespace {

/** Split a logical line into tokens, respecting double quotes. */
std::vector<std::string>
tokenize(const std::string &line, int line_no)
{
    std::vector<std::string> out;
    std::string cur;
    bool quoted = false;
    for (char c : line) {
        if (c == '"') {
            if (quoted) {
                out.push_back(cur);
                cur.clear();
            }
            quoted = !quoted;
        } else if (!quoted && std::isspace(
                       static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    fatalIf(quoted, "line " + std::to_string(line_no) +
                        ": unterminated quote");
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

HardwareTarget
toTarget(const std::string &value, int line_no)
{
    static const std::map<std::string, HardwareTarget> targets = {
        {"cpu", HardwareTarget::Cpu},
        {"gpu", HardwareTarget::Gpu},
        {"memory", HardwareTarget::MemorySubsystem},
        {"storage", HardwareTarget::StorageSubsystem},
        {"ai", HardwareTarget::Ai},
        {"everyday", HardwareTarget::EverydayTasks},
    };
    const auto it = targets.find(toLower(value));
    fatalIf(it == targets.end(),
            "line " + std::to_string(line_no) +
                ": unknown target '" + value + "'");
    return it->second;
}

} // namespace

std::vector<Suite>
loadSuites(std::istream &in)
{
    std::vector<Suite> suites;
    Suite *suite = nullptr;
    Benchmark bench;
    bool bench_open = false;

    const auto flush_bench = [&]() {
        if (!bench_open)
            return;
        fatalIf(suite == nullptr, "benchmark outside a suite");
        fatalIf(bench.phases().empty(),
                "benchmark '" + bench.name() + "' has no phases");
        suite->benchmarks.push_back(bench);
        bench_open = false;
    };

    std::string raw;
    std::string logical;
    int line_no = 0;
    int logical_start = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string text = trim(raw);
        if (logical.empty())
            logical_start = line_no;
        if (!text.empty() && text.back() == '\\') {
            logical += text.substr(0, text.size() - 1) + " ";
            continue;
        }
        logical += text;
        const std::string line = trim(logical);
        logical.clear();
        if (line.empty() || line[0] == '#')
            continue;
        const auto tokens = tokenize(line, logical_start);
        const std::string &head = tokens[0];

        if (head == "suite") {
            flush_bench();
            fatalIf(tokens.size() < 2,
                    "line " + std::to_string(logical_start) +
                        ": suite needs a name");
            Suite s;
            s.name = tokens[1];
            for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
                if (tokens[i] == "publisher")
                    s.publisher = tokens[i + 1];
                else if (tokens[i] == "whole_suite")
                    s.runsAsWhole = toBool("whole_suite",
                                           tokens[i + 1]);
                else
                    fatal("line " + std::to_string(logical_start) +
                          ": unknown suite keyword '" + tokens[i] +
                          "'");
            }
            suites.push_back(std::move(s));
            suite = &suites.back();
        } else if (head == "benchmark") {
            flush_bench();
            fatalIf(suite == nullptr,
                    "line " + std::to_string(logical_start) +
                        ": benchmark before any suite");
            fatalIf(tokens.size() < 2,
                    "line " + std::to_string(logical_start) +
                        ": benchmark needs a name");
            HardwareTarget target = HardwareTarget::Cpu;
            bool executable = true;
            for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
                if (tokens[i] == "target")
                    target = toTarget(tokens[i + 1], logical_start);
                else if (tokens[i] == "executable")
                    executable = toBool("executable", tokens[i + 1]);
                else
                    fatal("line " + std::to_string(logical_start) +
                          ": unknown benchmark keyword '" +
                          tokens[i] + "'");
            }
            bench = Benchmark(suite->name, tokens[1], target,
                              executable);
            bench_open = true;
        } else if (head == "phase") {
            fatalIf(!bench_open,
                    "line " + std::to_string(logical_start) +
                        ": phase before any benchmark");
            fatalIf(tokens.size() < 2,
                    "line " + std::to_string(logical_start) +
                        ": phase needs a name");
            std::string kernel;
            double duration = -1.0;
            double instructions = -1.0;
            Kwargs kwargs;
            for (std::size_t i = 2; i + 1 < tokens.size(); i += 2) {
                const std::string &key = tokens[i];
                const std::string &value = tokens[i + 1];
                if (key == "kernel")
                    kernel = value;
                else if (key == "duration")
                    duration = toDouble(key, value);
                else if (key == "instructions")
                    instructions = toDouble(key, value);
                else
                    kwargs.emplace_back(key, value);
            }
            fatalIf(kernel.empty(),
                    "line " + std::to_string(logical_start) +
                        ": phase needs a kernel");
            fatalIf(duration <= 0.0,
                    "line " + std::to_string(logical_start) +
                        ": phase needs a positive duration");
            fatalIf(instructions < 0.0,
                    "line " + std::to_string(logical_start) +
                        ": phase needs an instruction budget");
            Phase phase;
            phase.name = tokens[1];
            phase.kernel = kernel;
            phase.durationSeconds = duration;
            phase.demand = makeKernelDemand(kernel, kwargs);
            phase.demand.cpu.instructionsBillions = instructions;
            bench.addPhase(std::move(phase));
        } else {
            fatal("line " + std::to_string(logical_start) +
                  ": unknown directive '" + head + "'");
        }
    }
    flush_bench();
    fatalIf(suites.empty(), "no suites in input");
    for (const auto &s : suites) {
        fatalIf(s.benchmarks.empty(),
                "suite '" + s.name + "' has no benchmarks");
    }
    return suites;
}

std::vector<Suite>
loadSuitesFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadSuites(in);
}

} // namespace mbs
