#include "registry.hh"

#include "common/logging.hh"
#include "workload/suites/suites.hh"

namespace mbs {

WorkloadRegistry::WorkloadRegistry()
{
    suiteList.push_back(suites::build3DMark());
    suiteList.push_back(suites::buildAntutu());
    suiteList.push_back(suites::buildAitutu());
    suiteList.push_back(suites::buildGeekbench5());
    suiteList.push_back(suites::buildGeekbench6());
    suiteList.push_back(suites::buildGfxBench());
    suiteList.push_back(suites::buildPcMark());

    for (const auto &suite : suiteList) {
        for (const auto &bench : suite.benchmarks)
            unitList.push_back(bench);
    }
}

WorkloadRegistry::WorkloadRegistry(std::vector<Suite> suites)
    : suiteList(std::move(suites))
{
    fatalIf(suiteList.empty(), "workload registry needs at least "
                               "one suite");
    for (const auto &suite : suiteList) {
        for (const auto &bench : suite.benchmarks) {
            fatalIf(hasUnit(bench.name()),
                    "duplicate benchmark unit name '" + bench.name() +
                        "'");
            unitList.push_back(bench);
        }
    }
}

std::vector<std::string>
WorkloadRegistry::unitNames() const
{
    std::vector<std::string> out;
    out.reserve(unitList.size());
    for (const auto &b : unitList)
        out.push_back(b.name());
    return out;
}

const Benchmark &
WorkloadRegistry::unit(const std::string &name) const
{
    for (const auto &b : unitList) {
        if (b.name() == name)
            return b;
    }
    fatal("no benchmark unit named '" + name + "'");
}

bool
WorkloadRegistry::hasUnit(const std::string &name) const
{
    for (const auto &b : unitList) {
        if (b.name() == name)
            return true;
    }
    return false;
}

bool
WorkloadRegistry::hasSuite(const std::string &name) const
{
    for (const auto &s : suiteList) {
        if (s.name == name)
            return true;
    }
    return false;
}

const Suite &
WorkloadRegistry::suite(const std::string &name) const
{
    for (const auto &s : suiteList) {
        if (s.name == name)
            return s;
    }
    fatal("no suite named '" + name + "'");
}

double
WorkloadRegistry::totalRuntimeSeconds() const
{
    double total = 0.0;
    for (const auto &b : unitList)
        total += b.totalDurationSeconds();
    return total;
}

} // namespace mbs
