/**
 * @file
 * Workload description types: Phase, Benchmark and Suite.
 *
 * A Benchmark is a named sequence of phases; each phase couples a
 * hardware demand bundle (soc/demand.hh) with a duration, a name and
 * the kernel archetype it was built from. Suites group benchmarks and
 * carry the execution constraints the paper describes (e.g. Antutu's
 * segments cannot be launched individually).
 */

#ifndef MBS_WORKLOAD_BENCHMARK_HH
#define MBS_WORKLOAD_BENCHMARK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "soc/demand.hh"

namespace mbs {

/** Hardware target categories from the paper's Table I. */
enum class HardwareTarget
{
    Cpu,
    Gpu,
    MemorySubsystem,
    StorageSubsystem,
    Ai,
    EverydayTasks,
};

/** @return a printable name, e.g. "GPU" or "Everyday tasks". */
std::string hardwareTargetName(HardwareTarget target);

/** One timed slice of a benchmark built from a kernel archetype. */
struct Phase
{
    /** Human-readable name, e.g. "physics test level 2". */
    std::string name;
    /** Kernel archetype identifier, e.g. "gemm". */
    std::string kernel;
    /** Phase length in seconds. */
    double durationSeconds = 1.0;
    /** Hardware demand while the phase runs. */
    PhaseDemand demand;
};

/**
 * An individually characterized benchmark unit (one bar in the
 * paper's Fig. 1).
 */
class Benchmark
{
  public:
    Benchmark() = default;

    /**
     * @param suite Suite the benchmark belongs to, e.g. "Antutu v9".
     * @param name Display name, e.g. "Antutu CPU".
     * @param target Hardware the benchmark stresses (Table I).
     * @param individually_executable False for Antutu segments, which
     *        can only run as part of the whole suite.
     */
    Benchmark(std::string suite, std::string name, HardwareTarget target,
              bool individually_executable = true);

    const std::string &suiteName() const { return suite; }
    const std::string &name() const { return benchName; }
    HardwareTarget target() const { return hwTarget; }
    bool individuallyExecutable() const { return executable; }

    /** Append a phase; fatal() on a non-positive duration. */
    void addPhase(Phase phase);

    const std::vector<Phase> &phases() const { return phaseList; }

    /** Sum of phase durations in seconds. */
    double totalDurationSeconds() const;

    /** Sum of phase instruction budgets, in billions. */
    double totalInstructionsBillions() const;

    /** Lower the phases into the simulator's input format. */
    std::vector<TimedPhase> toTimedPhases() const;

    /**
     * Normalized start time of phase @p i in [0, 1] of the benchmark's
     * duration; used to locate events on the Fig.-2 time axis.
     */
    double phaseStartFraction(std::size_t i) const;

    /**
     * Content digest over the full phase table (names, kernels,
     * durations and every demand field). Two benchmarks with equal
     * digests produce identical simulations under equal seeds, which
     * is what lets the profile store key cache entries by digest.
     */
    std::uint64_t digest() const;

  private:
    std::string suite;
    std::string benchName;
    HardwareTarget hwTarget = HardwareTarget::Cpu;
    bool executable = true;
    std::vector<Phase> phaseList;
};

/** A published benchmark suite (one row group in Table I). */
struct Suite
{
    /** Suite name, e.g. "Geekbench 5". */
    std::string name;
    /** Publisher, e.g. "Primate Labs". */
    std::string publisher;
    /**
     * True when sub-benchmarks can only run as a whole suite
     * (Antutu); the profiler then segments the single run.
     */
    bool runsAsWhole = false;
    std::vector<Benchmark> benchmarks;

    /** Sum of all member benchmark durations. */
    double totalDurationSeconds() const;

    /** Content digest over the suite identity and member digests. */
    std::uint64_t digest() const;
};

} // namespace mbs

#endif // MBS_WORKLOAD_BENCHMARK_HH
