/**
 * @file
 * Small string utilities shared across the framework.
 */

#ifndef MBS_COMMON_STRINGS_HH
#define MBS_COMMON_STRINGS_HH

#include <string>
#include <vector>

namespace mbs {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char sep);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** Lower-case ASCII letters in @p text. */
std::string toLower(const std::string &text);

/** @return true if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** @return true if @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/**
 * Convert a human name to a slug suitable for file names.
 * "Geekbench 5 CPU" -> "geekbench_5_cpu".
 */
std::string slugify(const std::string &text);

/**
 * printf-style formatting into a std::string.
 *
 * Numeric conversions always use the classic "C" locale regardless of
 * the process-global locale, so machine-readable artifacts (CSV,
 * JSON, Prometheus text, reports) never grow locale decimal commas.
 */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * RAII guard pinning the calling thread's C locale to classic "C"
 * for its lifetime (POSIX uselocale; a no-op where unavailable).
 * Wrap printf-family number formatting and strtod-family parsing
 * with it so exported artifacts and ingested traces are
 * locale-independent.
 */
class ScopedCLocale
{
  public:
    ScopedCLocale();
    ~ScopedCLocale();

    ScopedCLocale(const ScopedCLocale &) = delete;
    ScopedCLocale &operator=(const ScopedCLocale &) = delete;

  private:
    /** Opaque previous per-thread locale (locale_t on POSIX). */
    void *previous = nullptr;
    bool active = false;
};

} // namespace mbs

#endif // MBS_COMMON_STRINGS_HH
