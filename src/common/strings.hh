/**
 * @file
 * Small string utilities shared across the framework.
 */

#ifndef MBS_COMMON_STRINGS_HH
#define MBS_COMMON_STRINGS_HH

#include <string>
#include <vector>

namespace mbs {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char sep);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &text);

/** Lower-case ASCII letters in @p text. */
std::string toLower(const std::string &text);

/** @return true if @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** @return true if @p text ends with @p suffix. */
bool endsWith(const std::string &text, const std::string &suffix);

/**
 * Convert a human name to a slug suitable for file names.
 * "Geekbench 5 CPU" -> "geekbench_5_cpu".
 */
std::string slugify(const std::string &text);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mbs

#endif // MBS_COMMON_STRINGS_HH
