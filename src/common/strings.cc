#include "strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <locale.h>
#define MBS_HAVE_USELOCALE 1
#endif

namespace mbs {

#if MBS_HAVE_USELOCALE

namespace {

locale_t
classicCLocale()
{
    // Leaked intentionally: freelocale() during static destruction
    // could race late formatting (e.g. the terminate-handler flush).
    static const locale_t c = newlocale(LC_ALL_MASK, "C", locale_t(0));
    return c;
}

} // namespace

ScopedCLocale::ScopedCLocale()
{
    const locale_t c = classicCLocale();
    if (c != locale_t(0)) {
        previous = reinterpret_cast<void *>(uselocale(c));
        active = true;
    }
}

ScopedCLocale::~ScopedCLocale()
{
    if (active)
        uselocale(reinterpret_cast<locale_t>(previous));
}

#else

ScopedCLocale::ScopedCLocale() {}
ScopedCLocale::~ScopedCLocale() {}

#endif

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
               text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
               text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
slugify(const std::string &text)
{
    std::string out;
    bool last_was_sep = true;
    for (char c : text) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isalnum(uc)) {
            out.push_back(static_cast<char>(std::tolower(uc)));
            last_was_sep = false;
        } else if (!last_was_sep) {
            out.push_back('_');
            last_was_sep = true;
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    const ScopedCLocale pin;
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

} // namespace mbs
