/**
 * @file
 * FNV-1a digesting over heterogeneous field sequences.
 *
 * Used wherever the framework needs a stable content identity: SoC
 * configurations (soc/config.hh), benchmark phase tables
 * (workload/benchmark.hh) and profile-store cache keys (src/store).
 * The digest is a pure function of the mixed byte sequence, so two
 * values with equal fields mixed in the same order produce equal
 * digests across runs and processes.
 */

#ifndef MBS_COMMON_DIGEST_HH
#define MBS_COMMON_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace mbs {

/** FNV-1a accumulator over heterogeneous field types. */
class Fnv1a
{
  public:
    /** Fold @p n raw bytes into the digest. */
    void bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ULL;
        }
    }

    void mix(const std::string &s) { bytes(s.data(), s.size()); }
    void mix(double v) { bytes(&v, sizeof(v)); }
    void mix(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void mix(int v) { mix(std::uint64_t(v)); }
    void mix(bool v) { mix(std::uint64_t(v)); }

    /** The digest of everything mixed so far. */
    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 14695981039346656037ULL;
};

} // namespace mbs

#endif // MBS_COMMON_DIGEST_HH
