#include "table.hh"

#include <algorithm>

#include "logging.hh"

namespace mbs {

TextTable::TextTable(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    fatalIf(headers.empty(), "a table needs at least one column");
    aligns.assign(headers.size(), Align::Left);
}

void
TextTable::setAlign(std::size_t column, Align align)
{
    fatalIf(column >= aligns.size(), "alignment column out of range");
    aligns[column] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers.size(),
            "row has " + std::to_string(cells.size()) + " cells, table has " +
            std::to_string(headers.size()) + " columns");
    rows.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows.emplace_back(); // sentinel
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto pad = [&](const std::string &text, std::size_t c) {
        std::string out;
        const std::size_t fill = width[c] - text.size();
        if (aligns[c] == Align::Right)
            out.append(fill, ' ');
        out += text;
        if (aligns[c] == Align::Left)
            out.append(fill, ' ');
        return out;
    };

    auto rule = [&]() {
        std::string line = "+";
        for (std::size_t c = 0; c < headers.size(); ++c) {
            line.append(width[c] + 2, '-');
            line += "+";
        }
        line += "\n";
        return line;
    };

    std::string out = rule();
    out += "|";
    for (std::size_t c = 0; c < headers.size(); ++c)
        out += " " + pad(headers[c], c) + " |";
    out += "\n";
    out += rule();
    for (const auto &row : rows) {
        if (row.empty()) { // separator sentinel
            out += rule();
            continue;
        }
        out += "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            out += " " + pad(row[c], c) + " |";
        out += "\n";
    }
    out += rule();
    return out;
}

} // namespace mbs
