/**
 * @file
 * Minimal CSV writing (RFC-4180 quoting) for trace export.
 */

#ifndef MBS_COMMON_CSV_HH
#define MBS_COMMON_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace mbs {

/**
 * Streaming CSV writer.
 *
 * Quotes fields containing separators, quotes or newlines; numbers are
 * emitted with enough precision to round-trip a double.
 */
class CsvWriter
{
  public:
    /** @param out Stream to write to; must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out(out) {}

    /**
     * Significant digits for numeric cells. The default (10) keeps
     * telemetry artifacts compact; 17 makes doubles round-trip
     * bit-exactly (trace-bundle export relies on it).
     */
    void setPrecision(int digits) { precision = digits; }

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

    /** Write a row whose first cell is a label, the rest numeric. */
    void writeRow(const std::string &label,
                  const std::vector<double> &cells);

    /** Escape a single field per RFC 4180. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out;
    int precision = 10;
};

} // namespace mbs

#endif // MBS_COMMON_CSV_HH
