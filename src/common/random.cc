#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace mbs {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
    : seedValue(seed)
{
    SplitMix64 sm(seed);
    for (auto &s : state)
        s = sm.next();
}

Xoshiro256StarStar::result_type
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Xoshiro256StarStar::uniform()
{
    // 53 random mantissa bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Xoshiro256StarStar::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Xoshiro256StarStar::uniformInt(std::uint64_t n)
{
    panicIf(n == 0, "uniformInt(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Xoshiro256StarStar::gaussian(double mean, double stddev)
{
    panicIf(stddev < 0.0, "gaussian stddev must be non-negative");
    if (hasSpareGaussian) {
        hasSpareGaussian = false;
        return mean + stddev * spareGaussian;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian = v * factor;
    hasSpareGaussian = true;
    return mean + stddev * u * factor;
}

Xoshiro256StarStar
Xoshiro256StarStar::fork(std::uint64_t stream_id) const
{
    SplitMix64 sm(seedValue ^ (0xd1b54a32d192ed03ULL * (stream_id + 1)));
    return Xoshiro256StarStar(sm.next());
}

} // namespace mbs
