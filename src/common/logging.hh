/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: inform()/warn() report conditions without
 * stopping execution; fatal() terminates because of a user error (bad
 * configuration, invalid arguments); panic() terminates because of an
 * internal library bug (a condition that should never happen regardless
 * of user input).
 */

#ifndef MBS_COMMON_LOGGING_HH
#define MBS_COMMON_LOGGING_HH

#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mbs {

/**
 * The mutex serializing writes to the stderr log sink. Exposed so
 * other stderr writers (obs::Progress) can take the same lock and
 * never tear a concurrently logged line mid-redraw.
 */
std::mutex &logSinkMutex();

/** Error thrown by fatal(): the user gave the library invalid input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** @return the current global verbosity threshold. */
LogLevel logLevel();

/**
 * Prefix log lines with seconds elapsed since the logger's first use
 * ("[    12.345s] warn: ..."). Off by default. The sink is mutex
 * protected either way, so concurrent threads never interleave
 * characters within one line.
 */
void setLogTimestamps(bool enabled);

/** @return whether log lines carry elapsed-time prefixes. */
bool logTimestamps();

/** Print an informational status message when verbosity allows. */
void inform(const std::string &msg);

/** Print a warning about questionable-but-survivable conditions. */
void warn(const std::string &msg);

/** Print a debug-level trace message when verbosity allows. */
void debug(const std::string &msg);

/**
 * Report an unrecoverable user error.
 *
 * @param msg Explanation of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal library bug.
 *
 * @param msg Explanation of the violated invariant.
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check a user-facing precondition, calling fatal() on failure.
 *
 * @param ok Condition that must hold.
 * @param msg Message describing the requirement.
 */
inline void
fatalIf(bool bad, const std::string &msg)
{
    if (bad)
        fatal(msg);
}

/**
 * Check an internal invariant, calling panic() on failure.
 *
 * @param ok Condition that must hold.
 * @param msg Message describing the invariant.
 */
inline void
panicIf(bool bad, const std::string &msg)
{
    if (bad)
        panic(msg);
}

} // namespace mbs

#endif // MBS_COMMON_LOGGING_HH
