#include "sparkline.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"
#include "simd.hh"

namespace mbs {

std::vector<double>
resampleMean(const std::vector<double> &values, std::size_t width)
{
    fatalIf(width == 0, "cannot resample to zero width");
    if (values.empty())
        return std::vector<double>(width, 0.0);
    if (values.size() == width)
        return values;

    std::vector<double> out(width, 0.0);
    const double step = double(values.size()) / double(width);
    for (std::size_t i = 0; i < width; ++i) {
        const auto begin = static_cast<std::size_t>(
            std::floor(double(i) * step));
        auto end = static_cast<std::size_t>(
            std::ceil(double(i + 1) * step));
        end = std::min(end, values.size());
        const std::size_t n = end > begin ? end - begin : 0;
        out[i] = n
            ? simd::sum(values.data() + begin, n) / double(n) : 0.0;
    }
    return out;
}

std::string
sparkline(const std::vector<double> &values, std::size_t width)
{
    static const char *glyphs[] = {
        " ", "▁", "▂", "▃",
        "▄", "▅", "▆", "▇", "█"
    };
    const auto sampled = resampleMean(values, width);
    std::string out;
    for (double v : sampled) {
        const double clamped = std::clamp(v, 0.0, 1.0);
        const auto idx = static_cast<std::size_t>(
            std::lround(clamped * 8.0));
        out += glyphs[idx];
    }
    return out;
}

std::string
thresholdStrip(const std::vector<double> &values, std::size_t width,
               double threshold)
{
    const auto sampled = resampleMean(values, width);
    std::string out;
    for (double v : sampled)
        out += (v > threshold) ? '#' : '.';
    return out;
}

std::string
loadLevelStrip(const std::vector<double> &values, std::size_t width)
{
    static const char glyphs[] = {' ', '-', '=', '#'};
    const auto sampled = resampleMean(values, width);
    std::string out;
    for (double v : sampled) {
        const double clamped = std::clamp(v, 0.0, 1.0);
        auto idx = static_cast<std::size_t>(clamped * 4.0);
        idx = std::min<std::size_t>(idx, 3);
        out += glyphs[idx];
    }
    return out;
}

} // namespace mbs
