/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the framework (sampling jitter, run-to-run
 * variation, clustering initialization) flows through these generators so
 * that every table and figure is reproducible bit-for-bit from a seed.
 */

#ifndef MBS_COMMON_RANDOM_HH
#define MBS_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace mbs {

/**
 * SplitMix64 generator.
 *
 * Used primarily to expand a single 64-bit seed into the larger state of
 * Xoshiro256StarStar, and for cheap hashing of substream identifiers.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** @return the next 64-bit value in the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** generator (Blackman & Vigna).
 *
 * Fast, high-quality, 256-bit-state generator; the framework's default.
 * Satisfies the C++ UniformRandomBitGenerator requirements so it can be
 * plugged into standard distributions if needed.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion as recommended by the authors. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B9ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** @return the next 64-bit value in the stream. */
    result_type next();

    result_type operator()() { return next(); }

    /** @return a double uniformly distributed in [0, 1). */
    double uniform();

    /** @return a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniformly distributed in [0, n). n must be >0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /**
     * @return a normally distributed double.
     * @param mean Distribution mean.
     * @param stddev Distribution standard deviation (must be >= 0).
     */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Derive an independent substream for a named component.
     *
     * @param stream_id Identifier of the substream (e.g., run index).
     * @return a generator seeded deterministically from this one's seed
     *         and the identifier.
     */
    Xoshiro256StarStar fork(std::uint64_t stream_id) const;

  private:
    std::array<std::uint64_t, 4> state;
    std::uint64_t seedValue;
    bool hasSpareGaussian = false;
    double spareGaussian = 0.0;
};

} // namespace mbs

#endif // MBS_COMMON_RANDOM_HH
