/**
 * @file
 * ASCII table rendering for benches and examples.
 *
 * Every table the paper reports is printed through this renderer so the
 * reproduction output is easy to compare against the publication.
 */

#ifndef MBS_COMMON_TABLE_HH
#define MBS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace mbs {

/** Column alignment within a rendered table. */
enum class Align { Left, Right };

/**
 * A simple row/column text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Benchmark", "Runtime (s)"});
 *   t.addRow({"3DMark Wild Life", "61.5"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** @param headers Column header labels; fixes the column count. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set per-column alignment; defaults to Left. */
    void setAlign(std::size_t column, Align align);

    /**
     * Append a data row.
     * @param cells One cell per column; fatal() if the count differs.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line at the current position. */
    void addSeparator();

    /** @return number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render to a string with box-drawing separators. */
    std::string render() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows; // empty row == separator
    std::vector<Align> aligns;
};

} // namespace mbs

#endif // MBS_COMMON_TABLE_HH
