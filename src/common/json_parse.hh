/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Parses the small, well-formed documents the framework itself deals
 * in — google-benchmark `--benchmark_out` files for the perf gate,
 * the CLI's own metrics.json — into a JsonValue tree. It accepts
 * strict RFC-8259 JSON (no comments, no trailing commas) and throws
 * FatalError with a line/column position on malformed input. Not a
 * streaming parser; documents are read fully into memory first.
 */

#ifndef MBS_COMMON_JSON_PARSE_HH
#define MBS_COMMON_JSON_PARSE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mbs {

/** One parsed JSON value; a tree when arrays/objects nest. */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    /** 1-based position of the value's first character in the source
     *  document; lets consumers (the spec compiler, ingest) report
     *  `file:line:column` diagnostics against parsed nodes. */
    std::size_t line = 0;
    std::size_t column = 0;
    bool boolean = false;
    double number = 0.0;
    /** String payload (Type::String), UTF-8, escapes resolved. */
    std::string str;
    std::vector<JsonValue> array;
    /** Object members in document order; keys may repeat. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member named @p key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** First member named @p key; fatal() when absent. */
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document.
 *
 * @throws FatalError on malformed input or trailing garbage.
 */
JsonValue parseJson(const std::string &text);

} // namespace mbs

#endif // MBS_COMMON_JSON_PARSE_HH
