/**
 * @file
 * Text sparklines and shaded strips for rendering time-series figures
 * (the paper's Fig. 2 and Fig. 3) in terminal output.
 */

#ifndef MBS_COMMON_SPARKLINE_HH
#define MBS_COMMON_SPARKLINE_HH

#include <string>
#include <vector>

namespace mbs {

/**
 * Render values in [0, 1] as a UTF-8 bar sparkline " ▁▂▃▄▅▆▇█".
 *
 * @param values Series to render; values are clamped to [0, 1].
 * @param width Output width in characters; the series is resampled.
 */
std::string sparkline(const std::vector<double> &values, std::size_t width);

/**
 * Render a threshold strip: '#' where the (resampled) value exceeds
 * @p threshold, '.' elsewhere. Mirrors the paper's "coloured regions
 * indicate a value exceeding 0.5" convention.
 */
std::string thresholdStrip(const std::vector<double> &values,
                           std::size_t width, double threshold = 0.5);

/**
 * Render a four-level load strip using ' ', '-', '=', '#'
 * for the [0,.25), [.25,.5), [.5,.75), [.75,1] bins (Fig. 3 style).
 */
std::string loadLevelStrip(const std::vector<double> &values,
                           std::size_t width);

/**
 * Resample a series to @p width points by averaging within buckets.
 * Exposed for testing; returns the input when width == size.
 */
std::vector<double> resampleMean(const std::vector<double> &values,
                                 std::size_t width);

} // namespace mbs

#endif // MBS_COMMON_SPARKLINE_HH
