#include "csv.hh"

#include <cstdio>

#include "common/strings.hh"

namespace mbs {

namespace {

std::string
formatDouble(double value, int precision)
{
    const ScopedCLocale pin;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    return buf;
}

} // namespace

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << formatDouble(cells[i], precision);
    }
    out << '\n';
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &cells)
{
    out << escape(label);
    for (double c : cells)
        out << ',' << formatDouble(c, precision);
    out << '\n';
}

} // namespace mbs
