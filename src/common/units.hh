/**
 * @file
 * Unit conversion constants and human-readable formatting helpers.
 *
 * The SoC model and the workload descriptors mix seconds, hertz, bytes
 * and instruction counts; these helpers keep conversions explicit and
 * report output in the units the paper uses (GHz, MB/GB, billions of
 * instructions).
 */

#ifndef MBS_COMMON_UNITS_HH
#define MBS_COMMON_UNITS_HH

#include <cstdint>
#include <string>

namespace mbs {
namespace units {

constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;

constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

/** Convert hertz to gigahertz. */
constexpr double toGHz(double hz) { return hz / giga; }

/** Convert gigahertz to hertz. */
constexpr double fromGHz(double ghz) { return ghz * giga; }

/** Convert an instruction count to billions. */
constexpr double toBillions(double count) { return count / giga; }

/** @return bytes rendered as e.g. "512 KB", "3.0 MB", "1.5 GB". */
std::string formatBytes(std::uint64_t bytes);

/** @return seconds rendered as e.g. "61.5 s" or "18.4 min". */
std::string formatSeconds(double seconds);

/** @return a frequency rendered as e.g. "2.42 GHz". */
std::string formatHz(double hz);

/** @return a count rendered with engineering suffix, e.g. "57.0 B". */
std::string formatCount(double count);

/** @return a ratio rendered as a percentage, e.g. "74.98%". */
std::string formatPercent(double fraction, int decimals = 2);

} // namespace units
} // namespace mbs

#endif // MBS_COMMON_UNITS_HH
