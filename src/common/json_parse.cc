#include "common/json_parse.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"
#include "common/strings.hh"

namespace mbs {

namespace {

/** Cursor over the document with position-tagged errors. */
class Parser
{
  public:
    explicit Parser(const std::string &text_) : text(text_)
    {
        // Line-start offsets for O(log n) position lookups: both the
        // error path and every parsed node carry line/column.
        lineStarts.push_back(0);
        for (std::size_t i = 0; i < text.size(); ++i) {
            if (text[i] == '\n')
                lineStarts.push_back(i + 1);
        }
    }

    JsonValue
    document()
    {
        JsonValue v = value();
        skipSpace();
        failIf(pos != text.size(), "trailing characters after value");
        return v;
    }

  private:
    /** 1-based line/column of byte offset @p at. */
    std::pair<std::size_t, std::size_t>
    position(std::size_t at) const
    {
        const auto it = std::upper_bound(lineStarts.begin(),
                                         lineStarts.end(), at);
        const std::size_t line = std::size_t(it - lineStarts.begin());
        return {line, at - lineStarts[line - 1] + 1};
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        const auto [line, column] =
            position(pos < text.size() ? pos : text.size());
        fatal(strformat("JSON parse error at line %zu column %zu: ",
                        line, column) + what);
    }

    void
    failIf(bool bad, const std::string &what) const
    {
        if (bad)
            fail(what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    char
    peek() const
    {
        return pos < text.size() ? text[pos] : '\0';
    }

    void
    expect(char c)
    {
        failIf(peek() != c,
               strformat("expected '%c'", c) +
                   (pos >= text.size()
                        ? " but input ended"
                        : strformat(", got '%c'", text[pos])));
        ++pos;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    value()
    {
        skipSpace();
        failIf(pos >= text.size(), "unexpected end of input");
        const auto [line, column] = position(pos);
        JsonValue v = bareValue();
        v.line = line;
        v.column = column;
        return v;
    }

    JsonValue
    bareValue()
    {
        JsonValue v;
        switch (peek()) {
          case '{':
            return objectValue();
          case '[':
            return arrayValue();
          case '"':
            v.type = JsonValue::Type::String;
            v.str = string();
            return v;
          case 't':
            failIf(!consumeWord("true"), "invalid literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
          case 'f':
            failIf(!consumeWord("false"), "invalid literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
          case 'n':
            failIf(!consumeWord("null"), "invalid literal");
            v.type = JsonValue::Type::Null;
            return v;
          default:
            return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            skipSpace();
            std::string key = string();
            skipSpace();
            expect(':');
            v.object.emplace_back(std::move(key), value());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    numberValue()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            ++pos;
        }
        failIf(pos == start, "invalid value");
        const std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        failIf(end == nullptr || *end != '\0',
               "invalid number '" + token + "'");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = parsed;
        return v;
    }

    /** Append @p code point as UTF-8. */
    void
    appendUtf8(std::string &out, unsigned code) const
    {
        if (code < 0x80) {
            out.push_back(char(code));
        } else if (code < 0x800) {
            out.push_back(char(0xc0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3f)));
        } else {
            out.push_back(char(0xe0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(char(0x80 | (code & 0x3f)));
        }
    }

    unsigned
    hex4()
    {
        failIf(pos + 4 > text.size(), "truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= unsigned(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            failIf(pos >= text.size(), "unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                failIf(static_cast<unsigned char>(c) < 0x20,
                       "raw control character in string");
                out.push_back(c);
                continue;
            }
            failIf(pos >= text.size(), "unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                // Surrogate pairs are kept simple: a high surrogate
                // followed by an escaped low surrogate combines; a
                // lone surrogate becomes U+FFFD.
                unsigned code = hex4();
                if (code >= 0xd800 && code <= 0xdbff &&
                    text.compare(pos, 2, "\\u") == 0) {
                    pos += 2;
                    const unsigned low = hex4();
                    if (low >= 0xdc00 && low <= 0xdfff) {
                        const unsigned combined = 0x10000 +
                            ((code - 0xd800) << 10) + (low - 0xdc00);
                        // 4-byte UTF-8.
                        out.push_back(char(0xf0 | (combined >> 18)));
                        out.push_back(
                            char(0x80 | ((combined >> 12) & 0x3f)));
                        out.push_back(
                            char(0x80 | ((combined >> 6) & 0x3f)));
                        out.push_back(char(0x80 | (combined & 0x3f)));
                        break;
                    }
                    code = 0xfffd;
                } else if (code >= 0xd800 && code <= 0xdfff) {
                    code = 0xfffd;
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail(strformat("invalid escape '\\%c'", esc));
            }
        }
    }

    const std::string &text;
    std::size_t pos = 0;
    std::vector<std::size_t> lineStarts;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    fatalIf(v == nullptr, "missing JSON object key '" + key + "'");
    return *v;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace mbs
