/**
 * @file
 * Portable 4-wide double SIMD shim with a bit-identical scalar twin.
 *
 * Every kernel here is defined once, as a template over a 4-lane pack
 * type, and instantiated twice: with the native vector pack (SSE2 on
 * x86-64, NEON on aarch64) and with ScalarPack, a plain struct of four
 * doubles whose operations replicate the vector semantics lane for
 * lane — including the reduction order ((l0+l2)+(l1+l3), the natural
 * order of a two-register horizontal add) and the (a<b)?a:b min/max
 * selection rule of _mm_min_pd/_mm_max_pd. Because IEEE-754 lane
 * arithmetic is deterministic and both instantiations execute the
 * same operations in the same order, the two backends produce
 * byte-identical results for every input, NaN and Inf included.
 *
 * That property is the repo's scalar-identity contract: running any
 * pipeline with MBS_SIMD=off must byte-compare clean against the
 * vector run, which CI enforces. The environment switch is read once
 * per process; tests can override it with forceBackendForTest().
 *
 * Kernels deliberately accept unaligned pointers (loadu everywhere):
 * callers batch rows out of flat matrices whose stride is not a lane
 * multiple, and the cost of unaligned loads on every target this
 * builds for is nil.
 */

#ifndef MBS_COMMON_SIMD_HH
#define MBS_COMMON_SIMD_HH

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define MBS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || defined(_M_ARM64)
#define MBS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mbs {
namespace simd {

/** Lane count of the shim's packs. */
constexpr std::size_t kLanes = 4;

/**
 * The portable twin: four named doubles with vector-identical
 * semantics. Also the only backend on targets without SSE2/NEON.
 */
struct ScalarPack
{
    double l0, l1, l2, l3;

    static ScalarPack zero() { return {0.0, 0.0, 0.0, 0.0}; }
    static ScalarPack broadcast(double v) { return {v, v, v, v}; }
    /** {b, b+1, b+2, b+3}; exact for integral b below 2^52. */
    static ScalarPack indexBase(double b)
    {
        return {b, b + 1.0, b + 2.0, b + 3.0};
    }
    static ScalarPack load(const double *p)
    {
        return {p[0], p[1], p[2], p[3]};
    }
    void store(double *p) const
    {
        p[0] = l0;
        p[1] = l1;
        p[2] = l2;
        p[3] = l3;
    }

    static ScalarPack add(ScalarPack a, ScalarPack b)
    {
        return {a.l0 + b.l0, a.l1 + b.l1, a.l2 + b.l2, a.l3 + b.l3};
    }
    static ScalarPack sub(ScalarPack a, ScalarPack b)
    {
        return {a.l0 - b.l0, a.l1 - b.l1, a.l2 - b.l2, a.l3 - b.l3};
    }
    static ScalarPack mul(ScalarPack a, ScalarPack b)
    {
        return {a.l0 * b.l0, a.l1 * b.l1, a.l2 * b.l2, a.l3 * b.l3};
    }
    static ScalarPack div(ScalarPack a, ScalarPack b)
    {
        return {a.l0 / b.l0, a.l1 / b.l1, a.l2 / b.l2, a.l3 / b.l3};
    }
    /** (a<b)?a:b per lane — _mm_min_pd's exact selection rule. */
    static ScalarPack min(ScalarPack a, ScalarPack b)
    {
        return {a.l0 < b.l0 ? a.l0 : b.l0, a.l1 < b.l1 ? a.l1 : b.l1,
                a.l2 < b.l2 ? a.l2 : b.l2, a.l3 < b.l3 ? a.l3 : b.l3};
    }
    /** (a>b)?a:b per lane — _mm_max_pd's exact selection rule. */
    static ScalarPack max(ScalarPack a, ScalarPack b)
    {
        return {a.l0 > b.l0 ? a.l0 : b.l0, a.l1 > b.l1 ? a.l1 : b.l1,
                a.l2 > b.l2 ? a.l2 : b.l2, a.l3 > b.l3 ? a.l3 : b.l3};
    }
    /** Clear the sign bit per lane (NaN payloads preserved). */
    static ScalarPack abs(ScalarPack a)
    {
        return {absLane(a.l0), absLane(a.l1), absLane(a.l2),
                absLane(a.l3)};
    }

    double reduceAdd() const { return (l0 + l2) + (l1 + l3); }
    double reduceMin() const
    {
        const double a = l0 < l2 ? l0 : l2;
        const double b = l1 < l3 ? l1 : l3;
        return a < b ? a : b;
    }
    double reduceMax() const
    {
        const double a = l0 > l2 ? l0 : l2;
        const double b = l1 > l3 ? l1 : l3;
        return a > b ? a : b;
    }

    static std::size_t countGreater(ScalarPack a, ScalarPack t)
    {
        return std::size_t(a.l0 > t.l0) + std::size_t(a.l1 > t.l1) +
               std::size_t(a.l2 > t.l2) + std::size_t(a.l3 > t.l3);
    }
    static bool anyLessEqual(ScalarPack a, ScalarPack b)
    {
        return a.l0 <= b.l0 || a.l1 <= b.l1 || a.l2 <= b.l2 ||
               a.l3 <= b.l3;
    }
    static bool allEqual(ScalarPack a, ScalarPack b)
    {
        return a.l0 == b.l0 && a.l1 == b.l1 && a.l2 == b.l2 &&
               a.l3 == b.l3;
    }

  private:
    static double absLane(double v)
    {
        // std::fabs is specified as a sign-bit clear; spell it out so
        // the twin cannot diverge from the vector and-mask even for
        // NaN payloads.
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(v));
        bits &= ~(std::uint64_t(1) << 63);
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

#if MBS_SIMD_SSE2

/** Two __m128d registers: lo = {l0, l1}, hi = {l2, l3}. */
struct VectorPack
{
    __m128d lo, hi;

    static VectorPack zero()
    {
        return {_mm_setzero_pd(), _mm_setzero_pd()};
    }
    static VectorPack broadcast(double v)
    {
        return {_mm_set1_pd(v), _mm_set1_pd(v)};
    }
    static VectorPack indexBase(double b)
    {
        return {_mm_set_pd(b + 1.0, b),
                _mm_set_pd(b + 3.0, b + 2.0)};
    }
    static VectorPack load(const double *p)
    {
        return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
    }
    void store(double *p) const
    {
        _mm_storeu_pd(p, lo);
        _mm_storeu_pd(p + 2, hi);
    }

    static VectorPack add(VectorPack a, VectorPack b)
    {
        return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
    }
    static VectorPack sub(VectorPack a, VectorPack b)
    {
        return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
    }
    static VectorPack mul(VectorPack a, VectorPack b)
    {
        return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
    }
    static VectorPack div(VectorPack a, VectorPack b)
    {
        return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
    }
    static VectorPack min(VectorPack a, VectorPack b)
    {
        return {_mm_min_pd(a.lo, b.lo), _mm_min_pd(a.hi, b.hi)};
    }
    static VectorPack max(VectorPack a, VectorPack b)
    {
        return {_mm_max_pd(a.lo, b.lo), _mm_max_pd(a.hi, b.hi)};
    }
    static VectorPack abs(VectorPack a)
    {
        const __m128d mask =
            _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
        return {_mm_and_pd(a.lo, mask), _mm_and_pd(a.hi, mask)};
    }

    double reduceAdd() const
    {
        const __m128d s = _mm_add_pd(lo, hi); // {l0+l2, l1+l3}
        return _mm_cvtsd_f64(
            _mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    }
    double reduceMin() const
    {
        const __m128d s = _mm_min_pd(lo, hi);
        return _mm_cvtsd_f64(
            _mm_min_sd(s, _mm_unpackhi_pd(s, s)));
    }
    double reduceMax() const
    {
        const __m128d s = _mm_max_pd(lo, hi);
        return _mm_cvtsd_f64(
            _mm_max_sd(s, _mm_unpackhi_pd(s, s)));
    }

    static std::size_t countGreater(VectorPack a, VectorPack t)
    {
        const int m = _mm_movemask_pd(_mm_cmpgt_pd(a.lo, t.lo)) |
                      (_mm_movemask_pd(_mm_cmpgt_pd(a.hi, t.hi)) << 2);
        return std::size_t(__builtin_popcount(unsigned(m)));
    }
    static bool anyLessEqual(VectorPack a, VectorPack b)
    {
        return (_mm_movemask_pd(_mm_cmple_pd(a.lo, b.lo)) |
                _mm_movemask_pd(_mm_cmple_pd(a.hi, b.hi))) != 0;
    }
    static bool allEqual(VectorPack a, VectorPack b)
    {
        return _mm_movemask_pd(_mm_cmpeq_pd(a.lo, b.lo)) == 0x3 &&
               _mm_movemask_pd(_mm_cmpeq_pd(a.hi, b.hi)) == 0x3;
    }
};

#elif MBS_SIMD_NEON

/** Two float64x2_t registers: lo = {l0, l1}, hi = {l2, l3}. */
struct VectorPack
{
    float64x2_t lo, hi;

    static VectorPack zero()
    {
        return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
    }
    static VectorPack broadcast(double v)
    {
        return {vdupq_n_f64(v), vdupq_n_f64(v)};
    }
    static VectorPack indexBase(double b)
    {
        const double v[4] = {b, b + 1.0, b + 2.0, b + 3.0};
        return load(v);
    }
    static VectorPack load(const double *p)
    {
        return {vld1q_f64(p), vld1q_f64(p + 2)};
    }
    void store(double *p) const
    {
        vst1q_f64(p, lo);
        vst1q_f64(p + 2, hi);
    }

    static VectorPack add(VectorPack a, VectorPack b)
    {
        return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
    }
    static VectorPack sub(VectorPack a, VectorPack b)
    {
        return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
    }
    static VectorPack mul(VectorPack a, VectorPack b)
    {
        return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
    }
    static VectorPack div(VectorPack a, VectorPack b)
    {
        return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
    }
    // vminq/vmaxq_f64 return NaN when either lane is NaN, which is
    // NOT _mm_min_pd's rule; select explicitly so all three backends
    // share the (a<b)?a:b semantics.
    static VectorPack min(VectorPack a, VectorPack b)
    {
        return {vbslq_f64(vcltq_f64(a.lo, b.lo), a.lo, b.lo),
                vbslq_f64(vcltq_f64(a.hi, b.hi), a.hi, b.hi)};
    }
    static VectorPack max(VectorPack a, VectorPack b)
    {
        return {vbslq_f64(vcgtq_f64(a.lo, b.lo), a.lo, b.lo),
                vbslq_f64(vcgtq_f64(a.hi, b.hi), a.hi, b.hi)};
    }
    static VectorPack abs(VectorPack a)
    {
        return {vabsq_f64(a.lo), vabsq_f64(a.hi)};
    }

    double reduceAdd() const
    {
        const float64x2_t s = vaddq_f64(lo, hi);
        return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
    }
    double reduceMin() const
    {
        const VectorPack s = min(*this, {hi, lo});
        const double a = vgetq_lane_f64(s.lo, 0);
        const double b = vgetq_lane_f64(s.lo, 1);
        return a < b ? a : b;
    }
    double reduceMax() const
    {
        const VectorPack s = max(*this, {hi, lo});
        const double a = vgetq_lane_f64(s.lo, 0);
        const double b = vgetq_lane_f64(s.lo, 1);
        return a > b ? a : b;
    }

    static std::size_t countGreater(VectorPack a, VectorPack t)
    {
        const uint64x2_t glo = vcgtq_f64(a.lo, t.lo);
        const uint64x2_t ghi = vcgtq_f64(a.hi, t.hi);
        return std::size_t(vgetq_lane_u64(glo, 0) >> 63) +
               std::size_t(vgetq_lane_u64(glo, 1) >> 63) +
               std::size_t(vgetq_lane_u64(ghi, 0) >> 63) +
               std::size_t(vgetq_lane_u64(ghi, 1) >> 63);
    }
    static bool anyLessEqual(VectorPack a, VectorPack b)
    {
        const uint64x2_t l = vcleq_f64(a.lo, b.lo);
        const uint64x2_t h = vcleq_f64(a.hi, b.hi);
        return (vgetq_lane_u64(l, 0) | vgetq_lane_u64(l, 1) |
                vgetq_lane_u64(h, 0) | vgetq_lane_u64(h, 1)) != 0;
    }
    static bool allEqual(VectorPack a, VectorPack b)
    {
        const uint64x2_t l = vceqq_f64(a.lo, b.lo);
        const uint64x2_t h = vceqq_f64(a.hi, b.hi);
        return (vgetq_lane_u64(l, 0) & vgetq_lane_u64(l, 1) &
                vgetq_lane_u64(h, 0) & vgetq_lane_u64(h, 1)) != 0;
    }
};

#else

using VectorPack = ScalarPack;

#endif

/** True when a native vector backend was compiled in. */
constexpr bool
vectorCompiled()
{
#if MBS_SIMD_SSE2 || MBS_SIMD_NEON
    return true;
#else
    return false;
#endif
}

/** ISA of the compiled vector backend. */
constexpr const char *
vectorIsa()
{
#if MBS_SIMD_SSE2
    return "sse2";
#elif MBS_SIMD_NEON
    return "neon";
#else
    return "scalar";
#endif
}

namespace detail {

/** -1 = follow MBS_SIMD, 0 = force scalar, 1 = force vector. */
inline std::atomic<int> &
backendOverride()
{
    static std::atomic<int> mode{-1};
    return mode;
}

inline bool
envDisablesSimd()
{
    static const bool off = [] {
        const char *v = std::getenv("MBS_SIMD");
        if (v == nullptr)
            return false;
        return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
               std::strcmp(v, "scalar") == 0 ||
               std::strcmp(v, "false") == 0;
    }();
    return off;
}

} // namespace detail

/**
 * True when kernels dispatch to the native vector backend.
 * Controlled by MBS_SIMD (off/0/scalar/false disable, read once per
 * process) and, in tests, by forceBackendForTest().
 */
inline bool
enabled()
{
    const int mode = detail::backendOverride().load(
        std::memory_order_relaxed);
    if (mode >= 0)
        return mode == 1 && vectorCompiled();
    return vectorCompiled() && !detail::envDisablesSimd();
}

/**
 * Test hook: -1 restores MBS_SIMD dispatch, 0 forces the scalar
 * twin, 1 forces the vector backend (no-op without one compiled).
 */
inline void
forceBackendForTest(int mode)
{
    detail::backendOverride().store(mode, std::memory_order_relaxed);
}

/** Active backend name, for diagnostics (never printed in reports). */
inline const char *
activeBackendName()
{
    return enabled() ? vectorIsa() : "scalar";
}

namespace detail {

template <class P>
inline double
sumT(const double *p, std::size_t n)
{
    P acc = P::zero();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        acc = P::add(acc, P::load(p + i));
    double total = acc.reduceAdd();
    for (; i < n; ++i)
        total += p[i];
    return total;
}

template <class P>
inline void
sum2T(const double *x, const double *y, std::size_t n, double &sx,
      double &sy)
{
    P ax = P::zero(), ay = P::zero();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        ax = P::add(ax, P::load(x + i));
        ay = P::add(ay, P::load(y + i));
    }
    double tx = ax.reduceAdd(), ty = ay.reduceAdd();
    for (; i < n; ++i) {
        tx += x[i];
        ty += y[i];
    }
    sx = tx;
    sy = ty;
}

template <class P>
inline double
sumSqDiffT(const double *a, const double *b, std::size_t n)
{
    P acc = P::zero();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const P d = P::sub(P::load(a + i), P::load(b + i));
        acc = P::add(acc, P::mul(d, d));
    }
    double total = acc.reduceAdd();
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

template <class P>
inline double
sumAbsDiffT(const double *a, const double *b, std::size_t n)
{
    P acc = P::zero();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        acc = P::add(acc,
                     P::abs(P::sub(P::load(a + i), P::load(b + i))));
    }
    double total = acc.reduceAdd();
    for (; i < n; ++i)
        total += std::fabs(a[i] - b[i]);
    return total;
}

template <class P>
inline void
pearsonMomentsT(const double *x, const double *y, std::size_t n,
                double mx, double my, double &sxy, double &sxx,
                double &syy)
{
    P axy = P::zero(), axx = P::zero(), ayy = P::zero();
    const P vmx = P::broadcast(mx), vmy = P::broadcast(my);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const P dx = P::sub(P::load(x + i), vmx);
        const P dy = P::sub(P::load(y + i), vmy);
        axy = P::add(axy, P::mul(dx, dy));
        axx = P::add(axx, P::mul(dx, dx));
        ayy = P::add(ayy, P::mul(dy, dy));
    }
    double txy = axy.reduceAdd();
    double txx = axx.reduceAdd();
    double tyy = ayy.reduceAdd();
    for (; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        txy += dx * dy;
        txx += dx * dx;
        tyy += dy * dy;
    }
    sxy = txy;
    sxx = txx;
    syy = tyy;
}

template <class P>
inline double
minT(const double *p, std::size_t n)
{
    std::size_t i = 1;
    double m = p[0];
    if (n >= kLanes) {
        P acc = P::load(p);
        for (i = kLanes; i + kLanes <= n; i += kLanes)
            acc = P::min(acc, P::load(p + i));
        m = acc.reduceMin();
    }
    for (; i < n; ++i)
        m = p[i] < m ? p[i] : m;
    return m;
}

template <class P>
inline double
maxT(const double *p, std::size_t n)
{
    std::size_t i = 1;
    double m = p[0];
    if (n >= kLanes) {
        P acc = P::load(p);
        for (i = kLanes; i + kLanes <= n; i += kLanes)
            acc = P::max(acc, P::load(p + i));
        m = acc.reduceMax();
    }
    for (; i < n; ++i)
        m = p[i] > m ? p[i] : m;
    return m;
}

template <class P>
inline std::size_t
countGreaterT(const double *p, std::size_t n, double threshold)
{
    const P t = P::broadcast(threshold);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        count += P::countGreater(P::load(p + i), t);
    for (; i < n; ++i)
        count += std::size_t(p[i] > threshold);
    return count;
}

template <class P>
inline void
addAssignT(double *dst, const double *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        P::add(P::load(dst + i), P::load(src + i)).store(dst + i);
    for (; i < n; ++i)
        dst[i] += src[i];
}

template <class P>
inline void
divScalarT(double *dst, const double *src, std::size_t n, double denom)
{
    const P d = P::broadcast(denom);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        P::div(P::load(src + i), d).store(dst + i);
    for (; i < n; ++i)
        dst[i] = src[i] / denom;
}

template <class P>
inline void
subBaselineClampT(double *dst, const double *src, std::size_t n,
                  double baseline)
{
    const P b = P::broadcast(baseline);
    const P zero = P::zero();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        // max(diff, 0) with the diff first: matches
        // std::max(0.0, d)'s result for -0.0 and NaN alike.
        P::max(P::sub(P::load(src + i), b), zero).store(dst + i);
    }
    for (; i < n; ++i) {
        const double d = src[i] - baseline;
        dst[i] = d > 0.0 ? d : 0.0;
    }
}

template <class P>
inline bool
anyNonIncreasingT(const double *p, std::size_t n)
{
    if (n < 2)
        return false;
    std::size_t i = 1;
    for (; i + kLanes <= n; i += kLanes) {
        if (P::anyLessEqual(P::load(p + i), P::load(p + i - 1)))
            return true;
    }
    for (; i < n; ++i) {
        if (p[i] <= p[i - 1])
            return true;
    }
    return false;
}

template <class P>
inline bool
onUniformGridT(const double *p, std::size_t n, double tick)
{
    const P t = P::broadcast(tick);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const P expect = P::mul(P::indexBase(double(i)), t);
        if (!P::allEqual(P::load(p + i), expect))
            return false;
    }
    for (; i < n; ++i) {
        if (p[i] != double(i) * tick)
            return false;
    }
    return true;
}

} // namespace detail

/** Lane-ordered sum of @p n doubles (0 for n == 0). */
inline double
sum(const double *p, std::size_t n)
{
    return enabled() ? detail::sumT<VectorPack>(p, n)
                     : detail::sumT<ScalarPack>(p, n);
}

/** Two sums in one sweep (for paired-sample means). */
inline void
sum2(const double *x, const double *y, std::size_t n, double &sx,
     double &sy)
{
    if (enabled())
        detail::sum2T<VectorPack>(x, y, n, sx, sy);
    else
        detail::sum2T<ScalarPack>(x, y, n, sx, sy);
}

/** Sum of squared element differences (squared Euclidean distance). */
inline double
sumSqDiff(const double *a, const double *b, std::size_t n)
{
    return enabled() ? detail::sumSqDiffT<VectorPack>(a, b, n)
                     : detail::sumSqDiffT<ScalarPack>(a, b, n);
}

/** Sum of absolute element differences (Manhattan distance). */
inline double
sumAbsDiff(const double *a, const double *b, std::size_t n)
{
    return enabled() ? detail::sumAbsDiffT<VectorPack>(a, b, n)
                     : detail::sumAbsDiffT<ScalarPack>(a, b, n);
}

/** Centered second moments sxy/sxx/syy about (mx, my). */
inline void
pearsonMoments(const double *x, const double *y, std::size_t n,
               double mx, double my, double &sxy, double &sxx,
               double &syy)
{
    if (enabled()) {
        detail::pearsonMomentsT<VectorPack>(x, y, n, mx, my, sxy, sxx,
                                            syy);
    } else {
        detail::pearsonMomentsT<ScalarPack>(x, y, n, mx, my, sxy, sxx,
                                            syy);
    }
}

/** Smallest of @p n doubles under the (a<b)?a:b rule. @pre n >= 1. */
inline double
minValue(const double *p, std::size_t n)
{
    return enabled() ? detail::minT<VectorPack>(p, n)
                     : detail::minT<ScalarPack>(p, n);
}

/** Largest of @p n doubles under the (a>b)?a:b rule. @pre n >= 1. */
inline double
maxValue(const double *p, std::size_t n)
{
    return enabled() ? detail::maxT<VectorPack>(p, n)
                     : detail::maxT<ScalarPack>(p, n);
}

/** Count of elements strictly greater than @p threshold. */
inline std::size_t
countGreater(const double *p, std::size_t n, double threshold)
{
    return enabled() ? detail::countGreaterT<VectorPack>(p, n, threshold)
                     : detail::countGreaterT<ScalarPack>(p, n,
                                                         threshold);
}

/** dst[i] += src[i] for i in [0, n). */
inline void
addAssign(double *dst, const double *src, std::size_t n)
{
    if (enabled())
        detail::addAssignT<VectorPack>(dst, src, n);
    else
        detail::addAssignT<ScalarPack>(dst, src, n);
}

/** dst[i] = src[i] / denom (dst may alias src). */
inline void
divScalar(double *dst, const double *src, std::size_t n, double denom)
{
    if (enabled())
        detail::divScalarT<VectorPack>(dst, src, n, denom);
    else
        detail::divScalarT<ScalarPack>(dst, src, n, denom);
}

/** dst[i] = max(src[i] - baseline, 0) (dst may alias src). */
inline void
subBaselineClamp(double *dst, const double *src, std::size_t n,
                 double baseline)
{
    if (enabled())
        detail::subBaselineClampT<VectorPack>(dst, src, n, baseline);
    else
        detail::subBaselineClampT<ScalarPack>(dst, src, n, baseline);
}

/** True when any p[i] <= p[i-1] (monotonicity violation scan). */
inline bool
anyNonIncreasing(const double *p, std::size_t n)
{
    return enabled() ? detail::anyNonIncreasingT<VectorPack>(p, n)
                     : detail::anyNonIncreasingT<ScalarPack>(p, n);
}

/** True when p[k] == k * tick exactly for every k in [0, n). */
inline bool
onUniformGrid(const double *p, std::size_t n, double tick)
{
    return enabled() ? detail::onUniformGridT<VectorPack>(p, n, tick)
                     : detail::onUniformGridT<ScalarPack>(p, n, tick);
}

} // namespace simd
} // namespace mbs

#endif // MBS_COMMON_SIMD_HH
