#include "units.hh"

#include <cstdio>

namespace mbs {
namespace units {

namespace {

std::string
format(const char *fmt, double value, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value, suffix);
    return buf;
}

} // namespace

std::string
formatBytes(std::uint64_t bytes)
{
    if (bytes >= GiB)
        return format("%.1f %s", double(bytes) / double(GiB), "GB");
    if (bytes >= MiB)
        return format("%.1f %s", double(bytes) / double(MiB), "MB");
    if (bytes >= KiB)
        return format("%.0f %s", double(bytes) / double(KiB), "KB");
    return format("%.0f %s", double(bytes), "B");
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 120.0)
        return format("%.1f %s", seconds / 60.0, "min");
    return format("%.1f %s", seconds, "s");
}

std::string
formatHz(double hz)
{
    if (hz >= giga)
        return format("%.2f %s", hz / giga, "GHz");
    if (hz >= mega)
        return format("%.0f %s", hz / mega, "MHz");
    return format("%.0f %s", hz, "Hz");
}

std::string
formatCount(double count)
{
    if (count >= giga)
        return format("%.1f %s", count / giga, "B");
    if (count >= mega)
        return format("%.1f %s", count / mega, "M");
    if (count >= kilo)
        return format("%.1f %s", count / kilo, "K");
    return format("%.0f%s", count, "");
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace units
} // namespace mbs
