#include "logging.hh"

#include <cstdio>

namespace mbs {

namespace {

LogLevel globalLevel = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debug(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("internal error: " + msg);
}

} // namespace mbs
