#include "logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mbs {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};
std::atomic<bool> globalTimestamps{false};

/** Monotonic origin for log timestamps (first use of the logger). */
std::chrono::steady_clock::time_point
logEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

void
emit(const char *tag, const std::string &msg)
{
    if (globalTimestamps.load(std::memory_order_relaxed)) {
        const double elapsed = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - logEpoch()).count();
        std::lock_guard<std::mutex> lock(logSinkMutex());
        std::fprintf(stderr, "[%10.3fs] %s: %s\n", elapsed, tag,
                     msg.c_str());
    } else {
        std::lock_guard<std::mutex> lock(logSinkMutex());
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    }
}

} // namespace

std::mutex &
logSinkMutex()
{
    static std::mutex m;
    return m;
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool enabled)
{
    if (enabled)
        logEpoch(); // pin the origin no later than enable time
    globalTimestamps.store(enabled, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return globalTimestamps.load(std::memory_order_relaxed);
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        emit("info", msg);
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emit("warn", msg);
}

void
debug(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emit("debug", msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("internal error: " + msg);
}

} // namespace mbs
