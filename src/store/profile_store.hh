/**
 * @file
 * Content-addressed on-disk profile store.
 *
 * Implements the profiler's ProfileCache interface by memoizing
 * serialized profiling results in a directory. Entries are addressed
 * purely by content identity — the FNV-1a digest of the ProfileKey
 * (SoC config digest, benchmark phase-table digest, seed, runs,
 * sampling cadence) names the file — so a warm run of an unchanged
 * configuration skips simulation entirely while producing the exact
 * bytes a cold run would.
 *
 * Robustness: writes go to a temporary file that is renamed into
 * place (readers never see partial entries), and any unreadable,
 * truncated, corrupt or version-mismatched entry is evicted and
 * treated as a miss. IO errors are retried with exponential backoff
 * (kIoAttempts tries); an entry whose reads keep failing is
 * quarantined — later loads bypass it (recomputation wins over a
 * flapping cache slot) and saves stop rewriting it. A failed save
 * degrades to a warning rather than killing the run: the cache is an
 * accelerator, never a correctness dependency. Observability:
 * `store.hits`, `store.misses`, `store.evictions`,
 * `store.quarantined` and `store.write_failures` counters, a
 * `store.entry_bytes` histogram and per-operation spans via src/obs.
 */

#ifndef MBS_STORE_PROFILE_STORE_HH
#define MBS_STORE_PROFILE_STORE_HH

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "profiler/profile_cache.hh"
#include "profiler/session.hh"

namespace mbs {

/** A directory of memoized profiling results. */
class ProfileStore : public ProfileCache
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p directory;
     * fatal() when the directory cannot be created.
     */
    explicit ProfileStore(const std::filesystem::path &directory);

    std::optional<std::vector<BenchmarkProfile>>
    load(const ProfileKey &key) override;

    void save(const ProfileKey &key,
              const std::vector<BenchmarkProfile> &profiles) override;

    /** Aggregate numbers for `mobilebench cache stats`. */
    struct Stats
    {
        std::size_t entries = 0;
        std::uint64_t bytes = 0;
    };
    Stats stats() const;

    /** Delete every entry. @return the number of entries removed. */
    std::size_t clear();

    const std::filesystem::path &directory() const { return root; }

    /** The digest that names @p key's entry file. */
    static std::uint64_t keyDigest(const ProfileKey &key);

    /** Is @p key's entry quarantined (loads bypass, saves skip)? */
    bool quarantined(const ProfileKey &key) const;

    /** IO attempts per load/save before giving up (1 + retries). */
    static constexpr int kIoAttempts = 3;
    /** Read failures of one entry before it is quarantined. */
    static constexpr int kQuarantineThreshold = 2;

  private:
    std::filesystem::path entryPath(const ProfileKey &key) const;

    /**
     * Record a failed read of @p digest's entry; quarantine it once
     * the failure count reaches kQuarantineThreshold.
     */
    void noteReadFailure(std::uint64_t digest);

    std::filesystem::path root;

    mutable std::mutex quarantineMtx;
    std::map<std::uint64_t, int> readFailures;
    std::set<std::uint64_t> quarantineSet;

    /**
     * Entries whose checksum this process has already verified, with
     * the (size, mtime) the file had at verification. A warm hit
     * whose file is unchanged skips re-deriving the checksum; any
     * size/mtime drift or a save through this store re-verifies.
     */
    struct VerifiedEntry
    {
        std::uint64_t bytes;
        std::uint64_t mtimeNs;
    };
    mutable std::mutex verifiedMtx;
    std::map<std::uint64_t, VerifiedEntry> verifiedEntries;
};

} // namespace mbs

#endif // MBS_STORE_PROFILE_STORE_HH
