/**
 * @file
 * Content-addressed on-disk profile store.
 *
 * Implements the profiler's ProfileCache interface by memoizing
 * serialized profiling results in a directory. Entries are addressed
 * purely by content identity — the FNV-1a digest of the ProfileKey
 * (SoC config digest, benchmark phase-table digest, seed, runs,
 * sampling cadence) names the file — so a warm run of an unchanged
 * configuration skips simulation entirely while producing the exact
 * bytes a cold run would.
 *
 * Robustness: writes go to a temporary file that is renamed into
 * place (readers never see partial entries), and any unreadable,
 * truncated, corrupt or version-mismatched entry is evicted and
 * treated as a miss. Observability: `store.hits`, `store.misses`
 * and `store.evictions` counters, a `store.entry_bytes` histogram
 * and per-operation spans via src/obs.
 */

#ifndef MBS_STORE_PROFILE_STORE_HH
#define MBS_STORE_PROFILE_STORE_HH

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "profiler/profile_cache.hh"
#include "profiler/session.hh"

namespace mbs {

/** A directory of memoized profiling results. */
class ProfileStore : public ProfileCache
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p directory;
     * fatal() when the directory cannot be created.
     */
    explicit ProfileStore(const std::filesystem::path &directory);

    std::optional<std::vector<BenchmarkProfile>>
    load(const ProfileKey &key) override;

    void save(const ProfileKey &key,
              const std::vector<BenchmarkProfile> &profiles) override;

    /** Aggregate numbers for `mobilebench cache stats`. */
    struct Stats
    {
        std::size_t entries = 0;
        std::uint64_t bytes = 0;
    };
    Stats stats() const;

    /** Delete every entry. @return the number of entries removed. */
    std::size_t clear();

    const std::filesystem::path &directory() const { return root; }

    /** The digest that names @p key's entry file. */
    static std::uint64_t keyDigest(const ProfileKey &key);

  private:
    std::filesystem::path entryPath(const ProfileKey &key) const;

    std::filesystem::path root;
};

} // namespace mbs

#endif // MBS_STORE_PROFILE_STORE_HH
