/**
 * @file
 * Atomic write-then-rename with retries: the durability idiom the
 * profile store established, factored out so every on-disk artifact
 * family (store entries, ledger records) publishes files the same
 * way. A reader never sees a partial file — it either finds the
 * complete old bytes or the complete new bytes.
 *
 * Fault-injection sites are parameters rather than hard-coded so
 * each caller keeps its own site names (`store.write`/`store.rename`
 * for the profile store); callers outside an armed fault plan pass
 * nothing and get plain filesystem behaviour.
 */

#ifndef MBS_STORE_ATOMIC_WRITE_HH
#define MBS_STORE_ATOMIC_WRITE_HH

#include <filesystem>
#include <string>

namespace mbs {

struct AtomicWriteOptions
{
    /** Total tries (1 + retries), with exponential backoff between. */
    int attempts = 3;
    /** fault::check() site consulted before each write; "" = none. */
    std::string writeFaultSite;
    /** fault::check() site consulted before each rename; "" = none. */
    std::string renameFaultSite;
    /**
     * Publish with link(2) instead of rename(2): fails (with
     * `existed` set, no retry) when the target already exists
     * instead of silently replacing it. Claiming a slot that
     * exactly one concurrent writer may own — a ledger sequence
     * number — needs this; plain overwrite-is-fine artifacts do
     * not. The temp file name embeds the pid so two processes
     * racing for the same slot never share a staging file.
     */
    bool exclusive = false;
};

struct AtomicWriteResult
{
    bool ok = false;
    /** Tries consumed; > 1 on success means a retry recovered it. */
    int attemptsUsed = 0;
    /** Last failure message when !ok. */
    std::string error;
    /** Exclusive publish lost the race: the target already exists. */
    bool existed = false;
};

/**
 * Write @p bytes to `<path>.tmp` and rename it onto @p path,
 * retrying with backoff. Never throws for IO failures; the caller
 * decides whether a lost file is fatal.
 */
AtomicWriteResult
atomicWriteFile(const std::filesystem::path &path,
                const std::string &bytes,
                const AtomicWriteOptions &options = {});

} // namespace mbs

#endif // MBS_STORE_ATOMIC_WRITE_HH
