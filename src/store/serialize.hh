/**
 * @file
 * Versioned binary (de)serialization of profiling results.
 *
 * The format is deliberately simple and fully self-validating:
 *
 *   u64  magic              ("MBSPROF1" as little-endian bytes)
 *   u32  format version     (profileFormatVersion)
 *   key  socDigest, benchDigest, seed (u64), runs (i32),
 *        tickSeconds (f64)
 *   u32  profile count
 *   per profile:
 *     str  name, suite      (u32 length + raw bytes)
 *     f64  runtimeSeconds, instructions, ipc, cacheMpki, branchMpki
 *     u32  series count
 *     per series: f64 interval, u64 sample count, f64 samples...
 *   u64  FNV-1a checksum of every preceding byte
 *
 * Deserialization re-derives the checksum and verifies magic,
 * version, the embedded key and all length fields; any mismatch or
 * truncation yields nullopt, which the store treats as a cache miss.
 * Doubles are raw IEEE-754 bytes, so a round trip is bit-exact — a
 * warm cache reproduces a cold run's report byte for byte.
 */

#ifndef MBS_STORE_SERIALIZE_HH
#define MBS_STORE_SERIALIZE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "profiler/profile_cache.hh"
#include "profiler/session.hh"

namespace mbs {

/** Bumped whenever the entry layout or MetricSeries shape changes. */
constexpr std::uint32_t profileFormatVersion = 1;

/** Encode @p profiles (with their identity @p key) into entry bytes. */
std::string serializeProfiles(const ProfileKey &key,
                              const std::vector<BenchmarkProfile> &profiles);

/**
 * Should deserialization re-derive the trailing FNV-1a checksum?
 * Trust skips the re-derivation (every structural check still runs);
 * the store uses it for entries whose checksum it has already
 * verified this process and that are unchanged on disk.
 */
enum class ChecksumPolicy { Verify, Trust };

/**
 * Decode entry bytes written by serializeProfiles. The view overload
 * reads in place (e.g. over a memory-mapped entry) — sample arrays
 * are bulk-copied out, nothing else is materialized.
 *
 * @return the profiles, or nullopt when the bytes are truncated,
 *         corrupt, of a different format version or keyed for a
 *         different (SoC, benchmark, seed, runs, cadence) identity.
 */
std::optional<std::vector<BenchmarkProfile>>
deserializeProfiles(const ProfileKey &key, std::string_view bytes,
                    ChecksumPolicy checksums = ChecksumPolicy::Verify);

} // namespace mbs

#endif // MBS_STORE_SERIALIZE_HH
