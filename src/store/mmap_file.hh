/**
 * @file
 * Read-only memory-mapped file.
 *
 * The profile store's warm path used to slurp each entry through an
 * ifstream into a heap string before deserializing. Mapping the entry
 * instead hands deserialization a zero-copy view of the page cache;
 * the only copies left are the bulk memcpys into the profiles' own
 * sample buffers.
 */

#ifndef MBS_STORE_MMAP_FILE_HH
#define MBS_STORE_MMAP_FILE_HH

#include <cstdint>
#include <filesystem>
#include <string_view>

namespace mbs {

/**
 * A read-only mapping of one file. Move-only; unmaps on destruction.
 *
 * Opening never throws: a missing or unreadable file simply leaves
 * valid() false, which the store treats as a cache miss.
 */
class MappedFile
{
  public:
    MappedFile() = default;

    /** Map @p path read-only. */
    explicit MappedFile(const std::filesystem::path &path);

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    ~MappedFile();

    /** Did the open + map succeed? (Empty files count as mapped.) */
    bool valid() const { return isValid; }

    /** The mapped bytes; empty when !valid() or the file is empty. */
    std::string_view view() const
    {
        return {static_cast<const char *>(data), length};
    }

    std::size_t size() const { return length; }

    /**
     * Modification time of the file at open, in nanoseconds since
     * the epoch (st_mtim). 0 when !valid().
     */
    std::uint64_t mtimeNs() const { return mtime; }

  private:
    void reset();

    void *data = nullptr;
    std::size_t length = 0;
    std::uint64_t mtime = 0;
    bool isValid = false;
};

} // namespace mbs

#endif // MBS_STORE_MMAP_FILE_HH
