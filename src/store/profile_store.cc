#include "store/profile_store.hh"

#include <chrono>
#include <system_error>
#include <thread>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/atomic_write.hh"
#include "store/mmap_file.hh"
#include "store/serialize.hh"

namespace mbs {

namespace {

struct StoreMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &quarantined;
    obs::Counter &writeFailures;
    obs::Histogram &entryBytes;
};

// Looked up per call, not cached in a function-local static: the
// serve daemon resets the registry between jobs, which would leave
// cached references dangling.
StoreMetrics
storeMetrics()
{
    auto &registry = obs::MetricsRegistry::instance();
    return StoreMetrics{
        registry.counter("store.hits", obs::Volatility::Stable,
                         "Profile-store cache lookups that hit"),
        registry.counter("store.misses", obs::Volatility::Stable,
                         "Profile-store cache lookups that missed"),
        registry.counter("store.evictions", obs::Volatility::Stable,
                         "Entries evicted to enforce the store's "
                         "size budget"),
        registry.counter("store.quarantined", obs::Volatility::Stable,
                         "Corrupt entries moved aside on load"),
        registry.counter("store.write_failures",
                         obs::Volatility::Stable,
                         "Store writes abandoned after retries"),
        registry.histogram("store.entry_bytes",
                           {4096.0, 16384.0, 65536.0, 262144.0,
                            1048576.0, 4194304.0, 16777216.0},
                           obs::Volatility::Stable,
                           "Serialized size of stored profile "
                           "entries in bytes"),
    };
}

const char entrySuffix[] = ".profile";

/** Exponential backoff before retry number @p attempt (1-based). */
void
backoff(int attempt)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 << (attempt - 1)));
}

} // namespace

ProfileStore::ProfileStore(const std::filesystem::path &directory)
    : root(directory)
{
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    fatalIf(bool(ec), "cannot create cache directory '" +
                          root.string() + "': " + ec.message());
    // Touch the instruments so even an unused store exports zeros;
    // CI's warm-run assertion greps for `store.misses` == 0.
    storeMetrics();
}

std::uint64_t
ProfileStore::keyDigest(const ProfileKey &key)
{
    Fnv1a d;
    d.mix(key.socDigest);
    d.mix(key.benchDigest);
    d.mix(key.seed);
    d.mix(key.runs);
    d.mix(key.tickSeconds);
    return d.value();
}

std::filesystem::path
ProfileStore::entryPath(const ProfileKey &key) const
{
    return root / (strformat("%016llx",
                             (unsigned long long)keyDigest(key)) +
                   entrySuffix);
}

bool
ProfileStore::quarantined(const ProfileKey &key) const
{
    std::lock_guard<std::mutex> lock(quarantineMtx);
    return quarantineSet.count(keyDigest(key)) > 0;
}

void
ProfileStore::noteReadFailure(std::uint64_t digest)
{
    std::lock_guard<std::mutex> lock(quarantineMtx);
    if (quarantineSet.count(digest))
        return;
    if (++readFailures[digest] < kQuarantineThreshold)
        return;
    quarantineSet.insert(digest);
    storeMetrics().quarantined.add();
    obs::EventLog::instance().emit(
        "store.quarantine",
        {{"entry", strformat("%016llx", (unsigned long long)digest)},
         {"failures", std::to_string(readFailures[digest])}});
    warn(strformat("cache entry %016llx failed %d reads; "
                   "quarantined (recomputing from now on)",
                   (unsigned long long)digest,
                   readFailures[digest]));
}

std::optional<std::vector<BenchmarkProfile>>
ProfileStore::load(const ProfileKey &key)
{
    const std::filesystem::path path = entryPath(key);
    const obs::ScopedSpan span("store.load", "store",
                               {{"entry", path.filename().string()}});
    StoreMetrics m = storeMetrics();
    auto &injector = fault::Injector::instance();

    // A quarantined entry is bypassed outright: recomputation is
    // cheap and deterministic, a flapping cache slot is neither.
    if (quarantined(key)) {
        m.misses.add();
        obs::EventLog::instance().emit(
            "store.bypass", {{"entry", path.filename().string()},
                             {"reason", "quarantined"}});
        return std::nullopt;
    }

    bool sawInjectedError = false;
    for (int attempt = 1; attempt <= kIoAttempts; ++attempt) {
        const std::optional<fault::Kind> injected =
            fault::check("store.read");
        if (injected == fault::Kind::Error) {
            // A transient read error: back off and retry.
            sawInjectedError = true;
            if (attempt < kIoAttempts) {
                backoff(attempt);
                continue;
            }
            noteReadFailure(keyDigest(key));
            m.misses.add();
            injector.degraded("store.read",
                              "read retries exhausted; recomputing");
            return std::nullopt;
        }

        const MappedFile mapped(path);
        if (!mapped.valid()) {
            // Definitive absence: the normal cold-cache miss.
            m.misses.add();
            obs::EventLog::instance().emit(
                "store.miss", {{"entry", path.filename().string()}});
            if (sawInjectedError)
                injector.recovered("store.read", "retried");
            return std::nullopt;
        }

        const std::uint64_t digest = keyDigest(key);
        std::optional<std::vector<BenchmarkProfile>> profiles;
        bool verifiedNow = false;
        if (injected) {
            // Fault injection rewrites the bytes; materialize a copy
            // the injector can corrupt, and always re-checksum it.
            std::string bytes(mapped.view());
            bytes = injector.mutate(*injected, "store.read",
                                    std::move(bytes));
            profiles = deserializeProfiles(key, bytes,
                                           ChecksumPolicy::Verify);
        } else {
            // Zero-copy decode over the mapping. Skip re-deriving the
            // checksum only when this process already verified these
            // exact bytes (same size and mtime).
            bool trusted = false;
            {
                std::lock_guard<std::mutex> lock(verifiedMtx);
                const auto it = verifiedEntries.find(digest);
                trusted = it != verifiedEntries.end() &&
                          it->second.bytes == mapped.size() &&
                          it->second.mtimeNs == mapped.mtimeNs();
            }
            profiles = deserializeProfiles(
                key, mapped.view(),
                trusted ? ChecksumPolicy::Trust
                        : ChecksumPolicy::Verify);
            verifiedNow = bool(profiles) && !trusted;
        }

        if (!profiles) {
            // Corrupt, truncated or stale-format entry: evict it so
            // the slot is rewritten cleanly after the re-simulation.
            {
                std::lock_guard<std::mutex> lock(verifiedMtx);
                verifiedEntries.erase(digest);
            }
            std::error_code ec;
            std::filesystem::remove(path, ec);
            m.evictions.add();
            m.misses.add();
            obs::EventLog::instance().emit(
                "store.evict", {{"entry", path.filename().string()},
                                {"reason", "corrupt"}});
            noteReadFailure(digest);
            if (injected || sawInjectedError)
                injector.recovered("store.read", "evict+recompute");
            return std::nullopt;
        }
        if (verifiedNow) {
            std::lock_guard<std::mutex> lock(verifiedMtx);
            verifiedEntries[digest] =
                VerifiedEntry{mapped.size(), mapped.mtimeNs()};
        }
        m.hits.add();
        obs::EventLog::instance().emit(
            "store.hit", {{"entry", path.filename().string()}});
        if (sawInjectedError)
            injector.recovered("store.read", "retried");
        return profiles;
    }
    return std::nullopt; // Unreachable; the loop always returns.
}

void
ProfileStore::save(const ProfileKey &key,
                   const std::vector<BenchmarkProfile> &profiles)
{
    const std::filesystem::path path = entryPath(key);
    const obs::ScopedSpan span("store.save", "store",
                               {{"entry", path.filename().string()}});

    // Rewriting a quarantined slot would only re-arm the flapping
    // entry; leave it bypassed for the rest of the run.
    if (quarantined(key)) {
        obs::EventLog::instance().emit(
            "store.save.skip", {{"entry", path.filename().string()},
                                {"reason", "quarantined"}});
        return;
    }

    const std::string bytes = serializeProfiles(key, profiles);
    auto &injector = fault::Injector::instance();

    // Write-then-rename keeps the entry atomic: a concurrent reader
    // either sees the complete old entry or the complete new one.
    AtomicWriteOptions writeOptions;
    writeOptions.attempts = kIoAttempts;
    writeOptions.writeFaultSite = "store.write";
    writeOptions.renameFaultSite = "store.rename";
    const AtomicWriteResult written =
        atomicWriteFile(path, bytes, writeOptions);
    // Whatever happened, the slot's bytes may have changed; the next
    // load must re-verify its checksum.
    {
        std::lock_guard<std::mutex> lock(verifiedMtx);
        verifiedEntries.erase(keyDigest(key));
    }
    if (written.ok) {
        if (written.attemptsUsed > 1)
            injector.recovered("store.write", "retried");
        storeMetrics().entryBytes.observe(double(bytes.size()));
        obs::EventLog::instance().emit(
            "store.save",
            {{"entry", path.filename().string()},
             {"bytes", strformat("%zu", bytes.size())}});
        return;
    }
    const std::string failure = written.error;

    // The store is an accelerator: a failed save costs the next run
    // a recomputation, never this run its results.
    storeMetrics().writeFailures.add();
    if (fault::Injector::instance().active()) {
        injector.degraded("store.write", failure);
    } else {
        warn(strformat("cache save failed after %d attempts "
                       "(continuing uncached): %s",
                       kIoAttempts, failure.c_str()));
        obs::EventLog::instance().emit(
            "store.save.fail",
            {{"entry", path.filename().string()},
             {"error", failure}});
    }
}

ProfileStore::Stats
ProfileStore::stats() const
{
    Stats s;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(root, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != entrySuffix) {
            continue;
        }
        ++s.entries;
        s.bytes += std::uint64_t(entry.file_size());
    }
    return s;
}

std::size_t
ProfileStore::clear()
{
    {
        std::lock_guard<std::mutex> lock(verifiedMtx);
        verifiedEntries.clear();
    }
    std::size_t removed = 0;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(root, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != entrySuffix) {
            continue;
        }
        std::error_code rm;
        if (std::filesystem::remove(entry.path(), rm) && !rm)
            ++removed;
    }
    return removed;
}

} // namespace mbs
