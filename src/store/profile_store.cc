#include "store/profile_store.hh"

#include <fstream>
#include <system_error>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "store/serialize.hh"

namespace mbs {

namespace {

struct StoreMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Histogram &entryBytes;
};

StoreMetrics &
storeMetrics()
{
    auto &registry = obs::MetricsRegistry::instance();
    static StoreMetrics m{
        registry.counter("store.hits"),
        registry.counter("store.misses"),
        registry.counter("store.evictions"),
        registry.histogram("store.entry_bytes",
                           {4096.0, 16384.0, 65536.0, 262144.0,
                            1048576.0, 4194304.0, 16777216.0}),
    };
    return m;
}

const char entrySuffix[] = ".profile";

} // namespace

ProfileStore::ProfileStore(const std::filesystem::path &directory)
    : root(directory)
{
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    fatalIf(bool(ec), "cannot create cache directory '" +
                          root.string() + "': " + ec.message());
    // Touch the instruments so even an unused store exports zeros;
    // CI's warm-run assertion greps for `store.misses` == 0.
    storeMetrics();
}

std::uint64_t
ProfileStore::keyDigest(const ProfileKey &key)
{
    Fnv1a d;
    d.mix(key.socDigest);
    d.mix(key.benchDigest);
    d.mix(key.seed);
    d.mix(key.runs);
    d.mix(key.tickSeconds);
    return d.value();
}

std::filesystem::path
ProfileStore::entryPath(const ProfileKey &key) const
{
    return root / (strformat("%016llx",
                             (unsigned long long)keyDigest(key)) +
                   entrySuffix);
}

std::optional<std::vector<BenchmarkProfile>>
ProfileStore::load(const ProfileKey &key)
{
    const std::filesystem::path path = entryPath(key);
    const obs::ScopedSpan span("store.load", "store",
                               {{"entry", path.filename().string()}});
    StoreMetrics &m = storeMetrics();

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        m.misses.add();
        obs::EventLog::instance().emit(
            "store.miss", {{"entry", path.filename().string()}});
        return std::nullopt;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    auto profiles = deserializeProfiles(key, bytes);
    if (!profiles) {
        // Corrupt, truncated or stale-format entry: evict it so the
        // slot is rewritten cleanly after the re-simulation.
        std::error_code ec;
        std::filesystem::remove(path, ec);
        m.evictions.add();
        m.misses.add();
        obs::EventLog::instance().emit(
            "store.evict", {{"entry", path.filename().string()},
                            {"reason", "corrupt"}});
        return std::nullopt;
    }
    m.hits.add();
    obs::EventLog::instance().emit(
        "store.hit", {{"entry", path.filename().string()}});
    return profiles;
}

void
ProfileStore::save(const ProfileKey &key,
                   const std::vector<BenchmarkProfile> &profiles)
{
    const std::filesystem::path path = entryPath(key);
    const obs::ScopedSpan span("store.save", "store",
                               {{"entry", path.filename().string()}});
    const std::string bytes = serializeProfiles(key, profiles);

    // Write-then-rename keeps the entry atomic: a concurrent reader
    // either sees the complete old entry or the complete new one.
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatalIf(!out, "cannot write cache entry '" + tmp.string() + "'");
        out.write(bytes.data(), std::streamsize(bytes.size()));
        fatalIf(!out.good(),
                "short write to cache entry '" + tmp.string() + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    fatalIf(bool(ec), "cannot publish cache entry '" + path.string() +
                          "': " + ec.message());
    storeMetrics().entryBytes.observe(double(bytes.size()));
    obs::EventLog::instance().emit(
        "store.save", {{"entry", path.filename().string()},
                       {"bytes", strformat("%zu", bytes.size())}});
}

ProfileStore::Stats
ProfileStore::stats() const
{
    Stats s;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(root, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != entrySuffix) {
            continue;
        }
        ++s.entries;
        s.bytes += std::uint64_t(entry.file_size());
    }
    return s;
}

std::size_t
ProfileStore::clear()
{
    std::size_t removed = 0;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(root, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != entrySuffix) {
            continue;
        }
        std::error_code rm;
        if (std::filesystem::remove(entry.path(), rm) && !rm)
            ++removed;
    }
    return removed;
}

} // namespace mbs
