#include "store/serialize.hh"

#include <cstring>

#include "common/digest.hh"

namespace mbs {

namespace {

constexpr std::uint64_t entryMagic = 0x31464F5250534D42ULL; // "BMSPROF1"

/**
 * The entry layout iterates series via forEachMetricSeries
 * (session.hh), the one canonical MetricSeries order shared with the
 * trace-bundle schema, so writer and reader can never disagree.
 */
constexpr std::uint32_t seriesPerProfile =
    std::uint32_t(metricSeriesCount);

/** Little binary writer: appends raw fields to a byte string. */
struct Writer
{
    std::string out;

    void bytes(const void *data, std::size_t n)
    {
        out.append(static_cast<const char *>(data), n);
    }
    void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
    void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
    void f64(double v) { bytes(&v, sizeof(v)); }
    void str(const std::string &s)
    {
        u32(std::uint32_t(s.size()));
        bytes(s.data(), s.size());
    }
};

/** Bounds-checked reader over entry bytes; ok() goes false forever
 *  after the first short read. */
struct Reader
{
    const std::string_view in;
    std::size_t pos = 0;
    bool good = true;

    explicit Reader(std::string_view bytes) : in(bytes) {}

    bool ok() const { return good; }

    bool bytes(void *data, std::size_t n)
    {
        if (!good || in.size() - pos < n) {
            good = false;
            return false;
        }
        std::memcpy(data, in.data() + pos, n);
        pos += n;
        return true;
    }
    std::uint32_t u32()
    {
        std::uint32_t v = 0;
        bytes(&v, sizeof(v));
        return v;
    }
    std::uint64_t u64()
    {
        std::uint64_t v = 0;
        bytes(&v, sizeof(v));
        return v;
    }
    std::int32_t i32()
    {
        std::int32_t v = 0;
        bytes(&v, sizeof(v));
        return v;
    }
    double f64()
    {
        double v = 0.0;
        bytes(&v, sizeof(v));
        return v;
    }
    std::string str()
    {
        const std::uint32_t n = u32();
        if (!good || in.size() - pos < n) {
            good = false;
            return {};
        }
        std::string s(in.data() + pos, n);
        pos += n;
        return s;
    }
};

std::uint64_t
checksumOf(std::string_view payload)
{
    Fnv1a d;
    d.bytes(payload.data(), payload.size());
    return d.value();
}

} // namespace

std::string
serializeProfiles(const ProfileKey &key,
                  const std::vector<BenchmarkProfile> &profiles)
{
    Writer w;
    w.u64(entryMagic);
    w.u32(profileFormatVersion);
    w.u64(key.socDigest);
    w.u64(key.benchDigest);
    w.u64(key.seed);
    w.i32(key.runs);
    w.f64(key.tickSeconds);
    w.u32(std::uint32_t(profiles.size()));
    for (const auto &p : profiles) {
        w.str(p.name);
        w.str(p.suite);
        w.f64(p.runtimeSeconds);
        w.f64(p.instructions);
        w.f64(p.ipc);
        w.f64(p.cacheMpki);
        w.f64(p.branchMpki);
        w.u32(seriesPerProfile);
        forEachMetricSeries(p.series,
                            [&w](const char *, const TimeSeries &s) {
            w.f64(s.interval());
            w.u64(std::uint64_t(s.size()));
            for (double v : s.values())
                w.f64(v);
        });
    }
    w.u64(checksumOf(w.out));
    return std::move(w.out);
}

std::optional<std::vector<BenchmarkProfile>>
deserializeProfiles(const ProfileKey &key, std::string_view bytes,
                    ChecksumPolicy checksums)
{
    if (bytes.size() < sizeof(std::uint64_t))
        return std::nullopt;
    const std::string_view payload =
        bytes.substr(0, bytes.size() - sizeof(std::uint64_t));
    if (checksums == ChecksumPolicy::Verify) {
        std::uint64_t stored_checksum = 0;
        std::memcpy(&stored_checksum, bytes.data() + payload.size(),
                    sizeof(stored_checksum));
        if (checksumOf(payload) != stored_checksum)
            return std::nullopt;
    }

    Reader r(payload);
    if (r.u64() != entryMagic || r.u32() != profileFormatVersion)
        return std::nullopt;
    ProfileKey stored;
    stored.socDigest = r.u64();
    stored.benchDigest = r.u64();
    stored.seed = r.u64();
    stored.runs = r.i32();
    stored.tickSeconds = r.f64();
    if (!r.ok() || !(stored == key))
        return std::nullopt;

    const std::uint32_t count = r.u32();
    std::vector<BenchmarkProfile> profiles;
    profiles.reserve(count);
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        BenchmarkProfile p;
        p.name = r.str();
        p.suite = r.str();
        p.runtimeSeconds = r.f64();
        p.instructions = r.f64();
        p.ipc = r.f64();
        p.cacheMpki = r.f64();
        p.branchMpki = r.f64();
        if (r.u32() != seriesPerProfile) {
            r.good = false;
            break;
        }
        forEachMetricSeries(p.series, [&r](const char *, TimeSeries &s) {
            const double interval = r.f64();
            const std::uint64_t n = r.u64();
            if (!r.ok() ||
                n > (r.in.size() - r.pos) / sizeof(double)) {
                r.good = false;
                return;
            }
            if (interval <= 0.0) {
                r.good = false; // TimeSeries rejects such intervals
                return;
            }
            // One bulk copy straight out of the (possibly mapped)
            // entry instead of a per-sample decode loop.
            std::vector<double> values(static_cast<std::size_t>(n));
            if (n > 0)
                r.bytes(values.data(), std::size_t(n) * sizeof(double));
            if (!r.ok())
                return;
            s = TimeSeries(interval, std::move(values));
        });
        if (r.ok())
            profiles.push_back(std::move(p));
    }
    if (!r.ok() || r.pos != payload.size())
        return std::nullopt;
    return profiles;
}

} // namespace mbs
