#include "atomic_write.hh"

#include <cerrno>
#include <cstring>
#include <chrono>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "fault/fault.hh"

namespace mbs {

namespace {

/** Exponential backoff before retry number @p attempt (1-based). */
void
backoff(int attempt)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 << (attempt - 1)));
}

} // namespace

AtomicWriteResult
atomicWriteFile(const std::filesystem::path &path,
                const std::string &bytes,
                const AtomicWriteOptions &options)
{
    const std::filesystem::path tmp = options.exclusive
        ? std::filesystem::path(path.string() + ".tmp." +
                                std::to_string(::getpid()))
        : std::filesystem::path(path.string() + ".tmp");
    AtomicWriteResult result;
    for (int attempt = 1; attempt <= options.attempts; ++attempt) {
        if (attempt > 1)
            backoff(attempt - 1);
        result.attemptsUsed = attempt;
        std::string failure;
        if (!options.writeFaultSite.empty() &&
            fault::check(options.writeFaultSite.c_str()) ==
                fault::Kind::Error) {
            failure = "injected write error";
        } else {
            std::ofstream out(tmp,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                failure =
                    "cannot write '" + tmp.string() + "'";
            } else {
                out.write(bytes.data(),
                          std::streamsize(bytes.size()));
                if (!out.good())
                    failure = "short write to '" + tmp.string() + "'";
            }
        }
        if (failure.empty() && !options.renameFaultSite.empty() &&
            fault::check(options.renameFaultSite.c_str()) ==
                fault::Kind::Error) {
            failure = "injected rename error";
        }
        if (failure.empty()) {
            if (options.exclusive) {
                // link(2) is the atomic claim: exactly one of any
                // number of concurrent writers gets the name, the
                // rest see EEXIST. rename(2) cannot express this —
                // it silently replaces an existing target.
                if (::link(tmp.c_str(), path.c_str()) != 0) {
                    if (errno == EEXIST) {
                        result.existed = true;
                        result.error = "'" + path.string() +
                            "' already exists";
                        std::error_code rm;
                        std::filesystem::remove(tmp, rm);
                        return result;
                    }
                    failure = "cannot publish '" + path.string() +
                        "': " + std::strerror(errno);
                } else {
                    std::error_code rm;
                    std::filesystem::remove(tmp, rm);
                }
            } else {
                std::error_code ec;
                std::filesystem::rename(tmp, path, ec);
                if (ec)
                    failure = "cannot publish '" + path.string() +
                              "': " + ec.message();
            }
        }
        if (failure.empty()) {
            result.ok = true;
            result.error.clear();
            return result;
        }
        result.error = failure;
        std::error_code rm;
        std::filesystem::remove(tmp, rm);
    }
    return result;
}

} // namespace mbs
