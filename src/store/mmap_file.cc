#include "store/mmap_file.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mbs {

MappedFile::MappedFile(const std::filesystem::path &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return;

    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return;
    }
    mtime = std::uint64_t(st.st_mtim.tv_sec) * 1000000000ULL +
            std::uint64_t(st.st_mtim.tv_nsec);
    length = std::size_t(st.st_size);
    if (length > 0) {
        void *p = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            ::close(fd);
            length = 0;
            mtime = 0;
            return;
        }
        data = p;
    }
    // The mapping outlives the descriptor.
    ::close(fd);
    isValid = true;
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data(other.data), length(other.length), mtime(other.mtime),
      isValid(other.isValid)
{
    other.data = nullptr;
    other.length = 0;
    other.mtime = 0;
    other.isValid = false;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        reset();
        data = other.data;
        length = other.length;
        mtime = other.mtime;
        isValid = other.isValid;
        other.data = nullptr;
        other.length = 0;
        other.mtime = 0;
        other.isValid = false;
    }
    return *this;
}

MappedFile::~MappedFile()
{
    reset();
}

void
MappedFile::reset()
{
    if (data != nullptr)
        ::munmap(data, length);
    data = nullptr;
    length = 0;
    mtime = 0;
    isValid = false;
}

} // namespace mbs
