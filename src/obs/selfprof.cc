#include "selfprof.hh"

#include <algorithm>
#include <chrono>

#include "common/strings.hh"
#include "obs/metrics.hh"

namespace mbs {
namespace obs {

double
SelfProfile::attributionRatio() const
{
    if (totalSamples == 0)
        return 1.0;
    return double(attributedSamples) / double(totalSamples);
}

std::string
SelfProfile::collapsedText() const
{
    std::string out;
    for (const auto &[stack, count] : collapsed) {
        out += stack + " " +
            strformat("%llu", (unsigned long long)count) + "\n";
    }
    return out;
}

std::string
SelfProfile::tableText() const
{
    std::string out = strformat("%-40s %10s %10s %7s\n", "span",
                                "self", "cumul", "self%");
    for (const auto &s : spans) {
        const double pct = totalSamples > 0
            ? 100.0 * double(s.selfSamples) / double(totalSamples)
            : 0.0;
        out += strformat("%-40s %10llu %10llu %6.1f%%\n",
                         s.name.c_str(),
                         (unsigned long long)s.selfSamples,
                         (unsigned long long)s.cumulativeSamples, pct);
    }
    out += strformat("%llu samples, %llu attributed (%.1f%%)\n",
                     (unsigned long long)totalSamples,
                     (unsigned long long)attributedSamples,
                     100.0 * attributionRatio());
    return out;
}

SelfProfiler &
SelfProfiler::instance()
{
    static SelfProfiler profiler;
    return profiler;
}

SelfProfiler::ThreadStack &
SelfProfiler::myStack()
{
    // Re-register after resetForTest(): the generation stamp tells a
    // thread its cached registration was dropped from `threads`.
    thread_local std::shared_ptr<ThreadStack> mine;
    thread_local std::uint64_t myGeneration = 0;
    const std::uint64_t current =
        generation.load(std::memory_order_relaxed);
    if (!mine || myGeneration != current) {
        mine = std::make_shared<ThreadStack>();
        myGeneration = current;
        std::lock_guard<std::mutex> lock(mtx);
        threads.push_back(mine);
    }
    return *mine;
}

void
SelfProfiler::pushFrame(const std::string &name)
{
    ThreadStack &ts = myStack();
    std::lock_guard<std::mutex> lock(ts.mtx);
    ts.frames.push_back(name);
}

void
SelfProfiler::popFrame()
{
    ThreadStack &ts = myStack();
    std::lock_guard<std::mutex> lock(ts.mtx);
    if (!ts.frames.empty())
        ts.frames.pop_back();
}

void
SelfProfiler::sampleOnce()
{
    // Snapshot the thread list first, then walk each thread's stack
    // under its own mutex: push/pop never block on the sampler for
    // longer than one stack copy.
    std::vector<std::shared_ptr<ThreadStack>> snapshot;
    {
        std::lock_guard<std::mutex> lock(mtx);
        snapshot = threads;
    }
    std::vector<std::vector<std::string>> stacks;
    stacks.reserve(snapshot.size());
    for (const auto &ts : snapshot) {
        std::lock_guard<std::mutex> lock(ts->mtx);
        stacks.push_back(ts->frames);
    }

    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &frames : stacks) {
        ++totalSamples;
        if (frames.empty())
            continue;
        ++attributedSamples;
        // Cumulative: each distinct span name on the stack once, so
        // recursive spans do not double-count a sample.
        std::vector<std::string> unique = frames;
        std::sort(unique.begin(), unique.end());
        unique.erase(std::unique(unique.begin(), unique.end()),
                     unique.end());
        for (const auto &name : unique) {
            auto &cost = costs[name];
            cost.name = name;
            ++cost.cumulativeSamples;
        }
        ++costs[frames.back()].selfSamples;
        std::string stack;
        for (const auto &name : frames)
            stack += (stack.empty() ? "" : ";") + name;
        ++collapsed[stack];
    }
}

void
SelfProfiler::samplerLoop(double hz)
{
    using namespace std::chrono;
    const auto period = duration_cast<steady_clock::duration>(
        duration<double>(1.0 / hz));
    auto next = steady_clock::now() + period;
    while (!stopRequested.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_until(next);
        next += period;
        if (stopRequested.load(std::memory_order_relaxed))
            break;
        sampleOnce();
    }
}

void
SelfProfiler::arm(double hz)
{
    if (armed())
        return;
    hz = std::min(1000.0, std::max(1.0, hz));
    {
        std::lock_guard<std::mutex> lock(mtx);
        totalSamples = 0;
        attributedSamples = 0;
        costs.clear();
        collapsed.clear();
    }
    stopRequested.store(false, std::memory_order_relaxed);
    // Arm before the thread starts so spans racing with arm() are
    // already pushing frames by the first tick.
    on.store(true, std::memory_order_relaxed);
    sampler = std::thread([this, hz]() { samplerLoop(hz); });
}

void
SelfProfiler::disarm()
{
    if (!armed())
        return;
    stopRequested.store(true, std::memory_order_relaxed);
    sampler.join();
    on.store(false, std::memory_order_relaxed);

    // Mirror the session totals into the registry as Volatile
    // instruments: visible with --metrics/--telemetry-out, excluded
    // from deterministic snapshots and goldens.
    auto &registry = MetricsRegistry::instance();
    std::lock_guard<std::mutex> lock(mtx);
    registry
        .counter("selfprof.samples", Volatility::Volatile,
                 "Wall-clock samples taken by the self-profiler")
        .add(totalSamples);
    registry
        .counter("selfprof.attributed", Volatility::Volatile,
                 "Self-profiler samples landing inside a live span")
        .add(attributedSamples);
}

SelfProfile
SelfProfiler::profile() const
{
    SelfProfile out;
    std::lock_guard<std::mutex> lock(mtx);
    out.totalSamples = totalSamples;
    out.attributedSamples = attributedSamples;
    out.collapsed = collapsed;
    out.spans.reserve(costs.size());
    for (const auto &[name, cost] : costs)
        out.spans.push_back(cost);
    std::sort(out.spans.begin(), out.spans.end(),
              [](const SpanCost &a, const SpanCost &b) {
                  if (a.selfSamples != b.selfSamples)
                      return a.selfSamples > b.selfSamples;
                  return a.name < b.name;
              });
    return out;
}

void
SelfProfiler::resetForTest()
{
    disarm();
    generation.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mtx);
    threads.clear();
    totalSamples = 0;
    attributedSamples = 0;
    costs.clear();
    collapsed.clear();
}

} // namespace obs
} // namespace mbs
