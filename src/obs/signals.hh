/**
 * @file
 * Graceful SIGINT/SIGTERM draining.
 *
 * A signal handler may only touch async-signal-safe functions, and
 * everything worth doing on shutdown — flushing the telemetry sink,
 * appending a ledger record, draining a job queue — is not. The
 * standard escape hatch is used here: the handler write()s the
 * signal number into a self-pipe and a watcher thread, parked on the
 * read end, runs the registered callback in ordinary thread context.
 *
 * One callback is active at a time (the CLI installs either the
 * one-shot drain or the serve-daemon stop). The second signal skips
 * the callback and calls _exit(128+sig) — the escalation path for a
 * drain that hangs, mirroring the convention users expect from
 * long-running tools: first ^C is polite, second is now.
 *
 * Fatal signals (SIGSEGV and friends) get the opposite treatment:
 * no draining is possible, so installFatalSignalDump() writes the
 * flight recorder's rings with signal-safe calls only and then lets
 * the default disposition kill the process.
 */

#ifndef MBS_OBS_SIGNALS_HH
#define MBS_OBS_SIGNALS_HH

#include <functional>
#include <string>

namespace mbs {
namespace obs {

/**
 * Install SIGINT/SIGTERM handlers routing to @p onSignal(signo) on a
 * dedicated watcher thread. Installing again replaces the callback
 * (the handlers and watcher are process-lifetime singletons). The
 * callback decides what draining means; when it returns, the watcher
 * calls _exit(128 + signo) when @p callbackExits is true (the
 * one-shot drain). With false — a serve daemon's stop request — the
 * normal shutdown path carries on instead.
 */
void installSignalDrain(std::function<void(int)> onSignal,
                        bool callbackExits = true);

/** Remove the callback; subsequent signals get default-ish exits. */
void resetSignalDrain();

/** True once a drain signal has been received (the watcher saw it). */
bool drainSignalSeen();

/**
 * Install fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL, SIGFPE,
 * SIGABRT) that dump the flight recorder (obs/flightrec.hh) to
 * @p path before the process dies with the default disposition. The
 * handler uses only async-signal-safe calls: open/write/close plus
 * the recorder's lock-free fd dump. Installing again replaces the
 * path; an empty @p path disables the dump (handlers stay).
 *
 * Unlike the drain above this is not a graceful path — it exists so
 * a crashed daemon leaves its last ~4k observability events behind.
 */
void installFatalSignalDump(const std::string &path);

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_SIGNALS_HH
