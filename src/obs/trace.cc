#include "trace.hh"

#include <chrono>
#include <fstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/flightrec.hh"
#include "obs/json.hh"
#include "obs/selfprof.hh"
#include "obs/thread_id.hh"

namespace mbs {
namespace obs {

namespace {

std::uint64_t
nowMicros()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<microseconds>(
        steady_clock::now().time_since_epoch()).count());
}

/** Shared with the event log so tids correlate across exports. */
int
threadId()
{
    return currentThreadId();
}

void
appendEventJson(std::string &out, const TraceEvent &e)
{
    out += "{\"name\": \"" + jsonEscape(e.name) + "\", \"cat\": \"" +
        jsonEscape(e.category) + "\", \"ph\": \"";
    out += e.phase;
    out += strformat("\", \"ts\": %llu, \"pid\": 1, \"tid\": %d",
                     (unsigned long long)e.tsMicros, e.tid);
    if (e.phase == 'i')
        out += ", \"s\": \"t\"";
    if (e.phase == 's' || e.phase == 'f') {
        out += strformat(", \"id\": \"0x%llx\"",
                         (unsigned long long)e.flowId);
        // Bind the finish to the enclosing slice's end so the arrow
        // lands on the span rather than a synthetic point.
        if (e.phase == 'f')
            out += ", \"bp\": \"e\"";
    }
    if (!e.args.empty()) {
        out += ", \"args\": {";
        bool first = true;
        for (const auto &[k, v] : e.args) {
            if (!first)
                out += ", ";
            first = false;
            out += "\"" + jsonEscape(k) + "\": \"" + jsonEscape(v) +
                "\"";
        }
        out += "}";
    }
    out += "}";
}

} // namespace

Tracer::Tracer() : epochMicros(nowMicros())
{
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mtx);
    buffer.push_back(std::move(event));
}

void
Tracer::begin(const std::string &name, const std::string &category,
              TraceArgs args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.phase = 'B';
    e.tsMicros = nowMicros() - epochMicros;
    e.tid = threadId();
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::end(const std::string &name, const std::string &category)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.phase = 'E';
    e.tsMicros = nowMicros() - epochMicros;
    e.tid = threadId();
    record(std::move(e));
}

void
Tracer::instant(const std::string &name, const std::string &category,
                TraceArgs args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.phase = 'i';
    e.tsMicros = nowMicros() - epochMicros;
    e.tid = threadId();
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::flow(char phase, const std::string &name,
             const std::string &category, std::uint64_t flowId)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.phase = phase;
    e.tsMicros = nowMicros() - epochMicros;
    e.tid = threadId();
    e.flowId = flowId;
    record(std::move(e));
}

std::uint64_t
Tracer::epoch() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return epochMicros;
}

void
Tracer::metadata(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mtx);
    meta[key] = value;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return buffer;
}

std::map<std::string, std::string>
Tracer::metadataEntries() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return meta;
}

std::vector<SpanSummary>
Tracer::spanSummaries(const std::string &category) const
{
    const auto evs = events();

    // Match begin/end pairs per thread with a stack, then aggregate
    // by (category, name) preserving first-begin order.
    std::map<int, std::vector<const TraceEvent *>> stacks;
    std::vector<SpanSummary> out;
    auto summaryFor = [&](const TraceEvent &e) -> SpanSummary & {
        for (auto &s : out) {
            if (s.name == e.name && s.category == e.category)
                return s;
        }
        SpanSummary s;
        s.name = e.name;
        s.category = e.category;
        out.push_back(std::move(s));
        return out.back();
    };
    for (const auto &e : evs) {
        if (!category.empty() && e.category != category)
            continue;
        if (e.phase == 'B') {
            stacks[e.tid].push_back(&e);
        } else if (e.phase == 'E') {
            auto &stack = stacks[e.tid];
            if (stack.empty())
                continue; // unmatched end; ignore
            const TraceEvent *b = stack.back();
            stack.pop_back();
            SpanSummary &s = summaryFor(*b);
            ++s.count;
            s.totalSeconds +=
                double(e.tsMicros - b->tsMicros) / 1e6;
        }
    }
    return out;
}

std::map<std::string, std::vector<double>>
Tracer::spanDurations(const std::string &category) const
{
    const auto evs = events();
    std::map<int, std::vector<const TraceEvent *>> stacks;
    std::map<std::string, std::vector<double>> out;
    for (const auto &e : evs) {
        if (!category.empty() && e.category != category)
            continue;
        if (e.phase == 'B') {
            stacks[e.tid].push_back(&e);
        } else if (e.phase == 'E') {
            auto &stack = stacks[e.tid];
            if (stack.empty())
                continue; // unmatched end; ignore
            const TraceEvent *b = stack.back();
            stack.pop_back();
            out[b->name].push_back(
                double(e.tsMicros - b->tsMicros) / 1e6);
        }
    }
    return out;
}

std::string
Tracer::exportJson() const
{
    std::vector<TraceEvent> evs;
    std::map<std::string, std::string> md;
    std::uint64_t epoch_ = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        evs = buffer;
        md = meta;
        epoch_ = epochMicros;
    }

    std::string out = "{\n\"displayTimeUnit\": \"ms\",\n";
    // Steady-clock anchor for the relative "ts" values; the trace
    // stitcher (serve/stitch) uses it to align two processes'
    // timelines. Chrome/Perfetto ignore unknown top-level keys.
    out += strformat("\"epochMicros\": %llu,\n",
                     (unsigned long long)epoch_);
    out += "\"otherData\": {";
    bool first = true;
    for (const auto &[k, v] : md) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + jsonEscape(k) + "\": \"" + jsonEscape(v) +
            "\"";
    }
    out += first ? "},\n" : "\n},\n";

    out += "\"traceEvents\": [\n";
    out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"mobilebench\"}}";
    for (const auto &[k, v] : md) {
        out += ",\n  {\"name\": \"" + jsonEscape(k) +
            "\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
            "\"args\": {\"value\": \"" + jsonEscape(v) + "\"}}";
    }
    for (const auto &e : evs) {
        out += ",\n  ";
        appendEventJson(out, e);
    }
    out += "\n]\n}\n";
    return out;
}

void
Tracer::writeJson(std::ostream &out) const
{
    out << exportJson();
}

void
Tracer::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open trace output file '" + path + "'");
    writeJson(out);
    out.flush();
    fatalIf(!out, "failed writing trace output file '" + path + "'");
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    buffer.clear();
    meta.clear();
    epochMicros = nowMicros();
}

ScopedSpan::ScopedSpan(std::string name_, std::string category_,
                       TraceArgs args)
    : name(std::move(name_)), category(std::move(category_)),
      active(Tracer::instance().enabled()),
      profiled(SelfProfiler::instance().armed())
{
    FlightRecorder::instance().note('B', name);
    if (active)
        Tracer::instance().begin(name, category, std::move(args));
    if (profiled)
        SelfProfiler::instance().pushFrame(name);
}

ScopedSpan::~ScopedSpan()
{
    if (profiled)
        SelfProfiler::instance().popFrame();
    if (active)
        Tracer::instance().end(name, category);
    FlightRecorder::instance().note('E', name);
}

} // namespace obs
} // namespace mbs
