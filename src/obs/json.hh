/**
 * @file
 * Tiny JSON emission helpers shared by the observability exporters.
 *
 * The exporters build their documents by hand (the framework has no
 * JSON dependency); everything that ends up inside a quoted string
 * must pass through jsonEscape() so arbitrary benchmark and counter
 * names cannot break the output.
 */

#ifndef MBS_OBS_JSON_HH
#define MBS_OBS_JSON_HH

#include <string>

namespace mbs {
namespace obs {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Format a double as a JSON number. Produces a fixed, perfectly
 * round-trippable representation ("%.17g") so snapshots are
 * byte-identical across runs with identical values; non-finite
 * values (not representable in JSON) are emitted as null.
 */
std::string jsonNumber(double value);

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_JSON_HH
