#include "obs/signals.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <atomic>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/flightrec.hh"

namespace mbs {
namespace obs {

namespace {

/** Self-pipe: the handler writes one byte (the signo) per signal. */
int pipeFds[2] = {-1, -1};

std::atomic<bool> signalSeen{false};
/** Set by the handler on the second signal; forces immediate exit. */
std::atomic<int> signalCount{0};

std::mutex callbackMutex;
std::function<void(int)> callback;
bool callbackExitsFlag = true;

extern "C" void
drainHandler(int sig)
{
    const int count = signalCount.fetch_add(1) + 1;
    if (count >= 2) {
        // The polite drain is taking too long (or is wedged); honor
        // the user's insistence immediately. _exit is signal-safe.
        _exit(128 + sig);
    }
    const unsigned char byte = static_cast<unsigned char>(sig);
    // A full pipe just means a signal is already pending; dropping
    // the byte is fine.
    [[maybe_unused]] const ssize_t n = write(pipeFds[1], &byte, 1);
}

void
watcherLoop()
{
    for (;;) {
        unsigned char byte = 0;
        const ssize_t n = read(pipeFds[0], &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;
        signalSeen.store(true);
        std::function<void(int)> fn;
        bool exits = true;
        {
            std::lock_guard<std::mutex> lock(callbackMutex);
            fn = callback;
            exits = callbackExitsFlag;
        }
        const int sig = int(byte);
        if (fn) {
            try {
                fn(sig);
            } catch (...) {
                // A drain that throws must not take down the
                // watcher; the exit below still happens.
            }
        }
        if (exits)
            _exit(128 + sig);
        // A non-exiting callback (serve stop request) leaves the
        // process to unwind normally; loop for the next signal in
        // case the stop path needs a repeat nudge (the handler's
        // second-signal escalation usually fires first).
    }
}

/** First-install bootstrap: pipe, watcher thread, sigaction. */
void
installOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        fatalIf(pipe(pipeFds) != 0, "cannot create signal pipe");
        std::thread(watcherLoop).detach();
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = drainHandler;
        sigemptyset(&action.sa_mask);
        // No SA_RESTART: blocking accept()/read() calls in the serve
        // loop should wake with EINTR so the stop flag is noticed.
        sigaction(SIGINT, &action, nullptr);
        sigaction(SIGTERM, &action, nullptr);
    });
}

/** Crash-dump destination; fixed storage so the handler never
 *  touches a std::string. Guarded by its own first byte: empty =
 *  dump disabled. */
char fatalDumpPath[4096] = {0};

extern "C" void
fatalHandler(int sig)
{
    if (fatalDumpPath[0] != '\0') {
        const int fd = open(fatalDumpPath,
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            FlightRecorder::instance().dumpToFd(fd);
            close(fd);
        }
    }
    // Re-deliver with the default disposition so the exit status
    // still reports the crash (the signal stays pending until the
    // handler returns).
    signal(sig, SIG_DFL);
    raise(sig);
}

} // namespace

void
installFatalSignalDump(const std::string &path)
{
    fatalIf(path.size() >= sizeof(fatalDumpPath),
            "fatal-signal dump path too long");
    std::memcpy(fatalDumpPath, path.c_str(), path.size() + 1);
    // Touch the singletons now: a first call from the handler would
    // not be safe, an ordinary load afterwards is.
    FlightRecorder::instance();

    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = fatalHandler;
        sigemptyset(&action.sa_mask);
        sigaction(SIGSEGV, &action, nullptr);
        sigaction(SIGBUS, &action, nullptr);
        sigaction(SIGILL, &action, nullptr);
        sigaction(SIGFPE, &action, nullptr);
        sigaction(SIGABRT, &action, nullptr);
    });
}

void
installSignalDrain(std::function<void(int)> onSignal, bool callbackExits)
{
    {
        std::lock_guard<std::mutex> lock(callbackMutex);
        callback = std::move(onSignal);
        callbackExitsFlag = callbackExits;
    }
    installOnce();
}

void
resetSignalDrain()
{
    std::lock_guard<std::mutex> lock(callbackMutex);
    callback = nullptr;
    callbackExitsFlag = true;
}

bool
drainSignalSeen()
{
    return signalSeen.load();
}

} // namespace obs
} // namespace mbs
