/**
 * @file
 * In-process sampling self-profiler.
 *
 * A wall-clock sampler thread wakes at a fixed rate and attributes
 * one sample per registered thread to the innermost live ScopedSpan
 * on that thread (obs/trace.hh), building a span-cost table (self
 * vs. cumulative samples) and a collapsed-stack export that
 * flamegraph.pl / speedscope render directly.
 *
 * Threads register lazily: a thread appears in the sample set the
 * first time it pushes a span frame while the profiler is armed, so
 * span-free worker threads never dilute attribution. Disarmed (the
 * default) the per-span cost is a single relaxed atomic load, the
 * same contract as the tracer and the fault injector.
 *
 * Everything the profiler measures is wall-clock and therefore
 * Volatile-class: its counters are registered Volatile and its
 * bundle artifacts (profile.collapsed, profile.txt) are excluded
 * from byte-identity goldens.
 */

#ifndef MBS_OBS_SELFPROF_HH
#define MBS_OBS_SELFPROF_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mbs {
namespace obs {

/** Sample counts attributed to one span name. */
struct SpanCost
{
    std::string name;
    /** Samples where this span was innermost. */
    std::uint64_t selfSamples = 0;
    /** Samples where this span was anywhere on the stack. */
    std::uint64_t cumulativeSamples = 0;
};

/** Everything one armed profiling session collected. */
struct SelfProfile
{
    /** Ticks × registered threads actually sampled. */
    std::uint64_t totalSamples = 0;
    /** Samples that landed inside at least one span. */
    std::uint64_t attributedSamples = 0;
    /** Per-span costs, sorted by self samples descending. */
    std::vector<SpanCost> spans;
    /** Collapsed stacks ("outer;inner" -> samples), name-sorted. */
    std::map<std::string, std::uint64_t> collapsed;

    /** Attributed fraction in [0, 1]; 1 with no samples at all. */
    double attributionRatio() const;
    /** flamegraph.pl input: one "stack count" line per stack. */
    std::string collapsedText() const;
    /** Human-readable span-cost table. */
    std::string tableText() const;
};

/**
 * The process-wide self-profiler.
 */
class SelfProfiler
{
  public:
    static SelfProfiler &instance();

    /** @return true while a sampler thread is collecting. */
    bool armed() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Start the sampler thread at @p hz samples per second (clamped
     * to [1, 1000]). No-op when already armed. Clears any previous
     * session's samples.
     */
    void arm(double hz);

    /** Stop the sampler thread. No-op when not armed. */
    void disarm();

    /** Copy of the collected samples (armed or not). */
    SelfProfile profile() const;

    /** Drop all samples and thread registrations (tests). */
    void resetForTest();

    /**
     * Span-frame hooks, called by ScopedSpan only while armed. The
     * frame name is copied so the sampler never dereferences into a
     * dying span.
     */
    void pushFrame(const std::string &name);
    void popFrame();

  private:
    /** One registered thread's live span stack. */
    struct ThreadStack
    {
        std::mutex mtx;
        std::vector<std::string> frames;
    };

    SelfProfiler() = default;

    ThreadStack &myStack();
    void samplerLoop(double hz);
    void sampleOnce();

    std::atomic<bool> on{false};
    std::atomic<bool> stopRequested{false};
    /** Bumped by resetForTest() to invalidate cached registrations. */
    std::atomic<std::uint64_t> generation{0};
    std::thread sampler;

    mutable std::mutex mtx;
    std::vector<std::shared_ptr<ThreadStack>> threads;
    std::uint64_t totalSamples = 0;
    std::uint64_t attributedSamples = 0;
    std::map<std::string, SpanCost> costs;
    std::map<std::string, std::uint64_t> collapsed;
};

} // namespace obs
} // namespace mbs

#endif // MBS_OBS_SELFPROF_HH
